// bench_fleet_soak — the multi-tenant fleet's capacity numbers.
//
// Three questions CI reads out of BENCH_fleet_soak.json:
//   1. With 100+ concurrent tenant sessions live in one observer, is the
//      per-tenant working set FLAT?  Every tenant runs the same trace, so
//      any spread between the largest and smallest per-session accounted
//      byte count is cross-tenant interference (tenant_spread_pct; the
//      budget model counts the arenas + frontier per session, and
//      rss_bytes_per_tenant cross-checks it against the process RSS).
//   2. What does an epoch cost on disk?  checkpoint_bytes_total and
//      checkpoint_bytes_per_session for a full-fleet snapshot, plus the
//      encode+write time as the benchmark's ns/op.
//   3. How fast does a fleet node come back?  Restore latency for the
//      whole snapshot (decode + rebuild every session), with
//      restore_ns_per_session for the per-tenant figure.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/session.hpp"
#include "net/snapshot.hpp"
#include "observer/checkpoint.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"
#include "vc/vector_clock.hpp"

namespace {

using namespace mpx;

constexpr std::uint64_t kEventsPerThread = 24;

/// Two independent threads, thread 0 writing g0 and thread 1 writing g1:
/// the lattice is a (kEventsPerThread+1)^2 grid, so every session carries a
/// real frontier, monitor set and witness DAG — not a degenerate chain.
std::vector<trace::Message> gridStream() {
  std::vector<trace::Message> out;
  out.reserve(2 * kEventsPerThread);
  for (std::uint64_t i = 1; i <= kEventsPerThread; ++i) {
    for (ThreadId t = 0; t < 2; ++t) {
      trace::Message m;
      m.event.kind = trace::EventKind::kWrite;
      m.event.thread = t;
      m.event.var = t;
      m.event.value = static_cast<Value>(i);
      m.event.localSeq = i;
      m.event.globalSeq = 2 * i + t;
      m.clock = vc::VectorClock(2);
      m.clock.set(t, i);
      out.push_back(std::move(m));
    }
  }
  return out;
}

analysis::AnalyzerSession::Config sessionConfig() {
  analysis::AnalyzerSession::Config cfg;
  cfg.threads = 2;
  cfg.specs = {"historically g0 <= g1 + 5"};
  cfg.handshakeSpecs = cfg.specs;
  cfg.tracked = {"g0", "g1"};
  cfg.vars.intern("g0", 0);
  cfg.vars.intern("g1", 1);
  cfg.lattice.parallel.jobs = 1;
  return cfg;
}

/// Builds `tenants` mid-trace sessions (streams deliberately NOT ended:
/// a soak measures live state, not finished verdicts).
std::vector<std::unique_ptr<analysis::AnalyzerSession>> buildFleet(
    std::size_t tenants, const std::vector<trace::Message>& msgs) {
  std::vector<std::unique_ptr<analysis::AnalyzerSession>> fleet;
  fleet.reserve(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    auto s = std::make_unique<analysis::AnalyzerSession>(sessionConfig());
    const char* err = nullptr;
    for (const auto& m : msgs) (void)s->ingest(m, &err);
    fleet.push_back(std::move(s));
  }
  return fleet;
}

std::vector<net::SnapshotEntry> checkpointFleet(
    const std::vector<std::unique_ptr<analysis::AnalyzerSession>>& fleet) {
  std::vector<net::SnapshotEntry> entries;
  entries.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    observer::ckpt::Writer w;
    fleet[i]->checkpoint(w);
    entries.push_back(net::SnapshotEntry{"tenant" + std::to_string(i),
                                         i + 1, w.take()});
  }
  return entries;
}

/// Current VmRSS in bytes (0 when /proc is unavailable).
std::size_t processRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      std::size_t kb = 0;
      in >> kb;
      return kb * 1024;
    }
    in.ignore(1 << 10, '\n');
  }
  return 0;
}

/// 100+ tenants live at once: per-tenant accounted bytes must be flat
/// (identical traces => identical sessions; any spread is interference),
/// and the process RSS per tenant gives the physical cross-check.
void BM_FleetSoakLiveSessions(benchmark::State& state) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  const auto msgs = gridStream();
  std::size_t peak = 0;
  std::size_t low = 0;
  std::size_t total = 0;
  std::size_t rssPerTenant = 0;
  for (auto _ : state) {
    const std::size_t rssBefore = processRssBytes();
    auto fleet = buildFleet(tenants, msgs);
    const std::size_t rssAfter = processRssBytes();
    peak = 0;
    low = fleet.front()->stats().accountedBytes;
    total = 0;
    for (const auto& s : fleet) {
      const std::size_t b = s->stats().accountedBytes;
      peak = std::max(peak, b);
      low = std::min(low, b);
      total += b;
    }
    if (rssAfter > rssBefore) {
      rssPerTenant = (rssAfter - rssBefore) / tenants;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["tenants"] = static_cast<double>(tenants);
  state.counters["peak_tenant_bytes"] = static_cast<double>(peak);
  state.counters["mean_tenant_bytes"] =
      static_cast<double>(total) / static_cast<double>(tenants);
  state.counters["tenant_spread_pct"] =
      low > 0 ? 100.0 * static_cast<double>(peak - low) /
                    static_cast<double>(low)
              : 0.0;
  state.counters["rss_bytes_per_tenant"] = static_cast<double>(rssPerTenant);
}
BENCHMARK(BM_FleetSoakLiveSessions)->Arg(128)->Unit(benchmark::kMillisecond);

/// One full-fleet epoch: serialize every session and write the framed,
/// CRC-sealed snapshot file (tmp + fsync + rename, as the daemon does).
void BM_FleetCheckpointEpoch(benchmark::State& state) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  const auto msgs = gridStream();
  const auto fleet = buildFleet(tenants, msgs);
  const std::string path = "/tmp/bench_fleet_soak.snapshot";
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto entries = checkpointFleet(fleet);
    const char* err = nullptr;
    const bool ok = net::writeSnapshotFile(path, entries, &err);
    if (!ok) state.SkipWithError(err != nullptr ? err : "write failed");
    bytes = 0;
    for (const auto& e : entries) bytes += e.blob.size();
    benchmark::DoNotOptimize(entries);
  }
  std::remove(path.c_str());
  state.counters["tenants"] = static_cast<double>(tenants);
  state.counters["checkpoint_bytes_total"] = static_cast<double>(bytes);
  state.counters["checkpoint_bytes_per_session"] =
      static_cast<double>(bytes) / static_cast<double>(tenants);
}
BENCHMARK(BM_FleetCheckpointEpoch)->Arg(128)->Unit(benchmark::kMillisecond);

/// Node restart: decode the snapshot and rebuild every session from its
/// blob — the latency between a fleet node dying and its tenants being
/// served again (the daemon does exactly this in start()).
void BM_FleetRestore(benchmark::State& state) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  const auto msgs = gridStream();
  const auto fleet = buildFleet(tenants, msgs);
  const std::vector<std::uint8_t> snapshot =
      net::encodeSnapshot(checkpointFleet(fleet));
  std::size_t restored = 0;
  for (auto _ : state) {
    std::vector<net::SnapshotEntry> entries;
    const char* err = nullptr;
    if (!net::decodeSnapshot(snapshot.data(), snapshot.size(), entries,
                             &err)) {
      state.SkipWithError(err != nullptr ? err : "decode failed");
      break;
    }
    restored = 0;
    for (const auto& e : entries) {
      observer::ckpt::Reader r(e.blob);
      auto s = analysis::AnalyzerSession::restore(r);
      if (s == nullptr) {
        state.SkipWithError("session restore failed");
        break;
      }
      ++restored;
      benchmark::DoNotOptimize(s);
    }
  }
  state.counters["tenants"] = static_cast<double>(tenants);
  state.counters["sessions_restored"] = static_cast<double>(restored);
  state.counters["restore_sec_per_session"] = benchmark::Counter(
      static_cast<double>(tenants), benchmark::Counter::kIsIterationInvariantRate |
                                        benchmark::Counter::kInvert);
}
BENCHMARK(BM_FleetRestore)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

MPX_BENCH_MAIN("fleet_soak")
