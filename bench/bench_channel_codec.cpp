// Supporting infrastructure costs: wire codec throughput and the
// observer's tolerance of reordered delivery (Claim C2's performance side —
// reconstruction cost is the same whatever the channel does).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <random>

#include "net/wire.hpp"
#include "observer/causality.hpp"
#include "trace/channel.hpp"
#include "trace/codec.hpp"

namespace {

using namespace mpx;

std::vector<trace::Message> makeStream(std::size_t perThread,
                                       std::size_t threads,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<trace::Message> out;
  GlobalSeq g = 1;
  std::vector<vc::VectorClock> clocks(threads);
  // Interleave threads round-robin; clocks stay internally consistent
  // (own component counts own messages).
  for (std::size_t k = 0; k < perThread; ++k) {
    for (ThreadId t = 0; t < threads; ++t) {
      clocks[t].increment(t);
      if (rng() % 3 == 0 && threads > 1) {
        // Occasionally observe another thread's progress.
        const ThreadId o = static_cast<ThreadId>(rng() % threads);
        vc::VectorClock snap = clocks[o];
        snap.set(o, snap[o]);  // no-op; just join below
        clocks[t].joinWith(snap);
        clocks[t].set(t, k + 1);
      }
      trace::Message m;
      m.event.kind = trace::EventKind::kWrite;
      m.event.thread = t;
      m.event.var = static_cast<VarId>(rng() % 4);
      m.event.value = static_cast<Value>(rng() % 100);
      m.event.localSeq = k + 1;
      m.event.globalSeq = g++;
      m.clock = clocks[t];
      out.push_back(std::move(m));
    }
  }
  return out;
}

void BM_BinaryCodec_Encode(benchmark::State& state) {
  const auto stream = makeStream(256, 4, 1);
  for (auto _ : state) {
    const auto bytes = trace::BinaryCodec::encodeAll(stream);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_BinaryCodec_Encode);

void BM_BinaryCodec_Decode(benchmark::State& state) {
  const auto stream = makeStream(256, 4, 2);
  const auto bytes = trace::BinaryCodec::encodeAll(stream);
  for (auto _ : state) {
    const auto back = trace::BinaryCodec::decodeAll(bytes);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_BinaryCodec_Decode);

void BM_CausalityIngest(benchmark::State& state) {
  // FIFO vs shuffled ingest+finalize: the observer's reordering tolerance.
  const bool shuffled = state.range(0) != 0;
  const auto stream = makeStream(256, 4, 3);
  for (auto _ : state) {
    observer::CausalityGraph graph;
    if (shuffled) {
      trace::ShuffleChannel ch(graph, 99);
      for (const auto& m : stream) ch.onMessage(m);
      ch.close();
    } else {
      for (const auto& m : stream) graph.ingest(m);
    }
    graph.finalize();
    benchmark::DoNotOptimize(graph.eventCount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
  state.SetLabel(shuffled ? "shuffled" : "fifo");
}
BENCHMARK(BM_CausalityIngest)->Arg(0)->Arg(1);

void BM_FramedStream_Encode(benchmark::State& state) {
  // The emitter's wire path: encode a batch, wrap it in a kEvents frame.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const auto stream = makeStream(256, 4, 4);
  std::uint64_t bytesOut = 0;
  for (auto _ : state) {
    std::vector<std::uint8_t> wire;
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < stream.size(); i += batch) {
      payload.clear();
      const std::size_t end = std::min(stream.size(), i + batch);
      for (std::size_t j = i; j < end; ++j) {
        trace::BinaryCodec::encode(stream[j], payload);
      }
      net::appendFrame(wire, net::FrameType::kEvents, payload);
    }
    bytesOut += wire.size();
    benchmark::DoNotOptimize(wire.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytesOut));
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_FramedStream_Encode)->Arg(1)->Arg(16)->Arg(128);

void BM_FramedStream_Deframe(benchmark::State& state) {
  // The daemon's wire path: FrameReader over a packetized byte stream,
  // tryDecode on every payload.  Chunk size models recv() granularity.
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  const auto stream = makeStream(256, 4, 5);
  std::vector<std::uint8_t> wire;
  {
    std::vector<std::uint8_t> payload;
    constexpr std::size_t kBatch = 128;
    for (std::size_t i = 0; i < stream.size(); i += kBatch) {
      payload.clear();
      const std::size_t end = std::min(stream.size(), i + kBatch);
      for (std::size_t j = i; j < end; ++j) {
        trace::BinaryCodec::encode(stream[j], payload);
      }
      net::appendFrame(wire, net::FrameType::kEvents, payload);
    }
  }
  std::uint64_t messages = 0;
  for (auto _ : state) {
    net::FrameReader reader;
    std::vector<trace::Message> out;
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      reader.feed(wire.data() + off, std::min(chunk, wire.size() - off));
      net::Frame f;
      while (reader.next(f) == net::FrameReader::Status::kFrame) {
        const char* error = nullptr;
        if (!net::decodeEventsPayload(f.payload, out, &error)) std::abort();
      }
    }
    messages += out.size();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["chunk"] = static_cast<double>(chunk);
}
BENCHMARK(BM_FramedStream_Deframe)->Arg(512)->Arg(4096)->Arg(65536);

}  // namespace

MPX_BENCH_MAIN("channel_codec");
