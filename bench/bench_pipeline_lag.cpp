// bench_pipeline_lag — the cost and payoff of trace-context propagation.
//
// Two questions, both against a live loopback daemon:
//   1. What does stamping kEventsTs send timestamps cost the emitter?
//      The ISSUE budget is <= 5% over the untimestamped v2 path; the
//      overhead_pct counter in BENCH_pipeline_lag.json is what CI reads.
//   2. What end-to-end emit-to-receive / emit-to-analyze lag does the
//      daemon actually measure?  p50/p99 are read back from the
//      mpx_pipeline_*_lag_ns histograms the daemon populates.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <chrono>

#include "net/emitter.hpp"
#include "net/observerd.hpp"
#include "net/wire.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"
#include "vc/vector_clock.hpp"

namespace {

using namespace mpx;

/// A single-thread totally-ordered stream: the lattice is a chain, so the
/// daemon's analysis cost stays trivial and the measurement isolates the
/// transport.
std::vector<trace::Message> chainStream(std::uint64_t events) {
  std::vector<trace::Message> out;
  out.reserve(events);
  for (std::uint64_t i = 1; i <= events; ++i) {
    trace::Message m;
    m.event.kind = trace::EventKind::kWrite;
    m.event.thread = 0;
    m.event.var = 0;
    m.event.value = static_cast<Value>(i);
    m.event.localSeq = i;
    m.event.globalSeq = i;
    m.clock = vc::VectorClock(1);
    m.clock.set(0, i);
    out.push_back(std::move(m));
  }
  return out;
}

net::Handshake chainHandshake(std::uint32_t version) {
  trace::VarTable vars;
  vars.intern("x", 0);
  net::Handshake h = net::makeHandshake(1, "", {"x"}, vars);
  h.version = version;
  return h;
}

net::DaemonOptions quietDaemon(std::size_t streams) {
  net::DaemonOptions o;
  o.expectedStreams = streams;
  o.logErrors = false;
  return o;
}

/// Sends the whole stream over one connection and waits for the flush.
void sendStream(std::uint16_t port, const net::Handshake& h,
                const std::vector<trace::Message>& msgs) {
  net::EmitterOptions opts;
  opts.port = port;
  opts.handshake = h;
  net::SocketEmitter emitter(opts);
  for (const auto& m : msgs) emitter.onMessage(m);
  emitter.close();
}

/// Emitter throughput at a fixed protocol version (2 = plain kEvents,
/// 3 = kEventsTs with send timestamps).  Repeat streams are duplicates the
/// daemon dedups, so daemon-side analysis cost is paid once and the loop
/// measures the emitter/transport.
void BM_EmitterSend(benchmark::State& state) {
  const auto version = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t events = 512;
  const auto msgs = chainStream(events);
  const net::Handshake h = chainHandshake(version);

  net::ObserverDaemon daemon(quietDaemon(/*streams=*/1u << 20));
  if (!daemon.start()) {
    state.SkipWithError("cannot start loopback daemon");
    return;
  }
  for (auto _ : state) {
    sendStream(daemon.port(), h, msgs);
  }
  daemon.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EmitterSend)->Arg(2)->Arg(3)->UseRealTime();

/// Head-to-head v2 vs v3 inside one benchmark run, so the JSON carries a
/// single overhead_pct counter CI can assert on without cross-referencing
/// two benchmark entries.
void BM_EmitterVersionOverhead(benchmark::State& state) {
  const std::uint64_t events = 512;
  const int rounds = 8;
  const auto msgs = chainStream(events);
  const net::Handshake h2 = chainHandshake(net::kListSpecProtocolVersion);
  const net::Handshake h3 = chainHandshake(net::kProtocolVersion);

  net::ObserverDaemon daemon(quietDaemon(/*streams=*/1u << 20));
  if (!daemon.start()) {
    state.SkipWithError("cannot start loopback daemon");
    return;
  }
  double v2Ns = 0;
  double v3Ns = 0;
  using clock = std::chrono::steady_clock;
  for (auto _ : state) {
    // Interleave the two versions so drift (page cache, turbo) hits both.
    for (int r = 0; r < rounds; ++r) {
      const auto t0 = clock::now();
      sendStream(daemon.port(), h2, msgs);
      const auto t1 = clock::now();
      sendStream(daemon.port(), h3, msgs);
      const auto t2 = clock::now();
      v2Ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
      v3Ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
    }
  }
  daemon.stop();

  const double denom = static_cast<double>(state.iterations()) *
                       static_cast<double>(rounds) *
                       static_cast<double>(events);
  const double perMsgV2 = v2Ns / denom;
  const double perMsgV3 = v3Ns / denom;
  state.counters["v2_ns_per_msg"] = perMsgV2;
  state.counters["v3_ns_per_msg"] = perMsgV3;
  state.counters["overhead_pct"] =
      perMsgV2 > 0 ? (perMsgV3 - perMsgV2) / perMsgV2 * 100.0 : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rounds) * 2 *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EmitterVersionOverhead)->Iterations(1)->UseRealTime();

/// Percentile from a snapshot histogram: smallest bucket bound whose
/// cumulative count covers the quantile (+Inf reported as the last bound).
std::uint64_t histogramPercentile(const telemetry::HistogramSample& h,
                                  double q) {
  if (h.count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += h.counts[i];
    if (cumulative >= target) return h.bounds[i];
  }
  return h.bounds.empty() ? 0 : h.bounds.back();
}

/// Full pipeline: one v3 stream through a fresh daemon per iteration, then
/// p50/p99 emit-to-receive and emit-to-analyze lag read back from the
/// daemon's own mpx_pipeline_* histograms (zeros in telemetry-OFF builds).
void BM_PipelineLagE2E(benchmark::State& state) {
  const std::uint64_t events = 512;
  const auto msgs = chainStream(events);
  const net::Handshake h = chainHandshake(net::kProtocolVersion);

  telemetry::registry().reset();
  for (auto _ : state) {
    net::ObserverDaemon daemon(quietDaemon(/*streams=*/1));
    if (!daemon.start()) {
      state.SkipWithError("cannot start loopback daemon");
      return;
    }
    sendStream(daemon.port(), h, msgs);
    if (!daemon.waitFinished(std::chrono::milliseconds(10000))) {
      state.SkipWithError("daemon did not finish");
      return;
    }
    daemon.stop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));

  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  for (const auto& hist : snap.histograms) {
    const char* prefix = nullptr;
    if (hist.name == "mpx_pipeline_receive_lag_ns") prefix = "recv";
    if (hist.name == "mpx_pipeline_analyze_lag_ns") prefix = "analyze";
    if (prefix == nullptr) continue;
    state.counters[std::string(prefix) + "_p50_ns"] =
        static_cast<double>(histogramPercentile(hist, 0.50));
    state.counters[std::string(prefix) + "_p99_ns"] =
        static_cast<double>(histogramPercentile(hist, 0.99));
    state.counters[std::string(prefix) + "_frames"] =
        static_cast<double>(hist.count);
  }
}
BENCHMARK(BM_PipelineLagE2E)->UseRealTime();

}  // namespace

MPX_BENCH_MAIN("pipeline_lag")
