// §3.1 in practice — predictive race/deadlock analysis throughput on
// lock-instrumented executions.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "detect/deadlock_detector.hpp"
#include "detect/race_detector.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace {

using namespace mpx;

void BM_RacePredictor_BankAccount(benchmark::State& state) {
  const std::size_t deposits = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::bankAccountRacy(deposits);
  program::RoundRobinScheduler sched(1);
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  detect::RaceOptions opts;
  opts.happensBefore = true;
  opts.lockset = true;
  detect::RacePredictor predictor(opts);
  std::size_t races = 0;
  for (auto _ : state) {
    races = predictor.analyzeExecution(rec, prog, {"balance"}).size();
    benchmark::DoNotOptimize(races);
  }
  state.counters["accesses"] = static_cast<double>(deposits * 4);
  state.counters["races"] = static_cast<double>(races);
}
BENCHMARK(BM_RacePredictor_BankAccount)->Arg(4)->Arg(16)->Arg(64);

void BM_RacePredictor_CleanLockedAccount(benchmark::State& state) {
  // The no-findings path: everything ordered through the lock.
  const std::size_t deposits = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::bankAccountLocked(deposits);
  program::RoundRobinScheduler sched(2);
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  detect::RaceOptions opts;
  opts.happensBefore = true;
  opts.lockset = true;
  detect::RacePredictor predictor(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predictor.analyzeExecution(rec, prog, {"balance"}).size());
  }
}
BENCHMARK(BM_RacePredictor_CleanLockedAccount)->Arg(16)->Arg(64);

void BM_DeadlockPredictor_Philosophers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::diningPhilosophers(n);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);
  detect::DeadlockPredictor predictor;
  std::size_t reports = 0;
  for (auto _ : state) {
    reports = predictor.analyze(rec, prog).size();
    benchmark::DoNotOptimize(reports);
  }
  state.counters["philosophers"] = static_cast<double>(n);
  state.counters["cycles"] = static_cast<double>(reports);
}
BENCHMARK(BM_DeadlockPredictor_Philosophers)->Arg(3)->Arg(6)->Arg(12);

}  // namespace

MPX_BENCH_MAIN("race_detection");
