// §3.1 in practice — predictive race/deadlock analysis throughput on
// lock-instrumented executions, driven through the lattice-engine plugins
// (RaceAnalysis / DeadlockAnalysis) exactly like the one-pass engine does.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "detect/deadlock_analysis.hpp"
#include "detect/race_analysis.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace {

using namespace mpx;

/// Replays a recorded execution into a plugin the way the engine bus does.
template <typename Plugin>
void feed(Plugin& plugin, const program::ExecutionRecord& rec) {
  static const std::vector<LockId> kNoLocks;
  for (std::size_t i = 0; i < rec.events.size(); ++i) {
    plugin.onRawEvent(rec.events[i],
                      i < rec.locksHeld.size() ? rec.locksHeld[i] : kNoLocks);
  }
  plugin.finish({});
}

void BM_RacePredictor_BankAccount(benchmark::State& state) {
  const std::size_t deposits = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::bankAccountRacy(deposits);
  program::RoundRobinScheduler sched(1);
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  detect::RaceOptions opts;
  opts.happensBefore = true;
  opts.lockset = true;
  std::size_t races = 0;
  for (auto _ : state) {
    detect::RaceAnalysis plugin(prog, {"balance"}, opts);
    feed(plugin, rec);
    races = plugin.races().size();
    benchmark::DoNotOptimize(races);
  }
  state.counters["accesses"] = static_cast<double>(deposits * 4);
  state.counters["races"] = static_cast<double>(races);
}
BENCHMARK(BM_RacePredictor_BankAccount)->Arg(4)->Arg(16)->Arg(64);

void BM_RacePredictor_CleanLockedAccount(benchmark::State& state) {
  // The no-findings path: everything ordered through the lock.
  const std::size_t deposits = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::bankAccountLocked(deposits);
  program::RoundRobinScheduler sched(2);
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  detect::RaceOptions opts;
  opts.happensBefore = true;
  opts.lockset = true;
  for (auto _ : state) {
    detect::RaceAnalysis plugin(prog, {"balance"}, opts);
    feed(plugin, rec);
    benchmark::DoNotOptimize(plugin.races().size());
  }
}
BENCHMARK(BM_RacePredictor_CleanLockedAccount)->Arg(16)->Arg(64);

void BM_DeadlockPredictor_Philosophers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::diningPhilosophers(n);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);
  std::size_t reports = 0;
  for (auto _ : state) {
    detect::DeadlockAnalysis plugin(prog);
    feed(plugin, rec);
    reports = plugin.deadlocks().size();
    benchmark::DoNotOptimize(reports);
  }
  state.counters["philosophers"] = static_cast<double>(n);
  state.counters["cycles"] = static_cast<double>(reports);
}
BENCHMARK(BM_DeadlockPredictor_Philosophers)->Arg(3)->Arg(6)->Arg(12);

}  // namespace

MPX_BENCH_MAIN("race_detection");
