// Figure 5 regenerator + timing.
//
// Prints the paper's Fig. 5 artifact — the landing-controller computation
// lattice (6 states, 3 runs, 2 violating) regenerated from one successful
// execution — then times the pieces of the pipeline that produce it.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstdio>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"

namespace {

using namespace mpx;
namespace corpus = program::corpus;

analysis::AnalysisResult analyzeObserved(observer::Retention retention =
                                             observer::Retention::kSlidingWindow) {
  const program::Program prog = corpus::landingController();
  analysis::AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  config.lattice.retention = retention;
  analysis::PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched(corpus::landingObservedSchedule());
  return analyzer.analyze(sched);
}

void printArtifact() {
  std::printf("=== Paper Figure 5: landing-controller computation lattice ===\n");
  std::printf("property: %s\n", corpus::landingProperty());
  const analysis::AnalysisResult r =
      analyzeObserved(observer::Retention::kFull);
  observer::ComputationLattice lattice(r.causality, r.space,
                                       {.retention = observer::Retention::kFull});
  lattice.build();
  std::printf("%s", lattice.render().c_str());
  std::printf("nodes=%zu runs=%llu observed-violates=%s predicted=%zu\n",
              lattice.stats().totalNodes,
              static_cast<unsigned long long>(lattice.stats().pathCount),
              r.observedRunViolates() ? "yes" : "no",
              r.predictedViolations.size());

  observer::RunEnumerator runs(r.causality, r.space);
  const program::Program prog = corpus::landingController();
  analysis::PredictiveAnalyzer analyzer(
      prog, analysis::specConfig(corpus::landingProperty()));
  logic::SynthesizedMonitor monitor(analyzer.formula());
  std::size_t idx = 0;
  runs.forEachRun([&](const observer::Run& run) {
    std::printf("run %zu:", ++idx);
    for (const auto& s : run.states) std::printf(" %s", s.toString().c_str());
    std::printf("  %s\n",
                monitor.firstViolation(run.states) >= 0 ? "VIOLATES" : "ok");
    return true;
  });
  std::printf("\n");
}

void BM_Fig5_EndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = analyzeObserved();
    benchmark::DoNotOptimize(r.predictedViolations.size());
  }
}
BENCHMARK(BM_Fig5_EndToEnd);

void BM_Fig5_LatticeOnly(benchmark::State& state) {
  const auto r = analyzeObserved();
  const program::Program prog = corpus::landingController();
  analysis::PredictiveAnalyzer analyzer(
      prog, analysis::specConfig(corpus::landingProperty()));
  for (auto _ : state) {
    observer::ComputationLattice lattice(r.causality, r.space);
    logic::SynthesizedMonitor monitor(analyzer.formula());
    std::vector<observer::Violation> violations;
    lattice.check(monitor, violations);
    benchmark::DoNotOptimize(violations.size());
  }
}
BENCHMARK(BM_Fig5_LatticeOnly);

void BM_Fig5_ProgramExecutionOnly(benchmark::State& state) {
  const program::Program prog = corpus::landingController();
  for (auto _ : state) {
    program::FixedScheduler sched(corpus::landingObservedSchedule());
    const auto rec = program::runProgram(prog, sched);
    benchmark::DoNotOptimize(rec.events.size());
  }
}
BENCHMARK(BM_Fig5_ProgramExecutionOnly);

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  return mpx::bench::runAndExport("fig5_lattice", argc, argv);
}
