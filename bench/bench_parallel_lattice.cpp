// Parallel level expansion: wall-clock scaling of ComputationLattice over
// the pool width (--jobs).  The workload is the k-writer product lattice —
// wide levels of pairwise-concurrent cuts, exactly the shape the chunked
// frontier expansion targets — checked against a monitor so the per-edge
// work includes monitor advancement, not just state joins.
//
// Counters per run:
//   ns_per_level        mean wall time per lattice level
//   speedup_vs_serial   serial (jobs=1) mean time / this run's mean time
//   levels, nodes, violations   workload shape sanity
//
// jobs=1 uses the serial in-place path (no pool, no snapshot); jobs>1 uses
// a pre-built injected pool so thread start-up is not measured.  Results
// are identical across jobs by construction (see tests/parallel/).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <chrono>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/instrumentor.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/lattice.hpp"
#include "parallel/thread_pool.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace {

using namespace mpx;

struct Computation {
  observer::CausalityGraph graph;
  observer::StateSpace space;
};

Computation buildComputation(std::size_t threads, std::size_t writes) {
  const program::Program prog =
      program::corpus::independentWriters(threads, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  Computation c;
  std::unordered_set<VarId> vars;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < threads; ++i) {
    names.push_back("v" + std::to_string(i));
    vars.insert(prog.vars.id(names.back()));
  }
  core::Instrumentor instr(core::RelevancePolicy::writesOf(vars), c.graph);
  for (const auto& e : rec.events) instr.onEvent(e);
  c.graph.finalize();
  c.space = observer::StateSpace::byNames(prog.vars, names);
  return c;
}

/// Serial mean ns per check(), keyed by workload, filled by the jobs=1 run
/// (registered first, so it always executes before the parallel runs).
std::map<std::string, double>& serialBaselineNs() {
  static std::map<std::string, double> ns;
  return ns;
}

void BM_ParallelLattice_Check(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t writes = static_cast<std::size_t>(state.range(1));
  const std::size_t jobs = static_cast<std::size_t>(state.range(2));
  const std::string workload =
      std::to_string(threads) + "x" + std::to_string(writes);

  const Computation c = buildComputation(threads, writes);
  logic::SynthesizedMonitor mon(
      logic::SpecParser(c.space).parse("!(v0 = 2 && v1 = 2)"));

  observer::LatticeOptions opts;
  opts.recordPaths = false;    // measure expansion, not witness bookkeeping
  opts.maxViolations = 1u << 20;
  opts.parallel.jobs = jobs;
  opts.parallel.minFrontier = 2;
  std::unique_ptr<parallel::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<parallel::ThreadPool>(jobs);
    opts.parallel.pool = pool.get();
  }

  observer::LatticeStats stats;
  std::size_t violations = 0;
  double totalSec = 0.0;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space, opts);
    std::vector<observer::Violation> found;
    const auto t0 = std::chrono::steady_clock::now();
    stats = lattice.check(mon, found);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    state.SetIterationTime(sec);
    totalSec += sec;
    violations = found.size();
    benchmark::DoNotOptimize(stats.totalNodes);
  }

  const double meanNs =
      totalSec * 1e9 / static_cast<double>(state.iterations());
  if (jobs <= 1) serialBaselineNs()[workload] = meanNs;
  const auto base = serialBaselineNs().find(workload);
  state.counters["ns_per_level"] =
      meanNs / static_cast<double>(stats.levels == 0 ? 1 : stats.levels);
  state.counters["speedup_vs_serial"] =
      (base != serialBaselineNs().end() && meanNs > 0.0)
          ? base->second / meanNs
          : 0.0;
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["levels"] = static_cast<double>(stats.levels);
  state.counters["nodes"] = static_cast<double>(stats.totalNodes);
  state.counters["violations"] = static_cast<double>(violations);
}
// jobs=1 FIRST per workload: it seeds the serial baseline the parallel
// rows are normalized against.
BENCHMARK(BM_ParallelLattice_Check)
    ->Args({4, 4, 1})
    ->Args({4, 4, 2})
    ->Args({4, 4, 4})
    ->Args({4, 4, 8})
    ->Args({5, 3, 1})
    ->Args({5, 3, 2})
    ->Args({5, 3, 4})
    ->Args({5, 3, 8})
    ->UseManualTime();

}  // namespace

MPX_BENCH_MAIN("parallel_lattice")
