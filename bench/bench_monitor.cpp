// Claim C5 (monitor half) — synthesized ptLTL monitors cost O(|φ|) per
// state with a one-word state, which is what lets the lattice carry SETS
// of monitor states per node cheaply.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <random>

#include "logic/monitor.hpp"
#include "logic/parser.hpp"

namespace {

using namespace mpx;
using observer::GlobalState;

observer::StateSpace space() {
  static trace::VarTable table = [] {
    trace::VarTable t;
    t.intern("p", 0);
    t.intern("q", 0);
    t.intern("r", 0);
    return t;
  }();
  return observer::StateSpace::byNames(table, {"p", "q", "r"});
}

/// Nested formula of the requested temporal depth.
logic::Formula deepFormula(std::size_t depth) {
  const observer::StateSpace sp = space();
  logic::SpecParser parser(sp);
  logic::Formula f = parser.parse("p = 1 -> [q = 1, r = 1)");
  for (std::size_t i = 0; i < depth; ++i) {
    switch (i % 3) {
      case 0: f = logic::Formula::once(f); break;
      case 1: f = logic::Formula::since(f, parser.parse("q != 2")); break;
      default: f = logic::Formula::historically(f); break;
    }
  }
  return f;
}

std::vector<GlobalState> randomTrace(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<GlobalState> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(GlobalState({static_cast<Value>(rng() % 3),
                               static_cast<Value>(rng() % 3),
                               static_cast<Value>(rng() % 3)}));
  }
  return out;
}

void BM_Monitor_StepThroughput(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  logic::SynthesizedMonitor mon(deepFormula(depth));
  const auto trace = randomTrace(4096, 11);
  for (auto _ : state) {
    mon.reset();
    bool ok = true;
    for (const auto& s : trace) ok &= mon.stepLinear(s);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["subformulas"] = static_cast<double>(mon.subformulaCount());
}
BENCHMARK(BM_Monitor_StepThroughput)->Arg(0)->Arg(4)->Arg(10)->Arg(20);

void BM_Monitor_StatelessAdvance(benchmark::State& state) {
  // The lattice-facing API: advance(state, input) with no hidden state.
  logic::SynthesizedMonitor mon(deepFormula(6));
  const auto trace = randomTrace(4096, 12);
  const observer::MonitorState m0 = mon.initial(trace[0]);
  for (auto _ : state) {
    observer::MonitorState m = m0;
    for (const auto& s : trace) m = mon.advance(m, s);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_Monitor_StatelessAdvance);

void BM_Monitor_ParseAndSynthesize(benchmark::State& state) {
  const observer::StateSpace sp = space();
  for (auto _ : state) {
    logic::SynthesizedMonitor mon(logic::SpecParser(sp).parse(
        "start(p = 1) -> [q = 1, r = 0) && once(q + r > 1)"));
    benchmark::DoNotOptimize(mon.subformulaCount());
  }
}
BENCHMARK(BM_Monitor_ParseAndSynthesize);

}  // namespace

MPX_BENCH_MAIN("monitor");
