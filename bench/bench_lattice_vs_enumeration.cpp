// Claim C5 — checking all runs IN PARALLEL on the lattice (monitor-state
// sets piggybacked on nodes) versus materializing each run and checking it
// individually.  The run count is exponential in the workload size while
// the lattice node count is polynomial-ish, so the gap widens fast; this
// bench regenerates that crossover.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstdio>

#include "core/instrumentor.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/lattice.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace {

using namespace mpx;

struct Computation {
  observer::CausalityGraph graph;
  observer::StateSpace space;
  logic::Formula formula;
};

Computation buildComputation(std::size_t threads, std::size_t writes) {
  const program::Program prog =
      program::corpus::independentWriters(threads, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  Computation c;
  std::unordered_set<VarId> vars;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < threads; ++i) {
    names.push_back("v" + std::to_string(i));
    vars.insert(prog.vars.id(names.back()));
  }
  core::Instrumentor instr(core::RelevancePolicy::writesOf(vars), c.graph);
  for (const auto& e : rec.events) instr.onEvent(e);
  c.graph.finalize();
  c.space = observer::StateSpace::byNames(prog.vars, names);
  // "v0 never gets two ahead of v1 after both started" — a property whose
  // verdict genuinely differs across runs.
  c.formula = logic::SpecParser(c.space).parse(
      "once(v0 >= 1 && v1 >= 1) -> v0 <= v1 + 2");
  return c;
}

void BM_CheckAllRuns_Lattice(benchmark::State& state) {
  const Computation c = buildComputation(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  std::size_t violations = 0;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space);
    logic::SynthesizedMonitor monitor(c.formula);
    std::vector<observer::Violation> found;
    lattice.check(monitor, found);
    violations = found.size();
    benchmark::DoNotOptimize(violations);
  }
  state.counters["violations"] = static_cast<double>(violations);
}
BENCHMARK(BM_CheckAllRuns_Lattice)
    ->Args({2, 4})
    ->Args({3, 3})
    ->Args({3, 4})
    ->Args({4, 3});

void BM_CheckAllRuns_Enumeration(benchmark::State& state) {
  const Computation c = buildComputation(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  std::size_t runs = 0;
  for (auto _ : state) {
    observer::RunEnumerator enumerator(c.graph, c.space);
    logic::SynthesizedMonitor monitor(c.formula);
    std::size_t violating = 0;
    runs = enumerator.forEachRun([&](const observer::Run& run) {
      if (monitor.firstViolation(run.states) >= 0) ++violating;
      return true;
    });
    benchmark::DoNotOptimize(violating);
  }
  state.counters["runs"] = static_cast<double>(runs);
}
BENCHMARK(BM_CheckAllRuns_Enumeration)
    ->Args({2, 4})
    ->Args({3, 3})
    ->Args({3, 4})
    ->Args({4, 3});

void printComparison() {
  std::printf(
      "=== Claim C5: lattice-parallel checking vs per-run enumeration ===\n");
  std::printf("%8s %8s %12s %14s\n", "threads", "writes", "latticeNodes",
              "runsEnumerated");
  for (const auto& [threads, writes] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 4}, {3, 3}, {3, 4}, {4, 3}}) {
    const Computation c = buildComputation(threads, writes);
    observer::ComputationLattice lattice(c.graph, c.space);
    const auto& stats = lattice.build();
    std::printf("%8zu %8zu %12zu %14llu\n", threads, writes, stats.totalNodes,
                static_cast<unsigned long long>(stats.pathCount));
  }
  std::printf("(same verdicts; the time gap is the benchmark below)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printComparison();
  return mpx::bench::runAndExport("lattice_vs_enumeration", argc, argv);
}
