// Figure 6 regenerator + timing: the x/y/z example — messages with their
// exact MVCs, the 7-node lattice, the 3 runs and the rightmost violation.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstdio>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"
#include "trace/codec.hpp"

namespace {

using namespace mpx;
namespace corpus = program::corpus;

analysis::AnalysisResult analyzeObserved(
    observer::Retention retention = observer::Retention::kSlidingWindow) {
  const program::Program prog = corpus::xyzProgram();
  analysis::AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  config.lattice.retention = retention;
  analysis::PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched(corpus::xyzObservedSchedule());
  return analyzer.analyze(sched);
}

void printArtifact() {
  std::printf("=== Paper Figure 6: x/y/z computation lattice ===\n");
  std::printf("property: %s\n", corpus::xyzProperty());
  const program::Program prog = corpus::xyzProgram();
  const analysis::AnalysisResult r =
      analyzeObserved(observer::Retention::kFull);

  std::printf("messages (paper notation):\n");
  trace::TextCodec codec(prog.vars);
  for (const auto& ref : r.observedRun) {
    std::printf("  %s\n", codec.format(r.causality.message(ref)).c_str());
  }

  observer::ComputationLattice lattice(
      r.causality, r.space, {.retention = observer::Retention::kFull});
  lattice.build();
  std::printf("%s", lattice.render().c_str());
  std::printf("nodes=%zu runs=%llu observed-violates=%s predicted=%zu\n\n",
              lattice.stats().totalNodes,
              static_cast<unsigned long long>(lattice.stats().pathCount),
              r.observedRunViolates() ? "yes" : "no",
              r.predictedViolations.size());
}

void BM_Fig6_EndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = analyzeObserved();
    benchmark::DoNotOptimize(r.predictedViolations.size());
  }
}
BENCHMARK(BM_Fig6_EndToEnd);

void BM_Fig6_WithShuffledDelivery(benchmark::State& state) {
  // The observer pays a sort to undo reordering; measure the difference.
  const program::Program prog = corpus::xyzProgram();
  analysis::AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  config.delivery = trace::DeliveryPolicy::kShuffle;
  config.deliverySeed = 7;
  analysis::PredictiveAnalyzer analyzer(prog, config);
  for (auto _ : state) {
    program::FixedScheduler sched(corpus::xyzObservedSchedule());
    const auto r = analyzer.analyze(sched);
    benchmark::DoNotOptimize(r.predictedViolations.size());
  }
}
BENCHMARK(BM_Fig6_WithShuffledDelivery);

void BM_Fig6_RunEnumerationOracle(benchmark::State& state) {
  const auto r = analyzeObserved();
  for (auto _ : state) {
    observer::RunEnumerator runs(r.causality, r.space);
    std::size_t n = 0;
    runs.forEachRun([&n](const observer::Run&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_Fig6_RunEnumerationOracle);

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  return mpx::bench::runAndExport("fig6_lattice", argc, argv);
}
