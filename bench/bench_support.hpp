// Shared benchmark harness: every bench binary emits BENCH_<suite>.json next
// to its console output — machine-readable results (name with embedded
// params, iterations, ns/op, user counters) plus a telemetry snapshot, so CI
// and scripts can diff runs without scraping stdout.
//
// Simple binaries end with MPX_BENCH_MAIN("suite"); binaries with a custom
// main call mpx::bench::runAndExport("suite", argc, argv) instead of the
// Initialize/RunSpecifiedBenchmarks/Shutdown triple.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace mpx::bench {

inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Console reporter that additionally collects per-iteration runs and, at
/// Finalize(), writes BENCH_<suite>.json in the working directory.
class JsonExportReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(std::string suite) : suite_(std::move(suite)) {}

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.run_type == Run::RT_Iteration && !r.error_occurred) {
        runs_.push_back(r);
      }
    }
    ConsoleReporter::ReportRuns(report);
  }

  void Finalize() override {
    writeJson();
    ConsoleReporter::Finalize();
  }

 private:
  void writeJson() const {
    const std::string path = "BENCH_" + suite_ + ".json";
    std::ofstream out(path);
    if (!out) return;
    out << "{\n  \"suite\": \"" << jsonEscape(suite_) << "\",\n";
    out << "  \"benchmarks\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const Run& r = runs_[i];
      const double iters = r.iterations > 0
                               ? static_cast<double>(r.iterations)
                               : 1.0;
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"name\": \"" << jsonEscape(r.benchmark_name())
          << "\", \"iterations\": " << r.iterations
          << ", \"real_ns_per_op\": " << r.real_accumulated_time / iters * 1e9
          << ", \"cpu_ns_per_op\": " << r.cpu_accumulated_time / iters * 1e9;
      if (!r.counters.empty()) {
        out << ", \"counters\": {";
        bool first = true;
        for (const auto& [name, counter] : r.counters) {
          out << (first ? "" : ", ") << '"' << jsonEscape(name)
              << "\": " << counter.value;
          first = false;
        }
        out << '}';
      }
      out << '}';
    }
    out << "\n  ],\n";
    out << "  \"metrics\": "
        << telemetry::toJson(telemetry::registry().snapshot());
    out << "\n}\n";
  }

  std::string suite_;
  std::vector<Run> runs_;
};

/// Initialize + run + export.  Returns the process exit code.
inline int runAndExport(const std::string& suite, int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter(suite);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace mpx::bench

#define MPX_BENCH_MAIN(suite)                             \
  int main(int argc, char** argv) {                       \
    return mpx::bench::runAndExport(suite, argc, argv);   \
  }
