// MHP-prefilter payoff and overhead (ISSUE 10): the prefilter prunes
// clock-certified never-concurrent suffix variables from the expanded
// union space, shrinking the lattice; on unprunable traces it must cost
// no more than the pairwise clock prepass.  Both sides are measured on
// engine passes identical but for EngineConfig::mhpPrefilter.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "analysis/engine.hpp"
#include "program/corpus.hpp"

namespace {

using namespace mpx;

analysis::EngineConfig prefilterConfig(bool on, std::size_t auxVars) {
  analysis::EngineConfig cfg;
  cfg.specs = {"data >= 0"};
  for (std::size_t a = 0; a < auxVars; ++a) {
    cfg.extraTrackedVars.push_back("aux" + std::to_string(a));
  }
  cfg.mhpPrefilter = on;
  return cfg;
}

/// Lock-disciplined corpus: every aux variable is never-concurrent with
/// `data`, so the prefilter prunes the whole aux suffix.  ns/op compares
/// directly against the _off twin below; the counters pin the payoff.
void BM_MhpPrefilter_LockDisciplined_On(benchmark::State& state) {
  const auto aux = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::lockDisciplined(3, 2, aux);
  const analysis::Engine engine(prog, prefilterConfig(true, aux));
  std::size_t expanded = 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const analysis::EngineResult r = engine.runWithSeed(7);
    expanded = r.unionVarsExpanded;
    nodes = r.latticeStats.totalNodes;
    benchmark::DoNotOptimize(expanded);
  }
  state.counters["union_vars_expanded"] = static_cast<double>(expanded);
  state.counters["union_vars_total"] = static_cast<double>(aux + 1);
  state.counters["lattice_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_MhpPrefilter_LockDisciplined_On)->Arg(2)->Arg(4)->Arg(8);

void BM_MhpPrefilter_LockDisciplined_Off(benchmark::State& state) {
  const auto aux = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::lockDisciplined(3, 2, aux);
  const analysis::Engine engine(prog, prefilterConfig(false, aux));
  std::size_t expanded = 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const analysis::EngineResult r = engine.runWithSeed(7);
    expanded = r.unionVarsExpanded;
    nodes = r.latticeStats.totalNodes;
    benchmark::DoNotOptimize(expanded);
  }
  state.counters["union_vars_expanded"] = static_cast<double>(expanded);
  state.counters["union_vars_total"] = static_cast<double>(aux + 1);
  state.counters["lattice_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_MhpPrefilter_LockDisciplined_Off)->Arg(2)->Arg(4)->Arg(8);

/// Unprunable trace (unsynchronized writers, everything concurrent): the
/// prefilter certifies nothing and the pass degenerates to the off twin
/// plus the prepass.  ns_per_level exposes any per-level regression.
void BM_MhpPrefilter_Unprunable(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  const std::size_t deposits = 8;
  const program::Program prog = program::corpus::bankAccountRacy(deposits);
  analysis::EngineConfig cfg;
  cfg.specs = {"balance >= 0"};
  cfg.mhpPrefilter = on;
  const analysis::Engine engine(prog, cfg);
  std::size_t expanded = 0;
  std::size_t levels = 0;
  for (auto _ : state) {
    const analysis::EngineResult r = engine.runWithSeed(11);
    expanded = r.unionVarsExpanded;
    levels = r.latticeStats.levels;
    benchmark::DoNotOptimize(expanded);
  }
  state.counters["union_vars_expanded"] = static_cast<double>(expanded);
  state.counters["levels"] = static_cast<double>(levels);
  // ns/op ÷ levels = per-level cost; scripts diff Arg(1) against Arg(0).
  state.counters["ns_per_level"] = benchmark::Counter(
      static_cast<double>(levels * state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_MhpPrefilter_Unprunable)->Arg(0)->Arg(1);

}  // namespace

MPX_BENCH_MAIN("mhp_prefilter")
