// Claim C3 — instrumentation cost of Algorithm A ("all these can add
// significant delays to the normal execution of programs", paper §1).
//
// Measures the per-event cost of the MVC updates as a function of the
// number of threads n (clock width), the number of shared variables, and
// the fraction of relevant events (message-emission rate).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <random>

#include "core/instrumentor.hpp"
#include "trace/channel.hpp"

namespace {

using namespace mpx;

/// Synthetic event stream: uniform random read/write over vars & threads.
std::vector<trace::Event> makeEvents(std::size_t count, std::size_t threads,
                                     std::size_t vars, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<trace::Event> events;
  events.reserve(count);
  std::vector<LocalSeq> local(threads, 1);
  for (std::size_t i = 0; i < count; ++i) {
    trace::Event e;
    e.thread = static_cast<ThreadId>(rng() % threads);
    e.var = static_cast<VarId>(rng() % vars);
    e.kind = (rng() % 2 == 0) ? trace::EventKind::kRead
                              : trace::EventKind::kWrite;
    e.value = static_cast<Value>(rng() % 100);
    e.localSeq = local[e.thread]++;
    e.globalSeq = i + 1;
    events.push_back(e);
  }
  return events;
}

/// Sink that only counts — isolates Algorithm A itself.
class NullSink final : public trace::MessageSink {
 public:
  void onMessage(const trace::Message&) override { ++count; }
  std::size_t count = 0;
};

void BM_AlgorithmA_Threads(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const auto events = makeEvents(10000, threads, 8, 42);
  std::unordered_set<VarId> all;
  for (VarId v = 0; v < 8; ++v) all.insert(v);
  for (auto _ : state) {
    NullSink sink;
    core::Instrumentor instr(core::RelevancePolicy::writesOf(all), sink);
    instr.reserve(threads, 8);
    for (const auto& e : events) instr.onEvent(e);
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_AlgorithmA_Threads)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_AlgorithmA_Vars(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  const auto events = makeEvents(10000, 4, vars, 43);
  std::unordered_set<VarId> all;
  for (VarId v = 0; v < vars; ++v) all.insert(v);
  for (auto _ : state) {
    NullSink sink;
    core::Instrumentor instr(core::RelevancePolicy::writesOf(all), sink);
    instr.reserve(4, vars);
    for (const auto& e : events) instr.onEvent(e);
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  state.counters["vars"] = static_cast<double>(vars);
}
BENCHMARK(BM_AlgorithmA_Vars)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_AlgorithmA_RelevanceFraction(benchmark::State& state) {
  // 0, 25, 50, 100 percent of the variables are relevant: emission rate.
  const unsigned percent = static_cast<unsigned>(state.range(0));
  const std::size_t vars = 16;
  const auto events = makeEvents(10000, 4, vars, 44);
  std::unordered_set<VarId> relevant;
  for (VarId v = 0; v < vars * percent / 100; ++v) relevant.insert(v);
  for (auto _ : state) {
    NullSink sink;
    core::Instrumentor instr(core::RelevancePolicy::writesOf(relevant), sink);
    instr.reserve(4, vars);
    for (const auto& e : events) instr.onEvent(e);
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  state.counters["relevant%"] = static_cast<double>(percent);
}
BENCHMARK(BM_AlgorithmA_RelevanceFraction)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void BM_AlgorithmA_ReadVsWriteMix(benchmark::State& state) {
  // Reads do two joins, writes three assignments: measure pure-read vs
  // pure-write streams.
  const bool writes = state.range(0) != 0;
  std::vector<trace::Event> events = makeEvents(10000, 4, 8, 45);
  for (auto& e : events) {
    e.kind = writes ? trace::EventKind::kWrite : trace::EventKind::kRead;
  }
  std::unordered_set<VarId> all;
  for (VarId v = 0; v < 8; ++v) all.insert(v);
  for (auto _ : state) {
    NullSink sink;
    core::Instrumentor instr(core::RelevancePolicy::writesOf(all), sink);
    instr.reserve(4, 8);
    for (const auto& e : events) instr.onEvent(e);
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  state.SetLabel(writes ? "writes" : "reads");
}
BENCHMARK(BM_AlgorithmA_ReadVsWriteMix)->Arg(0)->Arg(1);

}  // namespace

MPX_BENCH_MAIN("algorithm_a");
