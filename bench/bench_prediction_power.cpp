// Claim C1 — the paper's headline: "the chance of detecting this safety
// violation by monitoring only the actual run is very low", while JMPaX
// "is able to predict two safety violations from a single successful
// execution".
//
// This harness quantifies that on the landing controller: over N random
// schedules, how often does
//   (a) the observed-run monitor (the JPAX/Java-MaC baseline) detect the
//       violation on the trace it saw, versus
//   (b) the predictive analyzer flag the bug from the same single trace?
// The `padding` parameter delays the radio shutdown, shrinking the window
// in which the bug manifests on the observed trace — random testing decays
// while prediction stays strong.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstdio>

#include "analysis/campaign.hpp"
#include "analysis/predictive_analyzer.hpp"
#include "program/corpus.hpp"

namespace {

using namespace mpx;
namespace corpus = program::corpus;

struct Rates {
  double observed = 0;
  double predicted = 0;
  double groundTruthViolating = 0;
};

Rates measure(std::size_t padding, std::size_t trials) {
  const program::Program prog = corpus::landingController(padding);
  analysis::CampaignOptions opts;
  opts.trials = trials;
  opts.withGroundTruth = true;
  const analysis::CampaignResult c =
      analysis::runCampaign(prog, corpus::landingProperty(), opts);

  Rates r;
  r.observed = 100.0 * c.observedRate();
  r.predicted = 100.0 * c.predictedRate();
  r.groundTruthViolating =
      100.0 * static_cast<double>(c.groundTruth.violatingExecutions) /
      static_cast<double>(c.groundTruth.totalExecutions);
  return r;
}

void printDetectionTable() {
  std::printf(
      "=== Claim C1: detection rate, observed-run monitoring (JPAX-style)\n"
      "    vs predictive analysis (JMPaX-style), landing controller ===\n");
  std::printf("%8s %18s %20s %22s\n", "padding", "observed-detect%",
              "predictive-detect%", "schedules-violating%");
  for (const std::size_t padding : {0u, 2u, 4u, 8u, 16u}) {
    const Rates r = measure(padding, 200);
    std::printf("%8zu %18.1f %20.1f %22.1f\n", padding, r.observed,
                r.predicted, r.groundTruthViolating);
  }
  std::printf(
      "(detection <= prediction always; prediction detects from successful"
      " runs)\n\n");
}

void BM_ObservedRunCheck(benchmark::State& state) {
  const program::Program prog =
      corpus::landingController(static_cast<std::size_t>(state.range(0)));
  analysis::ObservedRunChecker baseline(prog, corpus::landingProperty());
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline.detectsWithSeed(seed++));
  }
  state.counters["padding"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ObservedRunCheck)->Arg(0)->Arg(8);

void BM_PredictiveAnalysis(benchmark::State& state) {
  const program::Program prog =
      corpus::landingController(static_cast<std::size_t>(state.range(0)));
  analysis::PredictiveAnalyzer analyzer(
      prog, analysis::specConfig(corpus::landingProperty()));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.analyzeWithSeed(seed++).predictsViolation());
  }
  state.counters["padding"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PredictiveAnalysis)->Arg(0)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  printDetectionTable();
  return mpx::bench::runAndExport("prediction_power", argc, argv);
}
