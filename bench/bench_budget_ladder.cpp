// Cost of bounded-memory operation: the same wide product lattice checked
// at each rung of the degradation ladder (DESIGN.md §5c) — full expansion
// (no limits), budget-sampled frontier, and observed-path-only.  Shedding
// work (ranking + greedy byte fill) is part of the measured loop, so the
// rows answer "what does staying within a budget cost per level, and what
// coverage does it buy back".
//
// Counters per run:
//   ns_per_level    mean wall time per lattice level (shedding included)
//   peak_bytes      high-water accounted bytes (deterministic byte model)
//   dropped_nodes   frontier nodes shed across the run (0 = SOUND)
//   mode            ladder rung actually reached: 0 full, 1 sampled,
//                   2 observed-only
//   levels, nodes   workload shape sanity
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <chrono>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/instrumentor.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/lattice.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace {

using namespace mpx;

struct Computation {
  observer::CausalityGraph graph;
  observer::StateSpace space;
};

Computation buildComputation(std::size_t threads, std::size_t writes) {
  const program::Program prog =
      program::corpus::independentWriters(threads, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  Computation c;
  std::unordered_set<VarId> vars;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < threads; ++i) {
    names.push_back("v" + std::to_string(i));
    vars.insert(prog.vars.id(names.back()));
  }
  core::Instrumentor instr(core::RelevancePolicy::writesOf(vars), c.graph);
  for (const auto& e : rec.events) instr.onEvent(e);
  c.graph.finalize();
  c.space = observer::StateSpace::byNames(prog.vars, names);
  return c;
}

// Ladder rung selector (state.range(2)): 0 = full (no limits), 1 = sampled
// (a frontier cap the workload exceeds, but wide enough to keep sampling),
// 2 = observed-only (cap of 1 collapses to the observed path immediately).
void BM_BudgetLadder_Check(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t writes = static_cast<std::size_t>(state.range(1));
  const int rung = static_cast<int>(state.range(2));

  const Computation c = buildComputation(threads, writes);
  logic::SynthesizedMonitor mon(
      logic::SpecParser(c.space).parse("!(v0 = 2 && v1 = 2)"));

  observer::LatticeOptions opts;
  opts.recordPaths = false;  // measure expansion + shedding, not witnesses
  opts.maxViolations = 1u << 20;
  if (rung == 1) opts.maxFrontier = 16;
  if (rung == 2) opts.maxFrontier = 1;

  observer::LatticeStats stats;
  double totalSec = 0.0;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space, opts);
    std::vector<observer::Violation> found;
    const auto t0 = std::chrono::steady_clock::now();
    stats = lattice.check(mon, found);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    state.SetIterationTime(sec);
    totalSec += sec;
    benchmark::DoNotOptimize(stats.totalNodes);
  }

  const double meanNs =
      totalSec * 1e9 / static_cast<double>(state.iterations());
  state.counters["ns_per_level"] =
      meanNs / static_cast<double>(stats.levels == 0 ? 1 : stats.levels);
  state.counters["peak_bytes"] =
      static_cast<double>(stats.peakAccountedBytes);
  state.counters["dropped_nodes"] = static_cast<double>(stats.droppedNodes);
  state.counters["mode"] = static_cast<double>(stats.degradation);
  state.counters["levels"] = static_cast<double>(stats.levels);
  state.counters["nodes"] = static_cast<double>(stats.totalNodes);
}
BENCHMARK(BM_BudgetLadder_Check)
    ->Args({4, 4, 0})
    ->Args({4, 4, 1})
    ->Args({4, 4, 2})
    ->Args({5, 4, 0})
    ->Args({5, 4, 1})
    ->Args({5, 4, 2})
    ->UseManualTime();

}  // namespace

MPX_BENCH_MAIN("budget_ladder")
