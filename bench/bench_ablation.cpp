// Ablation benches for the design choices DESIGN.md calls out:
//   * sliding-window vs full lattice retention (memory/time),
//   * counterexample path recording on/off,
//   * packed one-word monitor state vs a deliberately "fat" monitor whose
//     states never collide (why monitor-state SETS stay small),
//   * online (incremental) vs batch lattice construction.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "core/instrumentor.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "logic/product_monitor.hpp"
#include "observer/lattice.hpp"
#include "observer/online.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace {

using namespace mpx;

struct Computation {
  observer::CausalityGraph graph;
  observer::StateSpace space;
  logic::Formula formula;
  std::size_t threads = 0;
};

Computation buildComputation(std::size_t threads, std::size_t writes) {
  const program::Program prog =
      program::corpus::independentWriters(threads, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  Computation c;
  c.threads = threads;
  std::unordered_set<VarId> vars;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < threads; ++i) {
    names.push_back("v" + std::to_string(i));
    vars.insert(prog.vars.id(names.back()));
  }
  core::Instrumentor instr(core::RelevancePolicy::writesOf(vars), c.graph);
  for (const auto& e : rec.events) instr.onEvent(e);
  c.graph.finalize();
  c.space = observer::StateSpace::byNames(prog.vars, names);
  c.formula = logic::SpecParser(c.space).parse(
      "once(v0 >= 1 && v1 >= 1) -> v0 <= v1 + 2");
  return c;
}

void BM_Ablation_Retention(benchmark::State& state) {
  const bool full = state.range(0) != 0;
  const Computation c = buildComputation(3, 4);
  observer::LatticeOptions opts;
  opts.retention = full ? observer::Retention::kFull
                        : observer::Retention::kSlidingWindow;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space, opts);
    const auto& stats = lattice.build();
    benchmark::DoNotOptimize(stats.totalNodes);
  }
  state.SetLabel(full ? "full-retention" : "sliding-window");
}
BENCHMARK(BM_Ablation_Retention)->Arg(0)->Arg(1);

void BM_Ablation_PathRecording(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  const Computation c = buildComputation(3, 4);
  observer::LatticeOptions opts;
  opts.recordPaths = record;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space, opts);
    logic::SynthesizedMonitor mon(c.formula);
    std::vector<observer::Violation> violations;
    lattice.check(mon, violations);
    benchmark::DoNotOptimize(violations.size());
  }
  state.SetLabel(record ? "record-paths" : "no-paths");
}
BENCHMARK(BM_Ablation_PathRecording)->Arg(0)->Arg(1);

/// A monitor that deliberately defeats state sharing: every (state, input)
/// hash lands in a fresh 64-bit value, so node sets grow with path counts
/// instead of collapsing — quantifies how much the synthesized monitors'
/// canonical packed state buys.
class FatStateMonitor final : public observer::LatticeMonitor {
 public:
  explicit FatStateMonitor(const logic::Formula& f) : inner_(f) {}
  observer::MonitorState initial(const observer::GlobalState& s) override {
    return mix(inner_.initial(s), s.hash());
  }
  observer::MonitorState advance(observer::MonitorState prev,
                                 const observer::GlobalState& s) override {
    return mix(prev, s.hash());
  }
  [[nodiscard]] bool isViolating(observer::MonitorState) const override {
    return false;  // structure-cost ablation only
  }

 private:
  static observer::MonitorState mix(observer::MonitorState a,
                                    std::size_t b) {
    return a * 1099511628211ull ^ (b + 0x9e3779b97f4a7c15ull);
  }
  logic::SynthesizedMonitor inner_;
};

void BM_Ablation_MonitorStateSharing(benchmark::State& state) {
  const bool fat = state.range(0) != 0;
  const Computation c = buildComputation(3, 3);
  std::size_t peak = 0;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space);
    std::vector<observer::Violation> violations;
    if (fat) {
      FatStateMonitor mon(c.formula);
      lattice.check(mon, violations);
    } else {
      logic::SynthesizedMonitor mon(c.formula);
      lattice.check(mon, violations);
    }
    peak = lattice.stats().monitorStatesPeak;
    benchmark::DoNotOptimize(peak);
  }
  state.counters["mstatesPeak"] = static_cast<double>(peak);
  state.SetLabel(fat ? "history-dependent-state" : "packed-canonical-state");
}
BENCHMARK(BM_Ablation_MonitorStateSharing)->Arg(0)->Arg(1);

void BM_Ablation_OnlineVsBatch(benchmark::State& state) {
  const bool online = state.range(0) != 0;
  const Computation c = buildComputation(3, 4);
  std::vector<trace::Message> msgs;
  for (const auto& ref : c.graph.observedOrder()) {
    msgs.push_back(c.graph.message(ref));
  }
  for (auto _ : state) {
    if (online) {
      logic::SynthesizedMonitor mon(c.formula);
      observer::OnlineAnalyzer analyzer(c.space, c.threads, &mon);
      for (const auto& m : msgs) analyzer.onMessage(m);
      analyzer.endOfTrace();
      benchmark::DoNotOptimize(analyzer.violations().size());
    } else {
      observer::ComputationLattice lattice(c.graph, c.space);
      logic::SynthesizedMonitor mon(c.formula);
      std::vector<observer::Violation> violations;
      lattice.check(mon, violations);
      benchmark::DoNotOptimize(violations.size());
    }
  }
  state.SetLabel(online ? "online-incremental" : "batch");
}
BENCHMARK(BM_Ablation_OnlineVsBatch)->Arg(0)->Arg(1);

void BM_Ablation_MultiPropertyPasses(benchmark::State& state) {
  // k properties: one combined ProductMonitor pass vs k separate passes.
  const bool combined = state.range(0) != 0;
  const Computation c = buildComputation(3, 4);
  logic::SpecParser parser(c.space);
  const std::vector<std::string> specs = {
      "once(v0 >= 1 && v1 >= 1) -> v0 <= v1 + 2",
      "historically v2 >= 0",
      "v0 = 4 -> once v1 = 1",
      "[v1 >= 1, v2 >= 3)" ,
  };
  for (auto _ : state) {
    std::size_t verdicts = 0;
    if (combined) {
      logic::ProductMonitor pm;
      for (const auto& s : specs) pm.add(parser.parse(s));
      observer::ComputationLattice lattice(c.graph, c.space);
      std::vector<observer::Violation> violations;
      lattice.check(pm, violations);
      verdicts = violations.size();
    } else {
      for (const auto& s : specs) {
        logic::SynthesizedMonitor mon(parser.parse(s));
        observer::ComputationLattice lattice(c.graph, c.space);
        std::vector<observer::Violation> violations;
        lattice.check(mon, violations);
        verdicts += violations.size();
      }
    }
    benchmark::DoNotOptimize(verdicts);
  }
  state.SetLabel(combined ? "one-product-pass" : "k-separate-passes");
}
BENCHMARK(BM_Ablation_MultiPropertyPasses)->Arg(0)->Arg(1);

}  // namespace

MPX_BENCH_MAIN("ablation");
