// Claim C3, second half — the end-to-end overhead of the library-function
// instrumentation (runtime::SharedVar) versus uninstrumented baselines:
// the price the paper acknowledges for deploying Algorithm A in a real
// program.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <mutex>

#include "runtime/runtime.hpp"
#include "trace/channel.hpp"

namespace {

using namespace mpx;

void BM_PlainVariable(benchmark::State& state) {
  // Baseline 0: a raw (thread-local in this bench) variable.
  Value x = 0;
  for (auto _ : state) {
    x = x + 1;
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainVariable);

void BM_MutexProtectedVariable(benchmark::State& state) {
  // Baseline 1: the unavoidable serialization cost without instrumentation.
  std::mutex mu;
  Value x = 0;
  for (auto _ : state) {
    const std::lock_guard<std::mutex> lock(mu);
    x = x + 1;
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexProtectedVariable);

void BM_InstrumentedIrrelevant(benchmark::State& state) {
  // Algorithm A runs on every access but emits nothing (variable not
  // relevant): the MVC bookkeeping cost alone.
  trace::CollectingSink sink;
  runtime::Runtime rt(sink);
  runtime::SharedVar x = rt.declare("x", 0);
  for (auto _ : state) {
    x.store(x.load() + 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);  // read + write events
}
BENCHMARK(BM_InstrumentedIrrelevant);

void BM_InstrumentedRelevant(benchmark::State& state) {
  // Full path: MVC updates + message construction + sink delivery.
  trace::CollectingSink sink;
  runtime::Runtime rt(sink);
  runtime::SharedVar x = rt.declare("x", 0);
  rt.markRelevant("x");
  for (auto _ : state) {
    x.store(x.load() + 1);
    if (sink.messages().size() > 1u << 20) sink.clear();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_InstrumentedRelevant);

void BM_InstrumentedContended(benchmark::State& state) {
  // Multi-threaded contention on the global serialization point (the
  // paper's sequential memory model made concrete).
  static trace::CollectingSink sink;
  static runtime::Runtime* rt = nullptr;
  static runtime::SharedVar x;
  if (state.thread_index() == 0) {
    sink.clear();
    rt = new runtime::Runtime(sink);
    x = rt->declare("x", 0);
  }
  for (auto _ : state) {
    x.store(x.load() + 1);
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * 2 *
                            static_cast<std::int64_t>(state.threads()));
    delete rt;
    rt = nullptr;
  }
}
BENCHMARK(BM_InstrumentedContended)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

MPX_BENCH_MAIN("runtime_overhead");
