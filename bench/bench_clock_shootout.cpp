// Clock-backend shootout: flat VectorClock vs TreeClock across the regimes
// the tree backend was built for, plus the v3-dense vs v4-sparse wire cost
// on the same streams.
//
// The container CI runs on one CPU, so the certified artifact is the
// COUNTER story, not wall-clock: `joins_entries_touched` (work the join
// actually did) must drop for the tree backend on wide traces, and
// `wire_bytes` must drop for the sparse coding.  Both are exported as
// user counters into BENCH_clock_shootout.json; scripts/check_bench.py
// style gates can diff them without trusting throughput on a loaded box.
//
// Patterns:
//   hot-lock  — every thread hammers one variable: clocks converge fast,
//               most joins are stale; the tree's root-domination skip and
//               the flat backend's stale-scan both shine here.
//   disjoint  — each thread touches only its own variable: joins are all
//               self-sized; the baseline where no backend can win big.
//   fan-in    — threads write their own variable, one collector thread
//               sweeps all of them: wide asymmetric joins where the tree's
//               subtree pruning beats the flat O(width) scan.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/instrumentor.hpp"
#include "net/wire.hpp"
#include "trace/channel.hpp"
#include "trace/codec.hpp"

namespace {

using namespace mpx;

enum class Pattern { kHotLock, kDisjoint, kFanIn };

const char* patternName(Pattern p) {
  switch (p) {
    case Pattern::kHotLock: return "hot_lock";
    case Pattern::kDisjoint: return "disjoint";
    case Pattern::kFanIn: return "fan_in";
  }
  return "?";
}

/// Builds a seeded event schedule for one pattern.  Shapes are chosen so
/// every pattern emits ~threads*rounds events and keeps localSeq/globalSeq
/// consistent (the instrumentor does not require them, but the wire-cost
/// benchmarks reuse the emitted messages downstream).
std::vector<trace::Event> makeSchedule(Pattern p, std::size_t threads,
                                       std::size_t rounds,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<trace::Event> out;
  std::vector<LocalSeq> local(threads, 1);
  GlobalSeq g = 1;
  const auto push = [&](ThreadId t, VarId x, trace::EventKind k) {
    trace::Event e;
    e.thread = t;
    e.var = x;
    e.kind = k;
    e.value = static_cast<Value>(rng() % 100);
    e.localSeq = local[t]++;
    e.globalSeq = g++;
    out.push_back(e);
  };
  for (std::size_t r = 0; r < rounds; ++r) {
    switch (p) {
      case Pattern::kHotLock:
        // Random thread order each round, everyone acquires lock 0.
        for (std::size_t t = 0; t < threads; ++t) {
          push(static_cast<ThreadId>(rng() % threads), 0,
               trace::EventKind::kLockAcquire);
        }
        break;
      case Pattern::kDisjoint:
        for (std::size_t t = 0; t < threads; ++t) {
          push(static_cast<ThreadId>(t), static_cast<VarId>(t),
               rng() % 2 ? trace::EventKind::kWrite
                         : trace::EventKind::kRead);
        }
        break;
      case Pattern::kFanIn:
        // Producers write their own slot, then thread 0 sweeps them all.
        for (std::size_t t = 1; t < threads; ++t) {
          push(static_cast<ThreadId>(t), static_cast<VarId>(t),
               trace::EventKind::kWrite);
        }
        for (std::size_t t = 1; t < threads; ++t) {
          push(0, static_cast<VarId>(t), trace::EventKind::kRead);
        }
        break;
    }
  }
  return out;
}

void BM_ClockShootout(benchmark::State& state) {
  const auto pattern = static_cast<Pattern>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto backend = state.range(2) != 0 ? vc::ClockBackend::kTree
                                           : vc::ClockBackend::kFlat;
  constexpr std::size_t kRounds = 64;
  const auto schedule = makeSchedule(pattern, threads, kRounds, 0xC10Cu);

  core::Instrumentor::ClockStats last{};
  for (auto _ : state) {
    trace::CollectingSink sink;
    core::Instrumentor ins(core::RelevancePolicy::allSharedAccesses(), sink,
                           backend);
    ins.reserve(threads, threads);
    for (const trace::Event& e : schedule) ins.onEvent(e);
    last = ins.clockStats();
    benchmark::DoNotOptimize(sink.messages().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.size()));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["joins"] = static_cast<double>(last.joins);
  state.counters["joins_entries_touched"] =
      static_cast<double>(last.joinEntriesTouched);
  state.counters["stale_joins"] = static_cast<double>(last.staleJoins);
  state.SetLabel(std::string(patternName(pattern)) + "/" +
                 (backend == vc::ClockBackend::kTree ? "tree" : "flat"));
}

void BM_WireCost(benchmark::State& state) {
  // Dense (v3 kEventsTs body) vs sparse (v4 kEventsSparse body) byte cost
  // for the same instrumented stream.  Throughput is secondary on the
  // 1-CPU runner; `wire_bytes` and `wire_bytes_dense` are the artifact.
  const auto pattern = static_cast<Pattern>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const bool sparse = state.range(2) != 0;
  constexpr std::size_t kRounds = 64;
  const auto schedule = makeSchedule(pattern, threads, kRounds, 0xC10Cu);
  trace::CollectingSink sink;
  core::Instrumentor ins(core::RelevancePolicy::allSharedAccesses(), sink,
                         vc::ClockBackend::kAuto);
  ins.reserve(threads, threads);
  for (const trace::Event& e : schedule) ins.onEvent(e);
  const std::vector<trace::Message> stream = sink.take();

  std::size_t bytes = 0;
  std::size_t denseBytes = 0;
  for (auto _ : state) {
    std::vector<std::uint8_t> payload;
    if (sparse) {
      trace::SparseClockCodec::FrameState st;
      for (const trace::Message& m : stream) {
        trace::SparseClockCodec::encode(m, st, payload);
      }
    } else {
      for (const trace::Message& m : stream) {
        trace::BinaryCodec::encode(m, payload);
      }
    }
    bytes = payload.size();
    benchmark::DoNotOptimize(payload.data());
  }
  denseBytes = trace::BinaryCodec::encodeAll(stream).size();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wire_bytes"] = static_cast<double>(bytes);
  state.counters["wire_bytes_dense"] = static_cast<double>(denseBytes);
  state.SetLabel(std::string(patternName(pattern)) + "/" +
                 (sparse ? "v4_sparse" : "v3_dense"));
}

void registerArgs(benchmark::internal::Benchmark* b) {
  for (const Pattern p :
       {Pattern::kHotLock, Pattern::kDisjoint, Pattern::kFanIn}) {
    for (const int threads : {2, 8, 32, 128}) {
      for (const int variant : {0, 1}) {
        b->Args({static_cast<int>(p), threads, variant});
      }
    }
  }
}

BENCHMARK(BM_ClockShootout)->Apply(registerArgs);
BENCHMARK(BM_WireCost)->Apply(registerArgs);

}  // namespace

MPX_BENCH_MAIN("clock_shootout");
