// The one-pass engine's reason to exist, measured: checking K properties
// as plugins in ONE lattice pass vs K independent single-property passes
// over the same execution.  The K-pass baseline pays K lattice expansions;
// the one-pass engine pays one (plus K monitors riding it) and interning
// keeps the two-consecutive-levels window small.
//
// BENCH_multi_property.json carries ns/op for both shapes plus
// ns_per_level, peak retained nodes, and the intern hit rate.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_support.hpp"

#include "analysis/engine.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace {

using namespace mpx;

/// K = 3 properties over the independent-writers workload (maximal level
/// width — the lattice shape that makes repeated passes expensive).
const std::vector<std::string>& kSpecs() {
  static const std::vector<std::string> specs = {
      "!(v0 > v1 && v1 > v2)",
      "v2 > 0 -> v0 >= 0",
      "!(v0 = v1 && v1 = v2 && v0 > 0)",
  };
  return specs;
}

analysis::EngineConfig baseConfig() {
  analysis::EngineConfig c;
  c.lattice.maxViolations = 1u << 12;
  return c;
}

void exportLatticeCounters(benchmark::State& state,
                           const observer::LatticeStats& stats,
                           double nsTotal, double passes) {
  const double levels = static_cast<double>(stats.levels) * passes;
  state.counters["levels"] = static_cast<double>(stats.levels);
  state.counters["ns_per_level"] = levels > 0 ? nsTotal / levels : 0.0;
  state.counters["peak_live_nodes"] =
      static_cast<double>(stats.peakLiveNodes);
  const double lookups =
      static_cast<double>(stats.internHits + stats.internMisses);
  state.counters["intern_hit_rate_percent"] =
      lookups > 0 ? 100.0 * static_cast<double>(stats.internHits) / lookups
                  : 0.0;
  state.counters["total_nodes"] = static_cast<double>(stats.totalNodes);
}

void BM_OnePass_K3(benchmark::State& state) {
  const std::size_t writes = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::independentWriters(3, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  analysis::EngineConfig config = baseConfig();
  config.specs = kSpecs();
  const analysis::Engine engine(prog, config);

  observer::LatticeStats stats;
  double nsTotal = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const analysis::EngineResult r = engine.run(rec);
    const auto t1 = std::chrono::steady_clock::now();
    nsTotal += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    stats = r.latticeStats;
    benchmark::DoNotOptimize(r.reports.size());
  }
  exportLatticeCounters(state, stats,
                        nsTotal / static_cast<double>(state.iterations()),
                        /*passes=*/1.0);
  state.counters["properties"] = static_cast<double>(kSpecs().size());
  state.counters["passes"] = 1.0;
}
BENCHMARK(BM_OnePass_K3)->Arg(3)->Arg(5);

void BM_KPasses_K3(benchmark::State& state) {
  const std::size_t writes = static_cast<std::size_t>(state.range(0));
  const program::Program prog = program::corpus::independentWriters(3, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  // Baselines track the union of all specs' variables, exactly like the
  // equivalence test: same messages, same lattice, K expansions of it.
  const analysis::Engine unionEngine = [&] {
    analysis::EngineConfig c = baseConfig();
    c.specs = kSpecs();
    return analysis::Engine(prog, c);
  }();
  std::vector<analysis::Engine> engines;
  engines.reserve(kSpecs().size());
  for (const std::string& spec : kSpecs()) {
    analysis::EngineConfig c = baseConfig();
    c.specs = {spec};
    c.extraTrackedVars = unionEngine.trackedVariables();
    engines.emplace_back(prog, c);
  }

  observer::LatticeStats stats;
  double nsTotal = 0;
  for (auto _ : state) {
    std::size_t reports = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const analysis::Engine& engine : engines) {
      const analysis::EngineResult r = engine.run(rec);
      reports += r.reports.size();
      stats = r.latticeStats;
    }
    const auto t1 = std::chrono::steady_clock::now();
    nsTotal += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    benchmark::DoNotOptimize(reports);
  }
  exportLatticeCounters(state, stats,
                        nsTotal / static_cast<double>(state.iterations()),
                        /*passes=*/static_cast<double>(engines.size()));
  state.counters["properties"] = static_cast<double>(kSpecs().size());
  state.counters["passes"] = static_cast<double>(engines.size());
}
BENCHMARK(BM_KPasses_K3)->Arg(3)->Arg(5);

}  // namespace

MPX_BENCH_MAIN("multi_property");
