// Claim C4 — "at most two consecutive levels in the computation lattice
// need to be stored at any moment" (paper §4.1).
//
// The k-writer workload makes every relevant event pairwise concurrent, so
// the lattice is the product of k chains: total nodes (w+1)^k, runs
// (kw)!/(w!)^k — exponential — while the sliding-window construction keeps
// only two adjacent levels alive.  The counters below print exactly that
// gap (totalNodes vs peakLiveNodes) next to construction time.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <cstdio>

#include "core/instrumentor.hpp"
#include "observer/lattice.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace {

using namespace mpx;

struct Computation {
  observer::CausalityGraph graph;
  observer::StateSpace space;
};

Computation buildComputation(std::size_t threads, std::size_t writes) {
  const program::Program prog =
      program::corpus::independentWriters(threads, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  Computation c;
  std::unordered_set<VarId> vars;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < threads; ++i) {
    names.push_back("v" + std::to_string(i));
    vars.insert(prog.vars.id(names.back()));
  }
  core::Instrumentor instr(core::RelevancePolicy::writesOf(vars), c.graph);
  for (const auto& e : rec.events) instr.onEvent(e);
  c.graph.finalize();
  c.space = observer::StateSpace::byNames(prog.vars, names);
  return c;
}

void BM_Lattice_IndependentWriters(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t writes = static_cast<std::size_t>(state.range(1));
  const Computation c = buildComputation(threads, writes);

  observer::LatticeStats stats;
  for (auto _ : state) {
    observer::ComputationLattice lattice(c.graph, c.space);
    stats = lattice.build();
    benchmark::DoNotOptimize(stats.totalNodes);
  }
  state.counters["nodes"] = static_cast<double>(stats.totalNodes);
  state.counters["peakLive"] = static_cast<double>(stats.peakLiveNodes);
  state.counters["runs"] = static_cast<double>(stats.pathCount);
  state.counters["levels"] = static_cast<double>(stats.levels);
  state.counters["edges"] = static_cast<double>(stats.totalEdges);
}
BENCHMARK(BM_Lattice_IndependentWriters)
    ->Args({2, 2})
    ->Args({2, 8})
    ->Args({3, 3})
    ->Args({3, 5})
    ->Args({4, 3})
    ->Args({4, 4})
    ->Args({5, 3});

void BM_Lattice_SerializedWriters(benchmark::State& state) {
  // The other extreme: fully ordered relevant events — a path lattice.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t writes = static_cast<std::size_t>(state.range(1));
  const program::Program prog =
      program::corpus::serializedWriters(threads, writes);
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  observer::CausalityGraph graph;
  core::Instrumentor instr(
      core::RelevancePolicy::writesOf({prog.vars.id("total")}), graph);
  for (const auto& e : rec.events) instr.onEvent(e);
  graph.finalize();
  const auto space = observer::StateSpace::byNames(prog.vars, {"total"});

  observer::LatticeStats stats;
  for (auto _ : state) {
    observer::ComputationLattice lattice(graph, space);
    stats = lattice.build();
    benchmark::DoNotOptimize(stats.totalNodes);
  }
  state.counters["nodes"] = static_cast<double>(stats.totalNodes);
  state.counters["peakLive"] = static_cast<double>(stats.peakLiveNodes);
  state.counters["runs"] = static_cast<double>(stats.pathCount);
}
BENCHMARK(BM_Lattice_SerializedWriters)->Args({3, 5})->Args({4, 8});

void printLevelTable() {
  std::printf(
      "=== Claim C4: sliding-window memory vs lattice size "
      "(k writers x w writes) ===\n");
  std::printf("%8s %8s %12s %12s %14s\n", "threads", "writes", "nodes",
              "peakLive", "runs");
  for (const auto& [threads, writes] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 4}, {3, 3}, {3, 5}, {4, 3}, {4, 4}, {5, 3}}) {
    const Computation c = buildComputation(threads, writes);
    observer::ComputationLattice lattice(c.graph, c.space);
    const auto& stats = lattice.build();
    std::printf("%8zu %8zu %12zu %12zu %14llu\n", threads, writes,
                stats.totalNodes, stats.peakLiveNodes,
                static_cast<unsigned long long>(stats.pathCount));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  printLevelTable();
  return mpx::bench::runAndExport("lattice_levels", argc, argv);
}
