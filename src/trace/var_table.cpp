#include "trace/var_table.hpp"

namespace mpx::trace {

VarId VarTable::intern(std::string_view name, Value initial, VarRole role) {
  const auto it = byName_.find(std::string(name));
  if (it != byName_.end()) {
    const Entry& existing = entries_[it->second];
    if (existing.initial != initial || existing.role != role) {
      throw std::invalid_argument(
          "VarTable: re-registering '" + std::string(name) +
          "' with a different initial value or role");
    }
    return it->second;
  }
  const VarId id = static_cast<VarId>(entries_.size());
  entries_.push_back(Entry{std::string(name), initial, role});
  byName_.emplace(std::string(name), id);
  return id;
}

VarId VarTable::id(std::string_view name) const {
  const auto it = byName_.find(std::string(name));
  if (it == byName_.end()) {
    throw std::out_of_range("VarTable: unknown variable '" +
                            std::string(name) + "'");
  }
  return it->second;
}

std::optional<VarId> VarTable::tryId(std::string_view name) const noexcept {
  const auto it = byName_.find(std::string(name));
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

std::vector<VarId> VarTable::idsWithRole(VarRole role) const {
  std::vector<VarId> out;
  for (VarId v = 0; v < entries_.size(); ++v) {
    if (entries_[v].role == role) out.push_back(v);
  }
  return out;
}

std::vector<Value> VarTable::initialValuation() const {
  std::vector<Value> out(entries_.size(), 0);
  for (VarId v = 0; v < entries_.size(); ++v) out[v] = entries_[v].initial;
  return out;
}

}  // namespace mpx::trace
