#include "trace/channel.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace mpx::trace {

namespace {

/// Channel-layer telemetry: delivered-message volume and in-flight buffer
/// depth across all channel instances.
struct ChannelMetrics {
  telemetry::Counter& delivered;
  telemetry::Gauge& queueDepthHwm;

  static ChannelMetrics& get() {
    static ChannelMetrics m{
        telemetry::registry().counter(
            "mpx_channel_messages_delivered_total",
            "Messages a channel handed to its downstream sink"),
        telemetry::registry().gauge(
            "mpx_channel_queue_depth_hwm",
            "High-water mark of messages held in flight by any channel"),
    };
    return m;
  }
};

}  // namespace

void Channel::deliver(const Message& m) {
  if constexpr (telemetry::kEnabled) ChannelMetrics::get().delivered.add(1);
  downstream_->onMessage(m);
}

void Channel::noteQueueDepth(std::size_t depth) {
  if constexpr (telemetry::kEnabled) {
    ChannelMetrics::get().queueDepthHwm.recordMax(
        static_cast<std::int64_t>(depth));
  }
}

void ShuffleChannel::onMessage(const Message& m) {
  buffer_.push_back(m);
  noteQueueDepth(buffer_.size());
}

void ReverseChannel::onMessage(const Message& m) {
  buffer_.push_back(m);
  noteQueueDepth(buffer_.size());
}

void ShuffleChannel::close() {
  if (closed_) return;
  closed_ = true;
  std::shuffle(buffer_.begin(), buffer_.end(), rng_);
  for (const Message& m : buffer_) deliver(m);
  buffer_.clear();
}

void DelayChannel::onMessage(const Message& m) {
  held_.push_back(m);
  noteQueueDepth(held_.size());
  maybeRelease();
}

void DelayChannel::maybeRelease() {
  // Keep at most maxDelay_ messages in flight; when over budget, release a
  // uniformly random held message (so any message can be overtaken by up to
  // maxDelay_ successors, but no more).
  while (held_.size() > maxDelay_) {
    std::uniform_int_distribution<std::size_t> pick(0, held_.size() - 1);
    const std::size_t idx = pick(rng_);
    deliver(held_[idx]);
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void DelayChannel::close() {
  if (closed_) return;
  closed_ = true;
  // Flush the residue in random order as well.
  while (!held_.empty()) {
    std::uniform_int_distribution<std::size_t> pick(0, held_.size() - 1);
    const std::size_t idx = pick(rng_);
    deliver(held_[idx]);
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void ReverseChannel::close() {
  if (closed_) return;
  closed_ = true;
  for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) deliver(*it);
  buffer_.clear();
}

std::unique_ptr<Channel> makeChannel(DeliveryPolicy policy,
                                     MessageSink& downstream,
                                     std::uint64_t seed,
                                     std::size_t maxDelay) {
  switch (policy) {
    case DeliveryPolicy::kFifo:
      return std::make_unique<FifoChannel>(downstream);
    case DeliveryPolicy::kShuffle:
      return std::make_unique<ShuffleChannel>(downstream, seed);
    case DeliveryPolicy::kBoundedDelay:
      return std::make_unique<DelayChannel>(downstream, seed, maxDelay);
    case DeliveryPolicy::kReverse:
      return std::make_unique<ReverseChannel>(downstream);
  }
  return std::make_unique<FifoChannel>(downstream);
}

}  // namespace mpx::trace
