#include "trace/channel.hpp"

#include <algorithm>

namespace mpx::trace {

void ShuffleChannel::close() {
  if (closed_) return;
  closed_ = true;
  std::shuffle(buffer_.begin(), buffer_.end(), rng_);
  for (const Message& m : buffer_) deliver(m);
  buffer_.clear();
}

void DelayChannel::onMessage(const Message& m) {
  held_.push_back(m);
  maybeRelease();
}

void DelayChannel::maybeRelease() {
  // Keep at most maxDelay_ messages in flight; when over budget, release a
  // uniformly random held message (so any message can be overtaken by up to
  // maxDelay_ successors, but no more).
  while (held_.size() > maxDelay_) {
    std::uniform_int_distribution<std::size_t> pick(0, held_.size() - 1);
    const std::size_t idx = pick(rng_);
    deliver(held_[idx]);
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void DelayChannel::close() {
  if (closed_) return;
  closed_ = true;
  // Flush the residue in random order as well.
  while (!held_.empty()) {
    std::uniform_int_distribution<std::size_t> pick(0, held_.size() - 1);
    const std::size_t idx = pick(rng_);
    deliver(held_[idx]);
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void ReverseChannel::close() {
  if (closed_) return;
  closed_ = true;
  for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) deliver(*it);
  buffer_.clear();
}

std::unique_ptr<Channel> makeChannel(DeliveryPolicy policy,
                                     MessageSink& downstream,
                                     std::uint64_t seed,
                                     std::size_t maxDelay) {
  switch (policy) {
    case DeliveryPolicy::kFifo:
      return std::make_unique<FifoChannel>(downstream);
    case DeliveryPolicy::kShuffle:
      return std::make_unique<ShuffleChannel>(downstream, seed);
    case DeliveryPolicy::kBoundedDelay:
      return std::make_unique<DelayChannel>(downstream, seed, maxDelay);
    case DeliveryPolicy::kReverse:
      return std::make_unique<ReverseChannel>(downstream);
  }
  return std::make_unique<FifoChannel>(downstream);
}

}  // namespace mpx::trace
