#include "trace/event.hpp"

#include <ostream>

namespace mpx::trace {

const char* toString(EventKind k) noexcept {
  switch (k) {
    case EventKind::kInternal:
      return "internal";
    case EventKind::kRead:
      return "read";
    case EventKind::kWrite:
      return "write";
    case EventKind::kLockAcquire:
      return "lock";
    case EventKind::kLockRelease:
      return "unlock";
    case EventKind::kNotify:
      return "notify";
    case EventKind::kWaitResume:
      return "wait-resume";
    case EventKind::kThreadStart:
      return "thread-start";
    case EventKind::kThreadExit:
      return "thread-exit";
    case EventKind::kAtomicUpdate:
      return "atomic-update";
    case EventKind::kRegionBegin:
      return "region-begin";
    case EventKind::kRegionEnd:
      return "region-end";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  os << toString(e.kind) << "[T" << e.thread;
  if (e.accessesVariable()) os << ", v" << e.var << "=" << e.value;
  if (isRegionMarker(e.kind)) os << ", r" << e.value;
  os << ", k=" << e.localSeq << "]";
  return os;
}

std::ostream& operator<<(std::ostream& os, const Message& m) {
  // Paper Fig. 6 notation: <x=1, T2, (1,2)>
  os << '<' << toString(m.event.kind);
  if (m.event.accessesVariable()) {
    os << " v" << m.event.var << '=' << m.event.value;
  }
  os << ", T" << m.event.thread << ", " << m.clock << '>';
  return os;
}

}  // namespace mpx::trace
