// The channel between the instrumented program and the external observer.
//
// The paper's JMPaX sends messages over a socket; Theorem 3 guarantees the
// observer reconstructs the relevant causality *regardless of delivery
// order* ("one gets the benefit of properly dealing with potential
// reordering of delivered messages, e.g. due to using multiple channels to
// reduce the monitoring overhead").  To exercise that property we provide
// channels with adversarial delivery policies alongside the plain FIFO one.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "trace/event.hpp"

namespace mpx::trace {

/// Consumer of observer-bound messages.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void onMessage(const Message& m) = 0;
};

/// Sink that simply records everything (tests, replays, race detection).
class CollectingSink final : public MessageSink {
 public:
  void onMessage(const Message& m) override { messages_.push_back(m); }
  [[nodiscard]] const std::vector<Message>& messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] std::vector<Message> take() { return std::move(messages_); }
  void clear() { messages_.clear(); }

 private:
  std::vector<Message> messages_;
};

/// Sink that forwards to a plain function (adapters, lambdas in tests).
class FunctionSink final : public MessageSink {
 public:
  using Fn = std::function<void(const Message&)>;
  explicit FunctionSink(Fn fn) : fn_(std::move(fn)) {}
  void onMessage(const Message& m) override { fn_(m); }

 private:
  Fn fn_;
};

/// A channel buffers messages pushed by the instrumentor and delivers them
/// to a downstream sink according to its policy.  `close()` flushes any
/// messages the policy was still holding back.
class Channel : public MessageSink {
 public:
  explicit Channel(MessageSink& downstream) : downstream_(&downstream) {}

  /// Deliver everything still buffered.  Idempotent.
  virtual void close() = 0;

 protected:
  /// Forwards to the downstream sink (counts delivered messages).
  void deliver(const Message& m);

  /// Telemetry hook: tracks the channel's in-flight buffer depth high-water
  /// mark (queue growth is the first symptom of an observer falling behind).
  static void noteQueueDepth(std::size_t depth);

 private:
  MessageSink* downstream_;
};

/// In-order delivery: each message is forwarded immediately.
class FifoChannel final : public Channel {
 public:
  using Channel::Channel;
  void onMessage(const Message& m) override { deliver(m); }
  void close() override {}
};

/// Buffers the whole stream and delivers it in a seeded random permutation
/// on close().  The most adversarial reordering Theorem 3 must survive.
class ShuffleChannel final : public Channel {
 public:
  ShuffleChannel(MessageSink& downstream, std::uint64_t seed)
      : Channel(downstream), rng_(seed) {}

  void onMessage(const Message& m) override;
  void close() override;

 private:
  std::vector<Message> buffer_;
  std::mt19937_64 rng_;
  bool closed_ = false;
};

/// Bounded-early-delivery: at most `maxDelay` messages are in flight, so a
/// message can overtake at most `maxDelay` of its predecessors (models
/// multiple parallel socket channels; an unlucky message may still be
/// delivered arbitrarily late).
class DelayChannel final : public Channel {
 public:
  DelayChannel(MessageSink& downstream, std::uint64_t seed,
               std::size_t maxDelay)
      : Channel(downstream), rng_(seed), maxDelay_(maxDelay) {}

  void onMessage(const Message& m) override;
  void close() override;

 private:
  void maybeRelease();

  std::deque<Message> held_;
  std::mt19937_64 rng_;
  std::size_t maxDelay_;
  bool closed_ = false;
};

/// Reverses the entire stream on close() — a deterministic worst case used
/// in tests (every cross-thread message arrives "too early").
class ReverseChannel final : public Channel {
 public:
  using Channel::Channel;
  void onMessage(const Message& m) override;
  void close() override;

 private:
  std::vector<Message> buffer_;
  bool closed_ = false;
};

/// Named factory for the delivery policies, used by the analyzer config.
enum class DeliveryPolicy : std::uint8_t {
  kFifo,
  kShuffle,
  kBoundedDelay,
  kReverse,
};

std::unique_ptr<Channel> makeChannel(DeliveryPolicy policy,
                                     MessageSink& downstream,
                                     std::uint64_t seed = 0,
                                     std::size_t maxDelay = 8);

}  // namespace mpx::trace
