// Shared-variable name/id interning, with initial values.
//
// Threads, the observer, the logic layer and the renderers all refer to
// shared variables; ids keep the hot paths allocation-free while names make
// specifications ("landing == 1 -> [approved == 1, radio == 0)") and
// counterexample rendering readable.
//
// Locks and condition variables also live in this table (paper §3.1 treats
// them as shared variables); they are registered with a reserved prefix so
// they never collide with user variables.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vc/types.hpp"

namespace mpx::trace {

/// What a variable id stands for.
enum class VarRole : std::uint8_t {
  kData,       ///< ordinary shared program variable
  kLock,       ///< lock object (written on acquire/release)
  kCondition,  ///< dummy variable for wait/notify causality
};

/// Interning table for shared variables.
class VarTable {
 public:
  /// Registers (or finds) a data variable with the given initial value.
  /// Re-registering an existing name with a different initial value throws.
  VarId intern(std::string_view name, Value initial = 0,
               VarRole role = VarRole::kData);

  /// Id lookup; throws std::out_of_range when the name is unknown.
  [[nodiscard]] VarId id(std::string_view name) const;

  /// Id lookup that reports absence instead of throwing.
  [[nodiscard]] std::optional<VarId> tryId(std::string_view name) const noexcept;

  [[nodiscard]] const std::string& name(VarId v) const { return entry(v).name; }
  [[nodiscard]] Value initial(VarId v) const { return entry(v).initial; }
  [[nodiscard]] VarRole role(VarId v) const { return entry(v).role; }

  /// True for ordinary data variables (the ones whose values form the
  /// global program state the observer reconstructs).
  [[nodiscard]] bool isData(VarId v) const {
    return entry(v).role == VarRole::kData;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// All ids of a given role, in id order.
  [[nodiscard]] std::vector<VarId> idsWithRole(VarRole role) const;

  /// The initial valuation of all data variables, indexed by VarId (entries
  /// for lock/condition ids are present but meaningless).
  [[nodiscard]] std::vector<Value> initialValuation() const;

 private:
  struct Entry {
    std::string name;
    Value initial = 0;
    VarRole role = VarRole::kData;
  };

  [[nodiscard]] const Entry& entry(VarId v) const {
    if (v >= entries_.size()) {
      throw std::out_of_range("VarTable: unknown variable id " +
                              std::to_string(v));
    }
    return entries_[v];
  }

  std::vector<Entry> entries_;
  std::unordered_map<std::string, VarId> byName_;
};

}  // namespace mpx::trace
