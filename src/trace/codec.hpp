// Wire (de)serialization for observer-bound messages.
//
// JMPaX ships messages over a socket between the instrumented JVM and the
// observer process (paper Fig. 4).  We provide the equivalent codec layer:
// a compact length-prefixed binary format for streams, and the paper's
// human-readable "<x=1, T2, (1,2)>" text form for logs and golden files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/var_table.hpp"
#include "vc/vector_clock.hpp"

namespace mpx::trace {

/// Outcome of a non-throwing decode attempt.
enum class DecodeStatus : std::uint8_t {
  kOk,        ///< one whole message decoded
  kNeedMore,  ///< input is a (possibly empty) prefix of a valid message
  kCorrupt,   ///< input can never become a valid message
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  ///< bytes consumed (only meaningful on kOk)
  Message message;           ///< only meaningful on kOk
  const char* error = nullptr;  ///< static reason string on kCorrupt
};

/// Binary codec.  Varint-free fixed-width little-endian layout:
///   u8 kind | u32 thread | u32 var | i64 value | u64 localSeq |
///   u64 globalSeq | u32 clockSize | u64 * clockSize
class BinaryCodec {
 public:
  /// Largest clock the decoder accepts.  A hostile clockSize word would
  /// otherwise make the decoder wait for (or allocate) gigabytes; real
  /// streams carry one component per thread of the instrumented program.
  static constexpr std::uint32_t kMaxClockComponents = 1u << 16;

  /// Appends the encoding of `m` to `out`.  Returns bytes written.
  static std::size_t encode(const Message& m, std::vector<std::uint8_t>& out);

  /// Non-throwing decode of one message from `data[0..len)`, for untrusted
  /// input (the daemon's frame parser): truncated input reports kNeedMore,
  /// garbage reports kCorrupt, and neither kills the process.
  [[nodiscard]] static DecodeResult tryDecode(const std::uint8_t* data,
                                              std::size_t len) noexcept;

  /// Decodes one message starting at `offset`; advances `offset` past it.
  /// Throws std::runtime_error on truncated or corrupt input.  Trusted
  /// in-process callers (trace replay, tests) keep this API.
  static Message decode(const std::vector<std::uint8_t>& in,
                        std::size_t& offset);

  /// Round-trips a whole stream.
  static std::vector<std::uint8_t> encodeAll(
      const std::vector<Message>& messages);
  static std::vector<Message> decodeAll(const std::vector<std::uint8_t>& in);
};

/// Sparse/delta clock codec — the wire-v4 message tail (kEventsSparse
/// frames).  The fixed event header is byte-identical to BinaryCodec; the
/// clock tail is mode-tagged:
///
///   u8 mode = 0: u32 n | n * u64                    dense (legacy tail)
///   u8 mode = 1: u32 n | n * (u32 idx, u64 val)     nonzero components
///   u8 mode = 2: u32 n | n * (u32 idx, u64 val)     components that differ
///        from the same thread's PREVIOUS message in the SAME frame
///        (absolute new values, so one lost pair cannot smear)
///
/// The encoder picks the smallest of the applicable modes, deterministic
/// in the input (ties break toward the lower mode number).  Coding state
/// is FRAME-LOCAL: the first message of each thread in a frame is coded
/// without a delta base, so every frame decodes standalone — the
/// at-least-once resend/reorder/dedup story of the wire layer (wire.hpp)
/// is untouched.  Sparse indices must be strictly increasing and below
/// BinaryCodec::kMaxClockComponents, so hostile tails cannot drive
/// allocation or quadratic work.
class SparseClockCodec {
 public:
  static constexpr std::uint8_t kModeDense = 0;
  static constexpr std::uint8_t kModeSparse = 1;
  static constexpr std::uint8_t kModeDelta = 2;

  /// Per-frame coding state: the last clock coded per thread.  Reset (or a
  /// fresh instance) at every frame boundary, on both sides.
  struct FrameState {
    std::unordered_map<ThreadId, vc::VectorClock> last;
    void reset() { last.clear(); }
  };

  /// Appends the sparse encoding of `m` to `out`; updates `st`.  Returns
  /// bytes written.
  static std::size_t encode(const Message& m, FrameState& st,
                            std::vector<std::uint8_t>& out);

  /// Non-throwing decode of one sparse-coded message; same contract as
  /// BinaryCodec::tryDecode.  A mode-2 message whose thread has no in-frame
  /// base is corrupt.  Updates `st` on success.
  [[nodiscard]] static DecodeResult tryDecode(const std::uint8_t* data,
                                              std::size_t len,
                                              FrameState& st) noexcept;
};

/// Text codec emitting the paper's notation, e.g. "<x=1, T2, (1,2)>" for a
/// relevant write, with variable names resolved through a VarTable.
class TextCodec {
 public:
  explicit TextCodec(const VarTable& vars) : vars_(&vars) {}

  [[nodiscard]] std::string format(const Message& m) const;

  /// Parses one "<...>" message; inverse of format() for write events.
  [[nodiscard]] Message parse(const std::string& line) const;

 private:
  const VarTable* vars_;
};

/// A recorded stream of messages that can be saved/loaded, enabling
/// offline re-analysis of a captured execution.
class TraceLog {
 public:
  TraceLog() = default;
  explicit TraceLog(std::vector<Message> messages)
      : messages_(std::move(messages)) {}

  void append(const Message& m) { messages_.push_back(m); }
  [[nodiscard]] const std::vector<Message>& messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return messages_.size(); }

  void saveBinary(std::ostream& os) const;
  static TraceLog loadBinary(std::istream& is);

 private:
  std::vector<Message> messages_;
};

}  // namespace mpx::trace
