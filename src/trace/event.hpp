// Events of a multithreaded execution, and the messages <e, i, V> that
// Algorithm A emits to the observer.
//
// Paper §2.1: a multithreaded execution is a sequence of events e1 e2 ... er,
// each belonging to one of n threads and having type internal, read or write
// of a shared variable.  §3.1 extends this with synchronization events that
// the instrumentor maps onto shared-variable writes: lock acquire/release,
// and wait/notify (a write of a dummy shared variable on both sides of the
// notification).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "vc/types.hpp"
#include "vc/vector_clock.hpp"

namespace mpx::trace {

/// The kind of a runtime event.
enum class EventKind : std::uint8_t {
  kInternal,     ///< thread-local computation; no shared access
  kRead,         ///< read of shared variable `var`, observing `value`
  kWrite,        ///< write of shared variable `var`, storing `value`
  kLockAcquire,  ///< acquisition of lock `var` (paper §3.1: a write)
  kLockRelease,  ///< release of lock `var` (paper §3.1: a write)
  kNotify,       ///< notify on condition `var` (write of a dummy variable)
  kWaitResume,   ///< waiting thread resumed (write of the same dummy var)
  kThreadStart,  ///< first event of a dynamically spawned thread; writes the
                 ///< thread's dummy variable (spawn happens-before edge)
  kThreadExit,   ///< last event of a thread; writes the thread's dummy
                 ///< variable (join happens-before edge)
  kAtomicUpdate, ///< successful atomic read-modify-write (e.g. CAS): a
                 ///< write for causality purposes, but two atomic updates
                 ///< of the same variable do not constitute a data race
  kRegionBegin,  ///< annotated atomic-region entry (MPX_ATOMIC_BEGIN);
                 ///< accesses no variable, `value` carries the region id
  kRegionEnd,    ///< annotated atomic-region exit (MPX_ATOMIC_END);
                 ///< accesses no variable, `value` carries the region id
};

/// True for kinds the instrumentor treats as a *write* of a shared variable
/// when updating MVCs (paper §3.1: lock operations and wait/notify generate
/// write events so synchronized regions cannot be permuted).
[[nodiscard]] constexpr bool isWriteLike(EventKind k) noexcept {
  switch (k) {
    case EventKind::kWrite:
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
    case EventKind::kNotify:
    case EventKind::kWaitResume:
    case EventKind::kThreadStart:
    case EventKind::kThreadExit:
    case EventKind::kAtomicUpdate:
      return true;
    default:
      return false;
  }
}

/// True for kinds that access a shared variable at all.
[[nodiscard]] constexpr bool isSharedAccess(EventKind k) noexcept {
  return k == EventKind::kRead || isWriteLike(k);
}

/// True for the atomic-region boundary markers.  Region markers access no
/// variable (steps 2-3 of Algorithm A skip them) but are always RELEVANT:
/// they tick the thread's own clock component and are emitted, so the
/// observer can segment each thread's relevant events into transactions
/// with causally consistent clocks.
[[nodiscard]] constexpr bool isRegionMarker(EventKind k) noexcept {
  return k == EventKind::kRegionBegin || k == EventKind::kRegionEnd;
}

[[nodiscard]] const char* toString(EventKind k) noexcept;

/// One event e^k_i of the observed execution.
struct Event {
  EventKind kind = EventKind::kInternal;
  ThreadId thread = kNoThread;  ///< the i in e^k_i
  VarId var = kNoVar;           ///< accessed variable (shared-access kinds)
  Value value = 0;              ///< value written (write-like) or read
  LocalSeq localSeq = 0;        ///< the k in e^k_i (1-based)
  GlobalSeq globalSeq = kNoSeq; ///< position in the observed total order M

  [[nodiscard]] bool accessesVariable() const noexcept {
    return isSharedAccess(kind);
  }

  friend bool operator==(const Event&, const Event&) = default;
};

std::ostream& operator<<(std::ostream& os, const Event& e);

/// The message <e, i, V_i> sent to the observer for each relevant event
/// (step 4 of Algorithm A).  The thread i is carried inside `event`.
struct Message {
  Event event;
  vc::VectorClock clock;

  [[nodiscard]] ThreadId thread() const noexcept { return event.thread; }

  /// Theorem 3: for two emitted messages m=<e,i,V> and m'=<e',i',V'>,
  /// e relevant-causally-precedes e'  iff  V[i] <= V'[i] and m != m'.
  /// (For i == i', V[i] <= V'[i] distinguishes order on the same thread.)
  [[nodiscard]] bool causallyPrecedes(const Message& other) const noexcept {
    if (&other == this) return false;
    if (event.thread == other.event.thread) {
      return clock[event.thread] < other.clock[other.event.thread];
    }
    return clock[event.thread] <= other.clock[event.thread];
  }

  /// Concurrency on emitted messages: neither precedes the other.
  [[nodiscard]] bool concurrentWith(const Message& other) const noexcept {
    return !causallyPrecedes(other) && !other.causallyPrecedes(*this);
  }

  friend bool operator==(const Message&, const Message&) = default;
};

std::ostream& operator<<(std::ostream& os, const Message& m);

}  // namespace mpx::trace
