#include "trace/codec.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace mpx::trace {
namespace {

/// Wire-format telemetry: encoded/decoded volume over the observer channel.
struct CodecMetrics {
  telemetry::Counter& messagesEncoded;
  telemetry::Counter& bytesEncoded;
  telemetry::Counter& messagesDecoded;
  telemetry::Counter& bytesDecoded;

  static CodecMetrics& get() {
    static CodecMetrics m{
        telemetry::registry().counter("mpx_channel_messages_encoded_total",
                                      "Messages serialized to the wire"),
        telemetry::registry().counter("mpx_channel_bytes_encoded_total",
                                      "Bytes serialized to the wire"),
        telemetry::registry().counter("mpx_channel_messages_decoded_total",
                                      "Messages parsed from the wire"),
        telemetry::registry().counter("mpx_channel_bytes_decoded_total",
                                      "Bytes parsed from the wire"),
    };
    return m;
  }
};

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

}  // namespace

std::size_t BinaryCodec::encode(const Message& m,
                                std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.event.kind));
  put<std::uint32_t>(out, m.event.thread);
  put<std::uint32_t>(out, m.event.var);
  put<std::int64_t>(out, m.event.value);
  put<std::uint64_t>(out, m.event.localSeq);
  put<std::uint64_t>(out, m.event.globalSeq);
  const auto& comps = m.clock.components();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(comps.size()));
  for (const std::uint64_t c : comps) put<std::uint64_t>(out, c);
  if constexpr (telemetry::kEnabled) {
    CodecMetrics& tm = CodecMetrics::get();
    tm.messagesEncoded.add(1);
    tm.bytesEncoded.add(out.size() - start);
  }
  return out.size() - start;
}

DecodeResult BinaryCodec::tryDecode(const std::uint8_t* data,
                                    std::size_t len) noexcept {
  DecodeResult r;
  std::size_t off = 0;
  const auto fits = [&](std::size_t n) { return len - off >= n; };
  const auto read = [&](auto& v) {
    std::memcpy(&v, data + off, sizeof v);
    off += sizeof v;
  };

  if (!fits(1)) return r;  // kNeedMore
  std::uint8_t kind;
  read(kind);
  if (kind > static_cast<std::uint8_t>(EventKind::kAtomicUpdate)) {
    r.status = DecodeStatus::kCorrupt;
    r.error = "corrupt event kind";
    return r;
  }
  r.message.event.kind = static_cast<EventKind>(kind);

  // Fixed-width body: thread, var, value, localSeq, globalSeq, clockSize.
  constexpr std::size_t kBody = 4 + 4 + 8 + 8 + 8 + 4;
  if (!fits(kBody)) return r;
  read(r.message.event.thread);
  read(r.message.event.var);
  read(r.message.event.value);
  read(r.message.event.localSeq);
  read(r.message.event.globalSeq);
  std::uint32_t n;
  read(n);
  if (n > kMaxClockComponents) {
    r.status = DecodeStatus::kCorrupt;
    r.error = "oversized vector clock";
    return r;
  }
  if (!fits(std::size_t{8} * n)) return r;
  for (std::uint32_t j = 0; j < n; ++j) {
    std::uint64_t c;
    read(c);
    r.message.clock.set(static_cast<ThreadId>(j), c);
  }
  r.status = DecodeStatus::kOk;
  r.consumed = off;
  if constexpr (telemetry::kEnabled) {
    CodecMetrics& tm = CodecMetrics::get();
    tm.messagesDecoded.add(1);
    tm.bytesDecoded.add(off);
  }
  return r;
}

Message BinaryCodec::decode(const std::vector<std::uint8_t>& in,
                            std::size_t& offset) {
  if (offset > in.size()) {
    throw std::runtime_error("BinaryCodec: offset past end of input");
  }
  const DecodeResult r = tryDecode(in.data() + offset, in.size() - offset);
  switch (r.status) {
    case DecodeStatus::kOk:
      offset += r.consumed;
      return r.message;
    case DecodeStatus::kNeedMore:
      throw std::runtime_error("BinaryCodec: truncated message");
    case DecodeStatus::kCorrupt:
    default:
      throw std::runtime_error(std::string("BinaryCodec: ") +
                               (r.error != nullptr ? r.error : "corrupt input"));
  }
}

std::vector<std::uint8_t> BinaryCodec::encodeAll(
    const std::vector<Message>& messages) {
  std::vector<std::uint8_t> out;
  for (const Message& m : messages) encode(m, out);
  return out;
}

std::vector<Message> BinaryCodec::decodeAll(
    const std::vector<std::uint8_t>& in) {
  std::vector<Message> out;
  std::size_t offset = 0;
  while (offset < in.size()) out.push_back(decode(in, offset));
  return out;
}

std::string TextCodec::format(const Message& m) const {
  std::ostringstream os;
  os << '<';
  switch (m.event.kind) {
    case EventKind::kWrite:
      os << vars_->name(m.event.var) << '=' << m.event.value;
      break;
    case EventKind::kRead:
      os << "read " << vars_->name(m.event.var) << '=' << m.event.value;
      break;
    default:
      os << toString(m.event.kind);
      if (m.event.accessesVariable()) os << ' ' << vars_->name(m.event.var);
      break;
  }
  os << ", T" << (m.event.thread + 1) << ", " << m.clock << '>';
  return os.str();
}

Message TextCodec::parse(const std::string& line) const {
  // Accepts the format() output for write events: "<name=value, Tn, (a,b)>"
  Message m;
  m.event.kind = EventKind::kWrite;
  std::size_t pos = line.find('<');
  const std::size_t eq = line.find('=', pos);
  const std::size_t comma1 = line.find(',', eq);
  if (pos == std::string::npos || eq == std::string::npos ||
      comma1 == std::string::npos) {
    throw std::runtime_error("TextCodec: malformed message: " + line);
  }
  const std::string name = line.substr(pos + 1, eq - pos - 1);
  m.event.var = vars_->id(name);
  m.event.value = std::stoll(line.substr(eq + 1, comma1 - eq - 1));

  const std::size_t tpos = line.find('T', comma1);
  const std::size_t comma2 = line.find(',', tpos);
  if (tpos == std::string::npos || comma2 == std::string::npos) {
    throw std::runtime_error("TextCodec: malformed thread field: " + line);
  }
  m.event.thread =
      static_cast<ThreadId>(std::stoul(line.substr(tpos + 1, comma2 - tpos - 1)) - 1);

  const std::size_t open = line.find('(', comma2);
  const std::size_t close = line.find(')', open);
  if (open == std::string::npos || close == std::string::npos) {
    throw std::runtime_error("TextCodec: malformed clock field: " + line);
  }
  std::string clock = line.substr(open + 1, close - open - 1);
  std::istringstream cs(clock);
  std::string comp;
  ThreadId j = 0;
  while (std::getline(cs, comp, ',')) {
    m.clock.set(j++, std::stoull(comp));
  }
  m.event.localSeq = m.clock[m.event.thread];
  return m;
}

void TraceLog::saveBinary(std::ostream& os) const {
  const std::vector<std::uint8_t> bytes = BinaryCodec::encodeAll(messages_);
  const std::uint64_t n = bytes.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

TraceLog TraceLog::loadBinary(std::istream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) throw std::runtime_error("TraceLog: truncated header");
  std::vector<std::uint8_t> bytes(n);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("TraceLog: truncated body");
  return TraceLog(BinaryCodec::decodeAll(bytes));
}

}  // namespace mpx::trace
