#include "trace/codec.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace mpx::trace {
namespace {

/// Wire-format telemetry: encoded/decoded volume over the observer channel.
struct CodecMetrics {
  telemetry::Counter& messagesEncoded;
  telemetry::Counter& bytesEncoded;
  telemetry::Counter& messagesDecoded;
  telemetry::Counter& bytesDecoded;

  static CodecMetrics& get() {
    static CodecMetrics m{
        telemetry::registry().counter("mpx_channel_messages_encoded_total",
                                      "Messages serialized to the wire"),
        telemetry::registry().counter("mpx_channel_bytes_encoded_total",
                                      "Bytes serialized to the wire"),
        telemetry::registry().counter("mpx_channel_messages_decoded_total",
                                      "Messages parsed from the wire"),
        telemetry::registry().counter("mpx_channel_bytes_decoded_total",
                                      "Bytes parsed from the wire"),
    };
    return m;
  }
};

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

/// Appends the fixed event header shared by both codecs:
///   u8 kind | u32 thread | u32 var | i64 value | u64 localSeq | u64 globalSeq
void putEventHeader(std::vector<std::uint8_t>& out, const Event& e) {
  put<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
  put<std::uint32_t>(out, e.thread);
  put<std::uint32_t>(out, e.var);
  put<std::int64_t>(out, e.value);
  put<std::uint64_t>(out, e.localSeq);
  put<std::uint64_t>(out, e.globalSeq);
}

/// Parses the fixed event header into `r.message.event`, advancing `off`.
/// Returns true on success; on failure `r` already carries the verdict
/// (kNeedMore for a truncated header, kCorrupt for a bad event kind).
bool readEventHeader(const std::uint8_t* data, std::size_t len,
                     DecodeResult& r, std::size_t& off) noexcept {
  const auto fits = [&](std::size_t n) { return len - off >= n; };
  const auto read = [&](auto& v) {
    std::memcpy(&v, data + off, sizeof v);
    off += sizeof v;
  };
  if (!fits(1)) return false;  // kNeedMore
  std::uint8_t kind;
  read(kind);
  if (kind > static_cast<std::uint8_t>(EventKind::kRegionEnd)) {
    r.status = DecodeStatus::kCorrupt;
    r.error = "corrupt event kind";
    return false;
  }
  r.message.event.kind = static_cast<EventKind>(kind);
  constexpr std::size_t kBody = 4 + 4 + 8 + 8 + 8;
  if (!fits(kBody)) return false;  // kNeedMore
  read(r.message.event.thread);
  read(r.message.event.var);
  read(r.message.event.value);
  read(r.message.event.localSeq);
  read(r.message.event.globalSeq);
  return true;
}

}  // namespace

std::size_t BinaryCodec::encode(const Message& m,
                                std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  putEventHeader(out, m.event);
  const auto& comps = m.clock.components();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(comps.size()));
  for (const std::uint64_t c : comps) put<std::uint64_t>(out, c);
  if constexpr (telemetry::kEnabled) {
    CodecMetrics& tm = CodecMetrics::get();
    tm.messagesEncoded.add(1);
    tm.bytesEncoded.add(out.size() - start);
  }
  return out.size() - start;
}

DecodeResult BinaryCodec::tryDecode(const std::uint8_t* data,
                                    std::size_t len) noexcept {
  DecodeResult r;
  std::size_t off = 0;
  if (!readEventHeader(data, len, r, off)) return r;
  const auto fits = [&](std::size_t n) { return len - off >= n; };
  const auto read = [&](auto& v) {
    std::memcpy(&v, data + off, sizeof v);
    off += sizeof v;
  };

  std::uint32_t n;
  if (!fits(4)) return r;  // kNeedMore
  read(n);
  if (n > kMaxClockComponents) {
    r.status = DecodeStatus::kCorrupt;
    r.error = "oversized vector clock";
    return r;
  }
  if (!fits(std::size_t{8} * n)) return r;
  for (std::uint32_t j = 0; j < n; ++j) {
    std::uint64_t c;
    read(c);
    r.message.clock.set(static_cast<ThreadId>(j), c);
  }
  r.status = DecodeStatus::kOk;
  r.consumed = off;
  if constexpr (telemetry::kEnabled) {
    CodecMetrics& tm = CodecMetrics::get();
    tm.messagesDecoded.add(1);
    tm.bytesDecoded.add(off);
  }
  return r;
}

Message BinaryCodec::decode(const std::vector<std::uint8_t>& in,
                            std::size_t& offset) {
  if (offset > in.size()) {
    throw std::runtime_error("BinaryCodec: offset past end of input");
  }
  const DecodeResult r = tryDecode(in.data() + offset, in.size() - offset);
  switch (r.status) {
    case DecodeStatus::kOk:
      offset += r.consumed;
      return r.message;
    case DecodeStatus::kNeedMore:
      throw std::runtime_error("BinaryCodec: truncated message");
    case DecodeStatus::kCorrupt:
    default:
      throw std::runtime_error(std::string("BinaryCodec: ") +
                               (r.error != nullptr ? r.error : "corrupt input"));
  }
}

std::vector<std::uint8_t> BinaryCodec::encodeAll(
    const std::vector<Message>& messages) {
  std::vector<std::uint8_t> out;
  for (const Message& m : messages) encode(m, out);
  return out;
}

std::vector<Message> BinaryCodec::decodeAll(
    const std::vector<std::uint8_t>& in) {
  std::vector<Message> out;
  std::size_t offset = 0;
  while (offset < in.size()) out.push_back(decode(in, offset));
  return out;
}

std::size_t SparseClockCodec::encode(const Message& m, FrameState& st,
                                     std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  putEventHeader(out, m.event);

  const auto comps = m.clock.components();
  const std::size_t size = comps.size();
  std::size_t nonzero = 0;
  for (const std::uint64_t c : comps) nonzero += c != 0 ? 1 : 0;

  // Candidate tail costs (the u8 mode byte is common to all three).
  const std::size_t denseCost = 4 + 8 * size;
  const std::size_t sparseCost = 4 + 12 * nonzero;
  std::size_t deltaCost = ~std::size_t{0};
  std::size_t changed = 0;
  const auto base = st.last.find(m.event.thread);
  if (base != st.last.end()) {
    const std::size_t width = std::max(size, base->second.size());
    for (std::size_t j = 0; j < width; ++j) {
      const auto t = static_cast<ThreadId>(j);
      changed += m.clock.get(t) != base->second.get(t) ? 1 : 0;
    }
    deltaCost = 4 + 12 * changed;
  }

  // Deterministic minimal-mode choice; ties break toward the lower mode
  // number so independent encoders of the same stream agree byte-for-byte.
  std::uint8_t mode = kModeDense;
  std::size_t best = denseCost;
  if (sparseCost < best) {
    mode = kModeSparse;
    best = sparseCost;
  }
  if (deltaCost < best) mode = kModeDelta;

  put<std::uint8_t>(out, mode);
  switch (mode) {
    case kModeDense:
      put<std::uint32_t>(out, static_cast<std::uint32_t>(size));
      for (const std::uint64_t c : comps) put<std::uint64_t>(out, c);
      break;
    case kModeSparse:
      put<std::uint32_t>(out, static_cast<std::uint32_t>(nonzero));
      for (std::size_t j = 0; j < size; ++j) {
        if (comps[j] == 0) continue;
        put<std::uint32_t>(out, static_cast<std::uint32_t>(j));
        put<std::uint64_t>(out, comps[j]);
      }
      break;
    case kModeDelta:
    default: {
      put<std::uint32_t>(out, static_cast<std::uint32_t>(changed));
      const std::size_t width = std::max(size, base->second.size());
      for (std::size_t j = 0; j < width; ++j) {
        const auto t = static_cast<ThreadId>(j);
        const std::uint64_t v = m.clock.get(t);
        if (v == base->second.get(t)) continue;
        put<std::uint32_t>(out, static_cast<std::uint32_t>(j));
        put<std::uint64_t>(out, v);
      }
      break;
    }
  }
  st.last[m.event.thread] = m.clock;  // copy-assign normalizes

  if constexpr (telemetry::kEnabled) {
    CodecMetrics& tm = CodecMetrics::get();
    tm.messagesEncoded.add(1);
    tm.bytesEncoded.add(out.size() - start);
  }
  return out.size() - start;
}

DecodeResult SparseClockCodec::tryDecode(const std::uint8_t* data,
                                         std::size_t len,
                                         FrameState& st) noexcept {
  DecodeResult r;
  std::size_t off = 0;
  if (!readEventHeader(data, len, r, off)) return r;
  const auto fits = [&](std::size_t n) { return len - off >= n; };
  const auto read = [&](auto& v) {
    std::memcpy(&v, data + off, sizeof v);
    off += sizeof v;
  };

  if (!fits(1)) return r;  // kNeedMore
  std::uint8_t mode;
  read(mode);
  if (mode > kModeDelta) {
    r.status = DecodeStatus::kCorrupt;
    r.error = "unknown clock coding mode";
    return r;
  }
  std::uint32_t n;
  if (!fits(4)) return r;  // kNeedMore
  read(n);
  if (n > BinaryCodec::kMaxClockComponents) {
    r.status = DecodeStatus::kCorrupt;
    r.error = "oversized vector clock";
    return r;
  }

  if (mode == kModeDense) {
    if (!fits(std::size_t{8} * n)) return r;  // kNeedMore
    for (std::uint32_t j = 0; j < n; ++j) {
      std::uint64_t c;
      read(c);
      r.message.clock.set(static_cast<ThreadId>(j), c);
    }
  } else {
    if (mode == kModeDelta) {
      const auto base = st.last.find(r.message.event.thread);
      if (base == st.last.end()) {
        // Delta state is frame-local by design; a delta with no in-frame
        // base can only come from a corrupted or mis-framed stream.
        r.status = DecodeStatus::kCorrupt;
        r.error = "delta clock without in-frame base";
        return r;
      }
      r.message.clock = base->second;
    }
    if (!fits(std::size_t{12} * n)) return r;  // kNeedMore
    bool first = true;
    std::uint32_t prev = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
      std::uint32_t idx;
      std::uint64_t val;
      read(idx);
      read(val);
      if (idx >= BinaryCodec::kMaxClockComponents) {
        r.status = DecodeStatus::kCorrupt;
        r.error = "clock component index out of range";
        return r;
      }
      if (!first && idx <= prev) {
        r.status = DecodeStatus::kCorrupt;
        r.error = "unordered clock component indices";
        return r;
      }
      r.message.clock.set(static_cast<ThreadId>(idx), val);
      first = false;
      prev = idx;
    }
  }
  r.message.clock.normalize();
  st.last[r.message.event.thread] = r.message.clock;

  r.status = DecodeStatus::kOk;
  r.consumed = off;
  if constexpr (telemetry::kEnabled) {
    CodecMetrics& tm = CodecMetrics::get();
    tm.messagesDecoded.add(1);
    tm.bytesDecoded.add(off);
  }
  return r;
}

std::string TextCodec::format(const Message& m) const {
  std::ostringstream os;
  os << '<';
  switch (m.event.kind) {
    case EventKind::kWrite:
      os << vars_->name(m.event.var) << '=' << m.event.value;
      break;
    case EventKind::kRead:
      os << "read " << vars_->name(m.event.var) << '=' << m.event.value;
      break;
    default:
      os << toString(m.event.kind);
      if (m.event.accessesVariable()) os << ' ' << vars_->name(m.event.var);
      break;
  }
  os << ", T" << (m.event.thread + 1) << ", " << m.clock << '>';
  return os.str();
}

Message TextCodec::parse(const std::string& line) const {
  // Accepts the format() output for write events: "<name=value, Tn, (a,b)>"
  Message m;
  m.event.kind = EventKind::kWrite;
  std::size_t pos = line.find('<');
  const std::size_t eq = line.find('=', pos);
  const std::size_t comma1 = line.find(',', eq);
  if (pos == std::string::npos || eq == std::string::npos ||
      comma1 == std::string::npos) {
    throw std::runtime_error("TextCodec: malformed message: " + line);
  }
  const std::string name = line.substr(pos + 1, eq - pos - 1);
  m.event.var = vars_->id(name);
  m.event.value = std::stoll(line.substr(eq + 1, comma1 - eq - 1));

  const std::size_t tpos = line.find('T', comma1);
  const std::size_t comma2 = line.find(',', tpos);
  if (tpos == std::string::npos || comma2 == std::string::npos) {
    throw std::runtime_error("TextCodec: malformed thread field: " + line);
  }
  m.event.thread =
      static_cast<ThreadId>(std::stoul(line.substr(tpos + 1, comma2 - tpos - 1)) - 1);

  const std::size_t open = line.find('(', comma2);
  const std::size_t close = line.find(')', open);
  if (open == std::string::npos || close == std::string::npos) {
    throw std::runtime_error("TextCodec: malformed clock field: " + line);
  }
  std::string clock = line.substr(open + 1, close - open - 1);
  std::istringstream cs(clock);
  std::string comp;
  ThreadId j = 0;
  while (std::getline(cs, comp, ',')) {
    m.clock.set(j++, std::stoull(comp));
  }
  m.event.localSeq = m.clock[m.event.thread];
  return m;
}

void TraceLog::saveBinary(std::ostream& os) const {
  const std::vector<std::uint8_t> bytes = BinaryCodec::encodeAll(messages_);
  const std::uint64_t n = bytes.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

TraceLog TraceLog::loadBinary(std::istream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) throw std::runtime_error("TraceLog: truncated header");
  std::vector<std::uint8_t> bytes(n);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("TraceLog: truncated body");
  return TraceLog(BinaryCodec::decodeAll(bytes));
}

}  // namespace mpx::trace
