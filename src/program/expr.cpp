#include "program/expr.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mpx::program {

struct Expr::Node {
  ExprOp op;
  Value constant = 0;
  RegId reg = 0;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

Expr Expr::constant(Value v) {
  auto n = std::make_shared<Node>();
  n->op = ExprOp::kConst;
  n->constant = v;
  return Expr(std::move(n));
}

Expr Expr::reg(RegId r) {
  auto n = std::make_shared<Node>();
  n->op = ExprOp::kReg;
  n->reg = r;
  return Expr(std::move(n));
}

Expr Expr::unary(ExprOp op, Expr operand) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(operand.node_);
  return Expr(std::move(n));
}

Expr Expr::binary(ExprOp op, Expr lhs, Expr rhs) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(lhs.node_);
  n->rhs = std::move(rhs.node_);
  return Expr(std::move(n));
}

namespace {

Value evalNode(const Expr::Node* n, std::span<const Value> regs);

Value evalChild(const std::shared_ptr<const Expr::Node>& n,
                std::span<const Value> regs) {
  return evalNode(n.get(), regs);
}

Value evalNode(const Expr::Node* n, std::span<const Value> regs) {
  switch (n->op) {
    case ExprOp::kConst:
      return n->constant;
    case ExprOp::kReg:
      if (n->reg >= regs.size()) {
        throw std::out_of_range("Expr: register index out of range");
      }
      return regs[n->reg];
    case ExprOp::kAdd:
      return evalChild(n->lhs, regs) + evalChild(n->rhs, regs);
    case ExprOp::kSub:
      return evalChild(n->lhs, regs) - evalChild(n->rhs, regs);
    case ExprOp::kMul:
      return evalChild(n->lhs, regs) * evalChild(n->rhs, regs);
    case ExprOp::kDiv: {
      const Value d = evalChild(n->rhs, regs);
      return d == 0 ? 0 : evalChild(n->lhs, regs) / d;
    }
    case ExprOp::kMod: {
      const Value d = evalChild(n->rhs, regs);
      return d == 0 ? 0 : evalChild(n->lhs, regs) % d;
    }
    case ExprOp::kEq:
      return evalChild(n->lhs, regs) == evalChild(n->rhs, regs) ? 1 : 0;
    case ExprOp::kNe:
      return evalChild(n->lhs, regs) != evalChild(n->rhs, regs) ? 1 : 0;
    case ExprOp::kLt:
      return evalChild(n->lhs, regs) < evalChild(n->rhs, regs) ? 1 : 0;
    case ExprOp::kLe:
      return evalChild(n->lhs, regs) <= evalChild(n->rhs, regs) ? 1 : 0;
    case ExprOp::kGt:
      return evalChild(n->lhs, regs) > evalChild(n->rhs, regs) ? 1 : 0;
    case ExprOp::kGe:
      return evalChild(n->lhs, regs) >= evalChild(n->rhs, regs) ? 1 : 0;
    case ExprOp::kAnd:
      return (evalChild(n->lhs, regs) != 0 && evalChild(n->rhs, regs) != 0)
                 ? 1
                 : 0;
    case ExprOp::kOr:
      return (evalChild(n->lhs, regs) != 0 || evalChild(n->rhs, regs) != 0)
                 ? 1
                 : 0;
    case ExprOp::kNot:
      return evalChild(n->lhs, regs) == 0 ? 1 : 0;
    case ExprOp::kNeg:
      return -evalChild(n->lhs, regs);
  }
  return 0;
}

std::int64_t maxRegNode(const Expr::Node* n) {
  if (n == nullptr) return -1;
  switch (n->op) {
    case ExprOp::kConst:
      return -1;
    case ExprOp::kReg:
      return static_cast<std::int64_t>(n->reg);
    default:
      return std::max(maxRegNode(n->lhs.get()), maxRegNode(n->rhs.get()));
  }
}

const char* opSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    default: return "?";
  }
}

void printNode(const Expr::Node* n, std::ostringstream& os) {
  switch (n->op) {
    case ExprOp::kConst:
      os << n->constant;
      return;
    case ExprOp::kReg:
      os << 'r' << n->reg;
      return;
    case ExprOp::kNot:
      os << '!';
      printNode(n->lhs.get(), os);
      return;
    case ExprOp::kNeg:
      os << '-';
      printNode(n->lhs.get(), os);
      return;
    default:
      os << '(';
      printNode(n->lhs.get(), os);
      os << ' ' << opSymbol(n->op) << ' ';
      printNode(n->rhs.get(), os);
      os << ')';
      return;
  }
}

}  // namespace

Value Expr::eval(std::span<const Value> regs) const {
  return evalNode(node_.get(), regs);
}

std::int64_t Expr::maxRegister() const { return maxRegNode(node_.get()); }

std::string Expr::toString() const {
  std::ostringstream os;
  printNode(node_.get(), os);
  return os.str();
}

Expr operator+(Expr a, Expr b) {
  return Expr::binary(ExprOp::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return Expr::binary(ExprOp::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return Expr::binary(ExprOp::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return Expr::binary(ExprOp::kDiv, std::move(a), std::move(b));
}
Expr operator%(Expr a, Expr b) {
  return Expr::binary(ExprOp::kMod, std::move(a), std::move(b));
}
Expr operator==(Expr a, Expr b) {
  return Expr::binary(ExprOp::kEq, std::move(a), std::move(b));
}
Expr operator!=(Expr a, Expr b) {
  return Expr::binary(ExprOp::kNe, std::move(a), std::move(b));
}
Expr operator<(Expr a, Expr b) {
  return Expr::binary(ExprOp::kLt, std::move(a), std::move(b));
}
Expr operator<=(Expr a, Expr b) {
  return Expr::binary(ExprOp::kLe, std::move(a), std::move(b));
}
Expr operator>(Expr a, Expr b) {
  return Expr::binary(ExprOp::kGt, std::move(a), std::move(b));
}
Expr operator>=(Expr a, Expr b) {
  return Expr::binary(ExprOp::kGe, std::move(a), std::move(b));
}
Expr operator&&(Expr a, Expr b) {
  return Expr::binary(ExprOp::kAnd, std::move(a), std::move(b));
}
Expr operator||(Expr a, Expr b) {
  return Expr::binary(ExprOp::kOr, std::move(a), std::move(b));
}
Expr operator!(Expr a) { return Expr::unary(ExprOp::kNot, std::move(a)); }
Expr operator-(Expr a) { return Expr::unary(ExprOp::kNeg, std::move(a)); }

}  // namespace mpx::program
