#include "program/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpx::program {

ThreadId RoundRobinScheduler::pick(const std::vector<ThreadId>& runnable,
                                   const Interpreter&) {
  if (current_ != kNoThread && used_ < quantum_ &&
      std::find(runnable.begin(), runnable.end(), current_) != runnable.end()) {
    ++used_;
    return current_;
  }
  // Advance to the next runnable thread after current_ (wrapping).
  ThreadId next = runnable.front();
  if (current_ != kNoThread) {
    const auto it =
        std::find_if(runnable.begin(), runnable.end(),
                     [this](ThreadId t) { return t > current_; });
    if (it != runnable.end()) next = *it;
  }
  current_ = next;
  used_ = 1;
  return next;
}

ThreadId FixedScheduler::pick(const std::vector<ThreadId>& runnable,
                              const Interpreter&) {
  if (next_ < script_.size()) {
    const ThreadId t = script_[next_++];
    if (std::find(runnable.begin(), runnable.end(), t) == runnable.end()) {
      throw std::logic_error("FixedScheduler: scripted thread " +
                             std::to_string(t) + " is not runnable at step " +
                             std::to_string(next_ - 1));
    }
    return t;
  }
  return runnable.front();
}

ExecutionRecord Executor::run(std::size_t maxSteps) {
  ExecutionRecord rec;
  while (maxSteps == 0 || rec.steps < maxSteps) {
    const std::vector<ThreadId> runnable = interp_.runnableThreads();
    if (runnable.empty()) break;
    const ThreadId t = sched_->pick(runnable, interp_);
    const StepResult step = interp_.step(t);
    ++rec.steps;
    for (const trace::Event& e : step.events) {
      rec.events.push_back(e);
      rec.locksHeld.push_back(interp_.locksHeld(e.thread));
      if (listener_) listener_(e, interp_);
    }
  }
  rec.deadlocked = interp_.isDeadlocked();
  if (rec.deadlocked) rec.deadlockedThreads = interp_.unfinishedThreads();
  rec.finalShared = interp_.sharedValuation();
  return rec;
}

ExecutionRecord runProgram(const Program& prog, Scheduler& sched,
                           std::size_t maxSteps) {
  Executor ex(prog, sched);
  return ex.run(maxSteps);
}

ExecutionRecord runProgramRandom(const Program& prog, std::uint64_t seed,
                                 std::size_t maxSteps) {
  RandomScheduler sched(seed);
  return runProgram(prog, sched, maxSteps);
}

}  // namespace mpx::program
