#include "program/interpreter.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mpx::program {

const char* toString(ThreadStatus s) noexcept {
  switch (s) {
    case ThreadStatus::kNotStarted: return "not-started";
    case ThreadStatus::kRunnable: return "runnable";
    case ThreadStatus::kBlockedOnLock: return "blocked-on-lock";
    case ThreadStatus::kWaiting: return "waiting";
    case ThreadStatus::kBlockedOnJoin: return "blocked-on-join";
    case ThreadStatus::kFinished: return "finished";
  }
  return "?";
}

Interpreter::Interpreter(const Program& prog)
    : prog_(&prog),
      shared_(prog.vars.initialValuation()),
      lockOwner_(prog.lockNames.size(), kNoThread),
      nextLocal_(prog.threads.size(), 1) {
  threads_.resize(prog.threads.size());
  for (ThreadId t = 0; t < prog.threads.size(); ++t) {
    threads_[t].regs.assign(prog.numRegisters, 0);
    threads_[t].status = prog.threads[t].startsRunning
                             ? ThreadStatus::kRunnable
                             : ThreadStatus::kNotStarted;
  }
}

std::vector<ThreadId> Interpreter::runnableThreads() const {
  std::vector<ThreadId> out;
  for (ThreadId t = 0; t < threads_.size(); ++t) {
    const ThreadExec& te = threads_[t];
    switch (te.status) {
      case ThreadStatus::kRunnable: {
        // A thread about to execute kLock (or kJoin) cannot progress while
        // the lock is held (or the target unfinished); excluding it here
        // means every reported thread is guaranteed to take a real step,
        // and an all-blocked state is recognized as a deadlock immediately.
        const Instr& in = prog_->threads[t].code[te.pc];
        if (in.op == OpCode::kLock && !te.mustEmitStart &&
            lockOwner_[in.lock] != kNoThread) {
          break;
        }
        if (in.op == OpCode::kJoin && !te.mustEmitStart &&
            threads_[in.spawnee].status != ThreadStatus::kFinished) {
          break;
        }
        out.push_back(t);
        break;
      }
      case ThreadStatus::kBlockedOnLock:
        // Can progress only when the contested lock is free.
        if (lockOwner_[te.blockedOnLock] == kNoThread) out.push_back(t);
        break;
      case ThreadStatus::kBlockedOnJoin: {
        const ThreadId target = prog_->threads[t].code[te.pc].spawnee;
        if (threads_[target].status == ThreadStatus::kFinished) {
          out.push_back(t);
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

bool Interpreter::isQuiescent() const { return runnableThreads().empty(); }

bool Interpreter::allFinished() const {
  return std::all_of(threads_.begin(), threads_.end(), [](const ThreadExec& te) {
    return te.status == ThreadStatus::kFinished;
  });
}

std::vector<ThreadId> Interpreter::unfinishedThreads() const {
  std::vector<ThreadId> out;
  for (ThreadId t = 0; t < threads_.size(); ++t) {
    if (threads_[t].status != ThreadStatus::kFinished) out.push_back(t);
  }
  return out;
}

trace::Event Interpreter::makeEvent(trace::EventKind kind, ThreadId t,
                                    VarId var, Value value) {
  trace::Event e;
  e.kind = kind;
  e.thread = t;
  e.var = var;
  e.value = value;
  e.localSeq = nextLocal_[t]++;
  e.globalSeq = nextSeq_++;
  return e;
}

bool Interpreter::tryAcquire(ThreadId t, LockId l) {
  if (lockOwner_[l] != kNoThread) return false;
  lockOwner_[l] = t;
  threads_[t].held.push_back(l);
  return true;
}

void Interpreter::wakeLockWaiters(LockId l) {
  // Blocked threads simply become eligible again via runnableThreads();
  // nothing to update eagerly — eligibility is recomputed from lockOwner_.
  (void)l;
}

StepResult Interpreter::step(ThreadId t) {
  StepResult result;
  ThreadExec& te = threads_[t];

  if (te.status == ThreadStatus::kFinished ||
      te.status == ThreadStatus::kNotStarted) {
    throw std::logic_error("Interpreter: stepping a non-live thread");
  }

  // Spawn prologue: the spawned thread's very first step emits its
  // kThreadStart write (spawn happens-before edge), consuming the step.
  if (te.mustEmitStart) {
    te.mustEmitStart = false;
    const VarId dummy = prog_->threadVars[t];
    result.events.push_back(
        makeEvent(trace::EventKind::kThreadStart, t, dummy, ++shared_[dummy]));
    return result;
  }

  const std::vector<Instr>& code = prog_->threads[t].code;
  assert(te.pc < code.size());
  const Instr& in = code[te.pc];

  switch (in.op) {
    case OpCode::kRead: {
      const Value v = shared_[in.var];
      te.regs[in.dst] = v;
      result.events.push_back(makeEvent(trace::EventKind::kRead, t, in.var, v));
      ++te.pc;
      break;
    }
    case OpCode::kWrite: {
      const Value v = in.expr.eval(te.regs);
      shared_[in.var] = v;
      result.events.push_back(
          makeEvent(trace::EventKind::kWrite, t, in.var, v));
      ++te.pc;
      break;
    }
    case OpCode::kCompute: {
      te.regs[in.dst] = in.expr.eval(te.regs);
      result.events.push_back(
          makeEvent(trace::EventKind::kInternal, t, kNoVar, 0));
      ++te.pc;
      break;
    }
    case OpCode::kJump:
      te.pc = in.target;
      break;
    case OpCode::kBranchIfZero:
      te.pc = in.expr.eval(te.regs) == 0 ? in.target : te.pc + 1;
      break;
    case OpCode::kLock: {
      if (tryAcquire(t, in.lock)) {
        te.status = ThreadStatus::kRunnable;
        const VarId lv = prog_->lockVars[in.lock];
        result.events.push_back(
            makeEvent(trace::EventKind::kLockAcquire, t, lv, ++shared_[lv]));
        ++te.pc;
      } else {
        te.status = ThreadStatus::kBlockedOnLock;
        te.blockedOnLock = in.lock;
        result.progressed = false;
      }
      break;
    }
    case OpCode::kUnlock: {
      if (lockOwner_[in.lock] != t) {
        throw std::logic_error("Interpreter: unlock of a lock not held (" +
                               prog_->lockNames[in.lock] + " by thread " +
                               std::to_string(t) + ")");
      }
      lockOwner_[in.lock] = kNoThread;
      te.held.erase(std::find(te.held.begin(), te.held.end(), in.lock));
      const VarId lv = prog_->lockVars[in.lock];
      result.events.push_back(
          makeEvent(trace::EventKind::kLockRelease, t, lv, ++shared_[lv]));
      wakeLockWaiters(in.lock);
      ++te.pc;
      break;
    }
    case OpCode::kWait: {
      if (te.resumingFromWait) {
        // Re-contending for the lock after a notify.
        if (tryAcquire(t, in.lock)) {
          te.resumingFromWait = false;
          te.status = ThreadStatus::kRunnable;
          const VarId lv = prog_->lockVars[in.lock];
          result.events.push_back(
              makeEvent(trace::EventKind::kLockAcquire, t, lv, ++shared_[lv]));
          const VarId cv = prog_->condVars[in.cond];
          result.events.push_back(makeEvent(trace::EventKind::kWaitResume, t,
                                            cv, ++shared_[cv]));
          ++te.pc;
        } else {
          te.status = ThreadStatus::kBlockedOnLock;
          te.blockedOnLock = in.lock;
          result.progressed = false;
        }
        break;
      }
      // First execution of the wait: release the lock and park.
      if (lockOwner_[in.lock] != t) {
        throw std::logic_error(
            "Interpreter: wait without holding the lock (" +
            prog_->lockNames[in.lock] + ")");
      }
      lockOwner_[in.lock] = kNoThread;
      te.held.erase(std::find(te.held.begin(), te.held.end(), in.lock));
      const VarId lv = prog_->lockVars[in.lock];
      result.events.push_back(
          makeEvent(trace::EventKind::kLockRelease, t, lv, ++shared_[lv]));
      te.status = ThreadStatus::kWaiting;
      te.waitingOnCond = in.cond;
      wakeLockWaiters(in.lock);
      result.progressed = false;  // pc stays at the kWait
      break;
    }
    case OpCode::kNotifyAll: {
      const VarId cv = prog_->condVars[in.cond];
      result.events.push_back(
          makeEvent(trace::EventKind::kNotify, t, cv, ++shared_[cv]));
      for (ThreadId u = 0; u < threads_.size(); ++u) {
        ThreadExec& w = threads_[u];
        if (w.status == ThreadStatus::kWaiting && w.waitingOnCond == in.cond) {
          w.status = ThreadStatus::kBlockedOnLock;
          w.blockedOnLock = prog_->threads[u].code[w.pc].lock;
          w.resumingFromWait = true;
        }
      }
      ++te.pc;
      break;
    }
    case OpCode::kSpawn: {
      ThreadExec& child = threads_[in.spawnee];
      if (child.status != ThreadStatus::kNotStarted) {
        throw std::logic_error("Interpreter: spawning an already-started thread");
      }
      const VarId dummy = prog_->threadVars[in.spawnee];
      result.events.push_back(
          makeEvent(trace::EventKind::kNotify, t, dummy, ++shared_[dummy]));
      child.status = ThreadStatus::kRunnable;
      child.mustEmitStart = true;
      ++te.pc;
      break;
    }
    case OpCode::kJoin: {
      const ThreadExec& target = threads_[in.spawnee];
      if (target.status == ThreadStatus::kFinished) {
        const VarId dummy = prog_->threadVars[in.spawnee];
        result.events.push_back(makeEvent(trace::EventKind::kWaitResume, t,
                                          dummy, ++shared_[dummy]));
        te.status = ThreadStatus::kRunnable;
        ++te.pc;
      } else {
        te.status = ThreadStatus::kBlockedOnJoin;
        result.progressed = false;
      }
      break;
    }
    case OpCode::kCas: {
      const Value old = shared_[in.var];
      te.regs[in.dst] = old;
      if (old == in.expr.eval(te.regs)) {
        const Value desired = in.expr2.eval(te.regs);
        shared_[in.var] = desired;
        result.events.push_back(
            makeEvent(trace::EventKind::kAtomicUpdate, t, in.var, desired));
      } else {
        result.events.push_back(
            makeEvent(trace::EventKind::kRead, t, in.var, old));
      }
      ++te.pc;
      break;
    }
    case OpCode::kRegionBegin: {
      result.events.push_back(makeEvent(trace::EventKind::kRegionBegin, t,
                                        kNoVar,
                                        static_cast<Value>(in.target)));
      ++te.pc;
      break;
    }
    case OpCode::kRegionEnd: {
      result.events.push_back(makeEvent(trace::EventKind::kRegionEnd, t,
                                        kNoVar,
                                        static_cast<Value>(in.target)));
      ++te.pc;
      break;
    }
    case OpCode::kHalt: {
      const VarId dummy = prog_->threadVars[t];
      result.events.push_back(
          makeEvent(trace::EventKind::kThreadExit, t, dummy, ++shared_[dummy]));
      te.status = ThreadStatus::kFinished;
      if (!te.held.empty()) {
        throw std::logic_error("Interpreter: thread finished holding a lock (" +
                               prog_->lockNames[te.held.front()] + ")");
      }
      break;
    }
  }
  return result;
}

std::size_t Interpreter::stateHash() const {
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 1099511628211ull;
  };
  for (const Value v : shared_) mix(static_cast<std::uint64_t>(v));
  for (const ThreadExec& te : threads_) {
    mix(te.pc);
    mix(static_cast<std::uint64_t>(te.status));
    mix(te.resumingFromWait ? 1 : 0);
    mix(te.mustEmitStart ? 1 : 0);
    for (const Value r : te.regs) mix(static_cast<std::uint64_t>(r));
    for (const LockId l : te.held) mix(l);
  }
  for (const ThreadId o : lockOwner_) mix(o);
  return h;
}

}  // namespace mpx::program
