// Side-effect-free expressions over thread-local registers.
//
// The VM keeps shared-variable accesses *explicit* (Read/Write instructions)
// so that every access generates exactly one event for Algorithm A;
// expressions only ever touch thread-local registers, mirroring the paper's
// model where thread-local computation is an "internal" event.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "vc/types.hpp"

namespace mpx::program {

/// Register index within a thread's local register file.
using RegId = std::uint32_t;

enum class ExprOp : std::uint8_t {
  kConst,
  kReg,
  kAdd,
  kSub,
  kMul,
  kDiv,  // division by zero evaluates to 0 (keeps the VM total)
  kMod,  // likewise
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,  // logical, short-circuit semantics not observable (no effects)
  kOr,
  kNot,
  kNeg,
};

/// Immutable expression tree.  Cheap to copy (shared structure).
class Expr {
 public:
  /// Default-constructed expression evaluates to 0.
  Expr() : Expr(constant(0)) {}

  [[nodiscard]] static Expr constant(Value v);
  [[nodiscard]] static Expr reg(RegId r);
  [[nodiscard]] static Expr unary(ExprOp op, Expr operand);
  [[nodiscard]] static Expr binary(ExprOp op, Expr lhs, Expr rhs);

  [[nodiscard]] Value eval(std::span<const Value> regs) const;

  /// Highest register index referenced, or -1 if none (as signed).
  [[nodiscard]] std::int64_t maxRegister() const;

  [[nodiscard]] std::string toString() const;

  /// Implementation node; public so the evaluator in the .cpp can walk it,
  /// but opaque to users (defined only in expr.cpp).
  struct Node;

 private:
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

// Terse construction helpers: lit(3) + reg(0), etc.
[[nodiscard]] inline Expr lit(Value v) { return Expr::constant(v); }
[[nodiscard]] inline Expr reg(RegId r) { return Expr::reg(r); }

[[nodiscard]] Expr operator+(Expr a, Expr b);
[[nodiscard]] Expr operator-(Expr a, Expr b);
[[nodiscard]] Expr operator*(Expr a, Expr b);
[[nodiscard]] Expr operator/(Expr a, Expr b);
[[nodiscard]] Expr operator%(Expr a, Expr b);
[[nodiscard]] Expr operator==(Expr a, Expr b);
[[nodiscard]] Expr operator!=(Expr a, Expr b);
[[nodiscard]] Expr operator<(Expr a, Expr b);
[[nodiscard]] Expr operator<=(Expr a, Expr b);
[[nodiscard]] Expr operator>(Expr a, Expr b);
[[nodiscard]] Expr operator>=(Expr a, Expr b);
[[nodiscard]] Expr operator&&(Expr a, Expr b);
[[nodiscard]] Expr operator||(Expr a, Expr b);
[[nodiscard]] Expr operator!(Expr a);
[[nodiscard]] Expr operator-(Expr a);

}  // namespace mpx::program
