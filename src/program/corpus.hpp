// Canonical programs: the paper's two running examples plus the workload
// generators used by tests and benchmarks.
//
// The examples, tests and benches all need the same programs; defining them
// once keeps the Fig. 5 / Fig. 6 reproductions honest (everything checks
// the same artifact).
#pragma once

#include <cstdint>
#include <vector>

#include "program/program.hpp"

namespace mpx::program::corpus {

/// Paper Fig. 1 — the flight controller.
///
///   int landing = 0, approved = 0, radio = 1;
///   thread1: askLandingApproval();
///            if (approved == 1) { landing = 1; }
///   askLandingApproval: if (radio == 0) approved = 0 else approved = 1;
///   thread2: radio goes off (checkRadio eventually writes radio = 0).
///
/// `padding` inserts that many internal events before thread2 turns the
/// radio off (more scheduling room; used by the detection-rate experiment).
[[nodiscard]] Program landingController(std::size_t padding = 0);

/// The safety property of Example 1, in this library's spec syntax:
/// "If the plane has started landing, then it is the case that landing has
/// been approved and since then the radio signal has never been down."
[[nodiscard]] const char* landingProperty();

/// Scheduler script reproducing the paper's *successful* observed
/// execution: approval, landing, THEN radio off (needs padding == 0).
[[nodiscard]] std::vector<ThreadId> landingObservedSchedule();

/// Paper Fig. 6 — the x/y/z program.
///
///   initially x = -1, y = 0, z = 0
///   thread1: x++; <dots>; y = x + 1;
///   thread2: z = x + 1; <dots>; x++;
///
/// `dots` = that many internal (irrelevant) events, as in the paper.
[[nodiscard]] Program xyzProgram(std::size_t dots = 1);

/// The safety property of Example 2: "if (x > 0) then (y = 0) has been
/// true in the past, and since then (y > z) was always false".
[[nodiscard]] const char* xyzProperty();

/// Scheduler script reproducing the paper's observed execution, whose
/// state sequence is (-1,0,0) (0,0,0) (0,0,1) (1,0,1) (1,1,1)
/// (needs dots == 1).
[[nodiscard]] std::vector<ThreadId> xyzObservedSchedule();

/// Two threads each do `depositsPerThread` unsynchronized read-add-write
/// deposits to a shared balance — the classic lost-update data race.
[[nodiscard]] Program bankAccountRacy(std::size_t depositsPerThread = 1,
                                      Value amount1 = 100, Value amount2 = 50);

/// Same, but each deposit holds a lock: race-free, and the lock writes
/// give the happens-before edges of §3.1.
[[nodiscard]] Program bankAccountLocked(std::size_t depositsPerThread = 1,
                                        Value amount1 = 100,
                                        Value amount2 = 50);

/// `n` dining philosophers; `orderedForks` picks forks in global id order
/// (deadlock-free) instead of left-then-right (deadlock-prone cycle).
[[nodiscard]] Program diningPhilosophers(std::size_t n,
                                         bool orderedForks = false);

/// `threads` threads, each writing its own variable `writesEach` times —
/// fully concurrent relevant events; the lattice level width is maximal
/// (multinomial), stressing Claim C4.
[[nodiscard]] Program independentWriters(std::size_t threads,
                                         std::size_t writesEach);

/// `threads` threads each incrementing one fully shared variable under a
/// lock `writesEach` times — fully ordered relevant events; the lattice
/// degenerates to a path (the other extreme).
[[nodiscard]] Program serializedWriters(std::size_t threads,
                                        std::size_t writesEach);

/// Producer/consumer over a one-slot buffer using wait/notify.
[[nodiscard]] Program producerConsumer(std::size_t items = 3);

/// A single writer and `readerCount` readers coordinating through a mutex
/// and condition variable: readers bump `readers` while `writing == 0`;
/// the writer sets `writing` only when `readers == 0`.  The invariant
/// readersWriterProperty() should hold in every reachable state.
[[nodiscard]] Program readersWriter(std::size_t readerCount = 2);

/// "A writer never overlaps a reader": !(writing = 1 && readers >= 1).
[[nodiscard]] const char* readersWriterProperty();

/// A main thread that spawns two workers dynamically, then joins them
/// (exercises kSpawn/kJoin and the dynamic-thread support of §2).
[[nodiscard]] Program spawnJoin();

/// Lock-free counter: each of `threads` threads performs `incrementsEach`
/// increments via a CAS retry loop.  Unlike bankAccountRacy, no schedule
/// loses an update — and the race detector treats the atomic updates as
/// non-racing.
[[nodiscard]] Program casCounter(std::size_t threads = 2,
                                 std::size_t incrementsEach = 2);

/// Peterson's mutual-exclusion algorithm for two threads (flags + turn,
/// busy-waiting).  Correct under the paper's sequential-consistency model.
/// Critical-section occupancy is exposed through `c0`/`c1` so the property
/// mutualExclusionProperty() can monitor it.
[[nodiscard]] Program peterson(std::size_t rounds = 1);

/// The broken contrast: both threads enter their critical sections with no
/// synchronization whatsoever.
[[nodiscard]] Program mutualExclusionNaive();

/// "Never both threads in their critical section": !(c0 = 1 && c1 = 1).
[[nodiscard]] const char* mutualExclusionProperty();

struct RandomProgramOptions {
  std::size_t threads = 3;
  std::size_t vars = 3;
  std::size_t opsPerThread = 6;
  std::size_t locks = 0;        ///< when > 0, some accesses are lock-wrapped
  unsigned readPercent = 40;    ///< remaining ops split write/internal
  unsigned writePercent = 40;
  /// When > 0, each op outside a region opens an annotated atomic region
  /// (kRegionBegin/kRegionEnd) with this percent chance; an open region
  /// closes after 1–3 further ops.  A region still open at thread end is
  /// left open deliberately (the analysis checks it to trace end).  The
  /// extra RNG draws happen only when > 0, so existing seeds reproduce
  /// byte-identical programs at the default.
  unsigned regionPercent = 0;
};

/// Seeded random program over `vars` shared variables — the workload for
/// the Theorem-3 and requirement-property sweeps (Claim C2).
[[nodiscard]] Program randomProgram(std::uint64_t seed,
                                    const RandomProgramOptions& opts = {});

/// Atomicity demo: the checker wraps `rounds` paired `acct`/`audit`
/// updates in annotated atomic regions; the bumper updates both without
/// one.  Any schedule that lands a bumper pair between a region's two
/// writes is a conflict-serializability witness — AtomicityAnalysis
/// reports the region with its cycle (see atomicityDemoViolatingSchedule
/// for one such interleaving).
[[nodiscard]] Program atomicityDemo(std::size_t rounds = 1);
/// A FixedScheduler script interleaving the bumper's first pair inside
/// the checker's first region (requires rounds == 1).
[[nodiscard]] std::vector<ThreadId> atomicityDemoViolatingSchedule();

/// Lock-disciplined pipeline for the MHP-prefilter bench: `threads`
/// workers each perform `opsEach` updates of the shared `data` under one
/// global lock, then (under the same lock) bump `auxVars` epilogue
/// variables.  Every access of every variable holds lock L, so all
/// variable pairs are clock-certified never-concurrent — a spec over
/// `data` alone lets the engine prune the whole aux suffix from the
/// expanded union space.
[[nodiscard]] Program lockDisciplined(std::size_t threads = 3,
                                      std::size_t opsEach = 2,
                                      std::size_t auxVars = 4);

}  // namespace mpx::program::corpus
