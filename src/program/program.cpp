#include "program/program.hpp"

#include <sstream>
#include <stdexcept>

namespace mpx::program {

const char* toString(OpCode op) noexcept {
  switch (op) {
    case OpCode::kRead: return "read";
    case OpCode::kWrite: return "write";
    case OpCode::kCompute: return "compute";
    case OpCode::kJump: return "jump";
    case OpCode::kBranchIfZero: return "brz";
    case OpCode::kLock: return "lock";
    case OpCode::kUnlock: return "unlock";
    case OpCode::kWait: return "wait";
    case OpCode::kNotifyAll: return "notify-all";
    case OpCode::kSpawn: return "spawn";
    case OpCode::kJoin: return "join";
    case OpCode::kHalt: return "halt";
    case OpCode::kCas: return "cas";
    case OpCode::kRegionBegin: return "region-begin";
    case OpCode::kRegionEnd: return "region-end";
  }
  return "?";
}

std::string Program::disassemble() const {
  std::ostringstream os;
  for (ThreadId t = 0; t < threads.size(); ++t) {
    const ThreadCode& tc = threads[t];
    os << "thread " << t << " (" << tc.name << ")"
       << (tc.startsRunning ? "" : " [spawned]") << ":\n";
    for (std::size_t pc = 0; pc < tc.code.size(); ++pc) {
      const Instr& in = tc.code[pc];
      os << "  " << pc << ": " << toString(in.op);
      switch (in.op) {
        case OpCode::kRead:
          os << " r" << in.dst << " <- " << vars.name(in.var);
          break;
        case OpCode::kWrite:
          os << ' ' << vars.name(in.var) << " <- " << in.expr.toString();
          break;
        case OpCode::kCompute:
          os << " r" << in.dst << " <- " << in.expr.toString();
          break;
        case OpCode::kJump:
          os << " -> " << in.target;
          break;
        case OpCode::kBranchIfZero:
          os << ' ' << in.expr.toString() << " ==0 -> " << in.target;
          break;
        case OpCode::kLock:
        case OpCode::kUnlock:
          os << ' ' << lockNames.at(in.lock);
          break;
        case OpCode::kWait:
          os << ' ' << condNames.at(in.cond) << " releasing "
             << lockNames.at(in.lock);
          break;
        case OpCode::kNotifyAll:
          os << ' ' << condNames.at(in.cond);
          break;
        case OpCode::kSpawn:
        case OpCode::kJoin:
          os << " thread " << in.spawnee;
          break;
        case OpCode::kCas:
          os << " r" << in.dst << " <- " << vars.name(in.var) << " =="
             << in.expr.toString() << " ? " << in.expr2.toString();
          break;
        case OpCode::kRegionBegin:
        case OpCode::kRegionEnd:
          os << " r" << in.target;
          break;
        case OpCode::kHalt:
          break;
      }
      if (!in.note.empty()) os << "   ; " << in.note;
      os << '\n';
    }
  }
  return os.str();
}

// ---------------------------------------------------------------- builder

VarId ProgramBuilder::var(std::string_view name, Value initial) {
  return prog_.vars.intern(name, initial, trace::VarRole::kData);
}

LockId ProgramBuilder::lock(std::string_view name) {
  const LockId id = static_cast<LockId>(prog_.lockNames.size());
  prog_.lockNames.emplace_back(name);
  prog_.lockVars.push_back(prog_.vars.intern("__lock_" + std::string(name), 0,
                                             trace::VarRole::kLock));
  return id;
}

CondId ProgramBuilder::cond(std::string_view name) {
  const CondId id = static_cast<CondId>(prog_.condNames.size());
  prog_.condNames.emplace_back(name);
  prog_.condVars.push_back(prog_.vars.intern("__cond_" + std::string(name), 0,
                                             trace::VarRole::kCondition));
  return id;
}

ThreadBuilder ProgramBuilder::thread(std::string_view name,
                                     bool startsRunning) {
  const ThreadId id = static_cast<ThreadId>(prog_.threads.size());
  ThreadCode tc;
  tc.name = name.empty() ? "t" + std::to_string(id + 1) : std::string(name);
  tc.startsRunning = startsRunning;
  prog_.threads.push_back(std::move(tc));
  prog_.threadVars.push_back(
      prog_.vars.intern("__thread_" + prog_.threads.back().name, 0,
                        trace::VarRole::kCondition));
  return ThreadBuilder(*this, id);
}

ProgramBuilder& ProgramBuilder::registers(RegId n) {
  prog_.numRegisters = n;
  return *this;
}

VarId ProgramBuilder::lockVar(LockId lock) const {
  return prog_.lockVars.at(lock);
}
VarId ProgramBuilder::condVar(CondId cond) const {
  return prog_.condVars.at(cond);
}
VarId ProgramBuilder::threadVar(ThreadId t) const {
  return prog_.threadVars.at(t);
}

Program ProgramBuilder::build() {
  if (built_) throw std::logic_error("ProgramBuilder: build() called twice");
  built_ = true;

  // Ensure every thread's code ends in a halt so pc never runs off the end.
  for (ThreadCode& tc : prog_.threads) {
    if (tc.code.empty() || tc.code.back().op != OpCode::kHalt) {
      Instr h;
      h.op = OpCode::kHalt;
      tc.code.push_back(std::move(h));
    }
  }

  // Validate.
  for (ThreadId t = 0; t < prog_.threads.size(); ++t) {
    const auto& code = prog_.threads[t].code;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
      const Instr& in = code[pc];
      const auto checkReg = [&](std::int64_t r) {
        if (r >= static_cast<std::int64_t>(prog_.numRegisters)) {
          throw std::out_of_range("Program: register out of range in thread " +
                                  std::to_string(t) + " pc " +
                                  std::to_string(pc));
        }
      };
      switch (in.op) {
        case OpCode::kRead:
        case OpCode::kCompute:
          checkReg(static_cast<std::int64_t>(in.dst));
          checkReg(in.expr.maxRegister());
          break;
        case OpCode::kCas:
          checkReg(static_cast<std::int64_t>(in.dst));
          checkReg(in.expr.maxRegister());
          checkReg(in.expr2.maxRegister());
          break;
        case OpCode::kWrite:
        case OpCode::kBranchIfZero:
          checkReg(in.expr.maxRegister());
          break;
        default:
          break;
      }
      if (in.op == OpCode::kJump || in.op == OpCode::kBranchIfZero) {
        if (in.target > code.size()) {
          throw std::out_of_range("Program: jump target out of range");
        }
      }
      if (in.op == OpCode::kLock || in.op == OpCode::kUnlock ||
          in.op == OpCode::kWait) {
        if (in.lock >= prog_.lockNames.size()) {
          throw std::out_of_range("Program: unknown lock id");
        }
      }
      if (in.op == OpCode::kWait || in.op == OpCode::kNotifyAll) {
        if (in.cond >= prog_.condNames.size()) {
          throw std::out_of_range("Program: unknown condition id");
        }
      }
      if (in.op == OpCode::kSpawn || in.op == OpCode::kJoin) {
        if (in.spawnee >= prog_.threads.size()) {
          throw std::out_of_range("Program: unknown spawnee thread");
        }
        if (in.op == OpCode::kSpawn && prog_.threads[in.spawnee].startsRunning) {
          throw std::logic_error(
              "Program: spawning a thread that startsRunning");
        }
      }
      if ((in.op == OpCode::kRead || in.op == OpCode::kWrite ||
           in.op == OpCode::kCas) &&
          !prog_.vars.isData(in.var)) {
        throw std::logic_error(
            "Program: read/write of a non-data variable (use lock/cond ops)");
      }
    }
  }
  return std::move(prog_);
}

// ----------------------------------------------------------- thread builder

std::vector<Instr>& ThreadBuilder::code() {
  return owner_->prog_.threads[id_].code;
}

std::size_t ThreadBuilder::emit(Instr instr) {
  if (!pendingNote_.empty()) {
    instr.note = std::move(pendingNote_);
    pendingNote_.clear();
  }
  code().push_back(std::move(instr));
  return code().size() - 1;
}

ThreadBuilder& ThreadBuilder::note(std::string text) {
  pendingNote_ = std::move(text);
  return *this;
}

ThreadBuilder& ThreadBuilder::read(VarId var, RegId dst) {
  Instr in;
  in.op = OpCode::kRead;
  in.var = var;
  in.dst = dst;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::compareExchange(VarId var, RegId dst,
                                              Expr expected, Expr desired) {
  Instr in;
  in.op = OpCode::kCas;
  in.var = var;
  in.dst = dst;
  in.expr = std::move(expected);
  in.expr2 = std::move(desired);
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::write(VarId var, Expr value) {
  Instr in;
  in.op = OpCode::kWrite;
  in.var = var;
  in.expr = std::move(value);
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::compute(RegId dst, Expr value) {
  Instr in;
  in.op = OpCode::kCompute;
  in.dst = dst;
  in.expr = std::move(value);
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::internalOp() {
  Instr in;
  in.op = OpCode::kCompute;
  in.dst = 0;
  in.expr = reg(0);  // r0 <- r0: a pure internal no-op event
  in.note = "internal";
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::lockAcquire(LockId lock) {
  Instr in;
  in.op = OpCode::kLock;
  in.lock = lock;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::lockRelease(LockId lock) {
  Instr in;
  in.op = OpCode::kUnlock;
  in.lock = lock;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::synchronized(
    LockId lock, const std::function<void(ThreadBuilder&)>& body) {
  lockAcquire(lock);
  body(*this);
  lockRelease(lock);
  return *this;
}

ThreadBuilder& ThreadBuilder::regionBegin(std::size_t regionId) {
  Instr in;
  in.op = OpCode::kRegionBegin;
  in.target = regionId;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::regionEnd(std::size_t regionId) {
  Instr in;
  in.op = OpCode::kRegionEnd;
  in.target = regionId;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::atomicRegion(
    std::size_t regionId, const std::function<void(ThreadBuilder&)>& body) {
  regionBegin(regionId);
  body(*this);
  regionEnd(regionId);
  return *this;
}

ThreadBuilder& ThreadBuilder::wait(CondId cond, LockId lock) {
  Instr in;
  in.op = OpCode::kWait;
  in.cond = cond;
  in.lock = lock;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::notifyAll(CondId cond) {
  Instr in;
  in.op = OpCode::kNotifyAll;
  in.cond = cond;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::spawn(ThreadId thread) {
  Instr in;
  in.op = OpCode::kSpawn;
  in.spawnee = thread;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::join(ThreadId thread) {
  Instr in;
  in.op = OpCode::kJoin;
  in.spawnee = thread;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::ifThen(
    Expr cond, const std::function<void(ThreadBuilder&)>& thenBody) {
  Instr br;
  br.op = OpCode::kBranchIfZero;
  br.expr = std::move(cond);
  const std::size_t brAt = emit(std::move(br));
  thenBody(*this);
  code()[brAt].target = code().size();
  return *this;
}

ThreadBuilder& ThreadBuilder::ifThenElse(
    Expr cond, const std::function<void(ThreadBuilder&)>& thenBody,
    const std::function<void(ThreadBuilder&)>& elseBody) {
  Instr br;
  br.op = OpCode::kBranchIfZero;
  br.expr = std::move(cond);
  const std::size_t brAt = emit(std::move(br));
  thenBody(*this);
  Instr jmp;
  jmp.op = OpCode::kJump;
  const std::size_t jmpAt = emit(std::move(jmp));
  code()[brAt].target = code().size();
  elseBody(*this);
  code()[jmpAt].target = code().size();
  return *this;
}

ThreadBuilder& ThreadBuilder::whileLoop(
    Expr cond, const std::function<void(ThreadBuilder&)>& body) {
  const std::size_t top = code().size();
  Instr br;
  br.op = OpCode::kBranchIfZero;
  br.expr = std::move(cond);
  const std::size_t brAt = emit(std::move(br));
  body(*this);
  Instr jmp;
  jmp.op = OpCode::kJump;
  jmp.target = top;
  emit(std::move(jmp));
  code()[brAt].target = code().size();
  return *this;
}

ThreadBuilder& ThreadBuilder::repeat(
    std::size_t times, const std::function<void(ThreadBuilder&)>& body) {
  for (std::size_t i = 0; i < times; ++i) body(*this);
  return *this;
}

ThreadBuilder& ThreadBuilder::halt() {
  Instr in;
  in.op = OpCode::kHalt;
  emit(std::move(in));
  return *this;
}

}  // namespace mpx::program
