#include "program/corpus.hpp"

#include <random>
#include <string>

namespace mpx::program::corpus {

Program landingController(std::size_t padding) {
  ProgramBuilder b;
  const VarId landing = b.var("landing", 0);
  const VarId approved = b.var("approved", 0);
  const VarId radio = b.var("radio", 1);

  // thread1: askLandingApproval(); if (approved == 1) landing = 1;
  auto t1 = b.thread("controller");
  t1.note("askLandingApproval: test the radio")
      .read(radio, 0)
      .ifThenElse(
          reg(0) == lit(0),
          [&](ThreadBuilder& t) { t.write(approved, lit(0)); },
          [&](ThreadBuilder& t) { t.write(approved, lit(1)); })
      .read(approved, 1)
      .ifThen(reg(1) == lit(1),
              [&](ThreadBuilder& t) {
                t.note("landing started").write(landing, lit(1));
              });

  // thread2: checkRadio eventually turns the radio off.
  auto t2 = b.thread("radio-watcher");
  t2.repeat(padding, [](ThreadBuilder& t) { t.internalOp(); });
  t2.read(radio, 0).note("radio goes down").write(radio, lit(0));

  return b.build();
}

const char* landingProperty() {
  // "If the plane has STARTED landing, then it is the case that landing has
  // been approved and since then the radio signal has never been down."
  // The trigger is the start of landing (the paper's observed run, where
  // the radio drops only after landing began, is explicitly successful),
  // so the antecedent is the start edge of landing = 1.
  return "start(landing = 1) -> [approved = 1, radio = 0)";
}

std::vector<ThreadId> landingObservedSchedule() {
  // T1 to completion (7 steps: read radio, brz, write approved=1,
  // read approved, brz, write landing=1, halt), then T2 (3 steps:
  // read radio, write radio=0, halt).  The radio goes off AFTER landing —
  // the paper's successful execution.
  return {0, 0, 0, 0, 0, 0, 0, 1, 1, 1};
}

Program xyzProgram(std::size_t dots) {
  ProgramBuilder b;
  const VarId x = b.var("x", -1);
  const VarId y = b.var("y", 0);
  const VarId z = b.var("z", 0);

  // thread1: x++; ...; y = x + 1;
  auto t1 = b.thread("t1");
  t1.read(x, 0)
      .write(x, reg(0) + lit(1))
      .read(x, 1);
  t1.repeat(dots, [](ThreadBuilder& t) { t.internalOp(); });
  t1.write(y, reg(1) + lit(1));

  // thread2: z = x + 1; ...; x++;
  auto t2 = b.thread("t2");
  t2.read(x, 0).write(z, reg(0) + lit(1));
  t2.repeat(dots, [](ThreadBuilder& t) { t.internalOp(); });
  t2.read(x, 1).write(x, reg(1) + lit(1));

  return b.build();
}

const char* xyzProperty() {
  // (x > 0) -> [y = 0, y > z)
  return "x > 0 -> [y = 0, y > z)";
}

std::vector<ThreadId> xyzObservedSchedule() {
  // Reproduces the paper's observed state sequence
  // (-1,0,0) (0,0,0) (0,0,1) (1,0,1) (1,1,1)   (requires dots == 1):
  //   T1: read x, write x=0 | T2: read x, write z=1 | T1: read x (0)
  //   T2: dot, read x, write x=1 | T1: dot, write y=1 | halts.
  return {0, 0, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1};
}

Program bankAccountRacy(std::size_t depositsPerThread, Value amount1,
                        Value amount2) {
  ProgramBuilder b;
  const VarId balance = b.var("balance", 0);
  auto t1 = b.thread("alice");
  t1.repeat(depositsPerThread, [&](ThreadBuilder& t) {
    t.read(balance, 0).internalOp().write(balance, reg(0) + lit(amount1));
  });
  auto t2 = b.thread("bob");
  t2.repeat(depositsPerThread, [&](ThreadBuilder& t) {
    t.read(balance, 0).internalOp().write(balance, reg(0) + lit(amount2));
  });
  return b.build();
}

Program bankAccountLocked(std::size_t depositsPerThread, Value amount1,
                          Value amount2) {
  ProgramBuilder b;
  const VarId balance = b.var("balance", 0);
  const LockId m = b.lock("account");
  auto t1 = b.thread("alice");
  t1.repeat(depositsPerThread, [&](ThreadBuilder& t) {
    t.synchronized(m, [&](ThreadBuilder& s) {
      s.read(balance, 0).internalOp().write(balance, reg(0) + lit(amount1));
    });
  });
  auto t2 = b.thread("bob");
  t2.repeat(depositsPerThread, [&](ThreadBuilder& t) {
    t.synchronized(m, [&](ThreadBuilder& s) {
      s.read(balance, 0).internalOp().write(balance, reg(0) + lit(amount2));
    });
  });
  return b.build();
}

Program diningPhilosophers(std::size_t n, bool orderedForks) {
  ProgramBuilder b;
  std::vector<LockId> forks;
  forks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    forks.push_back(b.lock("fork" + std::to_string(i)));
  }
  std::vector<VarId> meals;
  meals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    meals.push_back(b.var("meals" + std::to_string(i), 0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    LockId first = forks[i];
    LockId second = forks[(i + 1) % n];
    if (orderedForks && second < first) std::swap(first, second);
    auto t = b.thread("philosopher" + std::to_string(i));
    t.lockAcquire(first)
        .lockAcquire(second)
        .write(meals[i], lit(1))
        .lockRelease(second)
        .lockRelease(first);
  }
  return b.build();
}

Program independentWriters(std::size_t threads, std::size_t writesEach) {
  ProgramBuilder b;
  std::vector<VarId> vars;
  vars.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    vars.push_back(b.var("v" + std::to_string(i), 0));
  }
  for (std::size_t i = 0; i < threads; ++i) {
    auto t = b.thread("writer" + std::to_string(i));
    for (std::size_t k = 0; k < writesEach; ++k) {
      t.write(vars[i], lit(static_cast<Value>(k + 1)));
    }
  }
  return b.build();
}

Program serializedWriters(std::size_t threads, std::size_t writesEach) {
  ProgramBuilder b;
  const VarId total = b.var("total", 0);
  const LockId m = b.lock("m");
  for (std::size_t i = 0; i < threads; ++i) {
    auto t = b.thread("incr" + std::to_string(i));
    t.repeat(writesEach, [&](ThreadBuilder& tb) {
      tb.synchronized(m, [&](ThreadBuilder& s) {
        s.read(total, 0).write(total, reg(0) + lit(1));
      });
    });
  }
  return b.build();
}

Program producerConsumer(std::size_t items) {
  ProgramBuilder b;
  const VarId full = b.var("full", 0);
  const VarId data = b.var("data", 0);
  const VarId consumed = b.var("consumed", 0);
  const LockId m = b.lock("buffer");
  const CondId notEmpty = b.cond("notEmpty");
  const CondId notFull = b.cond("notFull");

  auto producer = b.thread("producer");
  for (std::size_t k = 1; k <= items; ++k) {
    producer.lockAcquire(m)
        .read(full, 0)
        .whileLoop(reg(0) != lit(0),
                   [&](ThreadBuilder& t) {
                     t.wait(notFull, m).read(full, 0);
                   })
        .write(data, lit(static_cast<Value>(k)))
        .write(full, lit(1))
        .notifyAll(notEmpty)
        .lockRelease(m);
  }

  auto consumer = b.thread("consumer");
  for (std::size_t k = 1; k <= items; ++k) {
    consumer.lockAcquire(m)
        .read(full, 0)
        .whileLoop(reg(0) == lit(0),
                   [&](ThreadBuilder& t) {
                     t.wait(notEmpty, m).read(full, 0);
                   })
        .read(data, 1)
        .write(consumed, reg(1))
        .write(full, lit(0))
        .notifyAll(notFull)
        .lockRelease(m);
  }
  return b.build();
}

Program readersWriter(std::size_t readerCount) {
  ProgramBuilder b;
  const VarId readers = b.var("readers", 0);
  const VarId writing = b.var("writing", 0);
  const VarId data = b.var("data", 0);
  const LockId m = b.lock("state");
  const CondId c = b.cond("turn");

  auto writer = b.thread("writer");
  writer.lockAcquire(m)
      .read(readers, 0)
      .whileLoop(reg(0) != lit(0),
                 [&](ThreadBuilder& t) { t.wait(c, m).read(readers, 0); })
      .write(writing, lit(1))
      .lockRelease(m)
      .write(data, lit(42))
      .lockAcquire(m)
      .write(writing, lit(0))
      .notifyAll(c)
      .lockRelease(m);

  for (std::size_t i = 0; i < readerCount; ++i) {
    auto reader = b.thread("reader" + std::to_string(i));
    reader.lockAcquire(m)
        .read(writing, 0)
        .whileLoop(reg(0) != lit(0),
                   [&](ThreadBuilder& t) { t.wait(c, m).read(writing, 0); })
        .read(readers, 1)
        .write(readers, reg(1) + lit(1))
        .lockRelease(m)
        .read(data, 2)  // the protected read
        .lockAcquire(m)
        .read(readers, 1)
        .write(readers, reg(1) - lit(1))
        .notifyAll(c)
        .lockRelease(m);
  }
  return b.build();
}

const char* readersWriterProperty() {
  return "!(writing = 1 && readers >= 1)";
}

Program spawnJoin() {
  ProgramBuilder b;
  const VarId a = b.var("a", 0);
  const VarId c = b.var("c", 0);
  const VarId sum = b.var("sum", 0);

  auto main = b.thread("main");
  auto w1 = b.thread("worker1", /*startsRunning=*/false);
  auto w2 = b.thread("worker2", /*startsRunning=*/false);

  w1.write(a, lit(21));
  w2.write(c, lit(21));

  main.spawn(w1.id())
      .spawn(w2.id())
      .join(w1.id())
      .join(w2.id())
      .read(a, 0)
      .read(c, 1)
      .write(sum, reg(0) + reg(1));
  return b.build();
}

Program casCounter(std::size_t threads, std::size_t incrementsEach) {
  ProgramBuilder b;
  const VarId counter = b.var("counter", 0);
  for (std::size_t i = 0; i < threads; ++i) {
    auto t = b.thread("cas" + std::to_string(i));
    t.repeat(incrementsEach, [&](ThreadBuilder& tb) {
      // r0 = counter; retry CAS(counter, r0, r0+1) until it succeeds
      // (success: r1 — the observed old value — equals the expected r0).
      tb.read(counter, 0)
          .compareExchange(counter, 1, reg(0), reg(0) + lit(1))
          .whileLoop(reg(1) != reg(0), [&](ThreadBuilder& retry) {
            retry.read(counter, 0)
                .compareExchange(counter, 1, reg(0), reg(0) + lit(1));
          });
    });
  }
  return b.build();
}

Program peterson(std::size_t rounds) {
  ProgramBuilder b;
  const VarId flag0 = b.var("flag0", 0);
  const VarId flag1 = b.var("flag1", 0);
  const VarId turn = b.var("turn", 0);
  const VarId c0 = b.var("c0", 0);
  const VarId c1 = b.var("c1", 0);

  const auto makeThread = [&](std::string name, VarId myFlag, VarId otherFlag,
                              VarId myCrit, Value giveTurnTo) {
    auto t = b.thread(name);
    t.repeat(rounds, [&](ThreadBuilder& tb) {
      tb.write(myFlag, lit(1))
          .write(turn, lit(giveTurnTo))
          .read(otherFlag, 0)
          .read(turn, 1)
          // spin while (other interested && turn is theirs)
          .whileLoop(reg(0) == lit(1) && reg(1) == lit(giveTurnTo),
                     [&](ThreadBuilder& spin) {
                       spin.read(otherFlag, 0).read(turn, 1);
                     })
          .write(myCrit, lit(1))
          .internalOp()  // the critical work
          .write(myCrit, lit(0))
          .write(myFlag, lit(0));
    });
    return t;
  };
  makeThread("p0", flag0, flag1, c0, /*giveTurnTo=*/1);
  makeThread("p1", flag1, flag0, c1, /*giveTurnTo=*/0);
  return b.build();
}

Program mutualExclusionNaive() {
  ProgramBuilder b;
  const VarId c0 = b.var("c0", 0);
  const VarId c1 = b.var("c1", 0);
  auto t0 = b.thread("n0");
  t0.write(c0, lit(1)).internalOp().write(c0, lit(0));
  auto t1 = b.thread("n1");
  t1.write(c1, lit(1)).internalOp().write(c1, lit(0));
  return b.build();
}

const char* mutualExclusionProperty() { return "!(c0 = 1 && c1 = 1)"; }

Program randomProgram(std::uint64_t seed, const RandomProgramOptions& opts) {
  std::mt19937_64 rng(seed);
  ProgramBuilder b;
  std::vector<VarId> vars;
  vars.reserve(opts.vars);
  for (std::size_t v = 0; v < opts.vars; ++v) {
    vars.push_back(b.var("g" + std::to_string(v),
                         static_cast<Value>(rng() % 5)));
  }
  std::vector<LockId> locks;
  for (std::size_t l = 0; l < opts.locks; ++l) {
    locks.push_back(b.lock("L" + std::to_string(l)));
  }

  std::uniform_int_distribution<unsigned> percent(0, 99);
  std::size_t nextRegionId = 1;
  for (std::size_t i = 0; i < opts.threads; ++i) {
    auto t = b.thread("r" + std::to_string(i));
    std::size_t regionOpsLeft = 0;  // > 0 while inside an open region
    for (std::size_t op = 0; op < opts.opsPerThread; ++op) {
      // All region RNG draws are gated on regionPercent so the default
      // (0) reproduces pre-region seeds byte-identically.
      if (opts.regionPercent > 0) {
        if (regionOpsLeft == 0 && percent(rng) < opts.regionPercent) {
          t.regionBegin(nextRegionId++);
          regionOpsLeft = 1 + rng() % 3;
        }
      }
      const VarId v = vars[rng() % vars.size()];
      const unsigned roll = percent(rng);
      const bool locked = !locks.empty() && percent(rng) < 30;
      const LockId l = locks.empty() ? 0 : locks[rng() % locks.size()];
      if (locked) t.lockAcquire(l);
      if (roll < opts.readPercent) {
        t.read(v, static_cast<RegId>(rng() % 4));
      } else if (roll < opts.readPercent + opts.writePercent) {
        t.write(v, reg(static_cast<RegId>(rng() % 4)) +
                       lit(static_cast<Value>(rng() % 7)));
      } else {
        t.internalOp();
      }
      if (locked) t.lockRelease(l);
      if (regionOpsLeft > 0 && --regionOpsLeft == 0) {
        // One in eight regions stays open to trace end (hostile input the
        // analysis must still handle); the rest close here.
        if (percent(rng) >= 12) {
          t.regionEnd(nextRegionId - 1);
        }
      }
    }
  }
  return b.build();
}

Program atomicityDemo(std::size_t rounds) {
  ProgramBuilder b;
  const VarId acct = b.var("acct", 0);
  const VarId audit = b.var("audit", 0);
  // The checker intends each acct/audit update pair to be atomic; the
  // bumper updates both without an annotation.  When the bumper's pair
  // lands INSIDE a checker region (bumper sees the new acct but the old
  // audit), the region's conflict cycle
  //   region -> bumper(acct) -> bumper(audit) -> region
  // witnesses the non-serializability.
  auto checker = b.thread("checker");
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value v = static_cast<Value>(r) + 1;
    checker.atomicRegion(r + 1, [&](ThreadBuilder& t) {
      t.write(acct, lit(v));
      t.write(audit, lit(v));
    });
  }
  auto bumper = b.thread("bumper");
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value v = -(static_cast<Value>(r) + 1);
    bumper.write(acct, lit(v));
    bumper.write(audit, lit(v));
  }
  return b.build();
}

std::vector<ThreadId> atomicityDemoViolatingSchedule() {
  // Checker: regionBegin, write acct, | write audit, regionEnd, halt.
  // Bumper lands its whole pair at the `|`: its acct write follows the
  // region's but its audit write precedes the region's, so the region
  // cannot be serialized before or after the pair.
  return {0, 0, 1, 1, 0, 0, 0, 1};
}

Program lockDisciplined(std::size_t threads, std::size_t opsEach,
                        std::size_t auxVars) {
  ProgramBuilder b;
  const VarId data = b.var("data", 0);
  std::vector<VarId> aux;
  aux.reserve(auxVars);
  for (std::size_t v = 0; v < auxVars; ++v) {
    aux.push_back(b.var("aux" + std::to_string(v), 0));
  }
  const LockId l = b.lock("L");
  for (std::size_t i = 0; i < threads; ++i) {
    auto t = b.thread("w" + std::to_string(i));
    for (std::size_t op = 0; op < opsEach; ++op) {
      t.lockAcquire(l);
      t.read(data, 0);
      t.write(data, reg(0) + lit(1));
      t.lockRelease(l);
    }
    // Epilogue under the SAME lock: the aux accesses are causally ordered
    // against every data access, so (data, aux_i) is never-concurrent and
    // the engine's prefilter can prune the whole aux suffix.
    t.lockAcquire(l);
    for (const VarId v : aux) {
      t.read(v, 1);
      t.write(v, reg(1) + lit(1));
    }
    t.lockRelease(l);
  }
  return b.build();
}

}  // namespace mpx::program::corpus
