#include "program/explorer.hpp"

namespace mpx::program {

ExploreStats ExhaustiveExplorer::explore(const Program& prog,
                                         const ExecutionCallback& cb) {
  stats_ = ExploreStats{};
  seen_.clear();
  stop_ = false;

  Interpreter root(prog);
  std::vector<trace::Event> events;
  std::vector<std::vector<LockId>> locksHeld;
  dfs(root, events, locksHeld, cb);
  return stats_;
}

bool ExhaustiveExplorer::dfs(const Interpreter& interp,
                             std::vector<trace::Event>& events,
                             std::vector<std::vector<LockId>>& locksHeld,
                             const ExecutionCallback& cb) {
  if (stop_) return false;
  ++stats_.statesExpanded;

  if (events.size() > opts_.maxDepth) {
    stats_.truncated = true;
    return true;  // abandon this branch, keep exploring others
  }

  const std::vector<ThreadId> runnable = interp.runnableThreads();
  if (runnable.empty()) {
    ExecutionRecord rec;
    rec.events = events;
    rec.locksHeld = locksHeld;
    rec.deadlocked = interp.isDeadlocked();
    if (rec.deadlocked) rec.deadlockedThreads = interp.unfinishedThreads();
    rec.finalShared = interp.sharedValuation();
    rec.steps = events.size();
    ++stats_.executions;
    if (rec.deadlocked) ++stats_.deadlocks;
    if (!cb(rec)) {
      stop_ = true;
      stats_.truncated = true;
      return false;
    }
    if (opts_.maxExecutions != 0 && stats_.executions >= opts_.maxExecutions) {
      stop_ = true;
      stats_.truncated = true;
      return false;
    }
    return true;
  }

  for (const ThreadId t : runnable) {
    Interpreter child = interp;  // snapshot
    const StepResult step = child.step(t);
    if (!step.progressed && step.events.empty()) {
      // A step that neither progressed nor produced events cannot happen
      // for threads reported runnable; guard against infinite recursion.
      continue;
    }
    if (opts_.dedupeStates) {
      const std::size_t h = child.stateHash();
      if (!seen_.insert(h).second) continue;
    }
    const std::size_t mark = events.size();
    for (const trace::Event& e : step.events) {
      events.push_back(e);
      locksHeld.push_back(child.locksHeld(e.thread));
    }
    const bool keepGoing = dfs(child, events, locksHeld, cb);
    events.resize(mark);
    locksHeld.resize(mark);
    if (!keepGoing) return false;
  }
  return true;
}

std::vector<ExecutionRecord> ExhaustiveExplorer::collectAll(
    const Program& prog) {
  std::vector<ExecutionRecord> out;
  explore(prog, [&out](const ExecutionRecord& rec) {
    out.push_back(rec);
    return true;
  });
  return out;
}

bool ExhaustiveExplorer::existsExecution(
    const Program& prog,
    const std::function<bool(const ExecutionRecord&)>& pred) {
  bool found = false;
  explore(prog, [&](const ExecutionRecord& rec) {
    if (pred(rec)) {
      found = true;
      return false;  // stop early
    }
    return true;
  });
  return found;
}

bool ExhaustiveExplorer::existsReachableState(
    const Program& prog, const std::function<bool(const Interpreter&)>& pred) {
  // Plain BFS over deduplicated dynamic states — independent of the
  // execution-oriented DFS so busy-wait loops cannot blow up the search.
  std::unordered_set<std::size_t> seen;
  std::vector<Interpreter> queue;
  queue.emplace_back(prog);
  seen.insert(queue.back().stateHash());
  if (pred(queue.back())) return true;

  while (!queue.empty()) {
    const Interpreter current = std::move(queue.back());
    queue.pop_back();
    for (const ThreadId t : current.runnableThreads()) {
      Interpreter child = current;
      child.step(t);
      if (!seen.insert(child.stateHash()).second) continue;
      if (pred(child)) return true;
      queue.push_back(std::move(child));
    }
  }
  return false;
}

std::size_t ExhaustiveExplorer::countExecutions(const Program& prog) {
  std::size_t n = 0;
  explore(prog, [&n](const ExecutionRecord&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace mpx::program
