// Scheduling policies driving the VM, and the Executor run loop.
//
// A multithreaded run is determined by which runnable thread takes the next
// step ("a possible execution of the same system under a different execution
// speed of each individual thread", paper §2.2).  The scheduler is that
// choice function; making it explicit gives us deterministic replay (Fixed),
// fair interleaving (RoundRobin), randomized testing (Random), and — in
// explorer.hpp — exhaustive enumeration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "program/interpreter.hpp"

namespace mpx::program {

/// Picks which runnable thread steps next.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// `runnable` is non-empty and lists threads that will make progress.
  virtual ThreadId pick(const std::vector<ThreadId>& runnable,
                        const Interpreter& interp) = 0;
};

/// Always the lowest-id runnable thread (runs threads to completion in
/// order when they never block on each other).
class GreedyScheduler final : public Scheduler {
 public:
  ThreadId pick(const std::vector<ThreadId>& runnable,
                const Interpreter&) override {
    return runnable.front();
  }
};

/// Cycles through threads, `quantum` steps each.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::size_t quantum = 1) : quantum_(quantum) {}
  ThreadId pick(const std::vector<ThreadId>& runnable,
                const Interpreter& interp) override;

 private:
  std::size_t quantum_;
  std::size_t used_ = 0;
  ThreadId current_ = kNoThread;
};

/// Uniform random choice with a fixed seed — the "testing" baseline the
/// paper argues has low probability of hitting scheduling-sensitive bugs.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  ThreadId pick(const std::vector<ThreadId>& runnable,
                const Interpreter&) override {
    std::uniform_int_distribution<std::size_t> d(0, runnable.size() - 1);
    return runnable[d(rng_)];
  }

 private:
  std::mt19937_64 rng_;
};

/// Replays an explicit thread-choice sequence; after the sequence is
/// exhausted, falls back to the lowest-id runnable thread.  Throws if a
/// scripted choice is not runnable — tests want to know their script broke.
class FixedScheduler final : public Scheduler {
 public:
  explicit FixedScheduler(std::vector<ThreadId> script)
      : script_(std::move(script)) {}
  ThreadId pick(const std::vector<ThreadId>& runnable,
                const Interpreter& interp) override;

 private:
  std::vector<ThreadId> script_;
  std::size_t next_ = 0;
};

/// Receives every event the execution produced, with access to the
/// interpreter for context (locks held, shared state) at the instant the
/// event was generated.
using EventListener =
    std::function<void(const trace::Event&, const Interpreter&)>;

/// Everything a finished execution tells us.
struct ExecutionRecord {
  std::vector<trace::Event> events;
  /// locksHeld[k] = locks held by events[k].thread at the time of events[k]
  /// (used by the lockset race-detector refinement).
  std::vector<std::vector<LockId>> locksHeld;
  bool deadlocked = false;
  std::vector<ThreadId> deadlockedThreads;
  std::vector<Value> finalShared;  ///< final valuation, by VarId
  std::size_t steps = 0;
};

/// Runs a program to quiescence under a scheduler.
class Executor {
 public:
  Executor(const Program& prog, Scheduler& sched)
      : interp_(prog), sched_(&sched) {}

  /// Optional tap invoked for every event as it is generated.
  void setListener(EventListener listener) { listener_ = std::move(listener); }

  /// Step until no thread is runnable (all finished or deadlock), or until
  /// `maxSteps` is hit (guards accidental non-termination; 0 = unlimited).
  ExecutionRecord run(std::size_t maxSteps = 1'000'000);

  [[nodiscard]] const Interpreter& interpreter() const noexcept {
    return interp_;
  }

 private:
  Interpreter interp_;
  Scheduler* sched_;
  EventListener listener_;
};

/// Convenience: run `prog` under `sched` and return the record.
ExecutionRecord runProgram(const Program& prog, Scheduler& sched,
                           std::size_t maxSteps = 1'000'000);

/// Convenience: run under a seeded random scheduler.
ExecutionRecord runProgramRandom(const Program& prog, std::uint64_t seed,
                                 std::size_t maxSteps = 1'000'000);

}  // namespace mpx::program
