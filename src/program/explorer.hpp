// Exhaustive schedule exploration — the ground-truth oracle.
//
// Predictive runtime analysis (the paper's contribution) infers, from ONE
// observed execution, properties of OTHER consistent runs.  To test that
// those predictions are meaningful we need the actual set of executions the
// scheduler could produce; this explorer enumerates every maximal
// interleaving of a Program by depth-first search over scheduling choices
// (the Interpreter is a value type, so a snapshot is just a copy).
//
// This plays the role a model checker would play for the paper's systems:
// it is intentionally exponential and only used on the small programs in
// tests, examples and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "program/scheduler.hpp"

namespace mpx::program {

struct ExploreOptions {
  /// Stop after this many complete executions (0 = unlimited).
  std::size_t maxExecutions = 1'000'000;
  /// Abort an execution branch after this many steps (guards livelock).
  std::size_t maxDepth = 100'000;
  /// When true, prune scheduling branches that re-enter an
  /// already-visited dynamic state.  This turns the search from
  /// "all executions" into "all reachable states": complete executions
  /// delivered to the callback no longer cover every interleaving, but
  /// every reachable state is visited at least once.
  bool dedupeStates = false;
};

struct ExploreStats {
  std::size_t executions = 0;      ///< complete executions delivered
  std::size_t deadlocks = 0;       ///< of which ended in deadlock
  std::size_t statesExpanded = 0;  ///< search-tree nodes expanded
  bool truncated = false;          ///< hit maxExecutions/maxDepth/early stop
};

/// Called for every complete (quiescent) execution.  Return false to stop
/// the whole exploration early.
using ExecutionCallback = std::function<bool(const ExecutionRecord&)>;

class ExhaustiveExplorer {
 public:
  explicit ExhaustiveExplorer(ExploreOptions opts = {}) : opts_(opts) {}

  ExploreStats explore(const Program& prog, const ExecutionCallback& cb);

  /// Convenience: collect every complete execution record.
  [[nodiscard]] std::vector<ExecutionRecord> collectAll(const Program& prog);

  /// Convenience: true iff some execution satisfies `pred`.
  [[nodiscard]] bool existsExecution(
      const Program& prog,
      const std::function<bool(const ExecutionRecord&)>& pred);

  /// Reachability oracle: true iff some reachable dynamic state satisfies
  /// `pred`.  Explores with state deduplication, so it terminates even on
  /// programs with busy-wait loops (whose execution tree is infinite) as
  /// long as the state space is finite.
  [[nodiscard]] bool existsReachableState(
      const Program& prog, const std::function<bool(const Interpreter&)>& pred);

  /// Convenience: number of distinct complete executions (no dedupe).
  [[nodiscard]] std::size_t countExecutions(const Program& prog);

  [[nodiscard]] const ExploreStats& lastStats() const noexcept {
    return stats_;
  }

 private:
  bool dfs(const Interpreter& interp, std::vector<trace::Event>& events,
           std::vector<std::vector<LockId>>& locksHeld,
           const ExecutionCallback& cb);

  ExploreOptions opts_;
  ExploreStats stats_;
  std::unordered_set<std::size_t> seen_;
  bool stop_ = false;
};

}  // namespace mpx::program
