// The multithreaded-program representation executed by the VM.
//
// A Program is a fixed set of threads (plus optionally dynamically spawned
// ones), each a straight-line/branching sequence of instructions over
// thread-local registers, shared variables, locks and condition variables.
// Shared accesses are explicit single instructions, so one instruction
// executes atomically and instantaneously — exactly the sequential memory
// model the paper assumes (§2.1).
//
// ProgramBuilder provides a small structured-programming veneer (if/while)
// over the flat instruction list so examples read like the paper's
// pseudo-code (Fig. 1).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "program/expr.hpp"
#include "trace/var_table.hpp"
#include "vc/types.hpp"

namespace mpx::program {

enum class OpCode : std::uint8_t {
  kRead,      ///< regs[dst] = shared[var]           (read event)
  kWrite,     ///< shared[var] = eval(expr)          (write event)
  kCompute,   ///< regs[dst] = eval(expr)            (internal event)
  kJump,      ///< pc = target
  kBranchIfZero,  ///< if eval(expr)==0 pc=target else pc+1 (internal event)
  kLock,      ///< acquire lock `lock` (blocks)      (lock-acquire event)
  kUnlock,    ///< release lock `lock`               (lock-release event)
  kWait,      ///< wait on cond `cond`, releasing `lock`; reacquires on wake
  kNotifyAll, ///< wake all waiters of cond `cond`   (notify event)
  kSpawn,     ///< start thread `spawnee` (must not have started)
  kJoin,      ///< block until thread `spawnee` finishes
  kHalt,      ///< finish this thread
  kCas,       ///< atomic compare-and-swap: regs[dst] = shared[var];
              ///< if regs[dst] == eval(expr) then shared[var] = eval(expr2).
              ///< One atomic event: kAtomicUpdate on success, kRead on
              ///< failure.
  kRegionBegin,  ///< annotated atomic-region entry; region id in `target`
                 ///< (region-begin event, ISSUE 10)
  kRegionEnd,    ///< annotated atomic-region exit; region id in `target`
};

[[nodiscard]] const char* toString(OpCode op) noexcept;

/// One VM instruction.  Only the fields meaningful for `op` are read.
struct Instr {
  OpCode op = OpCode::kHalt;
  VarId var = kNoVar;        ///< kRead / kWrite
  LockId lock = 0;           ///< kLock / kUnlock / kWait
  CondId cond = 0;           ///< kWait / kNotifyAll
  RegId dst = 0;             ///< kRead / kCompute / kCas
  Expr expr;                 ///< kWrite / kCompute / kBranchIfZero / kCas
                             ///< (expected value)
  Expr expr2;                ///< kCas only: the desired new value
  std::size_t target = 0;    ///< kJump / kBranchIfZero; region id for
                             ///< kRegionBegin / kRegionEnd
  ThreadId spawnee = kNoThread;  ///< kSpawn / kJoin
  std::string note;          ///< optional debug annotation
};

/// Code of one thread.
struct ThreadCode {
  std::string name;
  std::vector<Instr> code;
  bool startsRunning = true;  ///< false: started only via kSpawn
};

/// A complete multithreaded program.
struct Program {
  trace::VarTable vars;  ///< data variables AND lock/cond dummy variables
  std::vector<std::string> lockNames;
  std::vector<std::string> condNames;
  std::vector<ThreadCode> threads;
  RegId numRegisters = 16;  ///< register-file size per thread

  // Paper §3.1 mappings: synchronization objects are shared variables.
  std::vector<VarId> lockVars;    ///< LockId  -> lock-role VarId
  std::vector<VarId> condVars;    ///< CondId  -> condition-role VarId
  std::vector<VarId> threadVars;  ///< ThreadId-> spawn/join dummy VarId

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return threads.size();
  }

  /// Pretty-print a disassembly for docs and debugging.
  [[nodiscard]] std::string disassemble() const;
};

class ProgramBuilder;

/// Fluent builder for one thread's code.  Obtained from ProgramBuilder.
class ThreadBuilder {
 public:
  ThreadBuilder(const ThreadBuilder&) = delete;
  ThreadBuilder& operator=(const ThreadBuilder&) = delete;
  ThreadBuilder(ThreadBuilder&&) = default;
  ThreadBuilder& operator=(ThreadBuilder&&) = delete;

  /// regs[dst] = shared[var]
  ThreadBuilder& read(VarId var, RegId dst);
  /// Atomic CAS: regs[dst] = shared[var]; if it equals `expected`, store
  /// `desired`.  Success is visible as regs[dst] == expected afterwards.
  ThreadBuilder& compareExchange(VarId var, RegId dst, Expr expected,
                                 Expr desired);
  /// shared[var] = value
  ThreadBuilder& write(VarId var, Expr value);
  /// regs[dst] = value (internal computation)
  ThreadBuilder& compute(RegId dst, Expr value);
  /// A no-op internal event (the paper's "dots ... irrelevant code").
  ThreadBuilder& internalOp();

  ThreadBuilder& lockAcquire(LockId lock);
  ThreadBuilder& lockRelease(LockId lock);
  /// Synchronized region helper: lock; body; unlock.
  ThreadBuilder& synchronized(LockId lock,
                              const std::function<void(ThreadBuilder&)>& body);

  /// Annotated atomic-region boundaries (the VM's MPX_ATOMIC_BEGIN/END):
  /// emit kRegionBegin / kRegionEnd marker events carrying `regionId`.
  ThreadBuilder& regionBegin(std::size_t regionId = 0);
  ThreadBuilder& regionEnd(std::size_t regionId = 0);
  /// Atomic-region helper: regionBegin; body; regionEnd.
  ThreadBuilder& atomicRegion(std::size_t regionId,
                              const std::function<void(ThreadBuilder&)>& body);

  ThreadBuilder& wait(CondId cond, LockId lock);
  ThreadBuilder& notifyAll(CondId cond);

  ThreadBuilder& spawn(ThreadId thread);
  ThreadBuilder& join(ThreadId thread);

  /// if (cond != 0) { then } — structured branch.
  ThreadBuilder& ifThen(Expr cond,
                        const std::function<void(ThreadBuilder&)>& thenBody);
  /// if (cond != 0) { then } else { else }.
  ThreadBuilder& ifThenElse(Expr cond,
                            const std::function<void(ThreadBuilder&)>& thenBody,
                            const std::function<void(ThreadBuilder&)>& elseBody);
  /// while (cond != 0) { body }.
  ThreadBuilder& whileLoop(Expr cond,
                           const std::function<void(ThreadBuilder&)>& body);
  /// Repeat body exactly `times` times (unrolled; no loop counter register).
  ThreadBuilder& repeat(std::size_t times,
                        const std::function<void(ThreadBuilder&)>& body);

  ThreadBuilder& halt();

  /// Attach a debug note to the *next* emitted instruction.
  ThreadBuilder& note(std::string text);

  [[nodiscard]] ThreadId id() const noexcept { return id_; }

 private:
  friend class ProgramBuilder;
  ThreadBuilder(ProgramBuilder& owner, ThreadId id) : owner_(&owner), id_(id) {}

  std::size_t emit(Instr instr);
  [[nodiscard]] std::vector<Instr>& code();

  ProgramBuilder* owner_;
  ThreadId id_;
  std::string pendingNote_;
};

/// Builder for whole programs.
class ProgramBuilder {
 public:
  ProgramBuilder() = default;

  /// Declare a shared data variable with an initial value.
  VarId var(std::string_view name, Value initial = 0);
  /// Declare a lock.  Internally also interns a lock-role shared variable
  /// (paper §3.1: locks are shared variables written on acquire/release).
  LockId lock(std::string_view name);
  /// Declare a condition variable (with its dummy shared variable).
  CondId cond(std::string_view name);

  /// Add a thread; returns its builder.  Builders reference this
  /// ProgramBuilder and must not outlive it.
  ThreadBuilder thread(std::string_view name = {}, bool startsRunning = true);

  /// Number of registers per thread (default 16).
  ProgramBuilder& registers(RegId n);

  /// Finalize.  Validates jump targets, register indices, and ids.
  [[nodiscard]] Program build();

  /// VarId of the lock-role shared variable backing `lock`.
  [[nodiscard]] VarId lockVar(LockId lock) const;
  /// VarId of the condition-role dummy variable backing `cond`.
  [[nodiscard]] VarId condVar(CondId cond) const;
  /// VarId of the spawn/join dummy variable for thread `t`.
  [[nodiscard]] VarId threadVar(ThreadId t) const;

 private:
  friend class ThreadBuilder;
  Program prog_;
  bool built_ = false;
};

}  // namespace mpx::program
