// The pluggable analysis interface of the lattice engine.
//
// The paper's observer carries ONE synthesized monitor across the
// computation lattice.  This header generalizes that into an
// analysis-agnostic engine: any number of `Analysis` plugins ride a single
// level-by-level expansion, each seeing
//
//   * the raw instrumented event stream (onRawEvent / onObservedState),
//   * an optional monitor component packed into the per-node monitor word
//     (monitor(), via MonitorBus — the multi-analysis generalization of
//     logic::ProductMonitor), and
//   * every completed lattice node (onNode), with interned state and
//     monitor-state-set pointers so plugins can dedupe by pointer.
//
// Lifecycle of one engine pass:
//
//   onRawEvent* -> [lattice expansion: advance/isViolating per component,
//                   onViolation as violating tokens first enter a node,
//                   onNode per completed node] -> finish -> report
//
// Determinism contract: onViolation and merge() run ONLY on the
// orchestrator thread.  In parallel runs (`--jobs N`) node dispatch forks
// worker-local plugin instances via fork(); the engine sorts each level's
// nodes by cut, splits them into contiguous chunks (a pure function of
// (size, workers)), runs onNode on the chunk's fork, and merges the forks
// back in chunk-index order — so a plugin whose merge() is
// order-respecting observes the exact serial node order, and any jobs
// count yields the same report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "observer/checkpoint.hpp"
#include "observer/intern.hpp"
#include "observer/lattice_types.hpp"
#include "telemetry/metrics.hpp"
#include "trace/event.hpp"

namespace mpx::observer {

/// One completed lattice node as shown to plugins.  `state` and
/// `monitorStates` are interned: pointer equality is value equality, and a
/// plugin may key caches on the pointers.
struct NodeView {
  const Cut* cut = nullptr;
  const GlobalState* state = nullptr;  ///< interned (StateArena)
  std::uint64_t pathCount = 0;
  std::uint64_t level = 0;
  /// Interned sorted set of monitor-bus states reachable at this node
  /// (MonitorSetArena); empty set when no plugin contributes a monitor.
  const std::vector<MonitorState>* monitorStates = nullptr;
};

/// What a plugin hands back after finish().
struct AnalysisReport {
  std::string name;  ///< instance name, e.g. "ptltl: [](!p -> [*] !q)"
  std::string kind;  ///< "ptltl" | "race" | "deadlock" | "lasso" | custom
  std::size_t violationCount = 0;
  std::string text;  ///< canonical rendered findings (stable across jobs)
};

/// Base class of every checker.  All hooks are optional except
/// name()/kind()/report(); a plugin participates only in the phases it
/// overrides.
class Analysis {
 public:
  virtual ~Analysis() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string kind() const = 0;

  /// The plugin's monitor component, packed into the shared 64-bit monitor
  /// word next to every other plugin's (see MonitorBus).  Null: the plugin
  /// does not ride the monitor word.
  [[nodiscard]] virtual LatticeMonitor* monitor() { return nullptr; }

  /// One instrumented event of the observed execution, in observed order,
  /// with the locks the executing thread holds after the event.  Called
  /// before lattice expansion consumes the event's message.
  virtual void onRawEvent(const trace::Event& event,
                          const std::vector<LockId>& locksHeld) {
    (void)event;
    (void)locksHeld;
  }

  /// The observed run's global state after each tracked write (the linear
  /// trace the paper's observer would see without prediction).  Called
  /// once with the initial state before any event.
  virtual void onObservedState(const GlobalState& state) { (void)state; }

  /// One observer-bound message <e, i, V_i> as delivered.  Unlike
  /// onRawEvent this hook also runs DAEMON-side (the daemon never sees raw
  /// events, only messages) and carries the vector clock.  Delivery order
  /// is NOT a linearization of ≺ — Theorem 3 holds for any channel
  /// interleaving — so an implementation must not assume causal order;
  /// buffer and sort by globalSeq (the total order M) before concluding.
  virtual void onMessage(const trace::Message& m) { (void)m; }

  /// A violating monitor token first entered a node.  `componentState` is
  /// this plugin's slice of the token (MonitorBus::extract).  Return true
  /// to accept: the engine records the violation (and counts it) iff some
  /// plugin accepts.  Orchestrator thread only — no locking needed.
  virtual bool onViolation(const Violation& v, MonitorState componentState) {
    (void)v;
    (void)componentState;
    return true;
  }

  /// Opt into per-node dispatch.
  [[nodiscard]] virtual bool wantsNodes() const { return false; }
  virtual void onNode(const NodeView& node) { (void)node; }

  /// Worker-local clone for parallel node dispatch.  Returning null forces
  /// serial dispatch for every plugin on that level (correct, just slower).
  [[nodiscard]] virtual std::unique_ptr<Analysis> fork() { return nullptr; }

  /// Folds a fork's observations back, called in chunk-index order on the
  /// orchestrator thread.
  virtual void merge(Analysis& fork) { (void)fork; }

  /// The expansion is complete (or was truncated — see stats.truncated).
  virtual void finish(const LatticeStats& stats) { (void)stats; }

  /// Serializes the plugin's accumulated observations for a session
  /// checkpoint (observer/checkpoint.hpp).  Each implementation writes a
  /// leading version byte of its own; the default writes nothing — a
  /// stateless plugin round-trips for free.  Orchestrator thread only,
  /// between levels (never concurrent with dispatch).
  virtual void checkpoint(ckpt::Writer& w) const { (void)w; }

  /// Inverse of checkpoint(): replaces the plugin's state wholesale from a
  /// blob written by the SAME plugin type.  Returns false (leaving the
  /// plugin unusable) on version or decode mismatch — snapshot files are
  /// untrusted input.  After a successful restore the plugin's report() is
  /// byte-identical to the checkpoint-time original.
  [[nodiscard]] virtual bool restore(ckpt::Reader& r) {
    (void)r;
    return true;
  }

  [[nodiscard]] virtual AnalysisReport report() const = 0;
};

/// Packs the monitor components of several plugins side by side in the
/// 64-bit per-node monitor word (LatticeMonitor::stateBits() declares each
/// component's width).  The engine-internal generalization of
/// logic::ProductMonitor: advance/isViolating/canEverViolate fan out to
/// every component, and extract() recovers one plugin's slice.
class MonitorBus final : public LatticeMonitor {
 public:
  struct Component {
    Analysis* plugin = nullptr;
    LatticeMonitor* monitor = nullptr;
    unsigned shift = 0;
    unsigned bits = 0;
    MonitorState mask = 0;  ///< pre-shift mask of `bits` ones
  };

  /// Throws std::invalid_argument when the combined widths exceed 64.
  void add(Analysis* plugin, LatticeMonitor* monitor);

  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }
  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }

  [[nodiscard]] MonitorState extract(MonitorState m, std::size_t i) const {
    const Component& c = components_[i];
    return (m >> c.shift) & c.mask;
  }

  MonitorState initial(const GlobalState& s) override;
  MonitorState advance(MonitorState prev, const GlobalState& s) override;
  [[nodiscard]] bool isViolating(MonitorState m) const override;
  [[nodiscard]] bool canEverViolate(MonitorState m) const override;
  [[nodiscard]] unsigned stateBits() const override { return used_; }

 private:
  std::vector<Component> components_;
  unsigned used_ = 0;
};

/// The engine-facing bundle of one pass's plugins: owns the MonitorBus,
/// filters violations through the owning plugins, dispatches completed
/// nodes (serial or forked), and collects reports.  Non-owning — plugins
/// must outlive the bus.
class AnalysisBus {
 public:
  explicit AnalysisBus(std::vector<Analysis*> plugins);

  /// The packed monitor the expansion should run, or null when no plugin
  /// contributes a component.
  [[nodiscard]] LatticeMonitor* monitor() noexcept {
    return bus_.empty() ? nullptr : &bus_;
  }
  [[nodiscard]] const MonitorBus& monitorBus() const noexcept { return bus_; }
  [[nodiscard]] const std::vector<Analysis*>& plugins() const noexcept {
    return plugins_;
  }

  /// Routes a violating token to the plugins whose components violate.
  /// True iff some plugin accepted (the engine then records `v`).
  /// Orchestrator thread only.  The violation is mutable: when a state
  /// lift is installed (see setStateLift) it is applied BEFORE any plugin
  /// sees the violation, so plugin-recorded copies and the engine-recorded
  /// copy agree.
  bool acceptViolation(Violation& v);

  /// Installs a violation-state rewrite applied once per candidate
  /// violation.  Used by the engine's MHP prefilter: the lattice expands a
  /// pruned suffix-free state space, and the lift re-extends each
  /// violation's state to the full union space (sound because a
  /// variable's value is cut-determined — writes to one variable are
  /// totally ordered by ≺, so a consistent cut fixes every value).
  void setStateLift(std::function<void(Violation&)> lift) {
    lift_ = std::move(lift);
  }

  /// True when some plugin wants per-node dispatch.
  [[nodiscard]] bool wantsNodes() const noexcept { return wantsNodes_; }

  /// Dispatches one completed level's nodes (sorted by cut) to every
  /// node-observing plugin; msets are interned into `msets` first.  With a
  /// pool, nodes are chunked and each chunk runs a fork() of each plugin,
  /// merged back in chunk order.
  void dispatchLevel(const detail::Frontier& frontier, std::uint64_t level,
                     MonitorSetArena& msets, parallel::ThreadPool* pool,
                     std::size_t minFrontier);

  /// Runs every plugin's raw-event hook (observed order).
  void dispatchRawEvent(const trace::Event& event,
                        const std::vector<LockId>& locksHeld);
  void dispatchObservedState(const GlobalState& state);
  /// Runs every plugin's message hook (delivery order — see onMessage).
  void dispatchMessage(const trace::Message& m);

  void finish(const LatticeStats& stats);
  [[nodiscard]] std::vector<AnalysisReport> reports() const;

 private:
  std::vector<Analysis*> plugins_;
  MonitorBus bus_;
  std::function<void(Violation&)> lift_;
  bool wantsNodes_ = false;
  /// Per-plugin "mpx_analysis_<kind>_violations_total" (telemetry ON only).
  std::unordered_map<Analysis*, telemetry::Counter*> kindCounters_;
};

}  // namespace mpx::observer
