#include "observer/lattice.hpp"

#include <algorithm>
#include <sstream>

#include "observer/observer_metrics.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::observer {

std::string Cut::toString() const {
  std::ostringstream os;
  os << 'S';
  for (const auto v : k) os << v;
  return os.str();
}

std::vector<EventRef> unwindPath(const PathPtr& path) {
  std::vector<EventRef> out;
  for (const PathNode* p = path.get(); p != nullptr; p = p->parent.get()) {
    out.push_back(p->event);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

ComputationLattice::ComputationLattice(const CausalityGraph& graph,
                                       StateSpace space, LatticeOptions opts)
    : graph_(&graph), space_(std::move(space)), opts_(opts) {
  if (!graph.finalized()) {
    throw std::logic_error("ComputationLattice: CausalityGraph not finalized");
  }
}

bool ComputationLattice::enabled(const Cut& cut, ThreadId j) const {
  if (cut.k[j] >= graph_->eventsOfThread(j)) return false;
  const trace::Message& m = graph_->message(j, cut.k[j] + 1);
  // The event is enabled iff all its causal predecessors are in the cut:
  // V[j'] <= k_j' for every other thread j' (V[j] == k_j + 1 by Theorem 3).
  for (ThreadId o = 0; o < cut.k.size(); ++o) {
    if (o == j) continue;
    if (m.clock[o] > cut.k[o]) return false;
  }
  return true;
}

const LatticeStats& ComputationLattice::build() { return run(nullptr, nullptr); }

const LatticeStats& ComputationLattice::check(
    LatticeMonitor& mon, std::vector<Violation>& violations) {
  return run(&mon, &violations);
}

namespace {

std::uint64_t saturatingAdd(std::uint64_t a, std::uint64_t b, bool& sat) {
  const std::uint64_t s = a + b;
  if (s < a) {
    sat = true;
    return ~0ull;
  }
  return s;
}

}  // namespace

const LatticeStats& ComputationLattice::run(LatticeMonitor* mon,
                                            std::vector<Violation>* violations) {
  stats_ = LatticeStats{};
  retained_.clear();

  const std::size_t n = graph_->threadCount();
  std::uint64_t maxLevel = 0;
  for (ThreadId j = 0; j < n; ++j) maxLevel += graph_->eventsOfThread(j);

  // Level 0: the initial cut and the initial global state.
  Frontier frontier;
  Node init;
  init.state = GlobalState(space_.initialValues());
  init.pathCount = 1;
  if (mon != nullptr) {
    const MonitorState m0 = mon->initial(init.state);
    init.mstates.emplace(m0, nullptr);
    if (mon->isViolating(m0) && violations != nullptr) {
      violations->push_back(
          Violation{Cut(n), init.state, m0, {}});
      if constexpr (telemetry::kEnabled) {
        ObserverMetrics::get().violations.add(1);
      }
    }
  }
  frontier.emplace(Cut(n), std::move(init));

  stats_.levels = 1;
  stats_.totalNodes = 1;
  stats_.peakLevelWidth = 1;
  stats_.peakLiveNodes = 1;
  stats_.monitorStatesPeak = mon != nullptr ? 1 : 0;
  retainLevel(0, frontier);

  for (std::uint64_t level = 0; level < maxLevel; ++level) {
    telemetry::TraceSpan span("lattice.level", "observer");
    telemetry::ScopedTimer levelTimer(ObserverMetrics::get().levelNs);
    Frontier next;
    std::size_t edges = 0;
    for (const auto& [cut, node] : frontier) {
      for (ThreadId j = 0; j < n; ++j) {
        if (!enabled(cut, j)) continue;
        ++edges;
        const trace::Message& m = graph_->message(j, cut.k[j] + 1);
        const EventRef ref{j, cut.k[j] + 1};
        Cut ncut = cut.advanced(j);

        // Apply the event's state update.
        GlobalState nstate = node.state;
        if (const auto slot = space_.slotOf(m.event.var)) {
          nstate.values[*slot] = m.event.value;
        }

        auto [it, inserted] = next.try_emplace(std::move(ncut));
        Node& child = it->second;
        if (inserted) {
          child.state = std::move(nstate);
        }
        // All paths into a cut yield the same state (writes to each
        // variable are totally ordered by ≺, so a consistent cut has a
        // unique maximal write per variable).
        child.pathCount = saturatingAdd(child.pathCount, node.pathCount,
                                        stats_.pathCountSaturated);

        if (mon != nullptr) {
          for (const auto& [ms, witness] : node.mstates) {
            const MonitorState nm = mon->advance(ms, child.state);
            if (!mon->isViolating(nm) && !mon->canEverViolate(nm)) {
              ++stats_.prunedMonitorStates;  // permanently safe: GC
              continue;
            }
            const auto found = child.mstates.find(nm);
            if (found == child.mstates.end()) {
              PathPtr npath;
              if (opts_.recordPaths) {
                npath = std::make_shared<const PathNode>(PathNode{ref, witness});
              }
              child.mstates.emplace(nm, npath);
              if (mon->isViolating(nm) && violations != nullptr &&
                  violations->size() < opts_.maxViolations) {
                violations->push_back(Violation{it->first, child.state, nm,
                                                unwindPath(npath)});
                if constexpr (telemetry::kEnabled) {
                  ObserverMetrics::get().violations.add(1);
                }
              }
            }
          }
          stats_.monitorStatesPeak =
              std::max(stats_.monitorStatesPeak, child.mstates.size());
        } else if (opts_.recordPaths && inserted) {
          child.anyPath =
              std::make_shared<const PathNode>(PathNode{ref, node.anyPath});
        }
      }
    }

    if (next.empty()) {
      // Should not happen for a consistent finalized graph, but guard.
      stats_.truncated = true;
      break;
    }
    if (opts_.beamWidth > 0 && next.size() > opts_.beamWidth) {
      // Beam approximation: keep the cuts covering the most runs.
      std::vector<const Cut*> order;
      order.reserve(next.size());
      for (const auto& [cut, node] : next) order.push_back(&cut);
      std::sort(order.begin(), order.end(),
                [&next](const Cut* a, const Cut* b) {
                  const auto pa = next.at(*a).pathCount;
                  const auto pb = next.at(*b).pathCount;
                  if (pa != pb) return pa > pb;
                  return a->k < b->k;  // deterministic tie-break
                });
      Frontier kept;
      for (std::size_t i = 0; i < opts_.beamWidth; ++i) {
        kept.emplace(*order[i], std::move(next.at(*order[i])));
      }
      stats_.beamPrunedNodes += next.size() - kept.size();
      stats_.approximated = true;
      next = std::move(kept);
    }
    if (next.size() > opts_.maxNodesPerLevel) {
      stats_.truncated = true;
      break;
    }

    stats_.totalEdges += edges;
    stats_.totalNodes += next.size();
    stats_.peakLevelWidth = std::max(stats_.peakLevelWidth, next.size());
    stats_.peakLiveNodes =
        std::max(stats_.peakLiveNodes, frontier.size() + next.size());
    ++stats_.levels;
    stats_.gcNodes += frontier.size();
    if constexpr (telemetry::kEnabled) {
      ObserverMetrics& tm = ObserverMetrics::get();
      tm.levels.add(1);
      tm.nodesCreated.add(next.size());
      tm.nodesGc.add(frontier.size());
      tm.frontierWidth.record(next.size());
      tm.monitorStatesPeak.recordMax(
          static_cast<std::int64_t>(stats_.monitorStatesPeak));
      span.arg("level", static_cast<std::int64_t>(level + 1));
      span.arg("width", static_cast<std::int64_t>(next.size()));
      span.arg("edges", static_cast<std::int64_t>(edges));
    }
    retainLevel(level + 1, next);
    frontier = std::move(next);  // sliding window: old level dies here
  }

  // The final frontier is the single complete cut; its pathCount is the
  // number of multithreaded runs.
  if (frontier.size() == 1) {
    stats_.pathCount = frontier.begin()->second.pathCount;
  }
  return stats_;
}

void ComputationLattice::retainLevel(std::uint64_t level,
                                     const Frontier& frontier) {
  if (opts_.retention != Retention::kFull) return;
  std::vector<LevelNode> nodes;
  nodes.reserve(frontier.size());
  for (const auto& [cut, node] : frontier) {
    LevelNode ln;
    ln.cut = cut;
    ln.state = node.state;
    ln.pathCount = node.pathCount;
    for (const auto& [ms, witness] : node.mstates) {
      ln.monitorStates.push_back(ms);
    }
    nodes.push_back(std::move(ln));
  }
  std::sort(nodes.begin(), nodes.end(), [](const LevelNode& a,
                                           const LevelNode& b) {
    return a.cut.k < b.cut.k;
  });
  if (retained_.size() <= level) retained_.resize(level + 1);
  retained_[level] = std::move(nodes);
}

const std::vector<std::vector<LevelNode>>& ComputationLattice::levels() const {
  if (opts_.retention != Retention::kFull) {
    throw std::logic_error(
        "ComputationLattice: levels() requires Retention::kFull");
  }
  return retained_;
}

std::string ComputationLattice::render() const {
  const auto& lv = levels();
  std::ostringstream os;
  for (std::size_t L = 0; L < lv.size(); ++L) {
    os << "Level " << L << ":";
    for (const LevelNode& node : lv[L]) {
      os << "  " << node.cut.toString() << node.state.toString();
    }
    os << '\n';
  }
  return os.str();
}

std::string ComputationLattice::renderDot() const {
  const auto& lv = levels();
  std::ostringstream os;
  os << "digraph lattice {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const auto& level : lv) {
    for (const LevelNode& node : level) {
      os << "  \"" << node.cut.toString() << "\" [label=\""
         << node.cut.toString() << "\\n" << node.state.toString() << "\"];\n";
    }
  }
  // Edges: recompute enabledness between consecutive levels.
  for (std::size_t L = 0; L + 1 < lv.size(); ++L) {
    for (const LevelNode& node : lv[L]) {
      for (ThreadId j = 0; j < node.cut.k.size(); ++j) {
        if (!enabled(node.cut, j)) continue;
        const Cut ncut = node.cut.advanced(j);
        os << "  \"" << node.cut.toString() << "\" -> \"" << ncut.toString()
           << "\";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace mpx::observer
