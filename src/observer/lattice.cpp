#include "observer/lattice.hpp"

#include <algorithm>
#include <sstream>

#include "observer/analysis.hpp"
#include "observer/budget.hpp"
#include "observer/level_expand.hpp"
#include "observer/observer_metrics.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::observer {

std::string Cut::toString() const {
  std::ostringstream os;
  os << 'S';
  for (const auto v : k) os << v;
  return os.str();
}

const char* toString(DegradationMode m) noexcept {
  switch (m) {
    case DegradationMode::kFull: return "full";
    case DegradationMode::kSampled: return "sampled";
    case DegradationMode::kObservedOnly: return "observed-only";
  }
  return "?";
}

const char* toString(BoundReason r) noexcept {
  switch (r) {
    case BoundReason::kNone: return "none";
    case BoundReason::kMemoryBudget: return "memory-budget";
    case BoundReason::kMaxFrontier: return "max-frontier";
  }
  return "?";
}

std::vector<EventRef> unwindPath(const PathPtr& path) {
  std::vector<EventRef> out;
  for (const PathNode* p = path.get(); p != nullptr; p = p->parent.get()) {
    out.push_back(p->event);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

ComputationLattice::ComputationLattice(const CausalityGraph& graph,
                                       StateSpace space, LatticeOptions opts)
    : graph_(&graph), space_(std::move(space)), opts_(opts) {
  if (!graph.finalized()) {
    throw std::logic_error("ComputationLattice: CausalityGraph not finalized");
  }
}

std::uint64_t ComputationLattice::observedPathKey(const Cut& cut) const {
  // Max globalSeq over the cut's per-thread last events.  globalSeq grows
  // along each thread, so this equals the max over ALL included events —
  // minimized exactly by the observed execution's prefix cut (budget.hpp).
  std::uint64_t key = 0;
  for (ThreadId j = 0; j < cut.k.size(); ++j) {
    if (cut.k[j] == 0) continue;
    key = std::max<std::uint64_t>(
        key, graph_->message(j, cut.k[j]).event.globalSeq);
  }
  return key;
}

bool ComputationLattice::enabled(const Cut& cut, ThreadId j) const {
  if (cut.k[j] >= graph_->eventsOfThread(j)) return false;
  const trace::Message& m = graph_->message(j, cut.k[j] + 1);
  // The event is enabled iff all its causal predecessors are in the cut:
  // V[j'] <= k_j' for every other thread j' (V[j] == k_j + 1 by Theorem 3).
  for (ThreadId o = 0; o < cut.k.size(); ++o) {
    if (o == j) continue;
    if (m.clock[o] > cut.k[o]) return false;
  }
  return true;
}

const LatticeStats& ComputationLattice::build() {
  return run(nullptr, nullptr, nullptr);
}

const LatticeStats& ComputationLattice::check(
    LatticeMonitor& mon, std::vector<Violation>& violations) {
  return run(&mon, &violations, nullptr);
}

const LatticeStats& ComputationLattice::analyze(
    AnalysisBus& bus, std::vector<Violation>& violations) {
  run(bus.monitor(), &violations, &bus);
  bus.finish(stats_);
  return stats_;
}

parallel::ThreadPool* ComputationLattice::poolForRun() {
  if (opts_.parallel.pool != nullptr) return opts_.parallel.pool;
  const std::size_t jobs = opts_.parallel.effectiveJobs();
  if (jobs <= 1) return nullptr;
  if (ownedPool_ == nullptr) {
    ownedPool_ = std::make_unique<parallel::ThreadPool>(jobs);
  }
  return ownedPool_.get();
}

const LatticeStats& ComputationLattice::run(LatticeMonitor* mon,
                                            std::vector<Violation>* violations,
                                            AnalysisBus* bus) {
  stats_ = LatticeStats{};
  retained_.clear();
  states_ = std::make_unique<StateArena>();
  msets_ = std::make_unique<MonitorSetArena>();
  parallel::ThreadPool* pool = poolForRun();

  const std::size_t n = graph_->threadCount();
  std::uint64_t maxLevel = 0;
  for (ThreadId j = 0; j < n; ++j) maxLevel += graph_->eventsOfThread(j);

  // Level 0: the initial cut and the initial global state.
  detail::Frontier frontier;
  detail::FrontierNode init;
  init.state = states_->intern(GlobalState(space_.initialValues()));
  init.pathCount = 1;
  if (mon != nullptr) {
    const MonitorState m0 = mon->initial(*init.state);
    init.mstates.emplace(m0, nullptr);
    if (mon->isViolating(m0)) {
      detail::emitViolation(violations, bus, opts_, Cut(n), *init.state, m0,
                            nullptr);
    }
  }
  frontier.emplace(Cut(n), std::move(init));

  stats_.levels = 1;
  stats_.totalNodes = 1;
  stats_.peakLevelWidth = 1;
  stats_.peakLiveNodes = 1;
  stats_.monitorStatesPeak = mon != nullptr ? 1 : 0;
  // Accounted bytes of the live working set (budget.hpp byte model).
  std::uint64_t carryBytes = detail::frontierBytes(frontier, opts_.recordPaths);
  stats_.accountedBytes = states_->bytes() + msets_->bytes() + carryBytes;
  stats_.peakAccountedBytes = stats_.accountedBytes;
  retainLevel(0, frontier);
  if (bus != nullptr) {
    bus->dispatchLevel(frontier, 0, *msets_, pool,
                       opts_.parallel.minFrontier);
  }

  const auto next = [this](const Cut& cut, ThreadId j) -> const trace::Message* {
    if (!enabled(cut, j)) return nullptr;
    return &graph_->message(j, cut.k[j] + 1);
  };

  for (std::uint64_t level = 0; level < maxLevel; ++level) {
    telemetry::TraceSpan span("lattice.level", "observer");
    telemetry::ScopedTimer levelTimer(ObserverMetrics::get().levelNs);
    std::size_t edges = 0;
    detail::Frontier next_ = detail::expandLevel(
        frontier, n, space_, mon, opts_, stats_, violations, bus, *states_,
        pool, edges, next);

    if (next_.empty()) {
      // Should not happen for a consistent finalized graph, but guard.
      stats_.truncated = true;
      break;
    }
    if (opts_.beamWidth > 0 && next_.size() > opts_.beamWidth) {
      // Beam approximation: keep the cuts covering the most runs.
      std::vector<const Cut*> order;
      order.reserve(next_.size());
      for (const auto& [cut, node] : next_) order.push_back(&cut);
      std::sort(order.begin(), order.end(),
                [&next_](const Cut* a, const Cut* b) {
                  const auto pa = next_.at(*a).pathCount;
                  const auto pb = next_.at(*b).pathCount;
                  if (pa != pb) return pa > pb;
                  return a->k < b->k;  // deterministic tie-break
                });
      detail::Frontier kept;
      for (std::size_t i = 0; i < opts_.beamWidth; ++i) {
        kept.emplace(*order[i], std::move(next_.at(*order[i])));
      }
      stats_.beamPrunedNodes += next_.size() - kept.size();
      stats_.approximated = true;
      next_ = std::move(kept);
    }
    // Degradation ladder: shed nodes (deterministically) when the level
    // pushes the accounted working set over the budget or the frontier cap.
    detail::enforceBudget(next_, opts_, stats_, level + 1,
                          states_->bytes() + msets_->bytes(), carryBytes,
                          [this](const Cut& cut) {
                            return observedPathKey(cut);
                          });
    if (next_.size() > opts_.maxNodesPerLevel) {
      stats_.truncated = true;
      break;
    }

    stats_.totalEdges += edges;
    stats_.totalNodes += next_.size();
    stats_.peakLevelWidth = std::max(stats_.peakLevelWidth, next_.size());
    stats_.peakLiveNodes =
        std::max(stats_.peakLiveNodes, frontier.size() + next_.size());
    ++stats_.levels;
    stats_.gcNodes += frontier.size();
    if constexpr (telemetry::kEnabled) {
      ObserverMetrics& tm = ObserverMetrics::get();
      tm.levels.add(1);
      tm.nodesCreated.add(next_.size());
      tm.nodesGc.add(frontier.size());
      tm.frontierWidth.record(next_.size());
      tm.monitorStatesPeak.recordMax(
          static_cast<std::int64_t>(stats_.monitorStatesPeak));
      span.arg("level", static_cast<std::int64_t>(level + 1));
      span.arg("width", static_cast<std::int64_t>(next_.size()));
      span.arg("edges", static_cast<std::int64_t>(edges));
    }
    retainLevel(level + 1, next_);
    if (bus != nullptr) {
      bus->dispatchLevel(next_, level + 1, *msets_, pool,
                         opts_.parallel.minFrontier);
    }
    carryBytes = detail::frontierBytes(next_, opts_.recordPaths);
    frontier = std::move(next_);  // sliding window: old level dies here
  }

  // The final frontier is the single complete cut; its pathCount is the
  // number of multithreaded runs.
  if (frontier.size() == 1) {
    stats_.pathCount = frontier.begin()->second.pathCount;
  }
  detail::recordInternStats(stats_, *states_, *msets_);
  return stats_;
}

void ComputationLattice::retainLevel(std::uint64_t level,
                                     const detail::Frontier& frontier) {
  if (opts_.retention != Retention::kFull) return;
  std::vector<LevelNode> nodes;
  nodes.reserve(frontier.size());
  for (const auto& [cut, node] : frontier) {
    LevelNode ln;
    ln.cut = cut;
    ln.state = *node.state;
    ln.pathCount = node.pathCount;
    for (const auto& [ms, witness] : node.mstates) {
      ln.monitorStates.push_back(ms);
    }
    nodes.push_back(std::move(ln));
  }
  std::sort(nodes.begin(), nodes.end(), [](const LevelNode& a,
                                           const LevelNode& b) {
    return a.cut.k < b.cut.k;
  });
  if (retained_.size() <= level) retained_.resize(level + 1);
  retained_[level] = std::move(nodes);
}

const std::vector<std::vector<LevelNode>>& ComputationLattice::levels() const {
  if (opts_.retention != Retention::kFull) {
    throw std::logic_error(
        "ComputationLattice: levels() requires Retention::kFull");
  }
  return retained_;
}

std::string ComputationLattice::render() const {
  const auto& lv = levels();
  std::ostringstream os;
  for (std::size_t L = 0; L < lv.size(); ++L) {
    os << "Level " << L << ":";
    for (const LevelNode& node : lv[L]) {
      os << "  " << node.cut.toString() << node.state.toString();
    }
    os << '\n';
  }
  return os.str();
}

std::string ComputationLattice::renderDot() const {
  const auto& lv = levels();
  std::ostringstream os;
  os << "digraph lattice {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const auto& level : lv) {
    for (const LevelNode& node : level) {
      os << "  \"" << node.cut.toString() << "\" [label=\""
         << node.cut.toString() << "\\n" << node.state.toString() << "\"];\n";
    }
  }
  // Edges: recompute enabledness between consecutive levels.
  for (std::size_t L = 0; L + 1 < lv.size(); ++L) {
    for (const LevelNode& node : lv[L]) {
      for (ThreadId j = 0; j < node.cut.k.size(); ++j) {
        if (!enabled(node.cut, j)) continue;
        const Cut ncut = node.cut.advanced(j);
        os << "  \"" << node.cut.toString() << "\" -> \"" << ncut.toString()
           << "\";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace mpx::observer
