// Hash-consing arenas for the lattice engine.
//
// The computation lattice visits far more cuts than distinct global states
// ("a state is a map assigning values to variables", paper §1 — many runs
// pass through the same valuation).  StateArena deduplicates GlobalStates so
// every frontier node holds a pointer into the arena: node state equality is
// pointer equality, and the two-consecutive-levels working set stores each
// distinct valuation once instead of once per cut.
//
// Invariants the engine relies on (documented in DESIGN.md §"Analysis
// plugin interface"):
//   * An interned pointer stays valid for the arena's lifetime (node-based
//     std::unordered_set storage; no rehash ever moves elements).  The
//     arena outlives every frontier built from it — one arena per
//     ComputationLattice run / OnlineAnalyzer instance.
//   * intern() is thread-safe (striped mutexes): the parallel expansion
//     path interns from pool workers.  Hit/miss totals are deterministic
//     regardless of jobs: misses == number of distinct states, and the
//     number of intern() calls is a pure function of the lattice.
//   * The arena only ever grows within a run.  Distinct states are bounded
//     by the product of per-variable value ranges actually written — in
//     practice orders of magnitude below the cut count.
//
// MonitorSetArena plays the same trick for the per-node *sets* of monitor
// states handed to analysis plugins: identical sets (extremely common —
// neighbouring cuts usually carry the same reachable-monitor-state set)
// are stored once.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "observer/global_state.hpp"

namespace mpx::observer {

/// Monotonic hit/miss tally of one arena (relaxed atomics; exact totals
/// are only read after the run quiesces).
struct InternStats {
  std::uint64_t hits = 0;    ///< intern() found the value already present
  std::uint64_t misses = 0;  ///< intern() inserted a new value
  std::size_t size = 0;      ///< distinct values resident

  [[nodiscard]] double hitRate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Accounted bytes per resident hash-table node beyond its payload: the
/// element itself plus its share of bucket array and chaining pointers.
/// Part of the deterministic byte MODEL of DESIGN.md §5c — a platform-
/// stable estimate the budget enforcer charges, not malloc truth.  Both
/// arenas and the frontier accounting (budget.hpp) charge through it, so
/// accounted totals are identical across jobs counts and platforms.
inline constexpr std::uint64_t kInternNodeBytes = 64;

/// Thread-safe hash-consing arena for GlobalState.
class StateArena {
 public:
  StateArena() = default;
  StateArena(const StateArena&) = delete;
  StateArena& operator=(const StateArena&) = delete;

  /// Returns the canonical pointer for `s`; inserts if unseen.  Two equal
  /// states always intern to the same pointer.
  const GlobalState* intern(GlobalState&& s) {
    const std::size_t h = s.hash();
    // Accounted bytes are a pure function of the inserted value, so the
    // total is deterministic: misses == distinct states for any jobs count.
    const std::uint64_t cost = kInternNodeBytes + sizeof(GlobalState) +
                               s.values.size() * sizeof(Value);
    Stripe& stripe = stripes_[h & (kStripes - 1)];
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto [it, inserted] = stripe.set.insert(std::move(s));
    if (inserted) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      bytes_.fetch_add(cost, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return &*it;
  }

  const GlobalState* intern(const GlobalState& s) {
    return intern(GlobalState(s));
  }

  /// Counts a dedup that short-circuited the table (an edge that left the
  /// state unchanged reuses the parent's pointer without a lookup).
  void noteReuse() { hits_.fetch_add(1, std::memory_order_relaxed); }

  /// Accounted bytes of every resident state under the byte model.
  /// Monotonic within a run (the arena only grows); exact for any jobs
  /// count because each distinct state is charged exactly once.
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] InternStats stats() const {
    InternStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      s.size += stripe.set.size();
    }
    return s;
  }

  // ---- Checkpoint support (observer/checkpoint.hpp) -------------------
  // misses_ and bytes_ are pure functions of the distinct values resident,
  // so restore == clear() + re-intern every snapshotted value (rebuilding
  // misses/bytes exactly) + addHits() to top the hit tally back up.  The
  // re-intern order is the snapshot's deterministic sort, which also makes
  // a restored arena's pointer assignment reproducible for the frontier.

  /// Every resident state, sorted by value (deterministic across runs and
  /// jobs counts).  Quiesced callers only — takes every stripe lock.
  [[nodiscard]] std::vector<const GlobalState*> snapshotSorted() const {
    std::vector<const GlobalState*> out;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (const GlobalState& s : stripe.set) out.push_back(&s);
    }
    std::sort(out.begin(), out.end(),
              [](const GlobalState* a, const GlobalState* b) {
                return a->values < b->values;
              });
    return out;
  }

  /// Drops every resident state and zeroes the tallies.  Only valid when
  /// nothing points into the arena anymore (restore rebuilds the frontier
  /// afterwards).
  void clear() {
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.set.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
  }

  /// Restores a checkpointed hit tally after re-interning (re-interning
  /// distinct values produces only misses).
  void addHits(std::uint64_t n) {
    hits_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;  // power of two
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_set<GlobalState, GlobalStateHash> set;
  };
  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Hash-consing arena for sorted monitor-state sets (single-threaded: the
/// engine interns sets on the orchestrator thread when a level completes).
class MonitorSetArena {
 public:
  MonitorSetArena() = default;
  MonitorSetArena(const MonitorSetArena&) = delete;
  MonitorSetArena& operator=(const MonitorSetArena&) = delete;

  /// `states` must be sorted ascending (FrontierNode::mstates iterates its
  /// keys in order, so callers get this for free).
  const std::vector<std::uint64_t>* intern(std::vector<std::uint64_t> states) {
    const std::uint64_t cost = kInternNodeBytes +
                               sizeof(std::vector<std::uint64_t>) +
                               states.size() * sizeof(std::uint64_t);
    const auto [it, inserted] = set_.insert(std::move(states));
    if (inserted) {
      ++misses_;
      bytes_ += cost;
    } else {
      ++hits_;
    }
    return &*it;
  }

  [[nodiscard]] InternStats stats() const {
    return InternStats{hits_, misses_, set_.size()};
  }

  /// Accounted bytes of every resident set under the byte model.
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

  /// Every resident set, sorted lexicographically (checkpoint support —
  /// same contract as StateArena::snapshotSorted).
  [[nodiscard]] std::vector<const std::vector<std::uint64_t>*> snapshotSorted()
      const {
    std::vector<const std::vector<std::uint64_t>*> out;
    out.reserve(set_.size());
    for (const auto& v : set_) out.push_back(&v);
    std::sort(out.begin(), out.end(),
              [](const std::vector<std::uint64_t>* a,
                 const std::vector<std::uint64_t>* b) { return *a < *b; });
    return out;
  }

  void clear() {
    set_.clear();
    hits_ = 0;
    misses_ = 0;
    bytes_ = 0;
  }

  void addHits(std::uint64_t n) { hits_ += n; }

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint64_t>& v) const noexcept {
      std::size_t h = 1469598103934665603ull;
      for (const std::uint64_t x : v) {
        h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  std::unordered_set<std::vector<std::uint64_t>, VecHash> set_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace mpx::observer
