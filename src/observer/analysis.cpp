#include "observer/analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"

namespace mpx::observer {

namespace {

/// Engine-level plugin telemetry.  Per-kind violation counters are created
/// lazily by AnalysisBus ("mpx_analysis_<kind>_violations_total").
struct AnalysisMetrics {
  telemetry::Counter& accepted;
  telemetry::Counter& rejected;
  telemetry::Histogram& nodeDispatchNs;
  telemetry::Histogram& finishNs;
  telemetry::Gauge& pluginsActive;

  static AnalysisMetrics& get() {
    static AnalysisMetrics m{
        telemetry::registry().counter(
            "mpx_analysis_violations_total",
            "Violations accepted by some analysis plugin"),
        telemetry::registry().counter(
            "mpx_analysis_violations_rejected_total",
            "Candidate violations every owning plugin rejected (e.g. "
            "dedup or failed verification)"),
        telemetry::registry().histogram(
            "mpx_analysis_node_dispatch_ns",
            "Wall time dispatching one completed level to node-observing "
            "plugins"),
        telemetry::registry().histogram(
            "mpx_analysis_finish_ns",
            "Wall time of one plugin's finish() hook"),
        telemetry::registry().gauge(
            "mpx_analysis_plugins_active",
            "Plugins attached to the most recently constructed bus"),
    };
    return m;
  }
};

}  // namespace

void MonitorBus::add(Analysis* plugin, LatticeMonitor* monitor) {
  unsigned bits = monitor->stateBits();
  if (bits == 0) bits = 1;
  if (bits > 64 || used_ + bits > 64) {
    throw std::invalid_argument(
        "MonitorBus: monitor components exceed 64 packed bits (" +
        std::to_string(used_) + " used, component wants " +
        std::to_string(bits) + ")");
  }
  Component c;
  c.plugin = plugin;
  c.monitor = monitor;
  c.shift = used_;
  c.bits = bits;
  c.mask = bits == 64 ? ~MonitorState{0} : ((MonitorState{1} << bits) - 1);
  used_ += bits;
  components_.push_back(c);
}

MonitorState MonitorBus::initial(const GlobalState& s) {
  MonitorState m = 0;
  for (const Component& c : components_) {
    m |= (c.monitor->initial(s) & c.mask) << c.shift;
  }
  return m;
}

MonitorState MonitorBus::advance(MonitorState prev, const GlobalState& s) {
  MonitorState m = 0;
  for (const Component& c : components_) {
    const MonitorState sub = (prev >> c.shift) & c.mask;
    m |= (c.monitor->advance(sub, s) & c.mask) << c.shift;
  }
  return m;
}

bool MonitorBus::isViolating(MonitorState m) const {
  for (const Component& c : components_) {
    if (c.monitor->isViolating((m >> c.shift) & c.mask)) return true;
  }
  return false;
}

bool MonitorBus::canEverViolate(MonitorState m) const {
  // A token stays live while ANY component can still violate; a dropped
  // token is permanently safe for every plugin at once.
  for (const Component& c : components_) {
    if (c.monitor->canEverViolate((m >> c.shift) & c.mask)) return true;
  }
  return false;
}

AnalysisBus::AnalysisBus(std::vector<Analysis*> plugins)
    : plugins_(std::move(plugins)) {
  for (Analysis* p : plugins_) {
    if (LatticeMonitor* mon = p->monitor()) bus_.add(p, mon);
    wantsNodes_ = wantsNodes_ || p->wantsNodes();
  }
  if constexpr (telemetry::kEnabled) {
    AnalysisMetrics::get().pluginsActive.set(
        static_cast<std::int64_t>(plugins_.size()));
    for (Analysis* p : plugins_) {
      kindCounters_.emplace(
          p, &telemetry::registry().counter(
                 "mpx_analysis_" + p->kind() + "_violations_total",
                 "Violations accepted by '" + p->kind() + "' plugins"));
    }
  }
}

bool AnalysisBus::acceptViolation(Violation& v) {
  if (lift_) lift_(v);  // full-space state BEFORE any plugin records a copy
  bool accepted = false;
  for (std::size_t i = 0; i < bus_.components().size(); ++i) {
    const MonitorBus::Component& c = bus_.components()[i];
    const MonitorState sub = bus_.extract(v.monitorState, i);
    if (!c.monitor->isViolating(sub)) continue;
    if (c.plugin->onViolation(v, sub)) {
      accepted = true;
      if constexpr (telemetry::kEnabled) {
        const auto it = kindCounters_.find(c.plugin);
        if (it != kindCounters_.end()) it->second->add(1);
      }
    }
  }
  if constexpr (telemetry::kEnabled) {
    (accepted ? AnalysisMetrics::get().accepted
              : AnalysisMetrics::get().rejected)
        .add(1);
  }
  return accepted;
}

void AnalysisBus::dispatchLevel(const detail::Frontier& frontier,
                                std::uint64_t level, MonitorSetArena& msets,
                                parallel::ThreadPool* pool,
                                std::size_t minFrontier) {
  if (!wantsNodes_) return;
  telemetry::ScopedTimer timer(AnalysisMetrics::get().nodeDispatchNs);

  // Snapshot sorted by cut: the deterministic node order every jobs count
  // observes (directly, or re-assembled by the chunk-order merge).
  std::vector<const std::pair<const Cut, detail::FrontierNode>*> items;
  items.reserve(frontier.size());
  for (const auto& kv : frontier) items.push_back(&kv);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first.k < b->first.k; });

  // Intern each node's monitor-state set (orchestrator thread: the arena
  // is single-threaded by design).
  std::vector<NodeView> views(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& [cut, node] = *items[i];
    std::vector<MonitorState> ms;
    ms.reserve(node.mstates.size());
    for (const auto& [m, witness] : node.mstates) ms.push_back(m);
    views[i] = NodeView{&cut, node.state, node.pathCount, level,
                        msets.intern(std::move(ms))};
  }

  std::vector<Analysis*> observers;
  for (Analysis* p : plugins_) {
    if (p->wantsNodes()) observers.push_back(p);
  }

  const bool concurrent = pool != nullptr && pool->workers() > 1 &&
                          views.size() >= minFrontier;
  if (concurrent) {
    const std::size_t chunks = pool->workers();
    std::vector<std::vector<std::unique_ptr<Analysis>>> forks(chunks);
    bool forkable = true;
    for (std::size_t c = 0; c < chunks && forkable; ++c) {
      for (Analysis* o : observers) {
        auto f = o->fork();
        if (f == nullptr) {
          forkable = false;  // plugin can't fork: whole level goes serial
          break;
        }
        forks[c].push_back(std::move(f));
      }
    }
    if (forkable) {
      pool->parallelFor(views.size(), [&](std::size_t begin, std::size_t end,
                                          std::size_t c) {
        for (std::size_t i = begin; i < end; ++i) {
          for (auto& f : forks[c]) f->onNode(views[i]);
        }
      });
      for (std::size_t c = 0; c < chunks; ++c) {
        for (std::size_t o = 0; o < observers.size(); ++o) {
          observers[o]->merge(*forks[c][o]);
        }
      }
      return;
    }
  }
  for (const NodeView& view : views) {
    for (Analysis* o : observers) o->onNode(view);
  }
}

void AnalysisBus::dispatchRawEvent(const trace::Event& event,
                                   const std::vector<LockId>& locksHeld) {
  for (Analysis* p : plugins_) p->onRawEvent(event, locksHeld);
}

void AnalysisBus::dispatchObservedState(const GlobalState& state) {
  for (Analysis* p : plugins_) p->onObservedState(state);
}

void AnalysisBus::dispatchMessage(const trace::Message& m) {
  for (Analysis* p : plugins_) p->onMessage(m);
}

void AnalysisBus::finish(const LatticeStats& stats) {
  for (Analysis* p : plugins_) {
    telemetry::ScopedTimer timer(AnalysisMetrics::get().finishNs);
    p->finish(stats);
  }
}

std::vector<AnalysisReport> AnalysisBus::reports() const {
  std::vector<AnalysisReport> out;
  out.reserve(plugins_.size());
  for (const Analysis* p : plugins_) out.push_back(p->report());
  return out;
}

}  // namespace mpx::observer
