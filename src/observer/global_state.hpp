// Global states as the observer sees them.
//
// Paper §1: "A state is a map assigning values to variables"; the observer
// only tracks the *relevant* variables the specification mentions (plus any
// the user asks for).  StateSpace fixes that set of variables — their ids,
// names and initial values — and GlobalState is a valuation over it.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/var_table.hpp"
#include "vc/types.hpp"

namespace mpx::observer {

/// The (ordered) set of variables whose values constitute a global state.
class StateSpace {
 public:
  StateSpace() = default;

  /// Track the given variables (in the given order), with names and initial
  /// values taken from `vars`.
  StateSpace(const trace::VarTable& vars, const std::vector<VarId>& tracked);

  /// Track variables by name.
  static StateSpace byNames(const trace::VarTable& vars,
                            const std::vector<std::string>& names);

  /// Track every data variable in the table.
  static StateSpace allData(const trace::VarTable& vars);

  [[nodiscard]] std::size_t size() const noexcept { return varIds_.size(); }
  [[nodiscard]] const std::vector<VarId>& varIds() const noexcept {
    return varIds_;
  }
  [[nodiscard]] const std::string& name(std::size_t slot) const {
    return names_.at(slot);
  }

  /// Slot of a variable id, if tracked.
  [[nodiscard]] std::optional<std::size_t> slotOf(VarId v) const {
    const auto it = slots_.find(v);
    if (it == slots_.end()) return std::nullopt;
    return it->second;
  }

  /// Slot of a variable by name; throws if unknown.
  [[nodiscard]] std::size_t slotOfName(const std::string& name) const;

  /// The initial valuation.
  [[nodiscard]] const std::vector<Value>& initialValues() const noexcept {
    return init_;
  }

 private:
  std::vector<VarId> varIds_;
  std::vector<std::string> names_;
  std::vector<Value> init_;
  std::unordered_map<VarId, std::size_t> slots_;
};

/// A valuation of the tracked variables.  Value semantics, hashable.
struct GlobalState {
  std::vector<Value> values;

  GlobalState() = default;
  explicit GlobalState(std::vector<Value> v) : values(std::move(v)) {}

  [[nodiscard]] Value operator[](std::size_t slot) const {
    return values[slot];
  }

  /// Returns a copy with `slot` set to `v` (lattice edge application).
  [[nodiscard]] GlobalState with(std::size_t slot, Value v) const {
    GlobalState s = *this;
    s.values[slot] = v;
    return s;
  }

  friend bool operator==(const GlobalState&, const GlobalState&) = default;

  [[nodiscard]] std::size_t hash() const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const Value v : values) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// "<1,1,0>" rendering, matching the paper's Fig. 5 state triples.
  [[nodiscard]] std::string toString() const;

  /// "x = 1, y = 0, z = 1" rendering with names from the state space.
  [[nodiscard]] std::string toString(const StateSpace& space) const;
};

struct GlobalStateHash {
  std::size_t operator()(const GlobalState& s) const noexcept {
    return s.hash();
  }
};

}  // namespace mpx::observer
