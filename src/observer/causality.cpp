#include "observer/causality.hpp"

#include <algorithm>
#include <sstream>

namespace mpx::observer {

void CausalityGraph::ingest(const trace::Message& m) {
  if (finalized_) {
    throw std::logic_error("CausalityGraph: ingest after finalize");
  }
  const ThreadId t = m.event.thread;
  if (t >= perThread_.size()) perThread_.resize(t + 1);
  perThread_[t].push_back(m);
  ++count_;
}

void CausalityGraph::finalize() {
  if (finalized_) return;
  for (ThreadId j = 0; j < perThread_.size(); ++j) {
    auto& stream = perThread_[j];
    // The j-th component of a thread-j message counts that thread's
    // relevant events so far — sort by it to undo channel reordering.
    std::sort(stream.begin(), stream.end(),
              [j](const trace::Message& a, const trace::Message& b) {
                return a.clock[j] < b.clock[j];
              });
    for (std::size_t k = 0; k < stream.size(); ++k) {
      if (stream[k].clock[j] != k + 1) {
        throw std::runtime_error(
            "CausalityGraph: thread " + std::to_string(j) +
            " stream has a gap or duplicate at position " +
            std::to_string(k + 1) + " (clock says " +
            std::to_string(stream[k].clock[j]) + ")");
      }
    }
  }
  finalized_ = true;
}

const trace::Message& CausalityGraph::message(ThreadId j, LocalSeq k) const {
  if (j >= perThread_.size() || k == 0 || k > perThread_[j].size()) {
    throw std::out_of_range("CausalityGraph: no event " + std::to_string(k) +
                            " on thread " + std::to_string(j));
  }
  return perThread_[j][k - 1];
}

std::span<const trace::Message> CausalityGraph::threadStream(
    ThreadId j) const {
  if (j >= perThread_.size()) return {};
  return perThread_[j];
}

bool CausalityGraph::precedes(const EventRef& a, const EventRef& b) const {
  if (a == b) return false;
  if (a.thread == b.thread) return a.index < b.index;
  // Theorem 3: e ⊳ e' iff V[i] <= V'[i], i the emitting thread of e.
  const trace::Message& ma = message(a);
  const trace::Message& mb = message(b);
  return ma.clock[a.thread] <= mb.clock[a.thread];
}

std::vector<EventRef> CausalityGraph::allEvents() const {
  std::vector<EventRef> out;
  out.reserve(count_);
  for (ThreadId j = 0; j < perThread_.size(); ++j) {
    for (LocalSeq k = 1; k <= perThread_[j].size(); ++k) {
      out.push_back(EventRef{j, k});
    }
  }
  return out;
}

std::vector<EventRef> CausalityGraph::observedOrder() const {
  std::vector<EventRef> out = allEvents();
  std::sort(out.begin(), out.end(), [this](const EventRef& a,
                                           const EventRef& b) {
    return message(a).event.globalSeq < message(b).event.globalSeq;
  });
  return out;
}

std::string CausalityGraph::renderDot(const trace::VarTable& vars) const {
  const auto all = allEvents();
  const auto nodeId = [](const EventRef& r) {
    return "e" + std::to_string(r.thread) + "_" + std::to_string(r.index);
  };

  std::ostringstream os;
  os << "digraph causality {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const EventRef& r : all) {
    const trace::Message& m = message(r);
    os << "  " << nodeId(r) << " [label=\"T" << (r.thread + 1) << ": ";
    if (m.event.accessesVariable()) {
      os << vars.name(m.event.var) << '=' << m.event.value;
    } else {
      os << trace::toString(m.event.kind);
    }
    os << "\\n" << m.clock.toString() << "\"];\n";
  }
  // Covering relation: a -> b with no c strictly between.
  for (const EventRef& a : all) {
    for (const EventRef& b : all) {
      if (!precedes(a, b)) continue;
      bool covered = false;
      for (const EventRef& c : all) {
        if (precedes(a, c) && precedes(c, b)) {
          covered = true;
          break;
        }
      }
      if (!covered) os << "  " << nodeId(a) << " -> " << nodeId(b) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace mpx::observer
