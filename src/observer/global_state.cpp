#include "observer/global_state.hpp"

#include <sstream>

namespace mpx::observer {

StateSpace::StateSpace(const trace::VarTable& vars,
                       const std::vector<VarId>& tracked) {
  varIds_ = tracked;
  for (std::size_t slot = 0; slot < tracked.size(); ++slot) {
    const VarId v = tracked[slot];
    names_.push_back(vars.name(v));
    init_.push_back(vars.initial(v));
    if (!slots_.emplace(v, slot).second) {
      throw std::invalid_argument("StateSpace: duplicate variable " +
                                  vars.name(v));
    }
  }
}

StateSpace StateSpace::byNames(const trace::VarTable& vars,
                               const std::vector<std::string>& names) {
  std::vector<VarId> ids;
  ids.reserve(names.size());
  for (const std::string& n : names) ids.push_back(vars.id(n));
  return StateSpace(vars, ids);
}

StateSpace StateSpace::allData(const trace::VarTable& vars) {
  return StateSpace(vars, vars.idsWithRole(trace::VarRole::kData));
}

std::size_t StateSpace::slotOfName(const std::string& name) const {
  for (std::size_t slot = 0; slot < names_.size(); ++slot) {
    if (names_[slot] == name) return slot;
  }
  throw std::out_of_range("StateSpace: variable '" + name + "' not tracked");
}

std::string GlobalState::toString() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  os << '>';
  return os.str();
}

std::string GlobalState::toString(const StateSpace& space) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << space.name(i) << " = " << values[i];
  }
  return os.str();
}

}  // namespace mpx::observer
