// Shared checkpoint encodings for the lattice vocabulary types.  The
// OnlineAnalyzer core and several Analysis plugins serialize the same
// Violation/EventRef/Cut shapes; keeping one encoding here keeps their
// blobs mutually consistent and the bounds checks in one place.
#pragma once

#include <cstdint>

#include "observer/checkpoint.hpp"
#include "observer/lattice_types.hpp"

namespace mpx::observer::ckpt {

inline void writeEventRef(Writer& w, const EventRef& e) {
  w.u32(e.thread);
  w.u64(e.index);
}

[[nodiscard]] inline EventRef readEventRef(Reader& r) {
  EventRef e;
  e.thread = r.u32();
  e.index = r.u64();
  return e;
}

inline void writeCut(Writer& w, const Cut& c) {
  w.u64(c.k.size());
  for (const std::uint32_t v : c.k) w.u32(v);
}

[[nodiscard]] inline Cut readCut(Reader& r) {
  Cut c;
  const std::uint64_t n = r.len(4);
  c.k.resize(static_cast<std::size_t>(n));
  for (auto& v : c.k) v = r.u32();
  return c;
}

inline void writeViolation(Writer& w, const Violation& v) {
  writeCut(w, v.cut);
  w.u64(v.state.values.size());
  for (const Value x : v.state.values) w.i64(x);
  w.u64(v.monitorState);
  w.u64(v.path.size());
  for (const EventRef& e : v.path) writeEventRef(w, e);
}

[[nodiscard]] inline Violation readViolation(Reader& r) {
  Violation v;
  v.cut = readCut(r);
  const std::uint64_t sn = r.len(8);
  v.state.values.resize(static_cast<std::size_t>(sn));
  for (auto& x : v.state.values) x = r.i64();
  v.monitorState = r.u64();
  const std::uint64_t pn = r.len(12);
  v.path.reserve(static_cast<std::size_t>(pn));
  for (std::uint64_t i = 0; i < pn && r.ok(); ++i) {
    v.path.push_back(readEventRef(r));
  }
  return v;
}

}  // namespace mpx::observer::ckpt
