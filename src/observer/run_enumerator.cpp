#include "observer/run_enumerator.hpp"

#include <stdexcept>

namespace mpx::observer {

RunEnumerator::RunEnumerator(const CausalityGraph& graph, StateSpace space)
    : graph_(&graph), space_(std::move(space)) {
  if (!graph.finalized()) {
    throw std::logic_error("RunEnumerator: CausalityGraph not finalized");
  }
}

bool RunEnumerator::enabled(const std::vector<std::uint32_t>& cut,
                            ThreadId j) const {
  if (cut[j] >= graph_->eventsOfThread(j)) return false;
  const trace::Message& m = graph_->message(j, cut[j] + 1);
  for (ThreadId o = 0; o < cut.size(); ++o) {
    if (o == j) continue;
    if (m.clock[o] > cut[o]) return false;
  }
  return true;
}

std::size_t RunEnumerator::forEachRun(
    const std::function<bool(const Run&)>& fn, std::size_t maxRuns) {
  const std::size_t n = graph_->threadCount();
  std::vector<std::uint32_t> cut(n, 0);
  Run run;
  run.states.push_back(GlobalState(space_.initialValues()));
  std::size_t visited = 0;
  dfs(cut, run, visited, maxRuns, fn);
  return visited;
}

bool RunEnumerator::dfs(std::vector<std::uint32_t>& cut, Run& run,
                        std::size_t& visited, std::size_t maxRuns,
                        const std::function<bool(const Run&)>& fn) {
  bool extended = false;
  for (ThreadId j = 0; j < cut.size(); ++j) {
    if (!enabled(cut, j)) continue;
    extended = true;

    const trace::Message& m = graph_->message(j, cut[j] + 1);
    run.events.push_back(EventRef{j, cut[j] + 1});
    GlobalState next = run.states.back();
    if (const auto slot = space_.slotOf(m.event.var)) {
      next.values[*slot] = m.event.value;
    }
    run.states.push_back(std::move(next));
    ++cut[j];

    const bool keepGoing = dfs(cut, run, visited, maxRuns, fn);

    --cut[j];
    run.states.pop_back();
    run.events.pop_back();
    if (!keepGoing) return false;
  }

  if (!extended) {
    // Maximal: a complete run.
    ++visited;
    if (!fn(run)) return false;
    if (visited >= maxRuns) return false;
  }
  return true;
}

std::vector<Run> RunEnumerator::enumerateAll(std::size_t maxRuns) {
  std::vector<Run> out;
  forEachRun(
      [&out](const Run& r) {
        out.push_back(r);
        return true;
      },
      maxRuns);
  return out;
}

bool RunEnumerator::isConsistentRun(
    const std::vector<EventRef>& events) const {
  std::vector<std::uint32_t> cut(graph_->threadCount(), 0);
  for (const EventRef& ref : events) {
    if (ref.index != cut[ref.thread] + 1) return false;
    if (!enabled(cut, ref.thread)) return false;
    ++cut[ref.thread];
  }
  return true;
}

std::vector<GlobalState> RunEnumerator::statesAlong(
    const std::vector<EventRef>& events) const {
  std::vector<GlobalState> states;
  states.push_back(GlobalState(space_.initialValues()));
  for (const EventRef& ref : events) {
    const trace::Message& m = graph_->message(ref);
    GlobalState next = states.back();
    if (const auto slot = space_.slotOf(m.event.var)) {
      next.values[*slot] = m.event.value;
    }
    states.push_back(std::move(next));
  }
  return states;
}

}  // namespace mpx::observer
