// Memory-budget accounting and the degradation ladder (DESIGN.md §5c).
//
// The paper's sliding window bounds the lattice to two consecutive levels,
// but a level's width is still worst-case exponential in thread count, so a
// wide (or hostile) trace could OOM the observer.  This module makes that
// pressure a first-class, explicitly-reported bound instead of a crash:
//
//   accounted = arena bytes (StateArena + MonitorSetArena)
//             + bytes of the previous (still live) frontier
//             + bytes of the freshly expanded frontier
//
// under a DETERMINISTIC byte model: every container node is charged a
// fixed, documented cost plus its payload (see the k*Bytes constants and
// kInternNodeBytes in intern.hpp).  The model is a platform-stable
// estimate, not malloc truth — what matters is that the same lattice
// always produces the same accounted totals, for any --jobs count and any
// message arrival order, so budget decisions are reproducible.
//
// When the accounted total exceeds LatticeOptions::memoryBudgetBytes (or a
// level exceeds maxFrontier), enforceBudget() sheds nodes from the freshly
// expanded frontier down the ladder of lattice_types.hpp:
//
//   kFull → kSampled:  a seeded hash over (degradationSeed, level, cut)
//     ranks the level's cuts and only the best-ranked `allowed` survive —
//     "causally fair": survival is independent of path counts and of
//     discovery order, so no systematic bias toward particular
//     interleavings.  The observed execution's own cut ALWAYS survives.
//   kSampled → kObservedOnly:  when even a handful of cuts no longer fits,
//     only the observed-execution cut survives each level; the analysis
//     degenerates to single-trace monitoring.  This rung is sticky.
//
// The observed-execution cut at level L is recovered without any arrival-
// order bookkeeping: the events' globalSeq stamps give the execution's
// total order, and the prefix cut of length L is exactly the consistent
// cut minimizing max(globalSeq of its per-thread last events).  Both the
// batch lattice and the online analyzer supply that key via a callback.
//
// Soundness: shedding only ever REMOVES runs from consideration.  Every
// violation the engine still reports carries a genuine witness run, so a
// BOUNDED report's violations are a subset of the exhaustive (oracle)
// set — never a superset.  What is lost is exhaustiveness, which the
// report stamps honestly (SOUND vs BOUNDED, analysis/report.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "observer/intern.hpp"
#include "observer/lattice_types.hpp"
#include "observer/observer_metrics.hpp"

namespace mpx::observer::detail {

/// Byte model of one live frontier entry: unordered_map node + FrontierNode
/// payload (pointer, path count, map header, witness pointer) + its share
/// of the bucket array.
inline constexpr std::uint64_t kFrontierNodeBytes = 96;
/// Per-component cost of the cut key stored in the node.
inline constexpr std::uint64_t kCutComponentBytes = sizeof(std::uint32_t);
/// One (MonitorState, witness) entry of a node's mstates map (rb-tree node
/// + key + shared_ptr).
inline constexpr std::uint64_t kMonitorEntryBytes = 64;
/// One witness PathNode + its control block, charged per mstates entry
/// when paths are recorded (suffix sharing makes this an upper bound per
/// entry, which is the safe direction for a budget).
inline constexpr std::uint64_t kPathNodeBytes = 48;

/// Accounted bytes of one frontier node under the byte model.
inline std::uint64_t frontierNodeBytes(const Cut& cut, const FrontierNode& node,
                                       bool recordPaths) noexcept {
  const std::uint64_t perEntry =
      kMonitorEntryBytes + (recordPaths ? kPathNodeBytes : 0);
  return kFrontierNodeBytes + cut.k.size() * kCutComponentBytes +
         node.mstates.size() * perEntry;
}

/// Accounted bytes of a whole frontier.
inline std::uint64_t frontierBytes(const Frontier& frontier,
                                   bool recordPaths) noexcept {
  std::uint64_t total = 0;
  for (const auto& [cut, node] : frontier) {
    total += frontierNodeBytes(cut, node, recordPaths);
  }
  return total;
}

/// splitmix64 finalizer: the sampler's rank function.  Pure, so the set of
/// survivors is a function of (seed, level, cut) only.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Applies the degradation ladder to a freshly expanded frontier.
///
/// `level` is the 1-based index of the level `frontier` sits at;
/// `arenaBytesNow` = StateArena::bytes() + MonitorSetArena::bytes();
/// `carryBytes` = accounted bytes of the previous frontier (still live
/// while this one was expanded); `observedKey(cut)` must return the
/// maximum globalSeq over the cut's per-thread last events (0 for the zero
/// cut) — the key whose minimum identifies the observed-execution cut.
///
/// On return `frontier` holds only the survivors, and stats carries the
/// post-shed accounting (accountedBytes, peakAccountedBytes, droppedNodes,
/// degradation, boundReason, degradedAtLevel, approximated).  Deterministic
/// across jobs and delivery orders — see the file comment.
template <typename ObservedKeyFn>
void enforceBudget(Frontier& frontier, const LatticeOptions& opts,
                   LatticeStats& stats, std::uint64_t level,
                   std::uint64_t arenaBytesNow, std::uint64_t carryBytes,
                   const ObservedKeyFn& observedKey) {
  const std::uint64_t newBytes = frontierBytes(frontier, opts.recordPaths);
  const std::uint64_t fixed = arenaBytesNow + carryBytes;

  std::size_t maxCount = frontier.size();
  BoundReason reason = BoundReason::kNone;
  if (stats.degradation == DegradationMode::kObservedOnly) {
    // Sticky deepest rung: once the analysis fell back to the observed
    // path it stays there (re-widening could not recover the runs already
    // lost, and would thrash the budget).
    maxCount = 1;
    reason = stats.boundReason;
  }
  if (opts.maxFrontier > 0 && maxCount > opts.maxFrontier) {
    maxCount = opts.maxFrontier;
    reason = BoundReason::kMaxFrontier;
  }
  const bool overBudget = opts.memoryBudgetBytes > 0 && !frontier.empty() &&
                          fixed + newBytes > opts.memoryBudgetBytes;

  if (!frontier.empty() && (maxCount < frontier.size() || overBudget)) {
    // The observed-execution cut: minimal (observedKey, cut) — kept
    // unconditionally so the run the program ACTUALLY took is analyzed to
    // the end on every rung.  It is the floor the budget is measured
    // against: if even the floor exceeds the budget nothing more can be
    // shed, and peakAccountedBytes shows by how much it overshoots.
    const Cut* observed = nullptr;
    std::uint64_t observedK = 0;
    for (const auto& [cut, node] : frontier) {
      const std::uint64_t key = observedKey(cut);
      if (observed == nullptr || key < observedK ||
          (key == observedK && cut.k < observed->k)) {
        observed = &cut;
        observedK = key;
      }
    }

    // Rank the rest by the seeded hash; survival is independent of path
    // counts and of the order nodes were discovered in.
    std::vector<const Cut*> order;
    order.reserve(frontier.size());
    for (const auto& [cut, node] : frontier) {
      if (&cut != observed) order.push_back(&cut);
    }
    const std::uint64_t levelSalt = mix64(opts.degradationSeed ^ level);
    const auto rank = [levelSalt](const Cut& c) {
      return mix64(levelSalt ^ static_cast<std::uint64_t>(c.hash()));
    };
    std::sort(order.begin(), order.end(), [&rank](const Cut* a, const Cut* b) {
      const std::uint64_t ra = rank(*a);
      const std::uint64_t rb = rank(*b);
      if (ra != rb) return ra < rb;
      return a->k < b->k;  // deterministic tie-break
    });

    // Greedy EXACT fill in rank order: survivors are the longest ranked
    // prefix whose actual bytes fit next to the fixed costs (so post-shed
    // accounted never exceeds the budget unless the floor alone does).
    std::uint64_t budgetLeft = ~std::uint64_t{0};
    if (opts.memoryBudgetBytes > 0) {
      budgetLeft = opts.memoryBudgetBytes > fixed
                       ? opts.memoryBudgetBytes - fixed
                       : 0;
    }
    Frontier kept;
    std::uint64_t keptBytes =
        frontierNodeBytes(*observed, frontier.at(*observed), opts.recordPaths);
    kept.emplace(*observed, std::move(frontier.at(*observed)));
    bool memoryBound = keptBytes > budgetLeft;
    for (const Cut* c : order) {
      if (kept.size() >= maxCount) break;
      const std::uint64_t nb =
          frontierNodeBytes(*c, frontier.at(*c), opts.recordPaths);
      if (keptBytes + nb > budgetLeft) {
        memoryBound = true;
        break;
      }
      keptBytes += nb;
      kept.emplace(*c, std::move(frontier.at(*c)));
    }
    const std::size_t dropped = frontier.size() - kept.size();
    if (memoryBound && kept.size() < maxCount) reason = BoundReason::kMemoryBudget;
    frontier = std::move(kept);

    if (dropped > 0) {
      // Degradation bookkeeping reflects RUN SHEDDING only: a frontier that
      // fits under every cap stays SOUND even when the arenas alone push
      // the accounted total over budget (nothing more could be shed).
      const DegradationMode rung = frontier.size() <= 1
                                       ? DegradationMode::kObservedOnly
                                       : DegradationMode::kSampled;
      stats.droppedNodes += dropped;
      stats.approximated = true;  // absence of violations is best-effort now
      if (stats.degradation < rung) stats.degradation = rung;
      if (stats.boundReason == BoundReason::kNone) stats.boundReason = reason;
      if (stats.degradedAtLevel == 0) stats.degradedAtLevel = level;
      if constexpr (telemetry::kEnabled) {
        ObserverMetrics& tm = ObserverMetrics::get();
        tm.degradedLevels.add(1);
        tm.degradedNodesDropped.add(dropped);
        tm.degradedMode.recordMax(static_cast<std::int64_t>(rung));
      }
    }
  }

  stats.accountedBytes =
      fixed + frontierBytes(frontier, opts.recordPaths);
  stats.peakAccountedBytes =
      std::max(stats.peakAccountedBytes, stats.accountedBytes);
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics& tm = ObserverMetrics::get();
    tm.budgetLimit.set(static_cast<std::int64_t>(opts.memoryBudgetBytes));
    tm.budgetAccounted.set(static_cast<std::int64_t>(stats.accountedBytes));
    tm.budgetPeak.recordMax(static_cast<std::int64_t>(stats.peakAccountedBytes));
  }
}

}  // namespace mpx::observer::detail
