// The observer's reconstruction of the relevant-causality partial order ⊳
// from the message stream <e, i, V> — in any delivery order.
//
// Theorem 3 (paper §3): for two emitted messages <e,i,V> and <e',i',V'>,
//     e ⊳ e'  iff  V[i] <= V'[i]  iff  V < V'.
// In particular the i-th component of a thread-i message equals the number
// of relevant events thread i has generated up to and including e, so the
// messages of one thread can be totally ordered (and gaps detected) purely
// from their clocks — no arrival-order assumptions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/channel.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"

namespace mpx::observer {

/// Identifies a relevant event as the observer knows it: the `index`-th
/// relevant event (1-based) of thread `thread`.
struct EventRef {
  ThreadId thread = kNoThread;
  LocalSeq index = 0;  // 1-based: clock[thread] of the message

  friend bool operator==(const EventRef&, const EventRef&) = default;
};

/// Accumulates messages and reconstructs ⊳.  Also a MessageSink, so a
/// Channel can deliver straight into it.
class CausalityGraph final : public trace::MessageSink {
 public:
  CausalityGraph() = default;

  void onMessage(const trace::Message& m) override { ingest(m); }
  void ingest(const trace::Message& m);

  /// Sorts per-thread streams and validates completeness (each thread's own
  /// clock components must be exactly 1..k with no gaps or duplicates).
  /// Must be called after all messages arrived, before queries.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Number of thread slots (max thread id seen + 1).
  [[nodiscard]] std::size_t threadCount() const noexcept {
    return perThread_.size();
  }

  /// Total number of relevant events.
  [[nodiscard]] std::size_t eventCount() const noexcept { return count_; }

  /// Number of relevant events of thread j.
  [[nodiscard]] std::size_t eventsOfThread(ThreadId j) const {
    return j < perThread_.size() ? perThread_[j].size() : 0;
  }

  /// The k-th (1-based) relevant event of thread j.
  [[nodiscard]] const trace::Message& message(ThreadId j, LocalSeq k) const;

  [[nodiscard]] const trace::Message& message(const EventRef& ref) const {
    return message(ref.thread, ref.index);
  }

  /// All messages of one thread in causal (= emission) order.
  [[nodiscard]] std::span<const trace::Message> threadStream(ThreadId j) const;

  /// e ⊳ e' via Theorem 3.
  [[nodiscard]] bool precedes(const EventRef& a, const EventRef& b) const;
  [[nodiscard]] bool concurrent(const EventRef& a, const EventRef& b) const {
    return !(a == b) && !precedes(a, b) && !precedes(b, a);
  }

  /// All events, in an arbitrary but fixed order (thread-major).
  [[nodiscard]] std::vector<EventRef> allEvents() const;

  /// The observed execution's own linearization of the relevant events,
  /// recovered from the events' globalSeq stamps (the observer uses this
  /// only to report which lattice path was the actually-executed one).
  [[nodiscard]] std::vector<EventRef> observedOrder() const;

  /// Graphviz rendering of ⊳'s covering relation (transitive reduction),
  /// one node per relevant event labelled "T<i+1>: var=value" with its
  /// clock.  Variable names resolve through `vars`.
  [[nodiscard]] std::string renderDot(const trace::VarTable& vars) const;

 private:
  std::vector<std::vector<trace::Message>> perThread_;
  std::size_t count_ = 0;
  bool finalized_ = false;
};

}  // namespace mpx::observer
