#include "observer/online.hpp"

#include <algorithm>
#include <stdexcept>

#include "observer/analysis.hpp"
#include "observer/budget.hpp"
#include "observer/checkpoint_codec.hpp"
#include "observer/level_expand.hpp"
#include "observer/observer_metrics.hpp"
#include "trace/codec.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::observer {

OnlineAnalyzer::OnlineAnalyzer(StateSpace space, std::size_t threads,
                               LatticeMonitor* monitor, LatticeOptions opts)
    : space_(std::move(space)), monitor_(monitor), opts_(opts) {
  buffered_.resize(threads);
  consumedK_.assign(threads, 0);
  // Level 0.
  detail::FrontierNode init;
  init.state = states_.intern(GlobalState(space_.initialValues()));
  init.pathCount = 1;
  if (monitor_ != nullptr) {
    const MonitorState m0 = monitor_->initial(*init.state);
    init.mstates.emplace(m0, nullptr);
    if (monitor_->isViolating(m0)) {
      detail::emitViolation(&violations_, bus_, opts_, Cut(threads),
                            *init.state, m0, nullptr);
    }
  }
  frontier_.emplace(Cut(threads), std::move(init));
  stats_.levels = 1;
  stats_.totalNodes = 1;
  stats_.peakLevelWidth = 1;
  stats_.peakLiveNodes = 1;
  stats_.monitorStatesPeak = monitor_ != nullptr ? 1 : 0;
  liveFrontierBytes_ = detail::frontierBytes(frontier_, opts_.recordPaths);
  stats_.accountedBytes =
      states_.bytes() + msets_.bytes() + liveFrontierBytes_;
  stats_.peakAccountedBytes = stats_.accountedBytes;
}

OnlineAnalyzer::OnlineAnalyzer(StateSpace space, std::size_t threads,
                               AnalysisBus& bus, LatticeOptions opts)
    : OnlineAnalyzer(std::move(space), threads, bus.monitor(), opts) {
  bus_ = &bus;
  // Re-run the level-0 hooks the delegated constructor could not see:
  // violation filtering at level 0 is a no-op to redo (an initial monitor
  // state violating at Cut(0..0) is emitted by the delegatee unfiltered
  // only when no bus is attached — here the bus existed too late, so
  // offer it now), and node-observing plugins get the initial node.
  if (!violations_.empty()) {
    // Rare: the property is violated by the initial state itself.  The
    // delegatee recorded it without consulting the plugins; offer it and
    // drop it when every owner rejects.
    if (!bus_->acceptViolation(violations_.front())) violations_.clear();
  }
  bus_->dispatchLevel(frontier_, 0, msets_, nullptr,
                      opts_.parallel.minFrontier);
}

std::uint64_t OnlineAnalyzer::observedPathKey(const Cut& cut) const {
  // Mirrors ComputationLattice::observedPathKey: max globalSeq over the
  // cut's per-thread last events.  A frontier cut only includes events
  // that already arrived, so find() never misses here.
  std::uint64_t key = 0;
  for (ThreadId j = 0; j < cut.k.size(); ++j) {
    if (cut.k[j] == 0) continue;
    const trace::Message* m = find(j, cut.k[j]);
    if (m != nullptr) {
      key = std::max<std::uint64_t>(key, m->event.globalSeq);
    }
  }
  return key;
}

const trace::Message* OnlineAnalyzer::find(ThreadId j, LocalSeq k) const {
  if (j >= buffered_.size()) return nullptr;
  const auto it = buffered_[j].find(k);
  return it == buffered_[j].end() ? nullptr : &it->second;
}

void OnlineAnalyzer::onMessage(const trace::Message& m) {
  if (ended_) {
    throw std::logic_error("OnlineAnalyzer: message after endOfTrace");
  }
  const ThreadId j = m.event.thread;
  const LocalSeq k = m.clock[j];
  if (k == 0) {
    throw std::runtime_error(
        "OnlineAnalyzer: message clock has zero own-component");
  }
  if (j >= buffered_.size()) {
    throw std::runtime_error(
        "OnlineAnalyzer: message from thread " + std::to_string(j) +
        " beyond the declared thread count " +
        std::to_string(buffered_.size()));
  }
  if (!buffered_[j].emplace(k, m).second) {
    throw std::runtime_error("OnlineAnalyzer: duplicate message for thread " +
                             std::to_string(j) + " index " +
                             std::to_string(k));
  }
  ++pending_;
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics::get().backlogHwm.recordMax(
        static_cast<std::int64_t>(pending_));
  }
  tryAdvance();
}

void OnlineAnalyzer::endOfTrace() {
  if (ended_) return;
  ended_ = true;
  tryAdvance();
  if (!finished_) {
    throw std::runtime_error(
        "OnlineAnalyzer: trace ended with gaps — " +
        std::to_string(pending_) + " messages unusable");
  }
}

bool OnlineAnalyzer::enabled(const Cut& cut, ThreadId j,
                             const trace::Message& m) const {
  for (ThreadId o = 0; o < cut.k.size(); ++o) {
    if (o == j) continue;
    if (m.clock[o] > cut.k[o]) return false;
  }
  return true;
}

bool OnlineAnalyzer::canExpand() const {
  // The next level is computable when, for every frontier cut and thread,
  // the candidate next event (j, k_j + 1) is either buffered or known not
  // to exist (trace ended and the thread's stream stops earlier).
  bool anySuccessor = false;
  for (const auto& [cut, node] : frontier_) {
    for (ThreadId j = 0; j < cut.k.size(); ++j) {
      const trace::Message* next = find(j, cut.k[j] + 1);
      if (next != nullptr) {
        anySuccessor = true;
        continue;
      }
      if (!ended_) return false;  // might still arrive
    }
  }
  if (buffered_.empty() && !ended_) return false;
  return anySuccessor;
}

parallel::ThreadPool* OnlineAnalyzer::poolForRun() {
  if (opts_.parallel.pool != nullptr) return opts_.parallel.pool;
  const std::size_t jobs = opts_.parallel.effectiveJobs();
  if (jobs <= 1) return nullptr;
  if (ownedPool_ == nullptr) {
    ownedPool_ = std::make_unique<parallel::ThreadPool>(jobs);
  }
  return ownedPool_.get();
}

void OnlineAnalyzer::expandOneLevel() {
  telemetry::TraceSpan span("online.level", "observer");
  telemetry::ScopedTimer levelTimer(ObserverMetrics::get().levelNs);
  const auto nextMsg =
      [this](const Cut& cut, ThreadId j) -> const trace::Message* {
    const trace::Message* m = find(j, cut.k[j] + 1);
    if (m == nullptr || !enabled(cut, j, *m)) return nullptr;
    return m;
  };
  const std::size_t violationsBefore = violations_.size();
  const DegradationMode degradationBefore = stats_.degradation;
  std::size_t edges = 0;
  detail::Frontier next = detail::expandLevel(
      frontier_, buffered_.size(), space_, monitor_, opts_, stats_,
      &violations_, bus_, states_, poolForRun(), edges, nextMsg);
  // Degradation ladder: shed nodes (deterministically) when the level
  // pushes the accounted working set over the budget or the frontier cap.
  // stats_.levels is the pre-increment count, so `next` sits at level
  // stats_.levels — the same index the batch lattice passes (level + 1),
  // which keeps the sampled survivor sets identical between the two.
  detail::enforceBudget(next, opts_, stats_, stats_.levels,
                        states_.bytes() + msets_.bytes(), liveFrontierBytes_,
                        [this](const Cut& cut) {
                          return observedPathKey(cut);
                        });

  // Consume: every event at the frontier's level is now folded in.  Each
  // expansion uses one message per thread-successor; the per-level message
  // consumption equals the number of distinct (j, k) pairs at this level,
  // which is exactly the set of events whose EventRef appears.  We simply
  // recompute pending_ from the high-water marks below.
  stats_.totalEdges += edges;
  stats_.totalNodes += next.size();
  stats_.peakLevelWidth = std::max(stats_.peakLevelWidth, next.size());
  stats_.peakLiveNodes =
      std::max(stats_.peakLiveNodes, frontier_.size() + next.size());
  ++stats_.levels;
  stats_.gcNodes += frontier_.size();
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics& tm = ObserverMetrics::get();
    tm.levels.add(1);
    tm.nodesCreated.add(next.size());
    tm.nodesGc.add(frontier_.size());
    tm.frontierWidth.record(next.size());
    tm.monitorStatesPeak.recordMax(
        static_cast<std::int64_t>(stats_.monitorStatesPeak));
    span.arg("level", static_cast<std::int64_t>(stats_.levels - 1));
    span.arg("width", static_cast<std::int64_t>(next.size()));
    span.arg("edges", static_cast<std::int64_t>(edges));
  }
  liveFrontierBytes_ = detail::frontierBytes(next, opts_.recordPaths);
  frontier_ = std::move(next);
  if (bus_ != nullptr && frontier_.size() <= opts_.maxNodesPerLevel) {
    // Matches the batch lattice: a level that trips the width cap is
    // dropped, not dispatched.
    bus_->dispatchLevel(frontier_, stats_.levels - 1, msets_, poolForRun(),
                        opts_.parallel.minFrontier);
  }

  // Recompute pending: messages with index > max frontier k for their
  // thread are still pending; consumed ones could be dropped here (true
  // GC) — we keep them for path reconstruction but count precisely.  The
  // per-thread maxima double as the consumption watermark the daemon
  // measures emit-to-analyze lag against.
  std::vector<LocalSeq> maxK(buffered_.size(), 0);
  for (const auto& [cut, node] : frontier_) {
    for (ThreadId j = 0; j < cut.k.size(); ++j) {
      maxK[j] = std::max<LocalSeq>(maxK[j], cut.k[j]);
    }
  }
  pending_ = 0;
  for (ThreadId j = 0; j < buffered_.size(); ++j) {
    for (const auto& [k, m] : buffered_[j]) {
      if (k > maxK[j]) ++pending_;
    }
  }
  consumedK_ = std::move(maxK);

  // Flight-recorder breadcrumbs: one record per level, plus rung changes
  // and fresh violations (the post-mortem story of the run).
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEvent::kLevel, stats_.levels - 1, frontier_.size());
  if (stats_.degradation != degradationBefore) {
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kDegradation,
        static_cast<std::uint64_t>(stats_.degradation),
        static_cast<std::uint64_t>(stats_.boundReason));
  }
  for (std::size_t i = violationsBefore; i < violations_.size(); ++i) {
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kViolation, stats_.levels - 1);
  }
}

namespace {

/// Layout version of the OnlineAnalyzer checkpoint blob.
constexpr std::uint8_t kAnalyzerCkptVersion = 1;

void writeStats(ckpt::Writer& w, const LatticeStats& s) {
  w.u64(s.levels);
  w.u64(s.totalNodes);
  w.u64(s.totalEdges);
  w.u64(s.peakLevelWidth);
  w.u64(s.peakLiveNodes);
  w.u64(s.gcNodes);
  w.u64(s.pathCount);
  w.boolean(s.pathCountSaturated);
  w.boolean(s.truncated);
  w.u64(s.monitorStatesPeak);
  w.u64(s.prunedMonitorStates);
  w.u64(s.beamPrunedNodes);
  w.boolean(s.approximated);
  w.u64(s.internHits);
  w.u64(s.internMisses);
  w.u64(s.internedStates);
  w.u64(s.msetInternHits);
  w.u64(s.msetInternMisses);
  w.u64(s.accountedBytes);
  w.u64(s.peakAccountedBytes);
  w.u64(s.droppedNodes);
  w.u64(s.degradedAtLevel);
  w.u8(static_cast<std::uint8_t>(s.degradation));
  w.u8(static_cast<std::uint8_t>(s.boundReason));
}

bool readStats(ckpt::Reader& r, LatticeStats& s) {
  s.levels = static_cast<std::size_t>(r.u64());
  s.totalNodes = static_cast<std::size_t>(r.u64());
  s.totalEdges = static_cast<std::size_t>(r.u64());
  s.peakLevelWidth = static_cast<std::size_t>(r.u64());
  s.peakLiveNodes = static_cast<std::size_t>(r.u64());
  s.gcNodes = static_cast<std::size_t>(r.u64());
  s.pathCount = r.u64();
  s.pathCountSaturated = r.boolean();
  s.truncated = r.boolean();
  s.monitorStatesPeak = static_cast<std::size_t>(r.u64());
  s.prunedMonitorStates = static_cast<std::size_t>(r.u64());
  s.beamPrunedNodes = static_cast<std::size_t>(r.u64());
  s.approximated = r.boolean();
  s.internHits = r.u64();
  s.internMisses = r.u64();
  s.internedStates = static_cast<std::size_t>(r.u64());
  s.msetInternHits = r.u64();
  s.msetInternMisses = r.u64();
  s.accountedBytes = r.u64();
  s.peakAccountedBytes = r.u64();
  s.droppedNodes = r.u64();
  s.degradedAtLevel = r.u64();
  const std::uint8_t deg = r.u8();
  const std::uint8_t reason = r.u8();
  if (deg > static_cast<std::uint8_t>(DegradationMode::kObservedOnly) ||
      reason > static_cast<std::uint8_t>(BoundReason::kMaxFrontier)) {
    return false;
  }
  s.degradation = static_cast<DegradationMode>(deg);
  s.boundReason = static_cast<BoundReason>(reason);
  return r.ok();
}

}  // namespace

void OnlineAnalyzer::checkpoint(ckpt::Writer& w) const {
  w.u8(kAnalyzerCkptVersion);
  w.u64(buffered_.size());
  w.boolean(ended_);
  w.boolean(finished_);
  w.u64(pending_);
  for (const LocalSeq k : consumedK_) w.u64(k);

  // Buffered messages, per thread in index order, each self-delimited by
  // an explicit length so the reader can bound its copy.
  for (ThreadId j = 0; j < buffered_.size(); ++j) {
    std::vector<LocalSeq> keys;
    keys.reserve(buffered_[j].size());
    for (const auto& [k, m] : buffered_[j]) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const LocalSeq k : keys) {
      w.u64(k);
      std::vector<std::uint8_t> enc;
      trace::BinaryCodec::encode(buffered_[j].at(k), enc);
      w.u64(enc.size());
      w.bytes(enc.data(), enc.size());
    }
  }

  // Both arenas: every distinct value in sorted order, plus the hit tally.
  // Restore re-interns in this exact order, which (a) rebuilds misses and
  // accounted bytes exactly and (b) makes pointer assignment deterministic
  // so the frontier below can reference states by index.
  const auto states = states_.snapshotSorted();
  std::unordered_map<const GlobalState*, std::uint64_t> stateIndex;
  stateIndex.reserve(states.size());
  w.u64(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    stateIndex.emplace(states[i], i);
    w.u64(states[i]->values.size());
    for (const Value v : states[i]->values) w.i64(v);
  }
  w.u64(states_.stats().hits);

  const auto msets = msets_.snapshotSorted();
  w.u64(msets.size());
  for (const auto* mv : msets) {
    w.u64(mv->size());
    for (const std::uint64_t x : *mv) w.u64(x);
  }
  w.u64(msets_.stats().hits);

  // Witness-path DAG reachable from the frontier, parents before children
  // (persistent shared-suffix chains; each node written once).  Id 0 is
  // the null path.
  std::vector<const detail::Frontier::value_type*> sorted;
  sorted.reserve(frontier_.size());
  for (const auto& kv : frontier_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first.k < b->first.k; });
  std::unordered_map<const PathNode*, std::uint64_t> pathIds;
  std::vector<const PathNode*> pathOrder;
  const auto visitPath = [&](const PathPtr& p) {
    std::vector<const PathNode*> chain;
    for (const PathNode* n = p.get();
         n != nullptr && pathIds.find(n) == pathIds.end();
         n = n->parent.get()) {
      chain.push_back(n);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      pathIds.emplace(*it, pathOrder.size() + 1);
      pathOrder.push_back(*it);
    }
  };
  for (const auto* kv : sorted) {
    visitPath(kv->second.anyPath);
    for (const auto& [ms, p] : kv->second.mstates) visitPath(p);
  }
  const auto pathIdOf = [&](const PathPtr& p) -> std::uint64_t {
    return p == nullptr ? 0 : pathIds.at(p.get());
  };
  w.u64(pathOrder.size());
  for (const PathNode* n : pathOrder) {
    ckpt::writeEventRef(w, n->event);
    w.u64(n->parent == nullptr ? 0 : pathIds.at(n->parent.get()));
  }

  // The live frontier, sorted by cut.
  w.u64(sorted.size());
  for (const auto* kv : sorted) {
    w.u64(kv->first.k.size());
    for (const std::uint32_t c : kv->first.k) w.u32(c);
    w.u64(stateIndex.at(kv->second.state));
    w.u64(kv->second.pathCount);
    w.u64(kv->second.mstates.size());
    for (const auto& [ms, p] : kv->second.mstates) {
      w.u64(ms);
      w.u64(pathIdOf(p));
    }
    w.u64(pathIdOf(kv->second.anyPath));
  }
  w.u64(liveFrontierBytes_);

  writeStats(w, stats_);

  w.u64(violations_.size());
  for (const Violation& v : violations_) ckpt::writeViolation(w, v);
}

bool OnlineAnalyzer::restore(ckpt::Reader& r) {
  if (r.u8() != kAnalyzerCkptVersion) return false;
  if (r.u64() != buffered_.size()) return false;
  ended_ = r.boolean();
  finished_ = r.boolean();
  pending_ = static_cast<std::size_t>(r.u64());
  consumedK_.assign(buffered_.size(), 0);
  for (ThreadId j = 0; j < buffered_.size(); ++j) consumedK_[j] = r.u64();

  for (ThreadId j = 0; j < buffered_.size(); ++j) {
    buffered_[j].clear();
    const std::uint64_t count = r.len(16);
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const LocalSeq k = r.u64();
      const std::uint64_t encLen = r.len(1);
      std::vector<std::uint8_t> enc(static_cast<std::size_t>(encLen));
      if (!r.raw(enc.data(), enc.size())) return false;
      const auto dec = trace::BinaryCodec::tryDecode(enc.data(), enc.size());
      if (dec.status != trace::DecodeStatus::kOk ||
          dec.consumed != enc.size()) {
        return false;
      }
      if (k == 0 || !buffered_[j].emplace(k, dec.message).second) return false;
    }
  }

  states_.clear();
  std::vector<const GlobalState*> statesByIndex;
  const std::uint64_t stateCount = r.len(8);
  statesByIndex.reserve(static_cast<std::size_t>(stateCount));
  for (std::uint64_t i = 0; i < stateCount && r.ok(); ++i) {
    const std::uint64_t n = r.len(8);
    std::vector<Value> values(static_cast<std::size_t>(n));
    for (auto& v : values) v = r.i64();
    statesByIndex.push_back(states_.intern(GlobalState(std::move(values))));
  }
  states_.addHits(r.u64());

  msets_.clear();
  const std::uint64_t msetCount = r.len(8);
  for (std::uint64_t i = 0; i < msetCount && r.ok(); ++i) {
    const std::uint64_t n = r.len(8);
    std::vector<std::uint64_t> set(static_cast<std::size_t>(n));
    for (auto& x : set) x = r.u64();
    msets_.intern(std::move(set));
  }
  msets_.addHits(r.u64());

  const std::uint64_t pathCount = r.len(8);
  std::vector<PathPtr> paths(static_cast<std::size_t>(pathCount) + 1);
  for (std::uint64_t i = 1; i <= pathCount && r.ok(); ++i) {
    const EventRef e = ckpt::readEventRef(r);
    const std::uint64_t parent = r.u64();
    if (parent >= i) return false;  // parents precede children
    paths[static_cast<std::size_t>(i)] = std::make_shared<const PathNode>(
        PathNode{e, paths[static_cast<std::size_t>(parent)]});
  }
  const auto pathAt = [&](std::uint64_t id) -> PathPtr {
    if (id > pathCount) {
      r.fail();
      return nullptr;
    }
    return paths[static_cast<std::size_t>(id)];
  };

  frontier_.clear();
  const std::uint64_t frontierCount = r.len(8);
  for (std::uint64_t i = 0; i < frontierCount && r.ok(); ++i) {
    Cut cut;
    const std::uint64_t n = r.len(4);
    if (n != buffered_.size()) return false;
    cut.k.resize(static_cast<std::size_t>(n));
    for (auto& c : cut.k) c = r.u32();
    detail::FrontierNode node;
    const std::uint64_t stateIdx = r.u64();
    if (stateIdx >= statesByIndex.size()) return false;
    node.state = statesByIndex[static_cast<std::size_t>(stateIdx)];
    node.pathCount = r.u64();
    const std::uint64_t mcount = r.len(16);
    for (std::uint64_t m = 0; m < mcount && r.ok(); ++m) {
      const MonitorState ms = r.u64();
      node.mstates.emplace(ms, pathAt(r.u64()));
    }
    node.anyPath = pathAt(r.u64());
    if (!frontier_.emplace(std::move(cut), std::move(node)).second) {
      return false;
    }
  }
  liveFrontierBytes_ = r.u64();

  if (!readStats(r, stats_)) return false;

  violations_.clear();
  const std::uint64_t vcount = r.len(8);
  for (std::uint64_t i = 0; i < vcount && r.ok(); ++i) {
    violations_.push_back(ckpt::readViolation(r));
  }
  return r.ok();
}

void OnlineAnalyzer::finalize() {
  finished_ = true;
  detail::recordInternStats(stats_, states_, msets_);
  if (bus_ != nullptr) bus_->finish(stats_);
}

void OnlineAnalyzer::tryAdvance() {
  while (!finished_ && canExpand()) {
    expandOneLevel();
    if (frontier_.size() > opts_.maxNodesPerLevel) {
      stats_.truncated = true;
      finalize();
      return;
    }
  }
  if (ended_ && !finished_) {
    // Finished when the frontier is the single complete cut: no thread has
    // a buffered successor.
    bool complete = frontier_.size() == 1;
    if (complete) {
      const Cut& cut = frontier_.begin()->first;
      for (ThreadId j = 0; j < cut.k.size(); ++j) {
        if (find(j, cut.k[j] + 1) != nullptr) complete = false;
      }
      // Also require no stray unconsumed messages (gap detection).
      if (complete && pending_ == 0) {
        stats_.pathCount = frontier_.begin()->second.pathCount;
        finalize();
      }
    }
  }
}

}  // namespace mpx::observer
