#include "observer/online.hpp"

#include <algorithm>
#include <stdexcept>

#include "observer/analysis.hpp"
#include "observer/budget.hpp"
#include "observer/level_expand.hpp"
#include "observer/observer_metrics.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::observer {

OnlineAnalyzer::OnlineAnalyzer(StateSpace space, std::size_t threads,
                               LatticeMonitor* monitor, LatticeOptions opts)
    : space_(std::move(space)), monitor_(monitor), opts_(opts) {
  buffered_.resize(threads);
  consumedK_.assign(threads, 0);
  // Level 0.
  detail::FrontierNode init;
  init.state = states_.intern(GlobalState(space_.initialValues()));
  init.pathCount = 1;
  if (monitor_ != nullptr) {
    const MonitorState m0 = monitor_->initial(*init.state);
    init.mstates.emplace(m0, nullptr);
    if (monitor_->isViolating(m0)) {
      detail::emitViolation(&violations_, bus_, opts_, Cut(threads),
                            *init.state, m0, nullptr);
    }
  }
  frontier_.emplace(Cut(threads), std::move(init));
  stats_.levels = 1;
  stats_.totalNodes = 1;
  stats_.peakLevelWidth = 1;
  stats_.peakLiveNodes = 1;
  stats_.monitorStatesPeak = monitor_ != nullptr ? 1 : 0;
  liveFrontierBytes_ = detail::frontierBytes(frontier_, opts_.recordPaths);
  stats_.accountedBytes =
      states_.bytes() + msets_.bytes() + liveFrontierBytes_;
  stats_.peakAccountedBytes = stats_.accountedBytes;
}

OnlineAnalyzer::OnlineAnalyzer(StateSpace space, std::size_t threads,
                               AnalysisBus& bus, LatticeOptions opts)
    : OnlineAnalyzer(std::move(space), threads, bus.monitor(), opts) {
  bus_ = &bus;
  // Re-run the level-0 hooks the delegated constructor could not see:
  // violation filtering at level 0 is a no-op to redo (an initial monitor
  // state violating at Cut(0..0) is emitted by the delegatee unfiltered
  // only when no bus is attached — here the bus existed too late, so
  // offer it now), and node-observing plugins get the initial node.
  if (!violations_.empty()) {
    // Rare: the property is violated by the initial state itself.  The
    // delegatee recorded it without consulting the plugins; offer it and
    // drop it when every owner rejects.
    if (!bus_->acceptViolation(violations_.front())) violations_.clear();
  }
  bus_->dispatchLevel(frontier_, 0, msets_, nullptr,
                      opts_.parallel.minFrontier);
}

std::uint64_t OnlineAnalyzer::observedPathKey(const Cut& cut) const {
  // Mirrors ComputationLattice::observedPathKey: max globalSeq over the
  // cut's per-thread last events.  A frontier cut only includes events
  // that already arrived, so find() never misses here.
  std::uint64_t key = 0;
  for (ThreadId j = 0; j < cut.k.size(); ++j) {
    if (cut.k[j] == 0) continue;
    const trace::Message* m = find(j, cut.k[j]);
    if (m != nullptr) {
      key = std::max<std::uint64_t>(key, m->event.globalSeq);
    }
  }
  return key;
}

const trace::Message* OnlineAnalyzer::find(ThreadId j, LocalSeq k) const {
  if (j >= buffered_.size()) return nullptr;
  const auto it = buffered_[j].find(k);
  return it == buffered_[j].end() ? nullptr : &it->second;
}

void OnlineAnalyzer::onMessage(const trace::Message& m) {
  if (ended_) {
    throw std::logic_error("OnlineAnalyzer: message after endOfTrace");
  }
  const ThreadId j = m.event.thread;
  const LocalSeq k = m.clock[j];
  if (k == 0) {
    throw std::runtime_error(
        "OnlineAnalyzer: message clock has zero own-component");
  }
  if (j >= buffered_.size()) {
    throw std::runtime_error(
        "OnlineAnalyzer: message from thread " + std::to_string(j) +
        " beyond the declared thread count " +
        std::to_string(buffered_.size()));
  }
  if (!buffered_[j].emplace(k, m).second) {
    throw std::runtime_error("OnlineAnalyzer: duplicate message for thread " +
                             std::to_string(j) + " index " +
                             std::to_string(k));
  }
  ++pending_;
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics::get().backlogHwm.recordMax(
        static_cast<std::int64_t>(pending_));
  }
  tryAdvance();
}

void OnlineAnalyzer::endOfTrace() {
  if (ended_) return;
  ended_ = true;
  tryAdvance();
  if (!finished_) {
    throw std::runtime_error(
        "OnlineAnalyzer: trace ended with gaps — " +
        std::to_string(pending_) + " messages unusable");
  }
}

bool OnlineAnalyzer::enabled(const Cut& cut, ThreadId j,
                             const trace::Message& m) const {
  for (ThreadId o = 0; o < cut.k.size(); ++o) {
    if (o == j) continue;
    if (m.clock[o] > cut.k[o]) return false;
  }
  return true;
}

bool OnlineAnalyzer::canExpand() const {
  // The next level is computable when, for every frontier cut and thread,
  // the candidate next event (j, k_j + 1) is either buffered or known not
  // to exist (trace ended and the thread's stream stops earlier).
  bool anySuccessor = false;
  for (const auto& [cut, node] : frontier_) {
    for (ThreadId j = 0; j < cut.k.size(); ++j) {
      const trace::Message* next = find(j, cut.k[j] + 1);
      if (next != nullptr) {
        anySuccessor = true;
        continue;
      }
      if (!ended_) return false;  // might still arrive
    }
  }
  if (buffered_.empty() && !ended_) return false;
  return anySuccessor;
}

parallel::ThreadPool* OnlineAnalyzer::poolForRun() {
  if (opts_.parallel.pool != nullptr) return opts_.parallel.pool;
  const std::size_t jobs = opts_.parallel.effectiveJobs();
  if (jobs <= 1) return nullptr;
  if (ownedPool_ == nullptr) {
    ownedPool_ = std::make_unique<parallel::ThreadPool>(jobs);
  }
  return ownedPool_.get();
}

void OnlineAnalyzer::expandOneLevel() {
  telemetry::TraceSpan span("online.level", "observer");
  telemetry::ScopedTimer levelTimer(ObserverMetrics::get().levelNs);
  const auto nextMsg =
      [this](const Cut& cut, ThreadId j) -> const trace::Message* {
    const trace::Message* m = find(j, cut.k[j] + 1);
    if (m == nullptr || !enabled(cut, j, *m)) return nullptr;
    return m;
  };
  const std::size_t violationsBefore = violations_.size();
  const DegradationMode degradationBefore = stats_.degradation;
  std::size_t edges = 0;
  detail::Frontier next = detail::expandLevel(
      frontier_, buffered_.size(), space_, monitor_, opts_, stats_,
      &violations_, bus_, states_, poolForRun(), edges, nextMsg);
  // Degradation ladder: shed nodes (deterministically) when the level
  // pushes the accounted working set over the budget or the frontier cap.
  // stats_.levels is the pre-increment count, so `next` sits at level
  // stats_.levels — the same index the batch lattice passes (level + 1),
  // which keeps the sampled survivor sets identical between the two.
  detail::enforceBudget(next, opts_, stats_, stats_.levels,
                        states_.bytes() + msets_.bytes(), liveFrontierBytes_,
                        [this](const Cut& cut) {
                          return observedPathKey(cut);
                        });

  // Consume: every event at the frontier's level is now folded in.  Each
  // expansion uses one message per thread-successor; the per-level message
  // consumption equals the number of distinct (j, k) pairs at this level,
  // which is exactly the set of events whose EventRef appears.  We simply
  // recompute pending_ from the high-water marks below.
  stats_.totalEdges += edges;
  stats_.totalNodes += next.size();
  stats_.peakLevelWidth = std::max(stats_.peakLevelWidth, next.size());
  stats_.peakLiveNodes =
      std::max(stats_.peakLiveNodes, frontier_.size() + next.size());
  ++stats_.levels;
  stats_.gcNodes += frontier_.size();
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics& tm = ObserverMetrics::get();
    tm.levels.add(1);
    tm.nodesCreated.add(next.size());
    tm.nodesGc.add(frontier_.size());
    tm.frontierWidth.record(next.size());
    tm.monitorStatesPeak.recordMax(
        static_cast<std::int64_t>(stats_.monitorStatesPeak));
    span.arg("level", static_cast<std::int64_t>(stats_.levels - 1));
    span.arg("width", static_cast<std::int64_t>(next.size()));
    span.arg("edges", static_cast<std::int64_t>(edges));
  }
  liveFrontierBytes_ = detail::frontierBytes(next, opts_.recordPaths);
  frontier_ = std::move(next);
  if (bus_ != nullptr && frontier_.size() <= opts_.maxNodesPerLevel) {
    // Matches the batch lattice: a level that trips the width cap is
    // dropped, not dispatched.
    bus_->dispatchLevel(frontier_, stats_.levels - 1, msets_, poolForRun(),
                        opts_.parallel.minFrontier);
  }

  // Recompute pending: messages with index > max frontier k for their
  // thread are still pending; consumed ones could be dropped here (true
  // GC) — we keep them for path reconstruction but count precisely.  The
  // per-thread maxima double as the consumption watermark the daemon
  // measures emit-to-analyze lag against.
  std::vector<LocalSeq> maxK(buffered_.size(), 0);
  for (const auto& [cut, node] : frontier_) {
    for (ThreadId j = 0; j < cut.k.size(); ++j) {
      maxK[j] = std::max<LocalSeq>(maxK[j], cut.k[j]);
    }
  }
  pending_ = 0;
  for (ThreadId j = 0; j < buffered_.size(); ++j) {
    for (const auto& [k, m] : buffered_[j]) {
      if (k > maxK[j]) ++pending_;
    }
  }
  consumedK_ = std::move(maxK);

  // Flight-recorder breadcrumbs: one record per level, plus rung changes
  // and fresh violations (the post-mortem story of the run).
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEvent::kLevel, stats_.levels - 1, frontier_.size());
  if (stats_.degradation != degradationBefore) {
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kDegradation,
        static_cast<std::uint64_t>(stats_.degradation),
        static_cast<std::uint64_t>(stats_.boundReason));
  }
  for (std::size_t i = violationsBefore; i < violations_.size(); ++i) {
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kViolation, stats_.levels - 1);
  }
}

void OnlineAnalyzer::finalize() {
  finished_ = true;
  detail::recordInternStats(stats_, states_, msets_);
  if (bus_ != nullptr) bus_->finish(stats_);
}

void OnlineAnalyzer::tryAdvance() {
  while (!finished_ && canExpand()) {
    expandOneLevel();
    if (frontier_.size() > opts_.maxNodesPerLevel) {
      stats_.truncated = true;
      finalize();
      return;
    }
  }
  if (ended_ && !finished_) {
    // Finished when the frontier is the single complete cut: no thread has
    // a buffered successor.
    bool complete = frontier_.size() == 1;
    if (complete) {
      const Cut& cut = frontier_.begin()->first;
      for (ThreadId j = 0; j < cut.k.size(); ++j) {
        if (find(j, cut.k[j] + 1) != nullptr) complete = false;
      }
      // Also require no stray unconsumed messages (gap detection).
      if (complete && pending_ == 0) {
        stats_.pathCount = frontier_.begin()->second.pathCount;
        finalize();
      }
    }
  }
}

}  // namespace mpx::observer
