// Vocabulary types of the computation lattice (paper §4): cuts, monitors,
// violations, options and statistics.  Shared by the batch
// ComputationLattice and the incremental OnlineAnalyzer — both build the
// same structure through the level-expansion engine in level_expand.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "observer/causality.hpp"
#include "observer/global_state.hpp"
#include "parallel/thread_pool.hpp"

namespace mpx::observer {

/// Packed opaque monitor state.  The ptLTL synthesized monitors pack the
/// truth values of all subformulas into these 64 bits.
using MonitorState = std::uint64_t;

/// A safety monitor the lattice can run over every path in parallel.
/// Implementations must be deterministic functions of (state, globalState)
/// and must not mutate member state in advance()/isViolating() — the
/// parallel expansion path calls them concurrently from pool workers.
class LatticeMonitor {
 public:
  virtual ~LatticeMonitor() = default;

  /// Monitor state after seeing the initial global state.
  virtual MonitorState initial(const GlobalState& s) = 0;

  /// Monitor state after additionally seeing `s`.
  virtual MonitorState advance(MonitorState prev, const GlobalState& s) = 0;

  /// True if `m` witnesses a property violation.
  [[nodiscard]] virtual bool isViolating(MonitorState m) const = 0;

  /// Pruning hook (paper §4: "parts of the lattice which become
  /// non-relevant for the property to check can be garbage-collected
  /// while the analysis process continues").  Return false ONLY when no
  /// continuation from `m` can ever reach a violating state; the lattice
  /// then drops the (node, state) pair — sound, since any run through it
  /// is permanently safe.  Default: conservatively true.
  [[nodiscard]] virtual bool canEverViolate(MonitorState m) const {
    (void)m;
    return true;
  }

  /// How many of the 64 bits this monitor's states actually occupy.  The
  /// MonitorBus packs several monitors side by side in one MonitorState;
  /// a monitor that uses fewer bits (ptLTL monitors use one bit per
  /// subformula) should override so more components fit.  States must
  /// never exceed the declared width.
  [[nodiscard]] virtual unsigned stateBits() const { return 64; }
};

/// A consistent cut (k_1, ..., k_n).
struct Cut {
  std::vector<std::uint32_t> k;

  Cut() = default;
  explicit Cut(std::size_t threads) : k(threads, 0) {}

  [[nodiscard]] std::uint64_t level() const noexcept {
    std::uint64_t s = 0;
    for (const auto v : k) s += v;
    return s;
  }

  [[nodiscard]] Cut advanced(ThreadId j) const {
    Cut c = *this;
    ++c.k[j];
    return c;
  }

  friend bool operator==(const Cut&, const Cut&) = default;

  [[nodiscard]] std::size_t hash() const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const auto v : k) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// "S21" style label as in the paper's Fig. 6 (concatenated indices).
  [[nodiscard]] std::string toString() const;
};

struct CutHash {
  std::size_t operator()(const Cut& c) const noexcept { return c.hash(); }
};

/// Persistent (shared-suffix) path witness: the run that led to a node.
struct PathNode {
  EventRef event;
  std::shared_ptr<const PathNode> parent;
};
using PathPtr = std::shared_ptr<const PathNode>;

/// Unwinds a witness chain into initial-to-final order.
[[nodiscard]] std::vector<EventRef> unwindPath(const PathPtr& path);

/// A predicted property violation: some run consistent with the causal
/// order drives the monitor into a violating state.
struct Violation {
  Cut cut;                    ///< where the violation was detected
  GlobalState state;          ///< the global state at that cut
  MonitorState monitorState;  ///< the violating monitor state
  std::vector<EventRef> path; ///< counterexample run from the initial state
};

enum class Retention : std::uint8_t {
  kSlidingWindow,  ///< keep only the current and next level (paper's mode)
  kFull,           ///< keep every level (small lattices: tests, rendering)
};

/// The degradation ladder (DESIGN.md §5c).  Under resource pressure the
/// engine steps down rung by rung instead of dying:
///   kFull         — exhaustive lattice, the verdict is SOUND.
///   kSampled      — causally-fair frontier sampling: a seeded hash ranks
///                   the cuts of an over-budget level and only the best
///                   `allowed` survive (the observed-execution cut always
///                   among them).  Deterministic across --jobs and across
///                   delivery orders.
///   kObservedOnly — only the observed execution's own cut survives per
///                   level; the analysis degenerates to single-trace
///                   monitoring (still sound for what it DOES report).
/// The rung recorded in LatticeStats is the deepest ever entered; entering
/// kObservedOnly is sticky for the rest of the run (no thrash).
enum class DegradationMode : std::uint8_t {
  kFull = 0,
  kSampled = 1,
  kObservedOnly = 2,
};

/// Why the ladder engaged (first trigger wins; kNone while kFull).
enum class BoundReason : std::uint8_t {
  kNone = 0,
  kMemoryBudget = 1,  ///< accounted bytes exceeded LatticeOptions::memoryBudgetBytes
  kMaxFrontier = 2,   ///< a level exceeded LatticeOptions::maxFrontier
};

[[nodiscard]] const char* toString(DegradationMode m) noexcept;
[[nodiscard]] const char* toString(BoundReason r) noexcept;

struct LatticeOptions {
  Retention retention = Retention::kSlidingWindow;
  /// Safety cap on level width; exceeded => stats.truncated.
  std::size_t maxNodesPerLevel = 1u << 22;
  /// Stop collecting violations after this many distinct witnesses.
  std::size_t maxViolations = 64;
  /// Record counterexample paths (costs one PathNode per node/monitor-state).
  bool recordPaths = true;
  /// Beam approximation ("the computation lattice can grow quite large",
  /// paper §4): when a level exceeds this width, keep only the
  /// `beamWidth` cuts covering the most runs (highest path counts) and
  /// drop the rest.  Reported violations remain REAL (their witnesses are
  /// genuine runs), but coverage is no longer exhaustive —
  /// stats.approximated records that the verdict "no violation" is then
  /// only best-effort.  0 disables.
  std::size_t beamWidth = 0;
  /// Multi-threaded level expansion (jobs > 1).  Violation SETS, stats and
  /// retained levels are identical to the serial path; only the ORDER in
  /// which violations are appended may differ (see level_expand.hpp).
  parallel::ParallelConfig parallel;
  /// Byte budget for the accounted working set (arenas + the two live
  /// frontiers, under the deterministic byte model of budget.hpp).  When a
  /// freshly expanded level would push the accounted total past the
  /// budget, the degradation ladder sheds frontier nodes until the
  /// retained set fits (floor: the observed-execution cut).  0 = unlimited.
  std::size_t memoryBudgetBytes = 0;
  /// Hard cap on frontier width, enforced by the same ladder (sampling,
  /// not truncation — the analysis continues to the end).  0 = unlimited.
  std::size_t maxFrontier = 0;
  /// Seed of the causally-fair sampler.  The sampling decision is a pure
  /// function of (seed, level, cut), so any two runs over the same lattice
  /// with the same seed retain the same nodes regardless of jobs count or
  /// message arrival order.
  std::uint64_t degradationSeed = 0x9e3779b97f4a7c15ull;
};

struct LatticeStats {
  std::size_t levels = 0;          ///< number of levels built (incl. level 0)
  std::size_t totalNodes = 0;      ///< lattice nodes (consistent cuts)
  std::size_t totalEdges = 0;      ///< lattice edges (events between cuts)
  std::size_t peakLevelWidth = 0;  ///< widest level
  std::size_t peakLiveNodes = 0;   ///< max nodes resident at once (≤ 2 levels
                                   ///< under sliding-window retention)
  std::size_t gcNodes = 0;         ///< nodes released when the sliding window
                                   ///< advanced past their level
  std::uint64_t pathCount = 0;     ///< number of multithreaded runs
  bool pathCountSaturated = false;
  bool truncated = false;
  std::size_t monitorStatesPeak = 0;  ///< max distinct monitor states per node
  std::size_t prunedMonitorStates = 0;  ///< (node, state) pairs GC'd because
                                        ///< the monitor can no longer violate
  std::size_t beamPrunedNodes = 0;  ///< cuts dropped by the beam approximation
  bool approximated = false;        ///< beam pruning occurred: absence of
                                    ///< violations is best-effort only
  // Hash-consing effectiveness (see intern.hpp).  Deterministic across
  // jobs counts: misses == distinct states, and the number of intern
  // lookups is a pure function of the lattice.
  std::uint64_t internHits = 0;    ///< state lookups that found a resident
                                   ///< state (incl. unchanged-value reuse)
  std::uint64_t internMisses = 0;  ///< state lookups that inserted
  std::size_t internedStates = 0;  ///< distinct GlobalStates resident
  std::uint64_t msetInternHits = 0;    ///< monitor-state-set lookups deduped
  std::uint64_t msetInternMisses = 0;  ///< monitor-state-set inserts
  // Budget accounting + degradation ladder (budget.hpp, DESIGN.md §5c).
  std::uint64_t accountedBytes = 0;      ///< accounted working set after the
                                         ///< last completed level (post-shed)
  std::uint64_t peakAccountedBytes = 0;  ///< peak of the retained accounting
  std::uint64_t droppedNodes = 0;   ///< frontier nodes shed by the ladder
  std::uint64_t degradedAtLevel = 0;  ///< first level the ladder engaged (0 =
                                      ///< never; level 0 is never shed)
  DegradationMode degradation = DegradationMode::kFull;  ///< deepest rung
  BoundReason boundReason = BoundReason::kNone;

  /// True when the verdict is not exhaustive: some consistent runs were
  /// never examined (ladder, beam, or width-cap truncation).
  [[nodiscard]] bool bounded() const noexcept {
    return degradation != DegradationMode::kFull || truncated || approximated;
  }
};

/// One node of a fully-retained lattice (inspection/rendering).
struct LevelNode {
  Cut cut;
  GlobalState state;
  std::uint64_t pathCount = 0;
  std::vector<MonitorState> monitorStates;  ///< sorted, unique; empty if no
                                            ///< monitor was run
};

namespace detail {

/// One lattice node while its level is live.  `state` is interned in the
/// engine's StateArena (hash-consed: equal states share one pointer, so
/// node-state equality is pointer equality and the two-level sliding
/// window stores each distinct valuation once).
struct FrontierNode {
  const GlobalState* state = nullptr;
  std::uint64_t pathCount = 0;
  /// Reachable monitor states, each with one witness path.
  std::map<MonitorState, PathPtr> mstates;
  PathPtr anyPath;  ///< witness when no monitor is running
};

/// A live lattice level, keyed by cut.
using Frontier = std::unordered_map<Cut, FrontierNode, CutHash>;

inline std::uint64_t saturatingAdd(std::uint64_t a, std::uint64_t b,
                                   bool& sat) noexcept {
  const std::uint64_t s = a + b;
  if (s < a) {
    sat = true;
    return ~0ull;
  }
  return s;
}

}  // namespace detail

}  // namespace mpx::observer
