// Observer-layer telemetry, shared by the batch ComputationLattice and the
// OnlineAnalyzer (they build the same structure, so they report into the
// same instruments; reset the registry between runs to attribute deltas).
// Internal to src/observer — not part of the public observer API.
#pragma once

#include "telemetry/metrics.hpp"

namespace mpx::observer {

struct ObserverMetrics {
  telemetry::Counter& levels;
  telemetry::Counter& nodesCreated;
  telemetry::Counter& nodesGc;
  telemetry::Counter& violations;
  telemetry::Histogram& frontierWidth;
  telemetry::Histogram& levelNs;
  telemetry::Gauge& monitorStatesPeak;
  telemetry::Gauge& backlogHwm;
  telemetry::Gauge& internStates;
  telemetry::Gauge& internHitRate;
  telemetry::Gauge& budgetLimit;
  telemetry::Gauge& budgetAccounted;
  telemetry::Gauge& budgetPeak;
  telemetry::Gauge& degradedMode;
  telemetry::Counter& degradedLevels;
  telemetry::Counter& degradedNodesDropped;

  static ObserverMetrics& get() {
    static ObserverMetrics m{
        telemetry::registry().counter(
            "mpx_observer_levels_advanced_total",
            "Lattice levels constructed beyond level 0"),
        telemetry::registry().counter(
            "mpx_observer_nodes_created_total",
            "Lattice nodes (consistent cuts) created by level expansion"),
        telemetry::registry().counter(
            "mpx_observer_nodes_gc_total",
            "Lattice nodes released as the sliding window advanced"),
        telemetry::registry().counter(
            "mpx_observer_violations_total",
            "Property violations reported across all analyzed runs"),
        telemetry::registry().histogram(
            "mpx_observer_frontier_width", "Nodes per completed level",
            telemetry::sizeBuckets()),
        telemetry::registry().histogram(
            "mpx_observer_level_ns", "Wall time to expand one lattice level"),
        telemetry::registry().gauge(
            "mpx_observer_monitor_states_peak",
            "High-water mark of distinct monitor states on one node"),
        telemetry::registry().gauge(
            "mpx_observer_backlog_hwm",
            "High-water mark of buffered messages awaiting lattice "
            "consumption (online analyzer only)"),
        telemetry::registry().gauge(
            "mpx_observer_intern_states",
            "Distinct global states resident in the hash-consing arena"),
        telemetry::registry().gauge(
            "mpx_observer_intern_hit_rate_percent",
            "State-intern lookups that found a resident state, percent "
            "(most recent run)"),
        telemetry::registry().gauge(
            "mpx_observer_budget_limit_bytes",
            "Configured memory budget for the accounted working set "
            "(0 = unlimited)"),
        telemetry::registry().gauge(
            "mpx_observer_budget_accounted_bytes",
            "Accounted working set (arenas + live frontiers) after the "
            "last completed level, under the deterministic byte model"),
        telemetry::registry().gauge(
            "mpx_observer_budget_peak_bytes",
            "High-water mark of the accounted working set"),
        telemetry::registry().gauge(
            "mpx_analysis_degraded_mode",
            "Deepest degradation rung entered: 0 = full lattice, "
            "1 = sampled frontier, 2 = observed path only"),
        telemetry::registry().counter(
            "mpx_analysis_degraded_levels_total",
            "Lattice levels on which the degradation ladder shed nodes"),
        telemetry::registry().counter(
            "mpx_analysis_degraded_nodes_dropped_total",
            "Frontier nodes shed by the degradation ladder"),
    };
    return m;
  }
};

}  // namespace mpx::observer
