// The computation lattice (paper §4, Figs. 5 and 6).
//
// Every permutation of the relevant events consistent with ⊳ is a
// *multithreaded run*; the set of global states these runs pass through,
// ordered by run prefixes, forms a lattice.  A node is a *consistent cut*
// (k_1,...,k_n): thread j has executed its first k_j relevant events, and
// consistency requires each included event's causal predecessors to be
// included too — checked directly on the events' MVCs.
//
// The lattice is built level by level (level L = cuts with Σk_j = L), in a
// top-down manner as messages become available; with the sliding-window
// retention policy "at most two consecutive levels need to be stored at any
// moment" (paper §4.1), which is what makes online predictive analysis
// tractable despite the exponential number of runs.
//
// Safety monitors ride along: each node carries the *set* of monitor states
// reachable along some run ending in that cut, so all runs are analyzed in
// parallel in one pass (paper: "store the state of the FSM or of the
// synthesized monitor together with each global state in the computation
// lattice").
//
// Level expansion can itself run multi-threaded (LatticeOptions::parallel)
// — see level_expand.hpp for the engine and its determinism contract.  The
// vocabulary types (Cut, Violation, LatticeStats, ...) live in
// lattice_types.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "observer/causality.hpp"
#include "observer/global_state.hpp"
#include "observer/intern.hpp"
#include "observer/lattice_types.hpp"

namespace mpx::observer {

class AnalysisBus;

class ComputationLattice {
 public:
  /// `graph` must be finalized.  `space` defines which variables make up
  /// the global state (with their initial values).
  ComputationLattice(const CausalityGraph& graph, StateSpace space,
                     LatticeOptions opts = {});

  /// Builds the lattice without a monitor (structure, states, run counts).
  const LatticeStats& build();

  /// Builds the lattice while checking `mon` over all runs in parallel.
  /// Violations (up to opts.maxViolations distinct witnesses) land in
  /// `violations`.
  const LatticeStats& check(LatticeMonitor& mon,
                            std::vector<Violation>& violations);

  /// Builds the lattice while running a whole plugin bus (analysis.hpp):
  /// the bus's packed monitor rides the nodes, candidate violations are
  /// filtered through the owning plugins, completed levels are dispatched
  /// to node-observing plugins, and plugin finish() hooks run at the end.
  /// Accepted violations land in `violations`.
  const LatticeStats& analyze(AnalysisBus& bus,
                              std::vector<Violation>& violations);

  [[nodiscard]] const LatticeStats& stats() const noexcept { return stats_; }

  /// Retained levels (only with Retention::kFull).  levels()[L] is sorted
  /// by cut for deterministic iteration.
  [[nodiscard]] const std::vector<std::vector<LevelNode>>& levels() const;

  /// Renders the full lattice as an ASCII diagram (requires kFull).
  [[nodiscard]] std::string render() const;

  /// Renders as Graphviz dot (requires kFull).
  [[nodiscard]] std::string renderDot() const;

 private:
  const LatticeStats& run(LatticeMonitor* mon,
                          std::vector<Violation>* violations,
                          AnalysisBus* bus);
  [[nodiscard]] bool enabled(const Cut& cut, ThreadId j) const;
  /// Max globalSeq over the cut's per-thread last events — the budget
  /// enforcer's observed-execution key (see budget.hpp).
  [[nodiscard]] std::uint64_t observedPathKey(const Cut& cut) const;
  void retainLevel(std::uint64_t level, const detail::Frontier& frontier);
  [[nodiscard]] parallel::ThreadPool* poolForRun();

  const CausalityGraph* graph_;
  StateSpace space_;
  LatticeOptions opts_;
  LatticeStats stats_;
  std::vector<std::vector<LevelNode>> retained_;
  /// Lazily created when opts_.parallel asks for jobs > 1 and no external
  /// pool was injected; reused across build()/check() calls.
  std::unique_ptr<parallel::ThreadPool> ownedPool_;
  /// Hash-consing arenas, recreated per run (frontier nodes point into
  /// them; see intern.hpp for the lifetime invariant).
  std::unique_ptr<StateArena> states_;
  std::unique_ptr<MonitorSetArena> msets_;
};

}  // namespace mpx::observer
