// Online, incremental lattice analysis (paper §4):
//
//   "Since events are received incrementally from the instrumented program,
//    one can buffer them at the observer's side and then build the lattice
//    on a level-by-level basis in a top-down manner, as the events become
//    available.  The observer's analysis process can also be performed
//    incrementally, so that parts of the lattice which become non-relevant
//    for the property to check can be garbage-collected while the analysis
//    process continues."
//
// OnlineAnalyzer is a MessageSink: messages arrive one at a time, in ANY
// order (Theorem 3 makes per-thread positions recoverable from the clocks).
// After each arrival it advances the lattice as many whole levels as the
// buffered messages allow, runs the monitor over the new level, reports
// violations immediately, and garbage-collects the previous level.  The
// offline ComputationLattice is the batch special case of this; the tests
// assert they produce identical verdicts and statistics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "observer/checkpoint.hpp"
#include "observer/global_state.hpp"
#include "observer/lattice.hpp"
#include "trace/channel.hpp"

namespace mpx::observer {

class AnalysisBus;

class OnlineAnalyzer final : public trace::MessageSink {
 public:
  /// `monitor` may be null (structure-only mode).  Violations are appended
  /// to an internal list as soon as they are discovered.
  ///
  /// `threads` is the number of threads of the instrumented program.  The
  /// paper's setting ("we only consider a fixed number of threads", §2):
  /// without it the analyzer could not know whether a level is complete —
  /// an as-yet-silent thread might still contribute a concurrent event to
  /// it.  (Dynamically created threads are announced by their spawner
  /// before their first event, so a dynamic system can conservatively pass
  /// the maximum and let absent threads be closed by endOfTrace().)
  OnlineAnalyzer(StateSpace space, std::size_t threads,
                 LatticeMonitor* monitor, LatticeOptions opts = {});

  /// Plugin-bus form: the bus's packed monitor rides the lattice,
  /// candidate violations are filtered through the owning plugins, every
  /// completed level is dispatched to node-observing plugins, and plugin
  /// finish() hooks run when the analysis finishes.  `bus` must outlive
  /// the analyzer.
  OnlineAnalyzer(StateSpace space, std::size_t threads, AnalysisBus& bus,
                 LatticeOptions opts = {});

  /// Feed one message (any arrival order).  Advances the lattice as far as
  /// the buffered messages permit.
  void onMessage(const trace::Message& m) override;

  /// Declare the stream complete: threads send nothing further.  Required
  /// to finish — a frontier cut at the end of a thread's stream is only
  /// known to be maximal once the stream is known to be over.  Throws if
  /// buffered messages have gaps.
  void endOfTrace();

  /// Violations discovered so far (earliest level first).
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

  /// Number of completed lattice levels (level 0 counts once the analyzer
  /// is constructed).
  [[nodiscard]] std::uint64_t levelsCompleted() const noexcept {
    return stats_.levels;
  }

  /// True once every buffered event has been consumed after endOfTrace().
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  [[nodiscard]] const LatticeStats& stats() const noexcept { return stats_; }

  /// Messages buffered but not yet consumed into the lattice.
  [[nodiscard]] std::size_t pendingMessages() const noexcept {
    return pending_;
  }

  /// Per-thread consumption watermark: consumedK()[j] is the highest local
  /// sequence number of thread j folded into the current frontier.  A
  /// frame whose per-thread max indices are all <= this vector has been
  /// fully analyzed — the daemon's emit-to-analyze lag is measured against
  /// it.  Size == declared thread count; all zeros before level 1.
  [[nodiscard]] const std::vector<LocalSeq>& consumedK() const noexcept {
    return consumedK_;
  }

  /// Serializes the complete analyzer state — buffered messages, both
  /// intern arenas, the live frontier (with its witness-path DAG), stats
  /// and violations — so an identically-constructed analyzer can restore()
  /// and continue to a byte-identical report.  Plugin state is NOT
  /// included; the session checkpoints each plugin's blob beside this one
  /// (Analysis::checkpoint).  Call only between messages (never from
  /// inside a dispatch).
  void checkpoint(ckpt::Writer& w) const;

  /// Inverse of checkpoint() on a freshly constructed analyzer with the
  /// same (space, threads, monitor/bus, options).  Rebuilds pointer
  /// identity by re-interning arena contents in deterministic order.
  /// Returns false on any version/bounds/decode mismatch — the input is an
  /// untrusted snapshot file, and a failed restore leaves the analyzer
  /// unusable (discard it).
  [[nodiscard]] bool restore(ckpt::Reader& r);

 private:
  /// The k-th (1-based) message of thread j, if present.
  [[nodiscard]] const trace::Message* find(ThreadId j, LocalSeq k) const;

  /// Advance whole levels while every needed next-event is available (or
  /// known absent because the trace ended).
  void tryAdvance();
  [[nodiscard]] bool canExpand() const;
  void expandOneLevel();
  [[nodiscard]] bool enabled(const Cut& cut, ThreadId j,
                             const trace::Message& m) const;
  /// Max globalSeq over the cut's per-thread last events — the budget
  /// enforcer's observed-execution key (see budget.hpp).  Every event a
  /// frontier cut includes has already arrived, so the lookup never misses.
  [[nodiscard]] std::uint64_t observedPathKey(const Cut& cut) const;
  [[nodiscard]] parallel::ThreadPool* poolForRun();
  /// Marks the analysis finished: snapshots intern stats and runs the
  /// plugins' finish() hooks (once).
  void finalize();

  StateSpace space_;
  LatticeMonitor* monitor_;
  AnalysisBus* bus_ = nullptr;
  LatticeOptions opts_;
  StateArena states_;
  MonitorSetArena msets_;
  /// buffered_[j][k] = thread j's k-th message (sparse until gaps fill).
  std::vector<std::unordered_map<LocalSeq, trace::Message>> buffered_;
  /// Per-thread max frontier index (see consumedK()).
  std::vector<LocalSeq> consumedK_;
  std::size_t pending_ = 0;
  bool ended_ = false;
  bool finished_ = false;
  detail::Frontier frontier_;
  /// Accounted bytes of frontier_ (budget.hpp byte model), maintained so
  /// each level's enforcement sees the previous frontier's carry cost.
  std::uint64_t liveFrontierBytes_ = 0;
  LatticeStats stats_;
  std::vector<Violation> violations_;
  /// Lazily created when opts_.parallel asks for jobs > 1 and no external
  /// pool was injected.
  std::unique_ptr<parallel::ThreadPool> ownedPool_;
};

}  // namespace mpx::observer
