// Checkpoint (de)serialization primitives for analyzer state.
//
// A fleet node must be able to snapshot a live analysis and resurrect it
// byte-identically after a crash (ISSUE 9; Castañeda–Piña et al. argue the
// observer's verdict is only honest across interruption when the observed
// prefix survives it).  Writer/Reader are the narrow waist every layer
// serializes through: the OnlineAnalyzer core, the Analysis plugins'
// versioned checkpoint()/restore() hooks, and the session/snapshot framing
// in src/net/.
//
// Design rules (mirroring the wire layer):
//   * fixed-width little-endian scalars — platform-independent, and byte
//     layout is a pure function of the value stream;
//   * the Reader is for UNTRUSTED input (snapshot files survive crashes and
//     feed a fuzz target): every read is bounds-checked, failure is sticky,
//     and length words are capped BEFORE they drive allocation;
//   * no framing here — callers length-prefix and CRC whole blobs
//     (net/snapshot.hpp).  A blob is all-or-nothing: on any read failure
//     the caller discards the partially restored object.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace mpx::observer::ckpt {

/// Largest length word (string/vector element count) the Reader honors.
/// Real checkpoints stay far below this; a hostile length must not drive
/// allocation.
inline constexpr std::uint64_t kMaxLen = 1ull << 28;

/// Appends fixed-width little-endian values to a byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void le(std::uint64_t v, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader with a sticky failure flag.  After
/// any failed read every subsequent read returns 0/empty and ok() is
/// false, so callers can decode a whole record and check once at the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    return static_cast<std::uint8_t>(le(1));
  }
  [[nodiscard]] std::uint16_t u16() {
    return static_cast<std::uint16_t>(le(2));
  }
  [[nodiscard]] std::uint32_t u32() {
    return static_cast<std::uint32_t>(le(4));
  }
  [[nodiscard]] std::uint64_t u64() { return le(8); }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(le(8));
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    if (failed_ || n > kMaxLen || n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Reads a length word for `elemSize`-byte elements; fails (sticky) when
  /// the count is implausible for the remaining bytes, so hostile counts
  /// never reach a reserve()/resize().
  [[nodiscard]] std::uint64_t len(std::size_t elemSize) {
    const std::uint64_t n = u64();
    if (failed_ || n > kMaxLen ||
        (elemSize != 0 && n > remaining() / elemSize)) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  [[nodiscard]] bool raw(std::uint8_t* out, std::size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] bool atEnd() const noexcept {
    return !failed_ && pos_ == len_;
  }
  void fail() noexcept { failed_ = true; }

 private:
  std::uint64_t le(unsigned n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace mpx::observer::ckpt
