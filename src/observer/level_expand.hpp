// Level-expansion engine shared by the batch ComputationLattice and the
// OnlineAnalyzer: given the current frontier (all cuts at level L), produce
// the next frontier (level L+1), feeding monitors, path witnesses, run
// counts and violations along the way.
//
// Two execution modes:
//
//  * Serial (jobs == 1, the default): one loop over the frontier in
//    canonical (sorted-by-cut) order, so witness selection and violation
//    order are a pure function of the lattice — in particular they survive
//    a checkpoint/restore round trip, which rebuilds the frontier map with
//    a different internal layout.
//  * Parallel: the frontier's nodes are snapshotted in the same canonical
//    order and split into contiguous chunks, one per pool worker.  Each worker
//    expands its slice into a WORKER-LOCAL frontier (its own keep-first
//    dedup of cuts and monitor states); the merge then folds the local
//    frontiers together in chunk-index order with keep-first semantics and
//    emits violations as (cut, monitor-state) pairs first enter the merged
//    map.
//
// Determinism contract (asserted by tests/parallel/determinism_test.cpp):
// for any jobs count the parallel mode produces the SAME violation set
// (compared on (cut, state, monitorState)), the SAME LatticeStats, and the
// SAME retained levels as the serial mode.  Only the order in which
// violations are appended — and which equivalent witness path each one
// carries — may differ, because workers discover the same pairs in a
// different interleaving.  Every statistic is order-independent by
// construction: edge and prune counts partition over frontier nodes,
// pathCount folding is a commutative-associative saturating sum,
// monitorStatesPeak is a max over per-cut final sets, which the keep-first
// merge reproduces exactly, and intern hit/miss totals are deterministic
// because misses == distinct states while the lookup count is a pure
// function of the lattice (see intern.hpp).
//
// Global states are hash-consed: every FrontierNode holds a pointer into
// the run's StateArena, and an edge that does not change the written
// variable's value reuses the parent's pointer outright.
//
// Analysis plugins (analysis.hpp) hook in at two points: emitViolation
// routes each candidate violation through AnalysisBus::acceptViolation
// (the violation is recorded only if some owning plugin accepts), and the
// CALLERS dispatch each completed level's nodes via
// AnalysisBus::dispatchLevel.  Both happen on the orchestrator thread
// only — workers never touch the bus.
//
// Thread-safety requirements on the inputs (all satisfied in-tree):
// NextFn and LatticeMonitor must be pure/const — workers call them
// concurrently; the StateSpace is only read; StateArena::intern is
// internally synchronized.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "observer/analysis.hpp"
#include "observer/intern.hpp"
#include "observer/lattice_types.hpp"
#include "observer/observer_metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace mpx::observer::detail {

/// Appends one violation, respecting the cap, and counts it.  When `bus`
/// is non-null the candidate is first offered to the owning plugins and
/// dropped unless one accepts.  Orchestrator thread only.
inline void emitViolation(std::vector<Violation>* violations, AnalysisBus* bus,
                          const LatticeOptions& opts, const Cut& cut,
                          const GlobalState& state, MonitorState nm,
                          const PathPtr& witness) {
  if (violations == nullptr || violations->size() >= opts.maxViolations) {
    return;
  }
  Violation v{cut, state, nm, unwindPath(witness)};
  if (bus != nullptr && !bus->acceptViolation(v)) return;
  violations->push_back(std::move(v));
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics::get().violations.add(1);
  }
}

/// Per-chunk side counters folded into LatticeStats after the merge.
struct EdgeCounters {
  std::size_t edges = 0;
  std::size_t prunedMonitorStates = 0;
  bool pathCountSaturated = false;
};

/// Folds one enabled event (edge) into `out`.  When `violations` is
/// non-null, violating monitor states are reported as they are first
/// reached (serial mode); when null the caller scans for them at merge
/// time (worker mode).
inline void applyEdge(const Cut& cut, const FrontierNode& node, ThreadId j,
                      const trace::Message& m, const StateSpace& space,
                      LatticeMonitor* mon, const LatticeOptions& opts,
                      StateArena& arena, AnalysisBus* bus, Frontier& out,
                      EdgeCounters& counters,
                      std::vector<Violation>* violations) {
  ++counters.edges;
  const EventRef ref{j, cut.k[j] + 1};
  Cut ncut = cut.advanced(j);

  // Apply the event's state update, hash-consed: an edge that leaves the
  // value unchanged reuses the parent's interned state without a lookup.
  const GlobalState* nstate = node.state;
  if (const auto slot = space.slotOf(m.event.var)) {
    if (nstate->values[*slot] != m.event.value) {
      GlobalState changed = *nstate;
      changed.values[*slot] = m.event.value;
      nstate = arena.intern(std::move(changed));
    } else {
      arena.noteReuse();
    }
  }

  auto [it, inserted] = out.try_emplace(std::move(ncut));
  FrontierNode& child = it->second;
  if (inserted) {
    child.state = nstate;
  }
  // All paths into a cut yield the same state (writes to each variable are
  // totally ordered by ≺, so a consistent cut has a unique maximal write
  // per variable).
  child.pathCount = saturatingAdd(child.pathCount, node.pathCount,
                                  counters.pathCountSaturated);

  if (mon != nullptr) {
    for (const auto& [ms, witness] : node.mstates) {
      const MonitorState nm = mon->advance(ms, *child.state);
      if (!mon->isViolating(nm) && !mon->canEverViolate(nm)) {
        ++counters.prunedMonitorStates;  // permanently safe: GC
        continue;
      }
      if (child.mstates.contains(nm)) continue;
      PathPtr npath;
      if (opts.recordPaths) {
        npath = std::make_shared<const PathNode>(PathNode{ref, witness});
      }
      child.mstates.emplace(nm, npath);
      if (mon->isViolating(nm)) {
        emitViolation(violations, bus, opts, it->first, *child.state, nm,
                      npath);
      }
    }
  } else if (opts.recordPaths && inserted) {
    child.anyPath =
        std::make_shared<const PathNode>(PathNode{ref, node.anyPath});
  }
}

/// Expands one level.  `next(cut, j)` returns thread j's candidate next
/// message when it exists AND is enabled at `cut`, else nullptr.  Returns
/// the new frontier; edge count lands in `edges`; prune/saturation/peak
/// side-stats land in `stats`; violations (if collecting) in `violations`,
/// filtered through `bus` when one is attached.  `pool` may be null
/// (always serial); parallel mode engages when the pool has >1 workers and
/// the frontier is at least opts.parallel.minFrontier.
template <typename NextFn>
Frontier expandLevel(const Frontier& frontier, std::size_t threads,
                     const StateSpace& space, LatticeMonitor* mon,
                     const LatticeOptions& opts, LatticeStats& stats,
                     std::vector<Violation>* violations, AnalysisBus* bus,
                     StateArena& arena, parallel::ThreadPool* pool,
                     std::size_t& edges, const NextFn& next) {
  Frontier result;
  EdgeCounters counters;

  // Canonical expansion order: sorted by cut.  Witness selection and
  // violation order are keep-first, so iterating the unordered frontier
  // directly would make both a function of container HISTORY — which a
  // checkpoint/restore round trip does not preserve (a restored frontier
  // is rebuilt in sorted order, not discovery order).  Sorting first makes
  // them a pure function of the lattice itself; it is also the same node
  // order AnalysisBus::dispatchLevel hands the plugins.
  std::vector<const std::pair<const Cut, FrontierNode>*> items;
  items.reserve(frontier.size());
  for (const auto& kv : frontier) items.push_back(&kv);
  std::sort(items.begin(), items.end(), [](const auto* a, const auto* b) {
    return a->first.k < b->first.k;
  });

  const bool concurrent = pool != nullptr && pool->workers() > 1 &&
                          frontier.size() >= opts.parallel.minFrontier;
  if (!concurrent) {
    for (const auto* kv : items) {
      const auto& [cut, node] = *kv;
      for (ThreadId j = 0; j < threads; ++j) {
        const trace::Message* m = next(cut, j);
        if (m == nullptr) continue;
        applyEdge(cut, node, j, *m, space, mon, opts, arena, bus, result,
                  counters, violations);
      }
    }
  } else {
    const std::size_t chunks = pool->workers();
    std::vector<Frontier> locals(chunks);
    std::vector<EdgeCounters> localCounters(chunks);
    pool->parallelFor(
        items.size(),
        [&](std::size_t begin, std::size_t end, std::size_t c) {
          Frontier& local = locals[c];
          EdgeCounters& lc = localCounters[c];
          for (std::size_t i = begin; i < end; ++i) {
            const auto& [cut, node] = *items[i];
            for (ThreadId j = 0; j < threads; ++j) {
              const trace::Message* m = next(cut, j);
              if (m == nullptr) continue;
              // Violations deferred to the merge: workers must not touch
              // the shared violation list, the plugin bus, or telemetry.
              applyEdge(cut, node, j, *m, space, mon, opts, arena, nullptr,
                        local, lc, nullptr);
            }
          }
        });

    for (const EdgeCounters& lc : localCounters) {
      counters.edges += lc.edges;
      counters.prunedMonitorStates += lc.prunedMonitorStates;
      counters.pathCountSaturated |= lc.pathCountSaturated;
    }

    // Deterministic merge, chunk-index order, keep-first per (cut, nm).
    result = std::move(locals[0]);
    if (mon != nullptr && violations != nullptr) {
      // Everything in chunk 0's local frontier entered the merged map.
      for (const auto& [cut, child] : result) {
        for (const auto& [nm, witness] : child.mstates) {
          if (mon->isViolating(nm)) {
            emitViolation(violations, bus, opts, cut, *child.state, nm,
                          witness);
          }
        }
      }
    }
    for (std::size_t c = 1; c < locals.size(); ++c) {
      Frontier& local = locals[c];
      while (!local.empty()) {
        auto nh = local.extract(local.begin());
        const auto found = result.find(nh.key());
        if (found == result.end()) {
          const auto pos = result.insert(std::move(nh)).position;
          if (mon != nullptr && violations != nullptr) {
            for (const auto& [nm, witness] : pos->second.mstates) {
              if (mon->isViolating(nm)) {
                emitViolation(violations, bus, opts, pos->first,
                              *pos->second.state, nm, witness);
              }
            }
          }
          continue;
        }
        FrontierNode& child = found->second;
        FrontierNode& other = nh.mapped();
        child.pathCount = saturatingAdd(child.pathCount, other.pathCount,
                                        counters.pathCountSaturated);
        for (auto& [nm, witness] : other.mstates) {
          const auto [mit, fresh] =
              child.mstates.emplace(nm, std::move(witness));
          if (!fresh) continue;  // keep-first: earlier chunk's witness stands
          if (mon != nullptr && mon->isViolating(nm)) {
            emitViolation(violations, bus, opts, found->first, *child.state,
                          nm, mit->second);
          }
        }
      }
    }
  }

  if (mon != nullptr) {
    for (const auto& [cut, child] : result) {
      stats.monitorStatesPeak =
          std::max(stats.monitorStatesPeak, child.mstates.size());
    }
  }
  stats.prunedMonitorStates += counters.prunedMonitorStates;
  stats.pathCountSaturated |= counters.pathCountSaturated;
  edges = counters.edges;
  return result;
}

/// Copies the arena tallies into the stats block (end of run / level).
inline void recordInternStats(LatticeStats& stats, const StateArena& states,
                              const MonitorSetArena& msets) {
  const InternStats s = states.stats();
  stats.internHits = s.hits;
  stats.internMisses = s.misses;
  stats.internedStates = s.size;
  const InternStats m = msets.stats();
  stats.msetInternHits = m.hits;
  stats.msetInternMisses = m.misses;
  if constexpr (telemetry::kEnabled) {
    ObserverMetrics& tm = ObserverMetrics::get();
    tm.internStates.set(static_cast<std::int64_t>(s.size));
    tm.internHitRate.set(static_cast<std::int64_t>(s.hitRate() * 100.0));
  }
}

}  // namespace mpx::observer::detail
