#include "logic/lasso.hpp"

#include <sstream>
#include <stdexcept>

namespace mpx::logic {

namespace {

std::shared_ptr<const LtlFormula::Node> make(
    LtlOp op, std::shared_ptr<const LtlFormula::Node> l,
    std::shared_ptr<const LtlFormula::Node> r) {
  auto n = std::make_shared<LtlFormula::Node>();
  n->op = op;
  n->lhs = std::move(l);
  n->rhs = std::move(r);
  return n;
}

}  // namespace

LtlFormula LtlFormula::atom(StateExpr e) {
  auto n = std::make_shared<Node>();
  n->op = LtlOp::kAtom;
  n->atom = std::move(e);
  return LtlFormula(std::move(n));
}
LtlFormula LtlFormula::verum() {
  return LtlFormula(make(LtlOp::kTrue, nullptr, nullptr));
}
LtlFormula LtlFormula::falsum() {
  return LtlFormula(make(LtlOp::kFalse, nullptr, nullptr));
}
LtlFormula LtlFormula::negation(LtlFormula f) {
  return LtlFormula(make(LtlOp::kNot, f.node_, nullptr));
}
LtlFormula LtlFormula::conjunction(LtlFormula a, LtlFormula b) {
  return LtlFormula(make(LtlOp::kAnd, a.node_, b.node_));
}
LtlFormula LtlFormula::disjunction(LtlFormula a, LtlFormula b) {
  return LtlFormula(make(LtlOp::kOr, a.node_, b.node_));
}
LtlFormula LtlFormula::implies(LtlFormula a, LtlFormula b) {
  return LtlFormula(make(LtlOp::kImplies, a.node_, b.node_));
}
LtlFormula LtlFormula::next(LtlFormula f) {
  return LtlFormula(make(LtlOp::kNext, f.node_, nullptr));
}
LtlFormula LtlFormula::until(LtlFormula a, LtlFormula b) {
  return LtlFormula(make(LtlOp::kUntil, a.node_, b.node_));
}
LtlFormula LtlFormula::eventually(LtlFormula f) {
  return LtlFormula(make(LtlOp::kEventually, f.node_, nullptr));
}
LtlFormula LtlFormula::always(LtlFormula f) {
  return LtlFormula(make(LtlOp::kAlways, f.node_, nullptr));
}

namespace {

const char* symbol(LtlOp op) {
  switch (op) {
    case LtlOp::kNot: return "!";
    case LtlOp::kAnd: return "&&";
    case LtlOp::kOr: return "||";
    case LtlOp::kImplies: return "->";
    case LtlOp::kNext: return "X";
    case LtlOp::kUntil: return "U";
    case LtlOp::kEventually: return "F";
    case LtlOp::kAlways: return "G";
    default: return "?";
  }
}

void print(const LtlFormula::Node* n, std::ostringstream& os) {
  switch (n->op) {
    case LtlOp::kAtom: os << n->atom.toString(); return;
    case LtlOp::kTrue: os << "true"; return;
    case LtlOp::kFalse: os << "false"; return;
    case LtlOp::kNot:
    case LtlOp::kNext:
    case LtlOp::kEventually:
    case LtlOp::kAlways:
      os << symbol(n->op) << '(';
      print(n->lhs.get(), os);
      os << ')';
      return;
    default:
      os << '(';
      print(n->lhs.get(), os);
      os << ' ' << symbol(n->op) << ' ';
      print(n->rhs.get(), os);
      os << ')';
      return;
  }
}

/// Evaluator over positions 0..N-1 of u·v (N = |u|+|v|), where the
/// successor of the last position wraps to |u| (the loop entry).
class LassoEval {
 public:
  LassoEval(std::span<const observer::GlobalState> stem,
            std::span<const observer::GlobalState> loop)
      : stem_(stem), loop_(loop), n_(stem.size() + loop.size()) {
    if (loop.empty()) {
      throw std::invalid_argument("satisfiesLasso: empty loop");
    }
  }

  /// Truth vector of `node` at every position.
  std::vector<char> eval(const LtlFormula::Node* node) {
    std::vector<char> out(n_, 0);
    switch (node->op) {
      case LtlOp::kAtom: {
        for (std::size_t i = 0; i < n_; ++i) {
          out[i] = node->atom.evalBool(state(i)) ? 1 : 0;
        }
        return out;
      }
      case LtlOp::kTrue:
        out.assign(n_, 1);
        return out;
      case LtlOp::kFalse:
        return out;
      case LtlOp::kNot: {
        const auto a = eval(node->lhs.get());
        for (std::size_t i = 0; i < n_; ++i) out[i] = a[i] ? 0 : 1;
        return out;
      }
      case LtlOp::kAnd: {
        const auto a = eval(node->lhs.get());
        const auto b = eval(node->rhs.get());
        for (std::size_t i = 0; i < n_; ++i) out[i] = a[i] & b[i];
        return out;
      }
      case LtlOp::kOr: {
        const auto a = eval(node->lhs.get());
        const auto b = eval(node->rhs.get());
        for (std::size_t i = 0; i < n_; ++i) out[i] = a[i] | b[i];
        return out;
      }
      case LtlOp::kImplies: {
        const auto a = eval(node->lhs.get());
        const auto b = eval(node->rhs.get());
        for (std::size_t i = 0; i < n_; ++i) out[i] = (!a[i]) | b[i];
        return out;
      }
      case LtlOp::kNext: {
        const auto a = eval(node->lhs.get());
        for (std::size_t i = 0; i < n_; ++i) out[i] = a[succ(i)];
        return out;
      }
      case LtlOp::kUntil: {
        const auto a = eval(node->lhs.get());
        const auto b = eval(node->rhs.get());
        // Least fixpoint of out[i] = b[i] || (a[i] && out[succ(i)]).
        fixpoint(out, [&](std::size_t i) {
          return b[i] | (a[i] & out[succ(i)]);
        });
        return out;
      }
      case LtlOp::kEventually: {
        const auto a = eval(node->lhs.get());
        fixpoint(out, [&](std::size_t i) {
          return a[i] | out[succ(i)];
        });
        return out;
      }
      case LtlOp::kAlways: {
        const auto a = eval(node->lhs.get());
        out.assign(n_, 1);  // greatest fixpoint: start from true
        fixpoint(out, [&](std::size_t i) {
          return a[i] & out[succ(i)];
        });
        return out;
      }
    }
    return out;
  }

 private:
  [[nodiscard]] std::size_t succ(std::size_t i) const {
    return i + 1 < n_ ? i + 1 : stem_.size();
  }

  [[nodiscard]] const observer::GlobalState& state(std::size_t i) const {
    return i < stem_.size() ? stem_[i] : loop_[i - stem_.size()];
  }

  /// Iterates backward sweeps until stable (≤ |loop|+1 sweeps for the
  /// monotone operators we use).
  template <typename F>
  void fixpoint(std::vector<char>& out, F&& step) const {
    for (std::size_t sweep = 0; sweep <= loop_.size() + 1; ++sweep) {
      bool changed = false;
      for (std::size_t r = 0; r < n_; ++r) {
        const std::size_t i = n_ - 1 - r;
        const char v = static_cast<char>(step(i));
        if (v != out[i]) {
          out[i] = v;
          changed = true;
        }
      }
      if (!changed) return;
    }
  }

  std::span<const observer::GlobalState> stem_;
  std::span<const observer::GlobalState> loop_;
  std::size_t n_;
};

}  // namespace

std::string LtlFormula::toString() const {
  std::ostringstream os;
  print(node_.get(), os);
  return os.str();
}

bool satisfiesLasso(const LtlFormula& formula,
                    std::span<const observer::GlobalState> stem,
                    std::span<const observer::GlobalState> loop) {
  LassoEval ev(stem, loop);
  const std::vector<char> vals = ev.eval(formula.root());
  // Position 0 is the first state of the stem, or of the loop if no stem.
  return vals.front() != 0;
}

}  // namespace mpx::logic
