#include "logic/spec_analysis.hpp"

#include <algorithm>
#include <sstream>

#include "observer/checkpoint_codec.hpp"

namespace mpx::logic {

SpecAnalysis::SpecAnalysis(const observer::StateSpace& space,
                           const Formula& formula, std::string spec)
    : space_(&space),
      spec_(std::move(spec)),
      riding_(formula),
      linear_(formula) {}

void SpecAnalysis::onObservedState(const observer::GlobalState& state) {
  const bool holds = linear_.stepLinear(state);
  if (!holds && observedViolationIndex_ < 0) {
    observedViolationIndex_ = observedCount_;
  }
  ++observedCount_;
}

bool SpecAnalysis::onViolation(const observer::Violation& v,
                               observer::MonitorState componentState) {
  if (!riding_.isViolating(componentState)) return false;
  if (!seen_.insert({v.cut.k, componentState}).second) return false;
  observer::Violation mine = v;
  mine.monitorState = componentState;
  violations_.push_back(std::move(mine));
  return true;
}

void SpecAnalysis::finish(const observer::LatticeStats& stats) {
  truncated_ = stats.truncated;
  approximated_ = stats.approximated;
}

namespace {
constexpr std::uint8_t kSpecCkptVersion = 1;
}  // namespace

void SpecAnalysis::checkpoint(observer::ckpt::Writer& w) const {
  w.u8(kSpecCkptVersion);
  // The riding monitor is stateless between calls (its state lives in the
  // lattice's packed word); only the linear observed-run monitor and the
  // accumulated observations persist.
  w.u64(linear_.linearState());
  w.boolean(linear_.linearStarted());
  w.i64(observedViolationIndex_);
  w.i64(observedCount_);
  w.boolean(truncated_);
  w.boolean(approximated_);
  w.u64(seen_.size());
  for (const auto& [cut, ms] : seen_) {
    w.u64(cut.size());
    for (const std::uint32_t c : cut) w.u32(c);
    w.u64(ms);
  }
  w.u64(violations_.size());
  for (const auto& v : violations_) observer::ckpt::writeViolation(w, v);
}

bool SpecAnalysis::restore(observer::ckpt::Reader& r) {
  if (r.u8() != kSpecCkptVersion) return false;
  const std::uint64_t linearState = r.u64();
  const bool linearStarted = r.boolean();
  linear_.restoreLinear(linearState, linearStarted);
  observedViolationIndex_ = r.i64();
  observedCount_ = r.i64();
  truncated_ = r.boolean();
  approximated_ = r.boolean();
  seen_.clear();
  const std::uint64_t seenCount = r.len(12);
  for (std::uint64_t i = 0; i < seenCount && r.ok(); ++i) {
    std::vector<std::uint32_t> cut(static_cast<std::size_t>(r.len(4)));
    for (auto& c : cut) c = r.u32();
    const observer::MonitorState ms = r.u64();
    seen_.insert({std::move(cut), ms});
  }
  violations_.clear();
  const std::uint64_t vcount = r.len(8);
  for (std::uint64_t i = 0; i < vcount && r.ok(); ++i) {
    violations_.push_back(observer::ckpt::readViolation(r));
  }
  return r.ok();
}

observer::AnalysisReport SpecAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = violations_.size();

  // Canonical text: sorted by (cut, component state), no witness paths —
  // byte-identical whether this property ran alone or packed with others,
  // serial or parallel.
  std::vector<const observer::Violation*> sorted;
  sorted.reserve(violations_.size());
  for (const auto& v : violations_) sorted.push_back(&v);
  std::sort(sorted.begin(), sorted.end(),
            [](const observer::Violation* a, const observer::Violation* b) {
              if (a->cut.k != b->cut.k) return a->cut.k < b->cut.k;
              return a->monitorState < b->monitorState;
            });

  std::ostringstream os;
  os << "property: " << spec_ << '\n';
  if (violations_.empty()) {
    os << "verdict: no violation on any consistent run";
    if (truncated_ || approximated_) os << " (coverage INCOMPLETE)";
    os << '\n';
  } else {
    os << "verdict: VIOLATED (" << violations_.size() << " cut/state pair"
       << (violations_.size() == 1 ? "" : "s") << ")\n";
    for (const observer::Violation* v : sorted) {
      // Render the state sorted by variable NAME: the engine's union space
      // orders slots by first-seen across all K specs, so slot order is
      // K-packing-dependent while the name order is not.
      std::vector<std::pair<std::string, Value>> vars;
      vars.reserve(v->state.values.size());
      for (std::size_t i = 0; i < v->state.values.size(); ++i) {
        vars.emplace_back(space_->name(i), v->state.values[i]);
      }
      std::sort(vars.begin(), vars.end());
      os << "  violation: cut " << v->cut.toString() << ", state <";
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (i != 0) os << ", ";
        os << vars[i].first << " = " << vars[i].second;
      }
      os << ">\n";
    }
  }
  // A deployment that never feeds observed states (the remote daemon sees
  // only MVC messages) must not claim the run holds.
  if (observedCount_ == 0) {
    os << "observed run: (not monitored)\n";
  } else {
    os << "observed run: "
       << (observedRunViolates()
               ? "violates at state " + std::to_string(observedViolationIndex_)
               : "holds")
       << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::logic
