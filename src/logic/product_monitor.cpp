#include "logic/product_monitor.hpp"

#include <stdexcept>

namespace mpx::logic {

std::size_t ProductMonitor::add(const Formula& f, std::string name) {
  auto monitor = std::make_unique<SynthesizedMonitor>(f);
  const unsigned bits = static_cast<unsigned>(monitor->subformulaCount());
  if (width_ + bits > 64) {
    throw std::invalid_argument(
        "ProductMonitor: combined monitor state exceeds 64 bits (" +
        std::to_string(width_ + bits) + ")");
  }
  Part p;
  p.monitor = std::move(monitor);
  p.name = name.empty() ? "property" + std::to_string(parts_.size()) : name;
  p.offset = width_;
  p.width = bits;
  width_ += bits;
  parts_.push_back(std::move(p));
  return parts_.size() - 1;
}

observer::MonitorState ProductMonitor::initial(
    const observer::GlobalState& s) {
  observer::MonitorState out = 0;
  for (const Part& p : parts_) {
    out |= p.monitor->initial(s) << p.offset;
  }
  return out;
}

observer::MonitorState ProductMonitor::advance(observer::MonitorState prev,
                                               const observer::GlobalState& s) {
  observer::MonitorState out = 0;
  for (const Part& p : parts_) {
    out |= p.monitor->advance(extract(prev, p), s) << p.offset;
  }
  return out;
}

bool ProductMonitor::isViolating(observer::MonitorState m) const {
  for (const Part& p : parts_) {
    if (p.monitor->isViolating(extract(m, p))) return true;
  }
  return false;
}

std::vector<std::size_t> ProductMonitor::violatingComponents(
    observer::MonitorState m) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i].monitor->isViolating(extract(m, parts_[i]))) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace mpx::logic
