// Explicit finite-state-machine monitors (paper §4):
//
//   "If the property to be checked can be translated into a finite state
//    machine (FSM) ... then one can analyze all the multithreaded runs in
//    parallel, as the computation lattice is built.  The idea is to store
//    the state of the FSM ... together with each global state in the
//    computation lattice."
//
// FsmMonitor is the hand-authored alternative to the synthesized ptLTL
// monitors: states with names, guard-labelled transitions over the global
// state, designated violating states.  It implements the same
// observer::LatticeMonitor interface, so the lattice (batch or online)
// carries its state exactly like a synthesized monitor's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/state_expr.hpp"
#include "observer/lattice.hpp"

namespace mpx::logic {

class FsmMonitor final : public observer::LatticeMonitor {
 public:
  using StateId = std::uint32_t;

  /// Adds a state; the first added state is the initial state.
  StateId addState(std::string name, bool violating = false);

  /// Adds a transition from `from` to `to`, taken when `guard` evaluates
  /// non-zero.  Transitions are tried in insertion order; the first
  /// matching guard fires; when none matches the machine stays in place
  /// (implicit self-loop).
  void addTransition(StateId from, StateExpr guard, StateId to);

  [[nodiscard]] std::size_t stateCount() const noexcept {
    return states_.size();
  }
  [[nodiscard]] const std::string& stateName(StateId s) const {
    return states_.at(s).name;
  }

  /// The monitor consumes the initial global state too (like the
  /// synthesized monitors): the machine starts in state 0 and immediately
  /// takes one step on the initial state.
  observer::MonitorState initial(const observer::GlobalState& s) override;
  observer::MonitorState advance(observer::MonitorState prev,
                                 const observer::GlobalState& s) override;
  [[nodiscard]] bool isViolating(observer::MonitorState m) const override;

  /// Graph-reachability pruning: a state from which no violating state is
  /// reachable through the transition graph (treating every guard as
  /// satisfiable — a sound over-approximation) can never violate, so the
  /// lattice garbage-collects it.  "landed"-style absorbing-safe states
  /// make the check's frontier shrink as runs resolve.
  [[nodiscard]] bool canEverViolate(observer::MonitorState m) const override;

  /// Linear monitoring convenience, mirroring SynthesizedMonitor.
  [[nodiscard]] std::int64_t firstViolation(
      const std::vector<observer::GlobalState>& trace);

 private:
  struct Transition {
    StateExpr guard;
    StateId to;
  };
  struct State {
    std::string name;
    bool violating = false;
    std::vector<Transition> out;
  };

  [[nodiscard]] StateId step(StateId at,
                             const observer::GlobalState& s) const;
  void recomputeReachability() const;

  std::vector<State> states_;
  /// canReachViolation_[s]: some path of transitions from s hits a
  /// violating state.  Lazily recomputed after structural changes.
  mutable std::vector<bool> canReachViolation_;
  mutable bool reachabilityFresh_ = false;
};

}  // namespace mpx::logic
