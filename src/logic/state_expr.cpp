#include "logic/state_expr.hpp"

#include <sstream>

namespace mpx::logic {

struct StateExpr::Node {
  StateOp op;
  Value constant = 0;
  std::size_t slot = 0;
  std::string name;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

StateExpr StateExpr::constant(Value v) {
  auto n = std::make_shared<Node>();
  n->op = StateOp::kConst;
  n->constant = v;
  return StateExpr(std::move(n));
}

StateExpr StateExpr::var(std::size_t slot, std::string name) {
  auto n = std::make_shared<Node>();
  n->op = StateOp::kVar;
  n->slot = slot;
  n->name = std::move(name);
  return StateExpr(std::move(n));
}

StateExpr StateExpr::unary(StateOp op, StateExpr e) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(e.node_);
  return StateExpr(std::move(n));
}

StateExpr StateExpr::binary(StateOp op, StateExpr a, StateExpr b) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(a.node_);
  n->rhs = std::move(b.node_);
  return StateExpr(std::move(n));
}

namespace {

Value evalNode(const StateExpr::Node* n, const observer::GlobalState& s);

Value ev(const std::shared_ptr<const StateExpr::Node>& n,
         const observer::GlobalState& s) {
  return evalNode(n.get(), s);
}

Value evalNode(const StateExpr::Node* n, const observer::GlobalState& s) {
  switch (n->op) {
    case StateOp::kConst: return n->constant;
    case StateOp::kVar: return s.values.at(n->slot);
    case StateOp::kAdd: return ev(n->lhs, s) + ev(n->rhs, s);
    case StateOp::kSub: return ev(n->lhs, s) - ev(n->rhs, s);
    case StateOp::kMul: return ev(n->lhs, s) * ev(n->rhs, s);
    case StateOp::kDiv: {
      const Value d = ev(n->rhs, s);
      return d == 0 ? 0 : ev(n->lhs, s) / d;
    }
    case StateOp::kNeg: return -ev(n->lhs, s);
    case StateOp::kEq: return ev(n->lhs, s) == ev(n->rhs, s) ? 1 : 0;
    case StateOp::kNe: return ev(n->lhs, s) != ev(n->rhs, s) ? 1 : 0;
    case StateOp::kLt: return ev(n->lhs, s) < ev(n->rhs, s) ? 1 : 0;
    case StateOp::kLe: return ev(n->lhs, s) <= ev(n->rhs, s) ? 1 : 0;
    case StateOp::kGt: return ev(n->lhs, s) > ev(n->rhs, s) ? 1 : 0;
    case StateOp::kGe: return ev(n->lhs, s) >= ev(n->rhs, s) ? 1 : 0;
  }
  return 0;
}

const char* symbol(StateOp op) {
  switch (op) {
    case StateOp::kAdd: return "+";
    case StateOp::kSub: return "-";
    case StateOp::kMul: return "*";
    case StateOp::kDiv: return "/";
    case StateOp::kEq: return "==";
    case StateOp::kNe: return "!=";
    case StateOp::kLt: return "<";
    case StateOp::kLe: return "<=";
    case StateOp::kGt: return ">";
    case StateOp::kGe: return ">=";
    default: return "?";
  }
}

void print(const StateExpr::Node* n, std::ostringstream& os) {
  switch (n->op) {
    case StateOp::kConst:
      os << n->constant;
      return;
    case StateOp::kVar:
      os << n->name;
      return;
    case StateOp::kNeg:
      os << '-';
      print(n->lhs.get(), os);
      return;
    default:
      os << '(';
      print(n->lhs.get(), os);
      os << ' ' << symbol(n->op) << ' ';
      print(n->rhs.get(), os);
      os << ')';
  }
}

}  // namespace

Value StateExpr::eval(const observer::GlobalState& s) const {
  return evalNode(node_.get(), s);
}

std::string StateExpr::toString() const {
  std::ostringstream os;
  print(node_.get(), os);
  return os.str();
}

}  // namespace mpx::logic
