#include "logic/monitor.hpp"

#include <stdexcept>
#include <unordered_map>

namespace mpx::logic {

namespace {

/// Structural deduplication map (by node pointer — shared subtrees share
/// bits; structurally equal but distinct trees get distinct bits, which is
/// only a size cost, never a correctness one).
using IndexMap = std::unordered_map<const Formula::Node*, int>;

}  // namespace

namespace {

int flattenInto(const Formula::Node* n, IndexMap& seen,
                std::vector<SynthesizedMonitor::Sub>& subs) {
  if (const auto it = seen.find(n); it != seen.end()) return it->second;
  // Children first so a subformula's bit is computable from lower bits.
  const int lhs = n->lhs ? flattenInto(n->lhs.get(), seen, subs) : -1;
  const int rhs = n->rhs ? flattenInto(n->rhs.get(), seen, subs) : -1;
  SynthesizedMonitor::Sub s;
  s.op = n->op;
  s.lhs = lhs;
  s.rhs = rhs;
  if (n->op == PtOp::kAtom) s.atom = &n->atom;
  const int idx = static_cast<int>(subs.size());
  subs.push_back(s);
  seen.emplace(n, idx);
  return idx;
}

}  // namespace

SynthesizedMonitor::SynthesizedMonitor(const Formula& f)
    : formulaRoot_(f.share()) {
  IndexMap seen;
  const int root = flattenInto(formulaRoot_.get(), seen, subs_);
  if (subs_.size() > 64) {
    throw std::invalid_argument(
        "SynthesizedMonitor: formula exceeds 64 subformulas (" +
        std::to_string(subs_.size()) + ")");
  }
  rootBit_ = static_cast<unsigned>(root);
}

observer::MonitorState SynthesizedMonitor::initial(
    const observer::GlobalState& s) {
  std::uint64_t bits = 0;
  const auto now = [&bits](int i) { return bits >> i & 1u; };
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const Sub& f = subs_[i];
    std::uint64_t v = 0;
    switch (f.op) {
      case PtOp::kAtom: v = f.atom->evalBool(s) ? 1 : 0; break;
      case PtOp::kTrue: v = 1; break;
      case PtOp::kFalse: v = 0; break;
      case PtOp::kNot: v = now(f.lhs) ^ 1u; break;
      case PtOp::kAnd: v = now(f.lhs) & now(f.rhs); break;
      case PtOp::kOr: v = now(f.lhs) | now(f.rhs); break;
      case PtOp::kImplies: v = (now(f.lhs) ^ 1u) | now(f.rhs); break;
      // At the first state: prev F = F; once/historically F = F;
      // F1 S F2 = F2; start/end = false; [F1,F2) = F1 && !F2.
      case PtOp::kPrev: v = now(f.lhs); break;
      case PtOp::kOnce: v = now(f.lhs); break;
      case PtOp::kHistorically: v = now(f.lhs); break;
      case PtOp::kSince: v = now(f.rhs); break;
      case PtOp::kStart: v = 0; break;
      case PtOp::kEnd: v = 0; break;
      case PtOp::kInterval: v = now(f.lhs) & (now(f.rhs) ^ 1u); break;
    }
    bits |= v << i;
  }
  return bits;
}

observer::MonitorState SynthesizedMonitor::advance(
    observer::MonitorState prev, const observer::GlobalState& s) {
  std::uint64_t bits = 0;
  const auto now = [&bits](int i) { return bits >> i & 1u; };
  const auto was = [prev](std::size_t i) { return prev >> i & 1u; };
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const Sub& f = subs_[i];
    std::uint64_t v = 0;
    switch (f.op) {
      case PtOp::kAtom: v = f.atom->evalBool(s) ? 1 : 0; break;
      case PtOp::kTrue: v = 1; break;
      case PtOp::kFalse: v = 0; break;
      case PtOp::kNot: v = now(f.lhs) ^ 1u; break;
      case PtOp::kAnd: v = now(f.lhs) & now(f.rhs); break;
      case PtOp::kOr: v = now(f.lhs) | now(f.rhs); break;
      case PtOp::kImplies: v = (now(f.lhs) ^ 1u) | now(f.rhs); break;
      case PtOp::kPrev: v = was(static_cast<std::size_t>(f.lhs)); break;
      case PtOp::kOnce: v = now(f.lhs) | was(i); break;
      case PtOp::kHistorically: v = now(f.lhs) & was(i); break;
      case PtOp::kSince: v = now(f.rhs) | (now(f.lhs) & was(i)); break;
      case PtOp::kStart:
        v = now(f.lhs) & (was(static_cast<std::size_t>(f.lhs)) ^ 1u);
        break;
      case PtOp::kEnd:
        v = (now(f.lhs) ^ 1u) & was(static_cast<std::size_t>(f.lhs));
        break;
      case PtOp::kInterval:
        v = (now(f.rhs) ^ 1u) & (now(f.lhs) | was(i));
        break;
    }
    bits |= v << i;
  }
  return bits;
}

bool SynthesizedMonitor::stepLinear(const observer::GlobalState& s) {
  cur_ = started_ ? advance(cur_, s) : initial(s);
  started_ = true;
  return !isViolating(cur_);
}

std::int64_t SynthesizedMonitor::firstViolation(
    const std::vector<observer::GlobalState>& trace) {
  reset();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!stepLinear(trace[i])) return static_cast<std::int64_t>(i);
  }
  return -1;
}

}  // namespace mpx::logic
