// Common safety-specification patterns as ptLTL formula builders.
//
// The specification-pattern vocabulary (Dwyer et al.) restricted to the
// past-time fragment this library monitors.  Each builder documents its
// meaning over a finite trace evaluated at the current state; all of them
// compile to the same synthesized monitors as hand-written formulas, and
// the tests pin the equivalences.
#pragma once

#include "logic/ptltl.hpp"

namespace mpx::logic::patterns {

/// "p has never held" (absence, global scope): historically !p.
[[nodiscard]] inline Formula never(Formula p) {
  return Formula::historically(Formula::negation(std::move(p)));
}

/// "p has always held" (universality): historically p.
[[nodiscard]] inline Formula always(Formula p) {
  return Formula::historically(std::move(p));
}

/// "q only after p" (precedence): q -> once p.  When q holds now, p must
/// have held at some point (possibly now).
[[nodiscard]] inline Formula precededBy(Formula q, Formula p) {
  return Formula::implies(std::move(q), Formula::once(std::move(p)));
}

/// "q's rising edge only after p" — like precededBy but anchored at the
/// edge, so q remaining true later cannot retro-violate:
/// start(q) -> once p.
[[nodiscard]] inline Formula riseAfter(Formula q, Formula p) {
  return Formula::implies(Formula::start(std::move(q)),
                          Formula::once(std::move(p)));
}

/// "a and b never hold together" (mutual exclusion): !(a && b).
[[nodiscard]] inline Formula mutex(Formula a, Formula b) {
  return Formula::negation(
      Formula::conjunction(std::move(a), std::move(b)));
}

/// The paper's interval-guarded trigger (its Example 1 shape):
/// "when `trigger` rises, `armed` must have held at some point, and
/// `breaker` must not have held since": start(trigger) -> [armed, breaker).
[[nodiscard]] inline Formula armedWindow(Formula trigger, Formula armed,
                                         Formula breaker) {
  return Formula::implies(
      Formula::start(std::move(trigger)),
      Formula::interval(std::move(armed), std::move(breaker)));
}

/// "p is stable once set" (latch): once p -> p.
[[nodiscard]] inline Formula latched(Formula p) {
  return Formula::implies(Formula::once(p), p);
}

/// "q between p and r": if q holds now and r has not yet closed the scope
/// opened by p, then p must have opened it: q -> (!r S p).
[[nodiscard]] inline Formula betweenOpenClose(Formula q, Formula p,
                                              Formula r) {
  return Formula::implies(
      std::move(q),
      Formula::since(Formula::negation(std::move(r)), std::move(p)));
}

}  // namespace mpx::logic::patterns
