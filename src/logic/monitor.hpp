// Synthesized online monitors for ptLTL safety properties.
//
// Following the Havelund-Roşu synthesis technique the paper builds on
// (refs [17, 18]): the monitor's entire state is the truth value of every
// subformula at the current trace position, packed into one machine word,
// and each new global state updates all subformulas bottom-up in O(|φ|).
//
// Because the state is a single word, the lattice can store *sets* of
// monitor states per node and thereby check the property against the
// exponentially many multithreaded runs in parallel (paper §4: "only one
// cut in the computation lattice is needed at any time").
#pragma once

#include <cstdint>
#include <vector>

#include "logic/ptltl.hpp"
#include "observer/lattice.hpp"

namespace mpx::logic {

class SynthesizedMonitor final : public observer::LatticeMonitor {
 public:
  /// Compiles `f`.  Throws std::invalid_argument if the formula has more
  /// than 64 distinct subformulas (the packed-state limit).
  explicit SynthesizedMonitor(const Formula& f);

  /// Number of distinct subformulas (= bits of monitor state used).
  [[nodiscard]] std::size_t subformulaCount() const noexcept {
    return subs_.size();
  }

  // --- observer::LatticeMonitor -------------------------------------
  observer::MonitorState initial(const observer::GlobalState& s) override;
  observer::MonitorState advance(observer::MonitorState prev,
                                 const observer::GlobalState& s) override;
  [[nodiscard]] bool isViolating(observer::MonitorState m) const override {
    return (m >> rootBit_ & 1u) == 0;
  }
  /// ptLTL monitors use one bit per subformula, so several fit in the
  /// MonitorBus's packed 64-bit word.
  [[nodiscard]] unsigned stateBits() const override {
    return static_cast<unsigned>(subs_.size());
  }

  // --- linear (single-trace) monitoring ------------------------------
  /// Reset for a fresh trace.
  void reset() noexcept { started_ = false; }
  /// Feed the next state of a linear trace; returns true iff the property
  /// holds at this state.
  bool stepLinear(const observer::GlobalState& s);
  /// Checks a whole trace; returns the index of the first violating state,
  /// or -1 if the property holds throughout.
  [[nodiscard]] std::int64_t firstViolation(
      const std::vector<observer::GlobalState>& trace);

  // --- checkpoint support (SpecAnalysis::checkpoint/restore) ----------
  /// The packed subformula word of the linear monitor's current position.
  [[nodiscard]] std::uint64_t linearState() const noexcept { return cur_; }
  [[nodiscard]] bool linearStarted() const noexcept { return started_; }
  /// Resumes the linear monitor exactly where a checkpointed one stood.
  void restoreLinear(std::uint64_t state, bool started) noexcept {
    cur_ = state;
    started_ = started;
  }

  /// One flattened subformula (public so the compiler helper can build it).
  struct Sub {
    PtOp op;
    const StateExpr* atom = nullptr;  // owned via formulaRoot_
    int lhs = -1;
    int rhs = -1;
  };

 private:
  std::shared_ptr<const Formula::Node> formulaRoot_;  // keeps atoms alive
  std::vector<Sub> subs_;  ///< children-first order
  unsigned rootBit_ = 0;
  std::uint64_t cur_ = 0;
  bool started_ = false;
};

}  // namespace mpx::logic
