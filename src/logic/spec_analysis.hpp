// The ptLTL safety checker as a lattice-engine plugin.
//
// Wraps one parsed specification in the observer::Analysis interface: a
// riding SynthesizedMonitor contributes `subformulaCount()` bits to the
// engine's packed monitor word (MonitorBus), a second linear monitor tracks
// the observed single run (the JPAX-style baseline verdict), and accepted
// violations are deduplicated per (cut, component state) so K properties
// checked in ONE pass report exactly what K independent single-property
// passes would.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "logic/monitor.hpp"
#include "observer/analysis.hpp"

namespace mpx::logic {

class SpecAnalysis final : public observer::Analysis {
 public:
  /// `space` must outlive the plugin and contain every variable `formula`
  /// references; `spec` is the source text (used for the report header).
  SpecAnalysis(const observer::StateSpace& space, const Formula& formula,
               std::string spec);

  [[nodiscard]] std::string name() const override { return "ptltl: " + spec_; }
  [[nodiscard]] std::string kind() const override { return "ptltl"; }
  [[nodiscard]] observer::LatticeMonitor* monitor() override {
    return &riding_;
  }

  void onObservedState(const observer::GlobalState& state) override;
  bool onViolation(const observer::Violation& v,
                   observer::MonitorState componentState) override;
  void finish(const observer::LatticeStats& stats) override;
  void checkpoint(observer::ckpt::Writer& w) const override;
  [[nodiscard]] bool restore(observer::ckpt::Reader& r) override;
  [[nodiscard]] observer::AnalysisReport report() const override;

  /// Violations of THIS property (component monitor state in
  /// Violation::monitorState), in engine arrival order.
  [[nodiscard]] const std::vector<observer::Violation>& violations()
      const noexcept {
    return violations_;
  }
  /// Index of the first violating observed state, or -1 (the single-trace
  /// baseline verdict).
  [[nodiscard]] std::int64_t observedViolationIndex() const noexcept {
    return observedViolationIndex_;
  }
  [[nodiscard]] bool observedRunViolates() const noexcept {
    return observedViolationIndex_ >= 0;
  }
  [[nodiscard]] const std::string& spec() const noexcept { return spec_; }

 private:
  const observer::StateSpace* space_;
  std::string spec_;
  SynthesizedMonitor riding_;  ///< packed into the engine's monitor word
  SynthesizedMonitor linear_;  ///< steps the observed run only
  /// Dedupe key: in a multi-plugin pass the same component state can enter
  /// one cut inside several distinct packed words; single-property passes
  /// see it once, so the plugin must too.
  std::set<std::pair<std::vector<std::uint32_t>, observer::MonitorState>>
      seen_;
  std::vector<observer::Violation> violations_;
  std::int64_t observedViolationIndex_ = -1;
  std::int64_t observedCount_ = 0;
  bool truncated_ = false;
  bool approximated_ = false;
};

}  // namespace mpx::logic
