#include "logic/parser.hpp"

#include <cctype>
#include <optional>
#include <unordered_set>

namespace mpx::logic {
namespace {

enum class Tok : std::uint8_t {
  kEnd, kIdent, kInt,
  kLParen, kRParen, kLBracket, kComma,
  kNot, kAnd, kOr, kImplies,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash,
  kPrev, kOnce, kHistorically, kSince, kStart, kEnd2, kTrue, kFalse,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  Value value = 0;
  std::size_t pos = 0;
};

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "prev", "once", "historically", "S", "start", "end", "true", "false",
      "and", "or", "not"};
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      const Token t = next();
      out.push_back(t);
      if (t.kind == Tok::kEnd) break;
    }
    return out;
  }

 private:
  Token next() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
    Token t;
    t.pos = i_;
    if (i_ >= text_.size()) return t;

    const char c = text_[i_];
    const auto two = [this](char a, char b) {
      return text_[i_] == a && i_ + 1 < text_.size() && text_[i_ + 1] == b;
    };

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i_;
      while (j < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[j]))) {
        ++j;
      }
      t.kind = Tok::kInt;
      t.value = std::stoll(text_.substr(i_, j - i_));
      i_ = j;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) ||
              text_[j] == '_')) {
        ++j;
      }
      t.text = text_.substr(i_, j - i_);
      i_ = j;
      if (t.text == "prev") t.kind = Tok::kPrev;
      else if (t.text == "once") t.kind = Tok::kOnce;
      else if (t.text == "historically") t.kind = Tok::kHistorically;
      else if (t.text == "S") t.kind = Tok::kSince;
      else if (t.text == "start") t.kind = Tok::kStart;
      else if (t.text == "end") t.kind = Tok::kEnd2;
      else if (t.text == "true") t.kind = Tok::kTrue;
      else if (t.text == "false") t.kind = Tok::kFalse;
      else if (t.text == "and") t.kind = Tok::kAnd;
      else if (t.text == "or") t.kind = Tok::kOr;
      else if (t.text == "not") t.kind = Tok::kNot;
      else t.kind = Tok::kIdent;
      return t;
    }

    // "<*>" (once) and "[*]" (historically) glyph forms.
    if (c == '<' && i_ + 2 < text_.size() && text_[i_ + 1] == '*' &&
        text_[i_ + 2] == '>') {
      t.kind = Tok::kOnce;
      i_ += 3;
      return t;
    }
    if (c == '[' && i_ + 2 < text_.size() && text_[i_ + 1] == '*' &&
        text_[i_ + 2] == ']') {
      t.kind = Tok::kHistorically;
      i_ += 3;
      return t;
    }

    if (two('-', '>')) { t.kind = Tok::kImplies; i_ += 2; return t; }
    if (two('&', '&')) { t.kind = Tok::kAnd; i_ += 2; return t; }
    if (two('|', '|')) { t.kind = Tok::kOr; i_ += 2; return t; }
    if (two('=', '=')) { t.kind = Tok::kEq; i_ += 2; return t; }
    if (two('!', '=')) { t.kind = Tok::kNe; i_ += 2; return t; }
    if (two('<', '=')) { t.kind = Tok::kLe; i_ += 2; return t; }
    if (two('>', '=')) { t.kind = Tok::kGe; i_ += 2; return t; }

    switch (c) {
      case '(': t.kind = Tok::kLParen; break;
      case ')': t.kind = Tok::kRParen; break;
      case '[': t.kind = Tok::kLBracket; break;
      case ',': t.kind = Tok::kComma; break;
      case '!': t.kind = Tok::kNot; break;
      case '@': t.kind = Tok::kPrev; break;
      case '=': t.kind = Tok::kEq; break;
      case '<': t.kind = Tok::kLt; break;
      case '>': t.kind = Tok::kGt; break;
      case '+': t.kind = Tok::kPlus; break;
      case '-': t.kind = Tok::kMinus; break;
      case '*': t.kind = Tok::kStar; break;
      case '/': t.kind = Tok::kSlash; break;
      default:
        throw SpecError(std::string("unexpected character '") + c + "'", i_);
    }
    ++i_;
    return t;
  }

  const std::string& text_;
  std::size_t i_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const observer::StateSpace& space)
      : toks_(std::move(tokens)), space_(&space) {}

  Formula parseAll() {
    Formula f = formula();
    expect(Tok::kEnd, "end of input");
    return f;
  }

 private:
  const Token& peek() const { return toks_[i_]; }
  const Token& get() { return toks_[i_++]; }
  bool accept(Tok k) {
    if (peek().kind == k) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(Tok k, const char* what) {
    if (!accept(k)) {
      throw SpecError(std::string("expected ") + what, peek().pos);
    }
  }

  Formula formula() {
    Formula lhs = orExpr();
    if (accept(Tok::kImplies)) {
      return Formula::implies(std::move(lhs), formula());
    }
    return lhs;
  }

  Formula orExpr() {
    Formula f = andExpr();
    while (accept(Tok::kOr)) {
      f = Formula::disjunction(std::move(f), andExpr());
    }
    return f;
  }

  Formula andExpr() {
    Formula f = sinceExpr();
    while (accept(Tok::kAnd)) {
      f = Formula::conjunction(std::move(f), sinceExpr());
    }
    return f;
  }

  Formula sinceExpr() {
    Formula f = unary();
    while (accept(Tok::kSince)) {
      f = Formula::since(std::move(f), unary());
    }
    return f;
  }

  Formula unary() {
    switch (peek().kind) {
      case Tok::kNot:
        get();
        return Formula::negation(unary());
      case Tok::kPrev:
        get();
        return Formula::prev(unary());
      case Tok::kOnce:
        get();
        return Formula::once(unary());
      case Tok::kHistorically:
        get();
        return Formula::historically(unary());
      case Tok::kStart: {
        get();
        expect(Tok::kLParen, "'(' after start");
        Formula f = formula();
        expect(Tok::kRParen, "')'");
        return Formula::start(std::move(f));
      }
      case Tok::kEnd2: {
        get();
        expect(Tok::kLParen, "'(' after end");
        Formula f = formula();
        expect(Tok::kRParen, "')'");
        return Formula::end(std::move(f));
      }
      case Tok::kLBracket: {
        get();
        Formula from = formula();
        expect(Tok::kComma, "',' in interval");
        Formula until = formula();
        expect(Tok::kRParen, "')' closing interval");
        return Formula::interval(std::move(from), std::move(until));
      }
      default:
        return primary();
    }
  }

  Formula primary() {
    if (accept(Tok::kTrue)) return Formula::verum();
    if (accept(Tok::kFalse)) return Formula::falsum();

    // Try a comparison/arithmetic atom first; on failure, backtrack into a
    // parenthesized sub-formula ONLY when one can start here — otherwise
    // rethrow the (more specific) arithmetic error, preserving unknown-
    // variable messages and positions.
    const std::size_t save = i_;
    try {
      return comparison();
    } catch (const SpecError&) {
      i_ = save;
      if (peek().kind != Tok::kLParen) throw;
    }
    expect(Tok::kLParen, "'('");
    Formula f = formula();
    expect(Tok::kRParen, "')'");
    return f;
  }

  Formula comparison() {
    StateExpr lhs = arith();
    StateOp op;
    switch (peek().kind) {
      case Tok::kEq: op = StateOp::kEq; break;
      case Tok::kNe: op = StateOp::kNe; break;
      case Tok::kLt: op = StateOp::kLt; break;
      case Tok::kLe: op = StateOp::kLe; break;
      case Tok::kGt: op = StateOp::kGt; break;
      case Tok::kGe: op = StateOp::kGe; break;
      default:
        // Bare arithmetic atom: value != 0.
        return Formula::atom(std::move(lhs));
    }
    get();
    StateExpr rhs = arith();
    return Formula::atom(StateExpr::binary(op, std::move(lhs), std::move(rhs)));
  }

  StateExpr arith() {
    StateExpr e = term();
    while (true) {
      if (accept(Tok::kPlus)) {
        e = StateExpr::binary(StateOp::kAdd, std::move(e), term());
      } else if (accept(Tok::kMinus)) {
        e = StateExpr::binary(StateOp::kSub, std::move(e), term());
      } else {
        return e;
      }
    }
  }

  StateExpr term() {
    StateExpr e = factor();
    while (true) {
      if (accept(Tok::kStar)) {
        e = StateExpr::binary(StateOp::kMul, std::move(e), factor());
      } else if (accept(Tok::kSlash)) {
        e = StateExpr::binary(StateOp::kDiv, std::move(e), factor());
      } else {
        return e;
      }
    }
  }

  StateExpr factor() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::kInt:
        get();
        return StateExpr::constant(t.value);
      case Tok::kIdent: {
        get();
        // Bind against the state space.
        try {
          const std::size_t slot = space_->slotOfName(t.text);
          return StateExpr::var(slot, t.text);
        } catch (const std::out_of_range&) {
          throw SpecError("unknown variable '" + t.text + "'", t.pos);
        }
      }
      case Tok::kMinus:
        get();
        return StateExpr::unary(StateOp::kNeg, factor());
      case Tok::kLParen: {
        get();
        StateExpr e = arith();
        expect(Tok::kRParen, "')' in arithmetic");
        return e;
      }
      default:
        throw SpecError("expected an arithmetic operand", t.pos);
    }
  }

  std::vector<Token> toks_;
  const observer::StateSpace* space_;
  std::size_t i_ = 0;
};

}  // namespace

Formula SpecParser::parse(const std::string& text) const {
  Lexer lex(text);
  Parser p(lex.run(), *space_);
  return p.parseAll();
}

std::vector<std::string> SpecParser::referencedVariables(
    const std::string& text) {
  Lexer lex(text);
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Token& t : lex.run()) {
    if (t.kind == Tok::kIdent && !keywords().contains(t.text) &&
        seen.insert(t.text).second) {
      out.push_back(t.text);
    }
  }
  return out;
}

}  // namespace mpx::logic
