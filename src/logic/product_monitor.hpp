// Checking SEVERAL safety properties in one lattice pass.
//
// The lattice traversal cost is per-node structural work; a monitor's
// per-edge cost is tiny.  When multiple specifications share the same
// relevant variables (JMPaX sessions typically watch several properties of
// one subsystem), packing their synthesized monitors into one combined
// state checks them all in a single level-by-level pass instead of one
// lattice traversal per property.
//
// Each component SynthesizedMonitor uses `subformulaCount()` bits; the
// product packs them side by side into the one-word observer::MonitorState.
// The combined width must stay within 64 bits.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "logic/monitor.hpp"

namespace mpx::logic {

class ProductMonitor final : public observer::LatticeMonitor {
 public:
  ProductMonitor() = default;

  /// Adds a property; returns its component index.  Throws when the
  /// combined packed width would exceed 64 bits.
  std::size_t add(const Formula& f, std::string name = {});

  [[nodiscard]] std::size_t componentCount() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return parts_.at(i).name;
  }
  [[nodiscard]] std::size_t bitsUsed() const noexcept { return width_; }

  // --- observer::LatticeMonitor -------------------------------------
  observer::MonitorState initial(const observer::GlobalState& s) override;
  observer::MonitorState advance(observer::MonitorState prev,
                                 const observer::GlobalState& s) override;
  /// Violating iff ANY component is violating.
  [[nodiscard]] bool isViolating(observer::MonitorState m) const override;
  [[nodiscard]] unsigned stateBits() const override { return width_; }

  /// Which components are violating in `m` (for attribution in reports).
  [[nodiscard]] std::vector<std::size_t> violatingComponents(
      observer::MonitorState m) const;

 private:
  struct Part {
    std::unique_ptr<SynthesizedMonitor> monitor;
    std::string name;
    unsigned offset = 0;
    unsigned width = 0;
  };

  [[nodiscard]] observer::MonitorState extract(observer::MonitorState m,
                                               const Part& p) const {
    const observer::MonitorState mask =
        p.width == 64 ? ~0ull : ((1ull << p.width) - 1);
    return (m >> p.offset) & mask;
  }

  std::vector<Part> parts_;
  unsigned width_ = 0;
};

}  // namespace mpx::logic
