// Future-time LTL on ultimately-periodic words u·v^ω — the paper's liveness
// prediction sketch (§4):
//
//   "search for paths of the form uv in the computation lattice with the
//    property that the shared variable global state ... reached by u is the
//    same as the one reached by uv, and then check whether u v^ω satisfies
//    the liveness property ... the test u v^ω |= φ can be done in polynomial
//    time and space in the sizes of u, v and φ [Markey & Schnoebelen,
//    CONCUR'03]".
//
// We implement the standard dynamic-programming evaluation: subformula
// values are computed bottom-up per position; temporal operators on the
// loop are solved by backward fixpoint sweeps (least fixpoint for U/F,
// greatest for G), which converge within |v| sweeps.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "logic/state_expr.hpp"

namespace mpx::logic {

enum class LtlOp : std::uint8_t {
  kAtom,
  kTrue,
  kFalse,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kNext,        // X φ
  kUntil,       // φ U ψ
  kEventually,  // F φ
  kAlways,      // G φ
};

/// Immutable future-time LTL formula.
class LtlFormula {
 public:
  LtlFormula() : LtlFormula(verum()) {}

  [[nodiscard]] static LtlFormula atom(StateExpr e);
  [[nodiscard]] static LtlFormula verum();
  [[nodiscard]] static LtlFormula falsum();
  [[nodiscard]] static LtlFormula negation(LtlFormula f);
  [[nodiscard]] static LtlFormula conjunction(LtlFormula a, LtlFormula b);
  [[nodiscard]] static LtlFormula disjunction(LtlFormula a, LtlFormula b);
  [[nodiscard]] static LtlFormula implies(LtlFormula a, LtlFormula b);
  [[nodiscard]] static LtlFormula next(LtlFormula f);
  [[nodiscard]] static LtlFormula until(LtlFormula a, LtlFormula b);
  [[nodiscard]] static LtlFormula eventually(LtlFormula f);
  [[nodiscard]] static LtlFormula always(LtlFormula f);

  [[nodiscard]] std::string toString() const;

  struct Node {
    LtlOp op;
    StateExpr atom;
    std::shared_ptr<const Node> lhs;
    std::shared_ptr<const Node> rhs;
  };
  [[nodiscard]] const Node* root() const noexcept { return node_.get(); }

 private:
  explicit LtlFormula(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

/// Evaluates u·v^ω ⊨ φ at position 0.  `loop` must be non-empty.
[[nodiscard]] bool satisfiesLasso(const LtlFormula& formula,
                                  std::span<const observer::GlobalState> stem,
                                  std::span<const observer::GlobalState> loop);

}  // namespace mpx::logic
