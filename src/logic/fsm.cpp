#include "logic/fsm.hpp"

#include <stdexcept>

namespace mpx::logic {

FsmMonitor::StateId FsmMonitor::addState(std::string name, bool violating) {
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(State{std::move(name), violating, {}});
  return id;
}

void FsmMonitor::addTransition(StateId from, StateExpr guard, StateId to) {
  if (from >= states_.size() || to >= states_.size()) {
    throw std::out_of_range("FsmMonitor: unknown state in transition");
  }
  states_[from].out.push_back(Transition{std::move(guard), to});
  reachabilityFresh_ = false;
}

void FsmMonitor::recomputeReachability() const {
  // Backward reachability from violating states over the transition graph,
  // assuming every guard is satisfiable (sound over-approximation).
  canReachViolation_.assign(states_.size(), false);
  std::vector<StateId> worklist;
  for (StateId s = 0; s < states_.size(); ++s) {
    if (states_[s].violating) {
      canReachViolation_[s] = true;
      worklist.push_back(s);
    }
  }
  while (!worklist.empty()) {
    const StateId target = worklist.back();
    worklist.pop_back();
    for (StateId s = 0; s < states_.size(); ++s) {
      if (canReachViolation_[s]) continue;
      for (const Transition& t : states_[s].out) {
        if (t.to == target || canReachViolation_[t.to]) {
          canReachViolation_[s] = true;
          worklist.push_back(s);
          break;
        }
      }
    }
  }
  reachabilityFresh_ = true;
}

bool FsmMonitor::canEverViolate(observer::MonitorState m) const {
  if (!reachabilityFresh_) recomputeReachability();
  return canReachViolation_.at(static_cast<StateId>(m));
}

FsmMonitor::StateId FsmMonitor::step(StateId at,
                                     const observer::GlobalState& s) const {
  for (const Transition& t : states_[at].out) {
    if (t.guard.evalBool(s)) return t.to;
  }
  return at;  // implicit self-loop
}

observer::MonitorState FsmMonitor::initial(const observer::GlobalState& s) {
  if (states_.empty()) {
    throw std::logic_error("FsmMonitor: no states defined");
  }
  return step(0, s);
}

observer::MonitorState FsmMonitor::advance(observer::MonitorState prev,
                                           const observer::GlobalState& s) {
  return step(static_cast<StateId>(prev), s);
}

bool FsmMonitor::isViolating(observer::MonitorState m) const {
  return states_.at(static_cast<StateId>(m)).violating;
}

std::int64_t FsmMonitor::firstViolation(
    const std::vector<observer::GlobalState>& trace) {
  observer::MonitorState m = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    m = i == 0 ? initial(trace[0]) : advance(m, trace[i]);
    if (isViolating(m)) return static_cast<std::int64_t>(i);
  }
  return -1;
}

}  // namespace mpx::logic
