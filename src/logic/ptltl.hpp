// Past-time LTL formulas with the interval notation — the specification
// language of the paper's examples.
//
// The paper writes the landing property as
//     landing = 1 -> [approved = 1, radio = 0)
// "if the plane has started landing, then it is the case that landing has
// been approved and since the approval the radio signal has never been
// down", using "the interval temporal logic notation in [18]"
// (Havelund & Roşu, Synthesizing monitors for safety properties, TACAS'02).
//
// Operators: boolean connectives; previously (prev/@), once (<*>, sometime
// in the past), historically ([*], always in the past), strong since (S),
// start/end edge detectors, and the interval [q, r).
//
// Semantics over a non-empty finite trace s_1 ... s_k, evaluated at the
// last state (standard Havelund-Roşu conventions; at the first state,
// "previously F" = F):
//   prev F          : F held at s_{k-1}          (at k=1: F at s_1)
//   once F          : F held at some s_j, j<=k
//   historically F  : F held at all s_j, j<=k
//   F1 S F2         : exists j<=k with F2 at s_j and F1 at all s_j+1..s_k
//   start F         : F at s_k and not F at s_{k-1}   (false at k=1)
//   end F           : not F at s_k and F at s_{k-1}   (false at k=1)
//   [F1, F2)        : exists j<=k with F1 at s_j, and F2 at none of
//                     s_j..s_k   (recursively: !F2 && (F1 || prev [F1,F2)))
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "logic/state_expr.hpp"

namespace mpx::logic {

enum class PtOp : std::uint8_t {
  kAtom,   // StateExpr != 0
  kTrue,
  kFalse,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kPrev,
  kOnce,
  kHistorically,
  kSince,     // lhs S rhs
  kStart,
  kEnd,
  kInterval,  // [lhs, rhs)
};

[[nodiscard]] const char* toString(PtOp op) noexcept;

/// Immutable ptLTL formula (shared subtrees are deduplicated by the
/// monitor compiler, so reusing a subformula object is free).
class Formula {
 public:
  Formula() : Formula(verum()) {}

  [[nodiscard]] static Formula atom(StateExpr e);
  [[nodiscard]] static Formula verum();
  [[nodiscard]] static Formula falsum();
  [[nodiscard]] static Formula negation(Formula f);
  [[nodiscard]] static Formula conjunction(Formula a, Formula b);
  [[nodiscard]] static Formula disjunction(Formula a, Formula b);
  [[nodiscard]] static Formula implies(Formula a, Formula b);
  [[nodiscard]] static Formula prev(Formula f);
  [[nodiscard]] static Formula once(Formula f);
  [[nodiscard]] static Formula historically(Formula f);
  [[nodiscard]] static Formula since(Formula a, Formula b);
  [[nodiscard]] static Formula start(Formula f);
  [[nodiscard]] static Formula end(Formula f);
  [[nodiscard]] static Formula interval(Formula from, Formula until);

  [[nodiscard]] std::string toString() const;

  struct Node {
    PtOp op;
    StateExpr atom;
    std::shared_ptr<const Node> lhs;
    std::shared_ptr<const Node> rhs;
  };

  [[nodiscard]] const Node* root() const noexcept { return node_.get(); }
  [[nodiscard]] std::shared_ptr<const Node> share() const noexcept {
    return node_;
  }

 private:
  explicit Formula(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

// Operator sugar so tests/examples read naturally.
[[nodiscard]] inline Formula operator!(Formula f) {
  return Formula::negation(std::move(f));
}
[[nodiscard]] inline Formula operator&&(Formula a, Formula b) {
  return Formula::conjunction(std::move(a), std::move(b));
}
[[nodiscard]] inline Formula operator||(Formula a, Formula b) {
  return Formula::disjunction(std::move(a), std::move(b));
}

}  // namespace mpx::logic
