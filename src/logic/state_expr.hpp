// Arithmetic/boolean expressions over observer global states — the atoms
// of the specification logic.
//
// Properties in the paper are built from state predicates like (x > 0) or
// (y = 0) over the relevant variables (paper §2.3).  A StateExpr evaluates
// to a Value against a GlobalState; boolean contexts read 0 as false and
// anything else as true.
#pragma once

#include <memory>
#include <string>

#include "observer/global_state.hpp"
#include "vc/types.hpp"

namespace mpx::logic {

enum class StateOp : std::uint8_t {
  kConst,
  kVar,  // tracked-variable slot
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Immutable expression tree over state slots.
class StateExpr {
 public:
  StateExpr() : StateExpr(constant(0)) {}

  [[nodiscard]] static StateExpr constant(Value v);
  /// Variable by tracked slot; `name` kept for rendering.
  [[nodiscard]] static StateExpr var(std::size_t slot, std::string name);
  [[nodiscard]] static StateExpr unary(StateOp op, StateExpr e);
  [[nodiscard]] static StateExpr binary(StateOp op, StateExpr a, StateExpr b);

  [[nodiscard]] Value eval(const observer::GlobalState& s) const;
  [[nodiscard]] bool evalBool(const observer::GlobalState& s) const {
    return eval(s) != 0;
  }

  [[nodiscard]] std::string toString() const;

  struct Node;  // public-opaque, defined in the .cpp

 private:
  explicit StateExpr(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace mpx::logic
