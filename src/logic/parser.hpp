// Parser for ptLTL specification strings.
//
// JMPaX's instrumentation module "parses the user specification, extracts
// the set of shared variables it refers to, i.e., the relevant variables"
// (paper §4.1).  This parser does both jobs: referencedVariables() performs
// the relevant-variable extraction that drives instrumentation, and
// parse() produces a bound Formula for monitor synthesis.
//
// Grammar (lowest to highest precedence):
//   formula  := or ('->' formula)?                      right-assoc
//   or       := and ('||' and)*
//   and      := since ('&&' since)*
//   since    := unary ('S' unary)*                      left-assoc
//   unary    := '!' unary
//            | ('prev'|'@') unary
//            | ('once'|'<*>') unary
//            | ('historically'|'[*]') unary
//            | 'start' '(' formula ')'
//            | 'end' '(' formula ')'
//            | '[' formula ',' formula ')'              interval
//            | primary
//   primary  := 'true' | 'false' | comparison | '(' formula ')'
//   comparison := arith (('='|'=='|'!='|'<'|'<='|'>'|'>=') arith)?
//   arith    := term (('+'|'-') term)*
//   term     := factor (('*'|'/') factor)*
//   factor   := integer | identifier | '-' factor | '(' arith ')'
//
// A bare arithmetic expression used as a formula means "!= 0".
// The single '=' is accepted as equality, as in the paper's examples
// ("y = 0").
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "logic/ptltl.hpp"
#include "observer/global_state.hpp"

namespace mpx::logic {

/// Parse error with position information.
class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}
  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_;
};

class SpecParser {
 public:
  /// Variable names resolve against `space` (unknown names throw).
  explicit SpecParser(const observer::StateSpace& space) : space_(&space) {}

  [[nodiscard]] Formula parse(const std::string& text) const;

  /// The identifiers a specification references, in first-occurrence order
  /// (keywords excluded) — the paper's relevant-variable extraction.
  /// Works without a StateSpace, so it can run *before* instrumentation.
  [[nodiscard]] static std::vector<std::string> referencedVariables(
      const std::string& text);

 private:
  const observer::StateSpace* space_;
};

}  // namespace mpx::logic
