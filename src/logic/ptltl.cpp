#include "logic/ptltl.hpp"

#include <sstream>

namespace mpx::logic {

const char* toString(PtOp op) noexcept {
  switch (op) {
    case PtOp::kAtom: return "atom";
    case PtOp::kTrue: return "true";
    case PtOp::kFalse: return "false";
    case PtOp::kNot: return "!";
    case PtOp::kAnd: return "&&";
    case PtOp::kOr: return "||";
    case PtOp::kImplies: return "->";
    case PtOp::kPrev: return "prev";
    case PtOp::kOnce: return "once";
    case PtOp::kHistorically: return "historically";
    case PtOp::kSince: return "S";
    case PtOp::kStart: return "start";
    case PtOp::kEnd: return "end";
    case PtOp::kInterval: return "interval";
  }
  return "?";
}

namespace {

std::shared_ptr<const Formula::Node> make(PtOp op,
                                          std::shared_ptr<const Formula::Node> l,
                                          std::shared_ptr<const Formula::Node> r) {
  auto n = std::make_shared<Formula::Node>();
  n->op = op;
  n->lhs = std::move(l);
  n->rhs = std::move(r);
  return n;
}

}  // namespace

Formula Formula::atom(StateExpr e) {
  auto n = std::make_shared<Node>();
  n->op = PtOp::kAtom;
  n->atom = std::move(e);
  return Formula(std::move(n));
}

Formula Formula::verum() { return Formula(make(PtOp::kTrue, nullptr, nullptr)); }
Formula Formula::falsum() {
  return Formula(make(PtOp::kFalse, nullptr, nullptr));
}
Formula Formula::negation(Formula f) {
  return Formula(make(PtOp::kNot, f.node_, nullptr));
}
Formula Formula::conjunction(Formula a, Formula b) {
  return Formula(make(PtOp::kAnd, a.node_, b.node_));
}
Formula Formula::disjunction(Formula a, Formula b) {
  return Formula(make(PtOp::kOr, a.node_, b.node_));
}
Formula Formula::implies(Formula a, Formula b) {
  return Formula(make(PtOp::kImplies, a.node_, b.node_));
}
Formula Formula::prev(Formula f) {
  return Formula(make(PtOp::kPrev, f.node_, nullptr));
}
Formula Formula::once(Formula f) {
  return Formula(make(PtOp::kOnce, f.node_, nullptr));
}
Formula Formula::historically(Formula f) {
  return Formula(make(PtOp::kHistorically, f.node_, nullptr));
}
Formula Formula::since(Formula a, Formula b) {
  return Formula(make(PtOp::kSince, a.node_, b.node_));
}
Formula Formula::start(Formula f) {
  return Formula(make(PtOp::kStart, f.node_, nullptr));
}
Formula Formula::end(Formula f) {
  return Formula(make(PtOp::kEnd, f.node_, nullptr));
}
Formula Formula::interval(Formula from, Formula until) {
  return Formula(make(PtOp::kInterval, from.node_, until.node_));
}

namespace {

void print(const Formula::Node* n, std::ostringstream& os) {
  switch (n->op) {
    case PtOp::kAtom:
      os << n->atom.toString();
      return;
    case PtOp::kTrue:
      os << "true";
      return;
    case PtOp::kFalse:
      os << "false";
      return;
    case PtOp::kNot:
      os << '!';
      print(n->lhs.get(), os);
      return;
    case PtOp::kPrev:
    case PtOp::kOnce:
    case PtOp::kHistorically:
    case PtOp::kStart:
    case PtOp::kEnd:
      os << toString(n->op) << '(';
      print(n->lhs.get(), os);
      os << ')';
      return;
    case PtOp::kInterval:
      os << '[';
      print(n->lhs.get(), os);
      os << ", ";
      print(n->rhs.get(), os);
      os << ')';
      return;
    default:
      os << '(';
      print(n->lhs.get(), os);
      os << ' ' << toString(n->op) << ' ';
      print(n->rhs.get(), os);
      os << ')';
      return;
  }
}

}  // namespace

std::string Formula::toString() const {
  std::ostringstream os;
  print(node_.get(), os);
  return os.str();
}

}  // namespace mpx::logic
