// Liveness-violation prediction (paper §4, last paragraph):
//
//   "search for paths of the form u v in the computation lattice with the
//    property that the shared variable global state of the multithreaded
//    program reached by u is the same as the one reached by u v, and then
//    check whether u v^ω satisfies the liveness property.  The intuition is
//    that the system can potentially run into the infinite sequence of
//    states u v^ω."
//
// The search runs as a lattice-engine pass: a LassoAnalysis plugin
// (lasso_analysis.hpp) rides the level-by-level expansion with a
// visited-state Bloom monitor, replays candidate witnesses to locate the
// genuine u / uv split, and evaluates the LTL property on the
// ultimately-periodic word with the Markey-Schnoebelen-style lasso
// evaluator from logic/lasso.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/lasso.hpp"
#include "observer/causality.hpp"
#include "observer/run_enumerator.hpp"

namespace mpx::analysis {

/// A predicted liveness violation: the program can run into stem·loop^ω.
struct LassoViolation {
  std::vector<observer::EventRef> stemEvents;  ///< events of u
  std::vector<observer::EventRef> loopEvents;  ///< events of v
  std::vector<observer::GlobalState> stemStates;  ///< states along u (incl. s0)
  std::vector<observer::GlobalState> loopStates;  ///< states along v
};

struct LivenessOptions {
  /// Unused since the run-enumeration scan was replaced by the lattice
  /// pass (coverage now comes from the lattice itself); kept so existing
  /// call sites compile.
  std::size_t maxRuns = 10'000;
  std::size_t maxViolations = 16;
};

class LivenessPredictor {
 public:
  LivenessPredictor(const observer::CausalityGraph& graph,
                    observer::StateSpace space)
      : graph_(&graph), space_(std::move(space)) {}

  /// Returns the lassos (if any) on which `property` FAILS.
  [[nodiscard]] std::vector<LassoViolation> predict(
      const logic::LtlFormula& property, LivenessOptions opts = {}) const;

  /// Returns every lasso found, regardless of the property (diagnostics).
  [[nodiscard]] std::vector<LassoViolation> allLassos(
      LivenessOptions opts = {}) const;

 private:
  std::vector<LassoViolation> scan(const logic::LtlFormula* property,
                                   LivenessOptions opts) const;

  const observer::CausalityGraph* graph_;
  observer::StateSpace space_;
};

}  // namespace mpx::analysis
