// One-pass pluggable analysis engine (the generalization of the paper's
// Fig. 4 pipeline): ONE instrumented execution drives ONE level-by-level
// lattice expansion, and every checker — K ptLTL properties, the race
// detector, the deadlock detector, the lasso search, custom plugins —
// rides it as an observer::Analysis plugin on a shared AnalysisBus.
//
// The K properties are tracked over the UNION of their relevant variables,
// so each property's monitor sees every state change any property cares
// about.  NOTE: ptLTL is stutter-sensitive — a single-property pass over
// the union space is the reference semantics here, and the engine's
// per-property reports are byte-identical to K such single-property passes
// (the one-pass-equivalence corpus test pins this down for serial and
// parallel expansion and shuffled delivery).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "logic/spec_analysis.hpp"
#include "observer/analysis.hpp"
#include "observer/causality.hpp"
#include "observer/lattice.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::analysis {

struct EngineConfig {
  /// The ptLTL safety properties, each checked by its own SpecAnalysis
  /// plugin packed into the shared monitor word.  May be empty (plugin-only
  /// passes, e.g. race/deadlock detection).
  std::vector<std::string> specs;
  /// Variables to track beyond the union of the specs' variables.
  std::vector<std::string> extraTrackedVars;
  trace::DeliveryPolicy delivery = trace::DeliveryPolicy::kFifo;
  std::uint64_t deliverySeed = 0;
  std::size_t deliveryMaxDelay = 8;
  observer::LatticeOptions lattice;
  std::size_t maxSteps = 1'000'000;
  /// MHP prefilter (ISSUE 10): before expansion, classify tracked-variable
  /// pairs by clock-certified never-concurrency and expand the lattice
  /// over a REDUCED union space — the maximal suffix of spec-unreferenced
  /// tracked variables each certified never-concurrent with every
  /// spec-referenced variable is dropped from the expanded states (their
  /// values stay cut-determined, so every recorded violation's state is
  /// lifted back to the full space and reports are byte-identical to a
  /// prefilter-off pass).  Suffix-only pruning keeps every kept variable's
  /// slot index, so the parsed formulas apply unchanged.  Automatically
  /// disabled when a plugin wants per-node dispatch (node states must be
  /// full-width for such plugins).
  bool mhpPrefilter = false;
};

/// One property's outcome inside an engine pass.
struct SpecOutcome {
  std::string spec;
  /// This property's violations (component monitor state in
  /// Violation::monitorState), in engine arrival order.
  std::vector<observer::Violation> violations;
  /// Single-trace baseline verdict: index of the first violating observed
  /// state, or -1.
  std::int64_t observedViolationIndex = -1;

  [[nodiscard]] bool predictsViolation() const {
    return !violations.empty();
  }
  [[nodiscard]] bool observedRunViolates() const {
    return observedViolationIndex >= 0;
  }
};

struct EngineResult {
  observer::StateSpace space;  ///< union space the pass ran over
  observer::CausalityGraph causality;
  /// Engine-level violation list: every violating packed monitor word that
  /// some plugin accepted (use SpecOutcome::violations for per-property
  /// attribution).
  std::vector<observer::Violation> violations;
  observer::LatticeStats latticeStats;
  std::vector<SpecOutcome> specs;
  /// One report per plugin, spec plugins first (in spec order), then the
  /// extra plugins (in the order passed to run()).
  std::vector<observer::AnalysisReport> reports;
  std::uint64_t messagesEmitted = 0;
  std::uint64_t eventsInstrumented = 0;
  /// Union variables the lattice actually expanded (== space.size() unless
  /// the MHP prefilter pruned a suffix).
  std::size_t unionVarsExpanded = 0;
  /// Variables the prefilter pruned from the expanded space, in order.
  std::vector<std::string> prunedVars;

  [[nodiscard]] bool predictsViolation() const {
    return !violations.empty();
  }
  /// Sum of every plugin's violationCount (races, deadlocks, lassos and
  /// property violations alike) — the CLI exit-code input.
  [[nodiscard]] std::size_t totalFindings() const;
};

/// Binds (program, specs) once; run() analyzes recorded executions.
class Engine {
 public:
  /// The program's VarTable must contain every variable any spec mentions.
  /// Throws std::invalid_argument when the specs' packed monitors exceed
  /// the 64-bit monitor word.
  Engine(const program::Program& prog, EngineConfig config);

  /// Analyzes one recorded execution.  `extraPlugins` (e.g. RaceAnalysis,
  /// DeadlockAnalysis, LassoAnalysis or custom checkers) join the pass and
  /// must outlive the call; their reports are appended after the specs'.
  [[nodiscard]] EngineResult run(
      const program::ExecutionRecord& record,
      const std::vector<observer::Analysis*>& extraPlugins = {}) const;

  /// Convenience: execute under a seeded random schedule, then run().
  [[nodiscard]] EngineResult runWithSeed(
      std::uint64_t seed,
      const std::vector<observer::Analysis*>& extraPlugins = {}) const;

  [[nodiscard]] const observer::StateSpace& space() const noexcept {
    return space_;
  }
  /// Union of the specs' variables plus extraTrackedVars, in first-seen
  /// order (paper §4.1's relevant-variable extraction, over K specs).
  [[nodiscard]] const std::vector<std::string>& trackedVariables()
      const noexcept {
    return trackedVars_;
  }

 private:
  const program::Program* prog_;
  EngineConfig config_;
  std::vector<std::string> trackedVars_;
  /// How many leading entries of trackedVars_ are referenced by a spec —
  /// the prefix the MHP prefilter must never prune.
  std::size_t specVarCount_ = 0;
  observer::StateSpace space_;
  std::vector<logic::Formula> formulas_;  ///< parallel to config_.specs
};

}  // namespace mpx::analysis
