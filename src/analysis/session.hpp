// AnalyzerSession: one tenant's analysis of one trace, as a unit the
// multi-tenant observer daemon can own many of (ISSUE 9 tentpole).
//
// The pre-session daemon hard-coded the paper's Fig. 4 shape — N
// connections feeding ONE OnlineAnalyzer.  A session packages everything
// that analyzer needed from the daemon: the handshake-derived
// configuration (threads, specs, tracked variables, VarTable), the
// StateSpace, one SpecAnalysis plugin per property on one AnalysisBus, the
// OnlineAnalyzer with its private StateArena/MonitorSetArena and budget,
// the at-least-once dedup bitmaps, and the stream-completion bookkeeping.
// The daemon routes each handshake to its session by (tenant, trace id)
// and otherwise stays a transport.
//
// Sessions are checkpointable: checkpoint() emits one self-contained blob
// (config included, so restore needs no side channel), and restore()
// rebuilds the whole stack — re-interning arena contents in deterministic
// order so a restored session's final report is byte-identical to an
// uninterrupted run's.
//
// Thread safety: none.  The daemon serializes access under its own mutex,
// exactly as it did for the single analyzer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "logic/spec_analysis.hpp"
#include "observer/analysis.hpp"
#include "observer/checkpoint.hpp"
#include "observer/online.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"

namespace mpx::analysis {

class AnalyzerSession {
 public:
  /// Everything a handshake (plus daemon options) determines.  The session
  /// serializes this with its state, so a snapshot restores without the
  /// original handshake.
  struct Config {
    std::uint32_t threads = 0;
    /// The active property set: handshake specs + daemon-side extras,
    /// first-seen order, deduplicated (one SpecAnalysis plugin each).
    std::vector<std::string> specs;
    /// The specs exactly as the FIRST handshake carried them — later
    /// handshakes of the same session must match these, not the merged set.
    std::vector<std::string> handshakeSpecs;
    std::vector<std::string> tracked;
    trace::VarTable vars;
    /// kEndOfTrace frames to collect before finalizing.
    std::size_t expectedStreams = 1;
    observer::LatticeOptions lattice;
    /// Daemon-side analysis plugins riding the session's bus alongside the
    /// spec plugins (ISSUE 10): "atomicity" (conflict-serializability of
    /// annotated regions) and "mhp" (never-concurrent pair prefilter).
    /// Unknown names throw at construction (handshake rejection).
    std::vector<std::string> analyses;
  };

  enum class Ingest : std::uint8_t {
    kIngested,   ///< fed into the analyzer
    kDuplicate,  ///< dedup hit (at-least-once redelivery); dropped
    kError,      ///< rejected — see the error string
  };

  /// Builds the full stack for `cfg`.  Throws std::runtime_error when the
  /// specs or tracked variables are unusable (the daemon turns this into a
  /// handshake rejection).
  explicit AnalyzerSession(Config cfg);

  /// Validates and feeds one message.  On kError a static reason is left
  /// in `*error`.  Never throws.
  Ingest ingest(const trace::Message& m, const char** error);

  /// Counts one kEndOfTrace.  When the expected number has arrived the
  /// analyzer is finalized; an impossible finalization (gaps after an
  /// aborted client) is recorded in streamError() instead of thrown.
  void noteStreamEnd();

  // --- accessors (mirroring the daemon's single-analyzer surface) -----
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] const observer::StateSpace& space() const noexcept {
    return space_;
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] const std::string& streamError() const noexcept {
    return streamError_;
  }
  [[nodiscard]] std::size_t streamsEnded() const noexcept {
    return streamsEnded_;
  }
  [[nodiscard]] const std::vector<observer::Violation>& violations() const {
    return analyzer_->violations();
  }
  [[nodiscard]] const observer::LatticeStats& stats() const {
    return analyzer_->stats();
  }
  [[nodiscard]] std::uint64_t watermarkLevel() const {
    return analyzer_->levelsCompleted() - 1;
  }
  [[nodiscard]] std::size_t pendingMessages() const {
    return analyzer_->pendingMessages();
  }
  /// Per-thread consumption watermark (the daemon's frame-settling input).
  [[nodiscard]] const std::vector<LocalSeq>& consumedK() const {
    return analyzer_->consumedK();
  }
  [[nodiscard]] std::vector<observer::AnalysisReport> analysisReports() const;
  /// The violation report in paper notation (the shared render path).
  [[nodiscard]] std::string renderReport() const;

  // --- checkpoint epochs ----------------------------------------------
  /// Checkpoints taken of this session (monotonic; restored from the blob).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// Times this session was rebuilt from a snapshot.
  [[nodiscard]] std::uint64_t restoreCount() const noexcept {
    return restoreCount_;
  }
  /// Watermark level at the last checkpoint — the daemon's epoch trigger
  /// compares against it.
  [[nodiscard]] std::uint64_t lastCheckpointLevel() const noexcept {
    return lastCheckpointLevel_;
  }

  /// Serializes the whole session (config + dedup + analyzer + one blob
  /// per plugin) and advances the epoch.
  void checkpoint(observer::ckpt::Writer& w);

  /// Rebuilds a session from a checkpoint() blob.  Returns null on any
  /// version/decode mismatch (snapshot files are untrusted input).  The
  /// returned session's restoreCount() is one higher than the
  /// checkpointed session's.
  ///
  /// `jobs` overrides the lattice parallelism (a runtime choice of the
  /// restoring daemon, not part of the analysis identity); 0 keeps the
  /// checkpointed value.
  [[nodiscard]] static std::unique_ptr<AnalyzerSession> restore(
      observer::ckpt::Reader& r, std::size_t jobs = 0);

 private:
  Config cfg_;
  observer::StateSpace space_;
  std::vector<std::unique_ptr<logic::SpecAnalysis>> plugins_;
  /// Message-fed analysis plugins (cfg_.analyses order), on the same bus.
  std::vector<std::unique_ptr<observer::Analysis>> extras_;
  std::unique_ptr<observer::AnalysisBus> bus_;
  std::unique_ptr<observer::OnlineAnalyzer> analyzer_;
  /// At-least-once dedup: seen_[thread][k] == the own-clock index k was
  /// already ingested.
  std::vector<std::vector<bool>> seen_;
  std::size_t streamsEnded_ = 0;
  bool finished_ = false;
  std::string streamError_;
  std::uint64_t epoch_ = 0;
  std::uint64_t restoreCount_ = 0;
  std::uint64_t lastCheckpointLevel_ = 0;
};

}  // namespace mpx::analysis
