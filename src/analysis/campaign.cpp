#include "analysis/campaign.hpp"

#include <sstream>

namespace mpx::analysis {

std::string CampaignResult::summary() const {
  std::ostringstream os;
  os << trials.size() << " trials: observed-run monitoring detected in "
     << observedDetections << " (" << static_cast<int>(observedRate() * 100)
     << "%), predictive analysis in " << predictedDetections << " ("
     << static_cast<int>(predictedRate() * 100) << "%)";
  if (deadlocks > 0) os << "; " << deadlocks << " trials deadlocked";
  if (groundTruthComputed) {
    os << "; ground truth: " << groundTruth.violatingExecutions << " of "
       << groundTruth.totalExecutions << " schedules violate";
  }
  return os.str();
}

CampaignResult runCampaign(const program::Program& prog,
                           const std::string& spec, CampaignOptions opts) {
  PredictiveAnalyzer analyzer(prog, specConfig(spec));
  ObservedRunChecker baseline(prog, spec);

  CampaignResult result;
  result.trials.reserve(opts.trials);
  for (std::size_t i = 0; i < opts.trials; ++i) {
    TrialOutcome trial;
    trial.seed = opts.firstSeed + i;
    program::RandomScheduler sched(trial.seed);
    program::Executor ex(prog, sched);
    const program::ExecutionRecord rec = ex.run();

    trial.deadlocked = rec.deadlocked;
    trial.observedDetected = baseline.detectsOnRecord(rec);
    const AnalysisResult r = analyzer.analyzeRecord(rec);
    trial.predicted = r.predictsViolation();
    trial.runsInLattice = r.latticeStats.pathCount;

    result.observedDetections += trial.observedDetected ? 1 : 0;
    result.predictedDetections += trial.predicted ? 1 : 0;
    result.deadlocks += trial.deadlocked ? 1 : 0;
    result.trials.push_back(trial);
  }

  if (opts.withGroundTruth) {
    result.groundTruth = groundTruth(prog, spec, opts.groundTruthOptions);
    result.groundTruthComputed = true;
  }
  return result;
}

}  // namespace mpx::analysis
