#include "analysis/campaign.hpp"

#include <sstream>

#include "analysis/engine.hpp"

namespace mpx::analysis {

std::string CampaignResult::summary() const {
  std::ostringstream os;
  os << trials.size() << " trials: observed-run monitoring detected in "
     << observedDetections << " (" << static_cast<int>(observedRate() * 100)
     << "%), predictive analysis in " << predictedDetections << " ("
     << static_cast<int>(predictedRate() * 100) << "%)";
  if (deadlocks > 0) os << "; " << deadlocks << " trials deadlocked";
  if (groundTruthComputed) {
    os << "; ground truth: " << groundTruth.violatingExecutions << " of "
       << groundTruth.totalExecutions << " schedules violate";
  }
  return os.str();
}

CampaignResult runCampaign(const program::Program& prog,
                           const std::string& spec, CampaignOptions opts) {
  PredictiveAnalyzer analyzer(prog, specConfig(spec));
  ObservedRunChecker baseline(prog, spec);

  CampaignResult result;
  result.trials.reserve(opts.trials);
  for (std::size_t i = 0; i < opts.trials; ++i) {
    TrialOutcome trial;
    trial.seed = opts.firstSeed + i;
    program::RandomScheduler sched(trial.seed);
    program::Executor ex(prog, sched);
    const program::ExecutionRecord rec = ex.run();

    trial.deadlocked = rec.deadlocked;
    trial.observedDetected = baseline.detectsOnRecord(rec);
    const AnalysisResult r = analyzer.analyzeRecord(rec);
    trial.predicted = r.predictsViolation();
    trial.runsInLattice = r.latticeStats.pathCount;

    result.observedDetections += trial.observedDetected ? 1 : 0;
    result.predictedDetections += trial.predicted ? 1 : 0;
    result.deadlocks += trial.deadlocked ? 1 : 0;
    result.trials.push_back(trial);
  }

  if (opts.withGroundTruth) {
    result.groundTruth = groundTruth(prog, spec, opts.groundTruthOptions);
    result.groundTruthComputed = true;
  }
  return result;
}

std::string MultiCampaignResult::summary() const {
  std::ostringstream os;
  os << trials << " trials, " << specs.size()
     << " properties in one pass each:";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    os << "\n  [" << specs[i] << "] observed " << observedDetections[i]
       << ", predicted " << predictedDetections[i];
    if (groundTruthComputed) {
      os << ", ground truth " << groundTruth[i].violatingExecutions << '/'
         << groundTruth[i].totalExecutions;
    }
  }
  if (deadlocks > 0) os << "\n  " << deadlocks << " trials deadlocked";
  return os.str();
}

MultiCampaignResult runCampaign(const program::Program& prog,
                                const std::vector<std::string>& specs,
                                CampaignOptions opts) {
  EngineConfig config;
  config.specs = specs;
  const Engine engine(prog, config);

  MultiCampaignResult result;
  result.specs = specs;
  result.trials = opts.trials;
  result.observedDetections.assign(specs.size(), 0);
  result.predictedDetections.assign(specs.size(), 0);

  for (std::size_t i = 0; i < opts.trials; ++i) {
    const std::uint64_t seed = opts.firstSeed + i;
    program::RandomScheduler sched(seed);
    program::Executor ex(prog, sched);
    const program::ExecutionRecord rec = ex.run();
    if (rec.deadlocked) ++result.deadlocks;

    const EngineResult r = engine.run(rec);
    for (std::size_t s = 0; s < r.specs.size(); ++s) {
      if (r.specs[s].observedRunViolates()) ++result.observedDetections[s];
      if (r.specs[s].predictsViolation()) ++result.predictedDetections[s];
    }
  }

  if (opts.withGroundTruth) {
    result.groundTruth.reserve(specs.size());
    for (const std::string& spec : specs) {
      result.groundTruth.push_back(
          groundTruth(prog, spec, opts.groundTruthOptions));
    }
    result.groundTruthComputed = true;
  }
  return result;
}

}  // namespace mpx::analysis
