#include "analysis/liveness.hpp"

#include "analysis/lasso_analysis.hpp"
#include "observer/analysis.hpp"
#include "observer/lattice.hpp"

namespace mpx::analysis {

std::vector<LassoViolation> LivenessPredictor::predict(
    const logic::LtlFormula& property, LivenessOptions opts) const {
  return scan(&property, opts);
}

std::vector<LassoViolation> LivenessPredictor::allLassos(
    LivenessOptions opts) const {
  return scan(nullptr, opts);
}

std::vector<LassoViolation> LivenessPredictor::scan(
    const logic::LtlFormula* property, LivenessOptions opts) const {
  // One lattice pass with the lasso plugin riding the monitor word: every
  // path whose newest state revisits an earlier one surfaces as a monitor
  // candidate; the plugin replays the witness and keeps the real lassos.
  LassoAnalysis lasso(*graph_, space_, property, opts);
  observer::AnalysisBus bus({&lasso});
  observer::LatticeOptions lopts;
  lopts.recordPaths = true;  // the replay needs witnesses
  observer::ComputationLattice lattice(*graph_, space_, lopts);
  std::vector<observer::Violation> violations;
  lattice.analyze(bus, violations);
  return lasso.takeLassos();
}

}  // namespace mpx::analysis
