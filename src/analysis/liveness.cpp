#include "analysis/liveness.hpp"

#include <set>

namespace mpx::analysis {

std::vector<LassoViolation> LivenessPredictor::predict(
    const logic::LtlFormula& property, LivenessOptions opts) const {
  return scan(&property, opts);
}

std::vector<LassoViolation> LivenessPredictor::allLassos(
    LivenessOptions opts) const {
  return scan(nullptr, opts);
}

std::vector<LassoViolation> LivenessPredictor::scan(
    const logic::LtlFormula* property, LivenessOptions opts) const {
  std::vector<LassoViolation> out;
  // Dedupe by the (stem-state, loop-state-sequence) fingerprint so the same
  // lasso reached along different runs is reported once.
  std::set<std::size_t> seen;

  observer::RunEnumerator runs(*graph_, space_);
  runs.forEachRun(
      [&](const observer::Run& run) {
        const auto& states = run.states;
        for (std::size_t i = 0; i < states.size() && out.size() < opts.maxViolations; ++i) {
          for (std::size_t j = i + 1; j < states.size(); ++j) {
            if (!(states[i] == states[j])) continue;

            LassoViolation lasso;
            lasso.stemStates.assign(states.begin(),
                                    states.begin() +
                                        static_cast<std::ptrdiff_t>(i) + 1);
            lasso.loopStates.assign(states.begin() +
                                        static_cast<std::ptrdiff_t>(i) + 1,
                                    states.begin() +
                                        static_cast<std::ptrdiff_t>(j) + 1);
            lasso.stemEvents.assign(run.events.begin(),
                                    run.events.begin() +
                                        static_cast<std::ptrdiff_t>(i));
            lasso.loopEvents.assign(run.events.begin() +
                                        static_cast<std::ptrdiff_t>(i),
                                    run.events.begin() +
                                        static_cast<std::ptrdiff_t>(j));

            std::size_t fp = 1469598103934665603ull;
            const auto mix = [&fp](std::size_t h) {
              fp ^= h + 0x9e3779b97f4a7c15ull + (fp << 6) + (fp >> 2);
            };
            for (const auto& s : lasso.stemStates) mix(s.hash());
            mix(0xabcdef);
            for (const auto& s : lasso.loopStates) mix(s.hash());
            if (!seen.insert(fp).second) continue;

            if (property != nullptr &&
                logic::satisfiesLasso(*property, lasso.stemStates,
                                      lasso.loopStates)) {
              continue;  // property holds on this lasso — not a violation
            }
            out.push_back(std::move(lasso));
            if (out.size() >= opts.maxViolations) break;
          }
        }
        return out.size() < opts.maxViolations;
      },
      opts.maxRuns);
  return out;
}

}  // namespace mpx::analysis
