// Predictive atomicity-violation detection as a lattice-engine plugin
// (ISSUE 10 tentpole, after Mathur & Viswanathan, arXiv 2001.04961).
//
// The programmer annotates intended-atomic code with MPX_ATOMIC_BEGIN/END
// (runtime) or ThreadBuilder::atomicRegion (VM).  The markers arrive as
// kRegionBegin/kRegionEnd messages — always relevant, so their clocks are
// consistent with every relevant access they enclose.  The analysis
// segments each thread's relevant events into TRANSACTIONS (an annotated
// region's events merged into the outermost region; every event outside a
// region is its own singleton transaction) and checks CONFLICT
// SERIALIZABILITY: the trace is a violation witness iff the transaction
// conflict graph has a cycle.
//
// Exactness across linearizations (what the census oracle asserts): two
// conflicting events — same variable, at least one write — are always
// causally ordered here (Algorithm A steps 2–3 join through V^a_x/V^w_x
// for every shared access), so every conflict edge's direction is forced
// by ≺ and the graph is a pure function of the partial order, NOT of the
// delivery order or of which interleaving the scheduler happened to pick.
// One observed trace therefore yields the same violation set as
// brute-forcing all of its linearizations.
//
// Cycles can only pass through annotated (multi-event) transactions:
// every edge points seq-forward at the event level, so a cycle needs a
// transaction that spans its neighbors — reported regions are exactly the
// annotated regions lying in a non-singleton SCC, each with a canonical
// witness cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "observer/analysis.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"

namespace mpx::analysis {

class AtomicityAnalysis final : public observer::Analysis {
 public:
  /// One violating annotated region.
  struct RegionViolation {
    ThreadId thread = 0;        ///< thread that executed the region
    std::size_t ordinal = 0;    ///< 1-based index among the thread's regions
    Value regionId = 0;         ///< programmer-chosen label
    /// Canonical witness cycle through the conflict graph, starting and
    /// ending at this region ("T2#1" annotated / "T1@k3" singleton names).
    std::vector<std::string> cycle;
  };

  /// `vars` (optional) renders variable names in reports; must outlive the
  /// plugin when given.
  explicit AtomicityAnalysis(const trace::VarTable* vars = nullptr)
      : vars_(vars) {}

  [[nodiscard]] std::string name() const override { return "atomicity"; }
  [[nodiscard]] std::string kind() const override { return "atomicity"; }

  /// Buffers every delivered message.  Delivery order is irrelevant: the
  /// check runs over the log sorted by globalSeq (the total order M).
  void onMessage(const trace::Message& m) override;

  void finish(const observer::LatticeStats& stats) override;

  /// Checkpoint = the replayable message log (the clock state is a pure
  /// function of it); restore() is valid on a fresh plugin only.
  void checkpoint(observer::ckpt::Writer& w) const override;
  [[nodiscard]] bool restore(observer::ckpt::Reader& r) override;

  /// Renders even before finish() ran (INCOMPLETE stream death): the
  /// check is recomputed from the buffered log on demand.
  [[nodiscard]] observer::AnalysisReport report() const override;

  /// Violating regions in canonical (thread, ordinal) order.  Recomputed
  /// on demand when finish() has not run.
  [[nodiscard]] std::vector<RegionViolation> violations() const;

  // --- census inputs for tests ---------------------------------------
  [[nodiscard]] std::size_t regionCount() const;
  /// kRegionEnd markers with no matching begin (hostile input; no-ops).
  [[nodiscard]] std::size_t unmatchedEnds() const;
  /// Regions still open when the trace ended (checked to trace end).
  [[nodiscard]] std::size_t openRegions() const;

 private:
  struct CheckResult {
    std::vector<RegionViolation> violations;
    std::size_t regions = 0;
    std::size_t unmatchedEnds = 0;
    std::size_t openRegions = 0;
    std::size_t transactions = 0;
    std::size_t conflictEdges = 0;
  };
  [[nodiscard]] CheckResult check() const;

  const trace::VarTable* vars_;
  std::vector<trace::Message> log_;
  bool finished_ = false;
  CheckResult result_;  ///< valid when finished_
};

}  // namespace mpx::analysis
