#include "analysis/engine.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "analysis/mhp_prefilter.hpp"
#include "core/instrumentor.hpp"
#include "logic/parser.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::analysis {

std::size_t EngineResult::totalFindings() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.violationCount;
  return n;
}

Engine::Engine(const program::Program& prog, EngineConfig config)
    : prog_(&prog), config_(std::move(config)) {
  // Union of relevant variables across all specs, first-seen order.
  for (const std::string& spec : config_.specs) {
    for (std::string& v : logic::SpecParser::referencedVariables(spec)) {
      if (std::find(trackedVars_.begin(), trackedVars_.end(), v) ==
          trackedVars_.end()) {
        trackedVars_.push_back(std::move(v));
      }
    }
  }
  specVarCount_ = trackedVars_.size();
  for (const std::string& v : config_.extraTrackedVars) {
    if (std::find(trackedVars_.begin(), trackedVars_.end(), v) ==
        trackedVars_.end()) {
      trackedVars_.push_back(v);
    }
  }
  space_ = observer::StateSpace::byNames(prog.vars, trackedVars_);
  formulas_.reserve(config_.specs.size());
  for (const std::string& spec : config_.specs) {
    formulas_.push_back(logic::SpecParser(space_).parse(spec));
  }
}

EngineResult Engine::runWithSeed(
    std::uint64_t seed,
    const std::vector<observer::Analysis*>& extraPlugins) const {
  program::RandomScheduler sched(seed);
  program::Executor ex(*prog_, sched);
  return run(ex.run(config_.maxSteps), extraPlugins);
}

EngineResult Engine::run(
    const program::ExecutionRecord& record,
    const std::vector<observer::Analysis*>& extraPlugins) const {
  telemetry::TraceSpan span("engine.run", "analysis");
  EngineResult result;
  result.space = space_;

  // Build the pass's plugin set: one SpecAnalysis per property, then the
  // caller's extras; MonitorBus::add (inside the bus constructor) throws
  // if the packed widths exceed 64 bits.
  std::vector<std::unique_ptr<logic::SpecAnalysis>> specPlugins;
  specPlugins.reserve(config_.specs.size());
  for (std::size_t i = 0; i < config_.specs.size(); ++i) {
    specPlugins.push_back(std::make_unique<logic::SpecAnalysis>(
        space_, formulas_[i], config_.specs[i]));
  }
  std::vector<observer::Analysis*> plugins;
  plugins.reserve(specPlugins.size() + extraPlugins.size());
  for (auto& p : specPlugins) plugins.push_back(p.get());
  for (observer::Analysis* p : extraPlugins) plugins.push_back(p);
  observer::AnalysisBus bus(plugins);

  std::unordered_set<VarId> trackedIds;
  for (const VarId v : space_.varIds()) trackedIds.insert(v);

  // ONE pass over the execution's events: Algorithm A emits the relevant
  // messages through the delivery channel into the causality graph, every
  // plugin sees the raw stream, and the observed-run state trace steps the
  // plugins' linear baselines.
  {
    telemetry::TraceSpan instSpan("engine.instrument", "analysis");
    // Tee delivered messages into the causality graph AND the plugins'
    // message hooks (AtomicityAnalysis, MhpPrefilter) in delivery order.
    trace::FunctionSink tee([&](const trace::Message& m) {
      result.causality.onMessage(m);
      bus.dispatchMessage(m);
    });
    auto channel = trace::makeChannel(config_.delivery, tee,
                                      config_.deliverySeed,
                                      config_.deliveryMaxDelay);
    core::Instrumentor instr(core::RelevancePolicy::writesOf(trackedIds),
                             *channel);
    instr.reserve(prog_->threadCount(), prog_->vars.size());

    observer::GlobalState observed(space_.initialValues());
    bus.dispatchObservedState(observed);
    static const std::vector<LockId> kNoLocks;
    for (std::size_t i = 0; i < record.events.size(); ++i) {
      const trace::Event& e = record.events[i];
      bus.dispatchRawEvent(
          e, i < record.locksHeld.size() ? record.locksHeld[i] : kNoLocks);
      instr.onEvent(e);
      if (trace::isWriteLike(e.kind) && trackedIds.contains(e.var)) {
        if (const auto slot = space_.slotOf(e.var)) {
          observed.values[*slot] = e.value;
        }
        bus.dispatchObservedState(observed);
      }
    }
    channel->close();
    result.causality.finalize();
    result.messagesEmitted = instr.messagesEmitted();
    result.eventsInstrumented = instr.eventsProcessed();
  }

  // MHP prefilter prepass (ISSUE 10): drop the maximal suffix of
  // spec-unreferenced tracked variables certified never-concurrent with
  // every spec variable from the EXPANDED space.  The cut structure is
  // untouched (the pruned variables' writes still expand as stutter
  // edges), every kept variable keeps its slot (suffix-only pruning), and
  // recorded violations are lifted back to full-space states — a pruned
  // variable's value at any consistent cut is its maximal included write
  // (same-variable writes are totally ordered by ≺), so the lift is exact
  // and reports are byte-identical to a prefilter-off pass.
  observer::StateSpace expandSpace = space_;
  if (config_.mhpPrefilter && !bus.wantsNodes() &&
      trackedVars_.size() > specVarCount_) {
    telemetry::TraceSpan preSpan("engine.mhp_prefilter", "analysis");
    std::vector<trace::Message> all;
    for (ThreadId j = 0; j < result.causality.threadCount(); ++j) {
      const auto stream = result.causality.threadStream(j);
      all.insert(all.end(), stream.begin(), stream.end());
    }
    std::set<std::pair<VarId, VarId>> orderedPairs;
    for (const auto& p : MhpPrefilter::classifyNeverConcurrent(all)) {
      orderedPairs.insert(p);
    }
    const auto neverConcurrent = [&](VarId a, VarId b) {
      return orderedPairs.contains(std::minmax(a, b));
    };

    std::size_t keep = trackedVars_.size();
    while (keep > specVarCount_) {
      const VarId cand = space_.varIds()[keep - 1];
      bool prunable = true;
      for (std::size_t s = 0; s < specVarCount_ && prunable; ++s) {
        prunable = neverConcurrent(cand, space_.varIds()[s]);
      }
      if (!prunable) break;
      --keep;
    }

    if (keep < trackedVars_.size()) {
      const std::vector<std::string> keptNames(trackedVars_.begin(),
                                               trackedVars_.begin() + keep);
      result.prunedVars.assign(trackedVars_.begin() + keep,
                               trackedVars_.end());
      expandSpace = observer::StateSpace::byNames(prog_->vars, keptNames);

      // Per pruned full-space slot: that variable's writes, descending by
      // globalSeq — the lift scans for the maximal write a cut includes.
      struct PrunedWrite {
        ThreadId thread;
        LocalSeq idx;  ///< 1-based position in the thread's stream
        GlobalSeq seq;
        Value value;
      };
      std::vector<std::pair<std::size_t, std::vector<PrunedWrite>>> writes;
      for (std::size_t slot = keep; slot < trackedVars_.size(); ++slot) {
        const VarId v = space_.varIds()[slot];
        std::vector<PrunedWrite> ws;
        for (ThreadId j = 0; j < result.causality.threadCount(); ++j) {
          const auto stream = result.causality.threadStream(j);
          for (std::size_t i = 0; i < stream.size(); ++i) {
            const trace::Event& e = stream[i].event;
            if (e.var == v && trace::isWriteLike(e.kind)) {
              ws.push_back(PrunedWrite{j, static_cast<LocalSeq>(i + 1),
                                       e.globalSeq, e.value});
            }
          }
        }
        std::sort(ws.begin(), ws.end(),
                  [](const PrunedWrite& a, const PrunedWrite& b) {
                    return a.seq > b.seq;
                  });
        writes.emplace_back(slot, std::move(ws));
      }

      bus.setStateLift([fullInit = space_.initialValues(), writes,
                        keep](observer::Violation& v) {
        if (v.state.values.size() >= fullInit.size()) return;
        observer::GlobalState full(fullInit);
        for (std::size_t i = 0; i < keep && i < v.state.values.size(); ++i) {
          full.values[i] = v.state.values[i];
        }
        for (const auto& [slot, ws] : writes) {
          for (const auto& w : ws) {
            if (w.thread < v.cut.k.size() && v.cut.k[w.thread] >= w.idx) {
              full.values[slot] = w.value;
              break;
            }
          }
        }
        v.state = std::move(full);
      });
    }
  }
  result.unionVarsExpanded = expandSpace.size();

  // The single lattice expansion all plugins ride.
  {
    telemetry::TraceSpan latSpan("engine.lattice", "analysis");
    observer::ComputationLattice lattice(result.causality, expandSpace,
                                         config_.lattice);
    result.latticeStats = lattice.analyze(bus, result.violations);
  }

  result.specs.reserve(specPlugins.size());
  for (std::size_t i = 0; i < specPlugins.size(); ++i) {
    SpecOutcome out;
    out.spec = config_.specs[i];
    out.violations = specPlugins[i]->violations();
    out.observedViolationIndex = specPlugins[i]->observedViolationIndex();
    result.specs.push_back(std::move(out));
  }
  result.reports = bus.reports();
  return result;
}

}  // namespace mpx::analysis
