#include "analysis/engine.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/instrumentor.hpp"
#include "logic/parser.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::analysis {

std::size_t EngineResult::totalFindings() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.violationCount;
  return n;
}

Engine::Engine(const program::Program& prog, EngineConfig config)
    : prog_(&prog), config_(std::move(config)) {
  // Union of relevant variables across all specs, first-seen order.
  for (const std::string& spec : config_.specs) {
    for (std::string& v : logic::SpecParser::referencedVariables(spec)) {
      if (std::find(trackedVars_.begin(), trackedVars_.end(), v) ==
          trackedVars_.end()) {
        trackedVars_.push_back(std::move(v));
      }
    }
  }
  for (const std::string& v : config_.extraTrackedVars) {
    if (std::find(trackedVars_.begin(), trackedVars_.end(), v) ==
        trackedVars_.end()) {
      trackedVars_.push_back(v);
    }
  }
  space_ = observer::StateSpace::byNames(prog.vars, trackedVars_);
  formulas_.reserve(config_.specs.size());
  for (const std::string& spec : config_.specs) {
    formulas_.push_back(logic::SpecParser(space_).parse(spec));
  }
}

EngineResult Engine::runWithSeed(
    std::uint64_t seed,
    const std::vector<observer::Analysis*>& extraPlugins) const {
  program::RandomScheduler sched(seed);
  program::Executor ex(*prog_, sched);
  return run(ex.run(config_.maxSteps), extraPlugins);
}

EngineResult Engine::run(
    const program::ExecutionRecord& record,
    const std::vector<observer::Analysis*>& extraPlugins) const {
  telemetry::TraceSpan span("engine.run", "analysis");
  EngineResult result;
  result.space = space_;

  // Build the pass's plugin set: one SpecAnalysis per property, then the
  // caller's extras; MonitorBus::add (inside the bus constructor) throws
  // if the packed widths exceed 64 bits.
  std::vector<std::unique_ptr<logic::SpecAnalysis>> specPlugins;
  specPlugins.reserve(config_.specs.size());
  for (std::size_t i = 0; i < config_.specs.size(); ++i) {
    specPlugins.push_back(std::make_unique<logic::SpecAnalysis>(
        space_, formulas_[i], config_.specs[i]));
  }
  std::vector<observer::Analysis*> plugins;
  plugins.reserve(specPlugins.size() + extraPlugins.size());
  for (auto& p : specPlugins) plugins.push_back(p.get());
  for (observer::Analysis* p : extraPlugins) plugins.push_back(p);
  observer::AnalysisBus bus(plugins);

  std::unordered_set<VarId> trackedIds;
  for (const VarId v : space_.varIds()) trackedIds.insert(v);

  // ONE pass over the execution's events: Algorithm A emits the relevant
  // messages through the delivery channel into the causality graph, every
  // plugin sees the raw stream, and the observed-run state trace steps the
  // plugins' linear baselines.
  {
    telemetry::TraceSpan instSpan("engine.instrument", "analysis");
    auto channel = trace::makeChannel(config_.delivery, result.causality,
                                      config_.deliverySeed,
                                      config_.deliveryMaxDelay);
    core::Instrumentor instr(core::RelevancePolicy::writesOf(trackedIds),
                             *channel);
    instr.reserve(prog_->threadCount(), prog_->vars.size());

    observer::GlobalState observed(space_.initialValues());
    bus.dispatchObservedState(observed);
    static const std::vector<LockId> kNoLocks;
    for (std::size_t i = 0; i < record.events.size(); ++i) {
      const trace::Event& e = record.events[i];
      bus.dispatchRawEvent(
          e, i < record.locksHeld.size() ? record.locksHeld[i] : kNoLocks);
      instr.onEvent(e);
      if (trace::isWriteLike(e.kind) && trackedIds.contains(e.var)) {
        if (const auto slot = space_.slotOf(e.var)) {
          observed.values[*slot] = e.value;
        }
        bus.dispatchObservedState(observed);
      }
    }
    channel->close();
    result.causality.finalize();
    result.messagesEmitted = instr.messagesEmitted();
    result.eventsInstrumented = instr.eventsProcessed();
  }

  // The single lattice expansion all plugins ride.
  {
    telemetry::TraceSpan latSpan("engine.lattice", "analysis");
    observer::ComputationLattice lattice(result.causality, space_,
                                         config_.lattice);
    result.latticeStats = lattice.analyze(bus, result.violations);
  }

  result.specs.reserve(specPlugins.size());
  for (std::size_t i = 0; i < specPlugins.size(); ++i) {
    SpecOutcome out;
    out.spec = config_.specs[i];
    out.violations = specPlugins[i]->violations();
    out.observedViolationIndex = specPlugins[i]->observedViolationIndex();
    result.specs.push_back(std::move(out));
  }
  result.reports = bus.reports();
  return result;
}

}  // namespace mpx::analysis
