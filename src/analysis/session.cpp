#include "analysis/session.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/atomicity_analysis.hpp"
#include "analysis/mhp_prefilter.hpp"
#include "analysis/report.hpp"
#include "logic/parser.hpp"

namespace mpx::analysis {

namespace {

/// v2 (ISSUE 10): the config carries the daemon-side analysis plugin list
/// and their blobs follow the spec plugins'.
constexpr std::uint8_t kSessionCkptVersion = 2;

/// A hostile own-clock index must not drive the dedup bitmap's allocation
/// (same cap the wire layer enforces).
constexpr LocalSeq kMaxLocalSeq = 1u << 24;

void writeStringList(observer::ckpt::Writer& w,
                     const std::vector<std::string>& list) {
  w.u64(list.size());
  for (const auto& s : list) w.str(s);
}

bool readStringList(observer::ckpt::Reader& r,
                    std::vector<std::string>& list) {
  const std::uint64_t n = r.len(8);
  list.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) list.push_back(r.str());
  return r.ok();
}

}  // namespace

AnalyzerSession::AnalyzerSession(Config cfg) : cfg_(std::move(cfg)) {
  space_ = observer::StateSpace::byNames(cfg_.vars, cfg_.tracked);
  if (cfg_.expectedStreams == 0) cfg_.expectedStreams = 1;
  // One SpecAnalysis plugin per property on one shared bus — all K
  // properties are checked in a single lattice pass.
  for (const std::string& spec : cfg_.specs) {
    const logic::Formula f = logic::SpecParser(space_).parse(spec);
    plugins_.push_back(std::make_unique<logic::SpecAnalysis>(space_, f, spec));
  }
  // Daemon-side analysis plugins (ISSUE 10) — message-fed, so they work
  // from the wire stream alone.
  for (const std::string& a : cfg_.analyses) {
    if (a == "atomicity") {
      extras_.push_back(std::make_unique<AtomicityAnalysis>(&cfg_.vars));
    } else if (a == "mhp") {
      extras_.push_back(std::make_unique<MhpPrefilter>(&cfg_.vars));
    } else {
      throw std::runtime_error("unknown analysis '" + a + "'");
    }
  }
  if (!plugins_.empty() || !extras_.empty()) {
    std::vector<observer::Analysis*> raw;
    raw.reserve(plugins_.size() + extras_.size());
    for (auto& p : plugins_) raw.push_back(p.get());
    for (auto& p : extras_) raw.push_back(p.get());
    bus_ = std::make_unique<observer::AnalysisBus>(raw);
    analyzer_ = std::make_unique<observer::OnlineAnalyzer>(
        space_, cfg_.threads, *bus_, cfg_.lattice);
  } else {
    analyzer_ = std::make_unique<observer::OnlineAnalyzer>(
        space_, cfg_.threads, static_cast<observer::LatticeMonitor*>(nullptr),
        cfg_.lattice);
  }
  seen_.assign(cfg_.threads, {});
}

AnalyzerSession::Ingest AnalyzerSession::ingest(const trace::Message& m,
                                                const char** error) {
  if (finished_) {
    *error = "events after the analysis finished";
    return Ingest::kError;
  }
  const ThreadId j = m.event.thread;
  if (j >= cfg_.threads) {
    *error = "message from undeclared thread";
    return Ingest::kError;
  }
  const LocalSeq k = m.clock[j];
  if (k == 0 || k > kMaxLocalSeq) {
    *error = "message own-clock out of range";
    return Ingest::kError;
  }
  auto& seen = seen_[j];
  if (k < seen.size() && seen[k]) return Ingest::kDuplicate;
  try {
    analyzer_->onMessage(m);
  } catch (const std::exception&) {
    *error = "message rejected by the analyzer";
    return Ingest::kError;
  }
  // Post-dedup message feed for the session's analysis plugins: each
  // message reaches them exactly once, in ingest order (they sort by
  // globalSeq themselves — delivery order is not a linearization).
  if (bus_ != nullptr) bus_->dispatchMessage(m);
  if (k >= seen.size()) seen.resize(k + 1, false);
  seen[k] = true;
  return Ingest::kIngested;
}

void AnalyzerSession::noteStreamEnd() {
  ++streamsEnded_;
  if (streamsEnded_ < cfg_.expectedStreams || finished_) return;
  try {
    analyzer_->endOfTrace();
    finished_ = analyzer_->finished();
  } catch (const std::exception& e) {
    streamError_ = e.what();
  }
}

std::vector<observer::AnalysisReport> AnalyzerSession::analysisReports()
    const {
  std::vector<observer::AnalysisReport> out;
  out.reserve(plugins_.size() + extras_.size());
  for (const auto& p : plugins_) out.push_back(p->report());
  for (const auto& p : extras_) out.push_back(p->report());
  return out;
}

std::string AnalyzerSession::renderReport() const {
  return renderViolationReport(space_, analyzer_->violations(),
                               analyzer_->stats(), finished_);
}

void AnalyzerSession::checkpoint(observer::ckpt::Writer& w) {
  ++epoch_;
  lastCheckpointLevel_ = analyzer_->levelsCompleted() - 1;
  w.u8(kSessionCkptVersion);
  // Config — the blob is self-contained, restore needs no handshake.
  w.u32(cfg_.threads);
  writeStringList(w, cfg_.specs);
  writeStringList(w, cfg_.handshakeSpecs);
  writeStringList(w, cfg_.tracked);
  writeStringList(w, cfg_.analyses);
  w.u32(static_cast<std::uint32_t>(cfg_.vars.size()));
  for (VarId v = 0; v < cfg_.vars.size(); ++v) {
    w.str(cfg_.vars.name(v));
    w.i64(cfg_.vars.initial(v));
    w.u8(static_cast<std::uint8_t>(cfg_.vars.role(v)));
  }
  w.u64(cfg_.expectedStreams);
  // Lattice options that are part of the analysis identity.  The parallel
  // jobs count is a runtime choice — serialized as a default the restoring
  // daemon may override.
  const observer::LatticeOptions& lat = cfg_.lattice;
  w.u8(static_cast<std::uint8_t>(lat.retention));
  w.u64(lat.maxNodesPerLevel);
  w.u64(lat.maxViolations);
  w.boolean(lat.recordPaths);
  w.u64(lat.beamWidth);
  w.u64(lat.memoryBudgetBytes);
  w.u64(lat.maxFrontier);
  w.u64(lat.degradationSeed);
  w.u64(lat.parallel.jobs);
  w.u64(lat.parallel.minFrontier);
  // Session bookkeeping.
  w.u64(streamsEnded_);
  w.boolean(finished_);
  w.str(streamError_);
  w.u64(epoch_);
  w.u64(restoreCount_);
  // Dedup bitmaps: the set indices per thread (sorted by construction).
  for (const auto& seen : seen_) {
    std::uint64_t count = 0;
    for (const bool b : seen) count += b ? 1 : 0;
    w.u64(count);
    for (std::uint64_t k = 0; k < seen.size(); ++k) {
      if (seen[static_cast<std::size_t>(k)]) w.u64(k);
    }
  }
  // The analyzer core, then one versioned blob per plugin (count is a
  // pure function of the config, so no explicit plugin count needed).
  analyzer_->checkpoint(w);
  for (const auto& p : plugins_) p->checkpoint(w);
  for (const auto& p : extras_) p->checkpoint(w);
}

std::unique_ptr<AnalyzerSession> AnalyzerSession::restore(
    observer::ckpt::Reader& r, std::size_t jobs) {
  if (r.u8() != kSessionCkptVersion) return nullptr;
  Config cfg;
  cfg.threads = r.u32();
  if (!readStringList(r, cfg.specs) || !readStringList(r, cfg.handshakeSpecs) ||
      !readStringList(r, cfg.tracked) || !readStringList(r, cfg.analyses)) {
    return nullptr;
  }
  const std::uint32_t varCount = r.u32();
  if (varCount > (1u << 20)) return nullptr;
  for (std::uint32_t v = 0; v < varCount && r.ok(); ++v) {
    const std::string name = r.str();
    const Value initial = r.i64();
    const std::uint8_t role = r.u8();
    if (role > static_cast<std::uint8_t>(trace::VarRole::kCondition)) {
      return nullptr;
    }
    try {
      cfg.vars.intern(name, initial, static_cast<trace::VarRole>(role));
    } catch (const std::exception&) {
      return nullptr;
    }
  }
  cfg.expectedStreams = static_cast<std::size_t>(r.u64());
  const std::uint8_t retention = r.u8();
  if (retention > static_cast<std::uint8_t>(observer::Retention::kFull)) {
    return nullptr;
  }
  cfg.lattice.retention = static_cast<observer::Retention>(retention);
  cfg.lattice.maxNodesPerLevel = static_cast<std::size_t>(r.u64());
  cfg.lattice.maxViolations = static_cast<std::size_t>(r.u64());
  cfg.lattice.recordPaths = r.boolean();
  cfg.lattice.beamWidth = static_cast<std::size_t>(r.u64());
  cfg.lattice.memoryBudgetBytes = static_cast<std::size_t>(r.u64());
  cfg.lattice.maxFrontier = static_cast<std::size_t>(r.u64());
  cfg.lattice.degradationSeed = r.u64();
  cfg.lattice.parallel.jobs = static_cast<std::size_t>(r.u64());
  cfg.lattice.parallel.minFrontier = static_cast<std::size_t>(r.u64());
  if (jobs > 0) cfg.lattice.parallel.jobs = jobs;
  if (cfg.threads == 0 || !r.ok()) return nullptr;

  std::unique_ptr<AnalyzerSession> s;
  try {
    s = std::make_unique<AnalyzerSession>(std::move(cfg));
  } catch (const std::exception&) {
    return nullptr;
  }
  s->streamsEnded_ = static_cast<std::size_t>(r.u64());
  s->finished_ = r.boolean();
  s->streamError_ = r.str();
  s->epoch_ = r.u64();
  s->restoreCount_ = r.u64() + 1;
  for (auto& seen : s->seen_) {
    const std::uint64_t count = r.len(8);
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint64_t k = r.u64();
      if (k > kMaxLocalSeq) {
        r.fail();
        break;
      }
      if (k >= seen.size()) seen.resize(static_cast<std::size_t>(k) + 1, false);
      seen[static_cast<std::size_t>(k)] = true;
    }
  }
  if (!r.ok()) return nullptr;
  if (!s->analyzer_->restore(r)) return nullptr;
  for (auto& p : s->plugins_) {
    if (!p->restore(r)) return nullptr;
  }
  for (auto& p : s->extras_) {
    if (!p->restore(r)) return nullptr;
  }
  return r.ok() ? std::move(s) : nullptr;
}

}  // namespace mpx::analysis
