#include "analysis/atomicity_analysis.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "telemetry/metrics.hpp"

namespace mpx::analysis {

namespace {

constexpr std::uint8_t kAtomicityCkptVersion = 1;

/// One transaction: an annotated region's events, or a single event
/// outside any region.
struct Txn {
  ThreadId thread = 0;
  bool annotated = false;
  std::size_t ordinal = 0;   ///< 1-based among the thread's regions
  Value regionId = 0;
  LocalSeq firstLocal = 0;   ///< first event's k (canonical naming/order)
  GlobalSeq firstSeq = 0;
};

std::string txnName(const Txn& t) {
  std::ostringstream os;
  if (t.annotated) {
    os << 'T' << (t.thread + 1) << '#' << t.ordinal;
  } else {
    os << 'T' << (t.thread + 1) << "@k" << t.firstLocal;
  }
  return os.str();
}

/// Iterative Tarjan SCC over the transaction graph; components are
/// emitted in a deterministic order (pure function of the graph).
std::vector<std::vector<std::size_t>> stronglyConnected(
    const std::vector<std::vector<std::size_t>>& adj) {
  const std::size_t n = adj.size();
  std::vector<std::uint32_t> index(n, 0), low(n, 0);
  std::vector<bool> onStack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::uint32_t counter = 1;

  struct Frame {
    std::size_t v;
    std::size_t next = 0;  ///< next adjacency slot to visit
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != 0) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = counter++;
    stack.push_back(root);
    onStack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.next++];
        if (index[w] == 0) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          onStack[w] = true;
          frames.push_back({w});
        } else if (onStack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<std::size_t> scc;
          std::size_t w;
          do {
            w = stack.back();
            stack.pop_back();
            onStack[w] = false;
            scc.push_back(w);
          } while (w != f.v);
          sccs.push_back(std::move(scc));
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return sccs;
}

/// A cycle start -> ... -> start inside one SCC, DFS over canonically
/// sorted adjacency (deterministic witness).
std::vector<std::size_t> findCycle(
    std::size_t start, const std::vector<std::vector<std::size_t>>& adj,
    const std::vector<bool>& inScc) {
  std::vector<std::size_t> path{start};
  std::vector<bool> visited(adj.size(), false);
  struct Frame {
    std::size_t v;
    std::size_t next = 0;
  };
  std::vector<Frame> frames{{start}};
  visited[start] = true;
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.next < adj[f.v].size()) {
      const std::size_t w = adj[f.v][f.next++];
      if (!inScc[w]) continue;
      if (w == start) {
        path.push_back(start);
        return path;
      }
      if (visited[w]) continue;
      visited[w] = true;
      path.push_back(w);
      frames.push_back({w});
    } else {
      frames.pop_back();
      path.pop_back();
    }
  }
  return {start, start};  // unreachable for a non-singleton SCC
}

}  // namespace

void AtomicityAnalysis::onMessage(const trace::Message& m) {
  log_.push_back(m);
}

AtomicityAnalysis::CheckResult AtomicityAnalysis::check() const {
  CheckResult out;

  // Sort into the total order M; drop at-least-once duplicates.  Theorem 3
  // guarantees globalSeq linearizes ≺, so the sorted log is a valid
  // serial witness of the partial order regardless of delivery order.
  std::vector<const trace::Message*> msgs;
  msgs.reserve(log_.size());
  for (const trace::Message& m : log_) msgs.push_back(&m);
  std::sort(msgs.begin(), msgs.end(),
            [](const trace::Message* a, const trace::Message* b) {
              if (a->event.globalSeq != b->event.globalSeq) {
                return a->event.globalSeq < b->event.globalSeq;
              }
              if (a->event.thread != b->event.thread) {
                return a->event.thread < b->event.thread;
              }
              return a->event.localSeq < b->event.localSeq;
            });
  msgs.erase(std::unique(msgs.begin(), msgs.end(),
                         [](const trace::Message* a, const trace::Message* b) {
                           return a->event.thread == b->event.thread &&
                                  a->event.localSeq == b->event.localSeq;
                         }),
             msgs.end());

  // --- segmentation into transactions --------------------------------
  std::vector<Txn> txns;
  std::vector<std::vector<std::size_t>> adjSets;  // edges, deduped later
  std::unordered_map<ThreadId, std::size_t> depth;      // open-region depth
  std::unordered_map<ThreadId, std::size_t> current;    // open txn index
  std::unordered_map<ThreadId, std::size_t> lastTxn;    // program-order tail
  std::unordered_map<ThreadId, std::size_t> regionCount;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::vector<std::pair<std::size_t, std::size_t>> edges;
  const auto edge = [&](std::size_t from, std::size_t to) {
    if (from != to) edges.emplace_back(from, to);
  };

  // Per-variable conflict tails.
  struct VarTail {
    std::size_t lastWriter = kNone;
    std::vector<std::size_t> readersSinceWrite;
  };
  std::unordered_map<VarId, VarTail> tails;

  const auto openTxn = [&](ThreadId t, bool annotated, Value regionId,
                           const trace::Event& e) {
    Txn x;
    x.thread = t;
    x.annotated = annotated;
    if (annotated) {
      x.ordinal = ++regionCount[t];
      x.regionId = regionId;
    }
    x.firstLocal = e.localSeq;
    x.firstSeq = e.globalSeq;
    txns.push_back(x);
    const std::size_t idx = txns.size() - 1;
    const auto lt = lastTxn.find(t);
    if (lt != lastTxn.end()) edge(lt->second, idx);  // program order
    lastTxn[t] = idx;
    return idx;
  };

  for (const trace::Message* mp : msgs) {
    const trace::Event& e = mp->event;
    const ThreadId t = e.thread;
    if (e.kind == trace::EventKind::kRegionBegin) {
      if (depth[t]++ == 0) {
        current[t] = openTxn(t, true, e.value, e);
      }
      // Nested begins merge into the outermost region.
      continue;
    }
    if (e.kind == trace::EventKind::kRegionEnd) {
      if (depth[t] == 0) {
        ++out.unmatchedEnds;  // hostile end-without-begin: counted no-op
      } else if (--depth[t] == 0) {
        current.erase(t);
      }
      continue;
    }
    const std::size_t txn =
        depth[t] > 0 ? current[t] : openTxn(t, false, 0, e);
    if (!e.accessesVariable()) continue;

    VarTail& tail = tails[e.var];
    if (trace::isWriteLike(e.kind)) {
      if (tail.lastWriter != kNone) edge(tail.lastWriter, txn);
      for (const std::size_t r : tail.readersSinceWrite) edge(r, txn);
      tail.readersSinceWrite.clear();
      tail.lastWriter = txn;
    } else {  // read
      if (tail.lastWriter != kNone) edge(tail.lastWriter, txn);
      if (std::find(tail.readersSinceWrite.begin(),
                    tail.readersSinceWrite.end(),
                    txn) == tail.readersSinceWrite.end()) {
        tail.readersSinceWrite.push_back(txn);
      }
    }
  }

  out.transactions = txns.size();
  for (const auto& [t, d] : depth) {
    if (d > 0) ++out.openRegions;  // region open at trace end: checked as-is
  }
  for (const auto& [t, c] : regionCount) out.regions += c;

  // Dedup + canonically sort adjacency (SCC emission and witness DFS order
  // become pure functions of the graph).
  std::vector<std::vector<std::size_t>> adj(txns.size());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  out.conflictEdges = edges.size();
  for (const auto& [from, to] : edges) adj[from].push_back(to);

  // --- cycles --------------------------------------------------------
  for (const std::vector<std::size_t>& scc : stronglyConnected(adj)) {
    if (scc.size() < 2) continue;
    std::vector<bool> inScc(txns.size(), false);
    for (const std::size_t v : scc) inScc[v] = true;
    std::vector<std::size_t> members = scc;
    std::sort(members.begin(), members.end(), [&](std::size_t a,
                                                  std::size_t b) {
      return std::pair(txns[a].thread, txns[a].firstLocal) <
             std::pair(txns[b].thread, txns[b].firstLocal);
    });
    for (const std::size_t v : members) {
      if (!txns[v].annotated) continue;
      RegionViolation rv;
      rv.thread = txns[v].thread;
      rv.ordinal = txns[v].ordinal;
      rv.regionId = txns[v].regionId;
      for (const std::size_t w : findCycle(v, adj, inScc)) {
        rv.cycle.push_back(txnName(txns[w]));
      }
      out.violations.push_back(std::move(rv));
    }
  }
  std::sort(out.violations.begin(), out.violations.end(),
            [](const RegionViolation& a, const RegionViolation& b) {
              return std::pair(a.thread, a.ordinal) <
                     std::pair(b.thread, b.ordinal);
            });
  return out;
}

void AtomicityAnalysis::finish(const observer::LatticeStats& stats) {
  (void)stats;
  result_ = check();
  finished_ = true;
  if constexpr (telemetry::kEnabled) {
    telemetry::registry()
        .counter("mpx_analysis_atomicity_regions_total",
                 "Annotated atomic regions observed")
        .add(static_cast<std::int64_t>(result_.regions));
    telemetry::registry()
        .counter("mpx_analysis_atomicity_violations_total",
                 "Annotated regions found non-conflict-serializable")
        .add(static_cast<std::int64_t>(result_.violations.size()));
  }
}

void AtomicityAnalysis::checkpoint(observer::ckpt::Writer& w) const {
  w.u8(kAtomicityCkptVersion);
  w.u64(log_.size());
  for (const trace::Message& m : log_) {
    w.u8(static_cast<std::uint8_t>(m.event.kind));
    w.u32(m.event.thread);
    w.u32(m.event.var);
    w.i64(m.event.value);
    w.u64(m.event.localSeq);
    w.u64(m.event.globalSeq);
    w.u64(m.clock.size());
    for (std::size_t i = 0; i < m.clock.size(); ++i) {
      w.u64(m.clock[static_cast<ThreadId>(i)]);
    }
  }
}

bool AtomicityAnalysis::restore(observer::ckpt::Reader& r) {
  if (r.u8() != kAtomicityCkptVersion) return false;
  const std::uint64_t n = r.len(29 + 8);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    trace::Message m;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(trace::EventKind::kRegionEnd)) {
      return false;
    }
    m.event.kind = static_cast<trace::EventKind>(kind);
    m.event.thread = r.u32();
    m.event.var = r.u32();
    m.event.value = r.i64();
    m.event.localSeq = r.u64();
    m.event.globalSeq = r.u64();
    const std::uint64_t width = r.len(8);
    vc::VectorClock clock(static_cast<std::size_t>(width));
    for (std::uint64_t c = 0; c < width; ++c) {
      clock.set(static_cast<ThreadId>(c), r.u64());
    }
    m.clock = std::move(clock);
    if (!r.ok()) return false;
    log_.push_back(std::move(m));
  }
  return r.ok();
}

std::vector<AtomicityAnalysis::RegionViolation> AtomicityAnalysis::violations()
    const {
  return finished_ ? result_.violations : check().violations;
}

std::size_t AtomicityAnalysis::regionCount() const {
  return finished_ ? result_.regions : check().regions;
}

std::size_t AtomicityAnalysis::unmatchedEnds() const {
  return finished_ ? result_.unmatchedEnds : check().unmatchedEnds;
}

std::size_t AtomicityAnalysis::openRegions() const {
  return finished_ ? result_.openRegions : check().openRegions;
}

observer::AnalysisReport AtomicityAnalysis::report() const {
  const CheckResult res = finished_ ? result_ : check();
  observer::AnalysisReport rep;
  rep.name = name();
  rep.kind = kind();
  rep.violationCount = res.violations.size();
  std::ostringstream os;
  os << "atomicity: regions=" << res.regions
     << " violations=" << res.violations.size()
     << " transactions=" << res.transactions
     << " conflict-edges=" << res.conflictEdges;
  if (res.openRegions != 0) os << " open-regions=" << res.openRegions;
  if (res.unmatchedEnds != 0) os << " unmatched-ends=" << res.unmatchedEnds;
  os << '\n';
  for (const RegionViolation& v : res.violations) {
    os << "  region T" << (v.thread + 1) << '#' << v.ordinal << " r"
       << v.regionId << ": cycle";
    for (std::size_t i = 0; i < v.cycle.size(); ++i) {
      os << (i == 0 ? " " : " -> ") << v.cycle[i];
    }
    os << '\n';
  }
  rep.text = os.str();
  return rep;
}

}  // namespace mpx::analysis
