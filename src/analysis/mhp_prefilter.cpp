#include "analysis/mhp_prefilter.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace mpx::analysis {

namespace {
constexpr std::uint8_t kMhpCkptVersion = 1;
}

void MhpPrefilter::onRawEvent(const trace::Event& event,
                              const std::vector<LockId>& locksHeld) {
  rawLog_.emplace_back(event, locksHeld);
  if (!event.accessesVariable()) return;
  VarCensus& c = census_[event.var];
  c.threads.insert(event.thread);
  if (!c.any) {
    c.any = true;
    c.commonLocks = locksHeld;
    std::sort(c.commonLocks.begin(), c.commonLocks.end());
  } else {
    std::vector<LockId> held = locksHeld;
    std::sort(held.begin(), held.end());
    std::vector<LockId> inter;
    std::set_intersection(c.commonLocks.begin(), c.commonLocks.end(),
                          held.begin(), held.end(),
                          std::back_inserter(inter));
    c.commonLocks = std::move(inter);
  }
}

void MhpPrefilter::onMessage(const trace::Message& m) { log_.push_back(m); }

std::vector<std::pair<VarId, VarId>> MhpPrefilter::classifyNeverConcurrent(
    const std::vector<trace::Message>& messages) {
  // Group accesses by variable (ordered map: canonical pair order for free).
  std::map<VarId, std::vector<const trace::Message*>> byVar;
  for (const trace::Message& m : messages) {
    if (m.event.accessesVariable()) byVar[m.event.var].push_back(&m);
  }
  std::vector<std::pair<VarId, VarId>> out;
  for (auto x = byVar.begin(); x != byVar.end(); ++x) {
    for (auto y = std::next(x); y != byVar.end(); ++y) {
      bool ordered = true;
      for (const trace::Message* a : x->second) {
        for (const trace::Message* b : y->second) {
          if (a->concurrentWith(*b)) {
            ordered = false;
            break;
          }
        }
        if (!ordered) break;
      }
      if (ordered) out.emplace_back(x->first, y->first);
    }
  }
  return out;
}

void MhpPrefilter::finish(const observer::LatticeStats& stats) {
  (void)stats;
  pairs_ = classifyNeverConcurrent(log_);
  raceFree_ = raceFreeVars_impl();
  finished_ = true;
  if constexpr (telemetry::kEnabled) {
    telemetry::registry()
        .counter("mpx_analysis_mhp_pruned_pairs_total",
                 "Variable pairs classified never-concurrent")
        .add(static_cast<std::int64_t>(pairs_.size()));
    telemetry::registry()
        .counter("mpx_analysis_mhp_pruned_vars_total",
                 "Variables certified race-free by lockset/thread-locality")
        .add(static_cast<std::int64_t>(raceFree_.size()));
  }
}

std::vector<std::pair<VarId, VarId>> MhpPrefilter::neverConcurrentPairs()
    const {
  return finished_ ? pairs_ : classifyNeverConcurrent(log_);
}

std::vector<VarId> MhpPrefilter::raceFreeVars() const {
  return finished_ ? raceFree_ : raceFreeVars_impl();
}

std::vector<VarId> MhpPrefilter::raceFreeVars_impl() const {
  std::vector<VarId> out;
  for (const auto& [var, c] : census_) {
    if (c.threads.size() <= 1 || !c.commonLocks.empty()) out.push_back(var);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MhpPrefilter::checkpoint(observer::ckpt::Writer& w) const {
  w.u8(kMhpCkptVersion);
  w.u64(rawLog_.size());
  for (const auto& [e, locks] : rawLog_) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u32(e.thread);
    w.u32(e.var);
    w.i64(e.value);
    w.u64(e.localSeq);
    w.u64(e.globalSeq);
    w.u64(locks.size());
    for (const LockId l : locks) w.u32(l);
  }
  w.u64(log_.size());
  for (const trace::Message& m : log_) {
    w.u8(static_cast<std::uint8_t>(m.event.kind));
    w.u32(m.event.thread);
    w.u32(m.event.var);
    w.i64(m.event.value);
    w.u64(m.event.localSeq);
    w.u64(m.event.globalSeq);
    w.u64(m.clock.size());
    for (std::size_t i = 0; i < m.clock.size(); ++i) {
      w.u64(m.clock[static_cast<ThreadId>(i)]);
    }
  }
}

bool MhpPrefilter::restore(observer::ckpt::Reader& r) {
  if (r.u8() != kMhpCkptVersion) return false;
  const auto readEvent = [&](trace::Event& e) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(trace::EventKind::kRegionEnd)) {
      return false;
    }
    e.kind = static_cast<trace::EventKind>(kind);
    e.thread = r.u32();
    e.var = r.u32();
    e.value = r.i64();
    e.localSeq = r.u64();
    e.globalSeq = r.u64();
    return r.ok();
  };
  const std::uint64_t raws = r.len(29 + 8);
  for (std::uint64_t i = 0; i < raws && r.ok(); ++i) {
    trace::Event e;
    if (!readEvent(e)) return false;
    std::vector<LockId> locks(static_cast<std::size_t>(r.len(4)));
    for (auto& l : locks) l = r.u32();
    if (!r.ok()) return false;
    onRawEvent(e, locks);
  }
  const std::uint64_t msgs = r.len(29 + 8);
  for (std::uint64_t i = 0; i < msgs && r.ok(); ++i) {
    trace::Message m;
    if (!readEvent(m.event)) return false;
    const std::uint64_t width = r.len(8);
    vc::VectorClock clock(static_cast<std::size_t>(width));
    for (std::uint64_t c = 0; c < width; ++c) {
      clock.set(static_cast<ThreadId>(c), r.u64());
    }
    m.clock = std::move(clock);
    if (!r.ok()) return false;
    log_.push_back(std::move(m));
  }
  return r.ok();
}

observer::AnalysisReport MhpPrefilter::report() const {
  const auto pairs = neverConcurrentPairs();
  const auto raceFree = raceFreeVars();
  observer::AnalysisReport rep;
  rep.name = name();
  rep.kind = kind();
  rep.violationCount = 0;  // a prefilter finds no violations, only pruning
  std::ostringstream os;
  os << "mhp: never-concurrent-pairs=" << pairs.size()
     << " race-free-vars=" << raceFree.size() << '\n';
  const auto nameOf = [&](VarId v) {
    return vars_ != nullptr ? vars_->name(v) : "v" + std::to_string(v);
  };
  for (const auto& [lo, hi] : pairs) {
    os << "  ordered: " << nameOf(lo) << " , " << nameOf(hi) << '\n';
  }
  for (const VarId v : raceFree) {
    os << "  race-free: " << nameOf(v) << '\n';
  }
  rep.text = os.str();
  return rep;
}

}  // namespace mpx::analysis
