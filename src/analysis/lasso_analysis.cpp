#include "analysis/lasso_analysis.hpp"

#include <sstream>
#include <stdexcept>

#include "observer/checkpoint_codec.hpp"
#include "observer/run_enumerator.hpp"

namespace mpx::analysis {

LassoAnalysis::LassoAnalysis(const observer::CausalityGraph& graph,
                             const observer::StateSpace& space,
                             const logic::LtlFormula* property,
                             LivenessOptions opts, unsigned bloomBits)
    : graph_(&graph),
      space_(&space),
      property_(property),
      opts_(opts),
      visit_(bloomBits) {
  if (bloomBits < 1 || bloomBits > 63) {
    throw std::invalid_argument("LassoAnalysis: bloomBits must be in [1,63]");
  }
}

bool LassoAnalysis::onViolation(const observer::Violation& v,
                                observer::MonitorState componentState) {
  if (!visit_.isViolating(componentState)) return false;
  if (lassos_.size() >= opts_.maxViolations) return false;
  if (v.path.empty()) return false;  // no witness — cannot verify

  // Replay the witness run and look for a genuine repeat of its final
  // state (the Bloom flag may be a hash collision).
  observer::RunEnumerator runs(*graph_, *space_);
  const std::vector<observer::GlobalState> states = runs.statesAlong(v.path);
  const std::size_t end = states.size() - 1;
  std::size_t i = end;
  for (std::size_t t = 0; t < end; ++t) {
    if (states[t] == states[end]) {
      i = t;
      break;
    }
  }
  if (i == end) return false;  // collision, not a real lasso

  LassoViolation lasso;
  lasso.stemStates.assign(states.begin(),
                          states.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  lasso.loopStates.assign(states.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                          states.begin() + static_cast<std::ptrdiff_t>(end) +
                              1);
  lasso.stemEvents.assign(v.path.begin(),
                          v.path.begin() + static_cast<std::ptrdiff_t>(i));
  lasso.loopEvents.assign(v.path.begin() + static_cast<std::ptrdiff_t>(i),
                          v.path.begin() + static_cast<std::ptrdiff_t>(end));

  // Same fingerprint the pre-plugin scan used, so dedupe semantics match.
  std::size_t fp = 1469598103934665603ull;
  const auto mix = [&fp](std::size_t h) {
    fp ^= h + 0x9e3779b97f4a7c15ull + (fp << 6) + (fp >> 2);
  };
  for (const auto& s : lasso.stemStates) mix(s.hash());
  mix(0xabcdef);
  for (const auto& s : lasso.loopStates) mix(s.hash());
  if (!seen_.insert(fp).second) return false;

  if (property_ != nullptr &&
      logic::satisfiesLasso(*property_, lasso.stemStates, lasso.loopStates)) {
    return false;  // property holds on this lasso — not a violation
  }
  lassos_.push_back(std::move(lasso));
  return false;  // collected locally, never a safety violation
}

namespace {

constexpr std::uint8_t kLassoCkptVersion = 1;

void writeStates(observer::ckpt::Writer& w,
                 const std::vector<observer::GlobalState>& states) {
  w.u64(states.size());
  for (const auto& s : states) {
    w.u64(s.values.size());
    for (const Value v : s.values) w.i64(v);
  }
}

bool readStates(observer::ckpt::Reader& r,
                std::vector<observer::GlobalState>& states) {
  const std::uint64_t n = r.len(8);
  states.resize(static_cast<std::size_t>(n));
  for (auto& s : states) {
    s.values.resize(static_cast<std::size_t>(r.len(8)));
    for (auto& v : s.values) v = r.i64();
  }
  return r.ok();
}

void writeRefs(observer::ckpt::Writer& w,
               const std::vector<observer::EventRef>& refs) {
  w.u64(refs.size());
  for (const auto& e : refs) observer::ckpt::writeEventRef(w, e);
}

bool readRefs(observer::ckpt::Reader& r,
              std::vector<observer::EventRef>& refs) {
  const std::uint64_t n = r.len(12);
  refs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    refs.push_back(observer::ckpt::readEventRef(r));
  }
  return r.ok();
}

}  // namespace

void LassoAnalysis::checkpoint(observer::ckpt::Writer& w) const {
  w.u8(kLassoCkptVersion);
  w.u64(seen_.size());
  for (const std::size_t fp : seen_) w.u64(fp);
  w.u64(lassos_.size());
  for (const LassoViolation& l : lassos_) {
    writeRefs(w, l.stemEvents);
    writeRefs(w, l.loopEvents);
    writeStates(w, l.stemStates);
    writeStates(w, l.loopStates);
  }
}

bool LassoAnalysis::restore(observer::ckpt::Reader& r) {
  if (r.u8() != kLassoCkptVersion) return false;
  seen_.clear();
  const std::uint64_t fps = r.len(8);
  for (std::uint64_t i = 0; i < fps && r.ok(); ++i) {
    seen_.insert(static_cast<std::size_t>(r.u64()));
  }
  lassos_.clear();
  const std::uint64_t n = r.len(8);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    LassoViolation l;
    if (!readRefs(r, l.stemEvents) || !readRefs(r, l.loopEvents) ||
        !readStates(r, l.stemStates) || !readStates(r, l.loopStates)) {
      return false;
    }
    lassos_.push_back(std::move(l));
  }
  return r.ok();
}

observer::AnalysisReport LassoAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = lassos_.size();
  std::ostringstream os;
  os << (property_ != nullptr ? "liveness violations (lassos): "
                              : "lassos: ")
     << lassos_.size() << '\n';
  for (const LassoViolation& l : lassos_) {
    os << "  stem " << l.stemStates.size() << " states, loop "
       << l.loopStates.size() << " states: loop";
    for (const auto& s : l.loopStates) {
      os << ' ' << s.toString(*space_);
    }
    os << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::analysis
