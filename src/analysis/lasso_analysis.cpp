#include "analysis/lasso_analysis.hpp"

#include <sstream>
#include <stdexcept>

#include "observer/run_enumerator.hpp"

namespace mpx::analysis {

LassoAnalysis::LassoAnalysis(const observer::CausalityGraph& graph,
                             const observer::StateSpace& space,
                             const logic::LtlFormula* property,
                             LivenessOptions opts, unsigned bloomBits)
    : graph_(&graph),
      space_(&space),
      property_(property),
      opts_(opts),
      visit_(bloomBits) {
  if (bloomBits < 1 || bloomBits > 63) {
    throw std::invalid_argument("LassoAnalysis: bloomBits must be in [1,63]");
  }
}

bool LassoAnalysis::onViolation(const observer::Violation& v,
                                observer::MonitorState componentState) {
  if (!visit_.isViolating(componentState)) return false;
  if (lassos_.size() >= opts_.maxViolations) return false;
  if (v.path.empty()) return false;  // no witness — cannot verify

  // Replay the witness run and look for a genuine repeat of its final
  // state (the Bloom flag may be a hash collision).
  observer::RunEnumerator runs(*graph_, *space_);
  const std::vector<observer::GlobalState> states = runs.statesAlong(v.path);
  const std::size_t end = states.size() - 1;
  std::size_t i = end;
  for (std::size_t t = 0; t < end; ++t) {
    if (states[t] == states[end]) {
      i = t;
      break;
    }
  }
  if (i == end) return false;  // collision, not a real lasso

  LassoViolation lasso;
  lasso.stemStates.assign(states.begin(),
                          states.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  lasso.loopStates.assign(states.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                          states.begin() + static_cast<std::ptrdiff_t>(end) +
                              1);
  lasso.stemEvents.assign(v.path.begin(),
                          v.path.begin() + static_cast<std::ptrdiff_t>(i));
  lasso.loopEvents.assign(v.path.begin() + static_cast<std::ptrdiff_t>(i),
                          v.path.begin() + static_cast<std::ptrdiff_t>(end));

  // Same fingerprint the pre-plugin scan used, so dedupe semantics match.
  std::size_t fp = 1469598103934665603ull;
  const auto mix = [&fp](std::size_t h) {
    fp ^= h + 0x9e3779b97f4a7c15ull + (fp << 6) + (fp >> 2);
  };
  for (const auto& s : lasso.stemStates) mix(s.hash());
  mix(0xabcdef);
  for (const auto& s : lasso.loopStates) mix(s.hash());
  if (!seen_.insert(fp).second) return false;

  if (property_ != nullptr &&
      logic::satisfiesLasso(*property_, lasso.stemStates, lasso.loopStates)) {
    return false;  // property holds on this lasso — not a violation
  }
  lassos_.push_back(std::move(lasso));
  return false;  // collected locally, never a safety violation
}

observer::AnalysisReport LassoAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = lassos_.size();
  std::ostringstream os;
  os << (property_ != nullptr ? "liveness violations (lassos): "
                              : "lassos: ")
     << lassos_.size() << '\n';
  for (const LassoViolation& l : lassos_) {
    os << "  stem " << l.stemStates.size() << " states, loop "
       << l.loopStates.size() << " states: loop";
    for (const auto& s : l.loopStates) {
      os << ' ' << s.toString(*space_);
    }
    os << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::analysis
