// The end-to-end JMPaX pipeline (paper Fig. 4):
//
//   specification ──> relevant-variable extraction ──> instrumentation
//   program ──(execute under a scheduler)──> events ──> Algorithm A
//     ──> message stream <e,i,V> ──(channel, any delivery order)──>
//   observer: causality reconstruction ──> computation lattice, level by
//   level ──> synthesized ptLTL monitor over all runs in parallel ──>
//   verdicts + counterexample runs.
//
// One call to analyze() does all of the above for one observed execution.
// The result separates the *observed-run* verdict (what a JPAX/Java-MaC
// style single-trace monitor would see — our baseline) from the *predicted*
// violations found in other consistent runs, which is the paper's headline
// capability.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/instrumentor.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/causality.hpp"
#include "observer/lattice.hpp"
#include "observer/run_enumerator.hpp"
#include "program/explorer.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::analysis {

struct AnalyzerConfig {
  /// The ptLTL safety property, e.g.
  /// "landing = 1 -> [approved = 1, radio = 0)".
  std::string spec;
  /// Variables to track beyond the ones the spec references (optional).
  std::vector<std::string> extraTrackedVars;
  /// Delivery policy between instrumented program and observer.
  trace::DeliveryPolicy delivery = trace::DeliveryPolicy::kFifo;
  std::uint64_t deliverySeed = 0;
  std::size_t deliveryMaxDelay = 8;
  observer::LatticeOptions lattice;
  std::size_t maxSteps = 1'000'000;
};

/// Convenience: a default config with just the spec set.
[[nodiscard]] inline AnalyzerConfig specConfig(std::string spec) {
  AnalyzerConfig c;
  c.spec = std::move(spec);
  return c;
}

struct AnalysisResult {
  // --- observed run (the JPAX baseline view) -------------------------
  /// Index into observedStates of the first violating state, or -1.
  std::int64_t observedViolationIndex = -1;
  [[nodiscard]] bool observedRunViolates() const {
    return observedViolationIndex >= 0;
  }
  /// Relevant-event linearization the program actually executed.
  std::vector<observer::EventRef> observedRun;
  /// Global states along the observed run (index 0 = initial state).
  std::vector<observer::GlobalState> observedStates;

  // --- prediction over all consistent runs ---------------------------
  std::vector<observer::Violation> predictedViolations;
  [[nodiscard]] bool predictsViolation() const {
    return !predictedViolations.empty();
  }
  observer::LatticeStats latticeStats;

  // --- supporting data for rendering and further analysis ------------
  observer::StateSpace space;
  observer::CausalityGraph causality;
  program::ExecutionRecord record;
  std::uint64_t messagesEmitted = 0;
  std::uint64_t eventsInstrumented = 0;

  /// Human-readable account of one predicted violation (counterexample
  /// run with intermediate states, paper-style).
  [[nodiscard]] std::string describe(const observer::Violation& v) const;
};

class PredictiveAnalyzer {
 public:
  /// The program's VarTable must contain every variable the spec mentions.
  PredictiveAnalyzer(const program::Program& prog, AnalyzerConfig config);

  /// Execute the program once under `sched` and analyze the execution.
  [[nodiscard]] AnalysisResult analyze(program::Scheduler& sched) const;

  /// Convenience: seeded random schedule.
  [[nodiscard]] AnalysisResult analyzeWithSeed(std::uint64_t seed) const;

  /// Analyze an already-recorded execution (offline re-analysis).
  [[nodiscard]] AnalysisResult analyzeRecord(
      const program::ExecutionRecord& record) const;

  [[nodiscard]] const observer::StateSpace& space() const noexcept {
    return space_;
  }
  [[nodiscard]] const logic::Formula& formula() const noexcept {
    return formula_;
  }
  /// The relevant variables extracted from the spec (paper §4.1).
  [[nodiscard]] const std::vector<std::string>& relevantVariables()
      const noexcept {
    return relevantVars_;
  }

 private:
  const program::Program* prog_;
  AnalyzerConfig config_;
  std::vector<std::string> relevantVars_;
  observer::StateSpace space_;
  logic::Formula formula_;
};

/// The JPAX/Java-MaC-style baseline: monitor ONLY the observed execution
/// trace, no causality, no prediction ("JPAX and Java-MaC are able to
/// analyze only one path in the lattice").
class ObservedRunChecker {
 public:
  ObservedRunChecker(const program::Program& prog, std::string spec);

  /// Runs the program under `sched` and monitors the relevant-state
  /// sequence of that single run.  Returns true iff a violation was
  /// DETECTED in the observed run itself.
  [[nodiscard]] bool detects(program::Scheduler& sched) const;
  [[nodiscard]] bool detectsWithSeed(std::uint64_t seed) const;

  /// Monitors an already-recorded execution.
  [[nodiscard]] bool detectsOnRecord(
      const program::ExecutionRecord& record) const;

 private:
  const program::Program* prog_;
  std::string spec_;
  observer::StateSpace space_;
  logic::Formula formula_;
};

/// Ground truth via exhaustive schedule exploration: over ALL schedules,
/// how many executions actually violate the property on their own trace?
struct GroundTruthResult {
  std::size_t totalExecutions = 0;
  std::size_t violatingExecutions = 0;
  std::size_t deadlockedExecutions = 0;
  bool truncated = false;
};

[[nodiscard]] GroundTruthResult groundTruth(
    const program::Program& prog, const std::string& spec,
    program::ExploreOptions opts = {});

}  // namespace mpx::analysis
