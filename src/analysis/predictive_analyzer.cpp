#include "analysis/predictive_analyzer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "logic/spec_analysis.hpp"
#include "observer/analysis.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::analysis {

namespace {

/// Everything derived from (program, spec): the relevant variables, the
/// state space over them, and the bound formula.
struct Binding {
  std::vector<std::string> relevantVars;
  observer::StateSpace space;
  logic::Formula formula;
  std::unordered_set<VarId> trackedIds;
};

Binding bindSpec(const program::Program& prog, const std::string& spec,
             const std::vector<std::string>& extra = {}) {
  Binding b;
  b.relevantVars = logic::SpecParser::referencedVariables(spec);
  std::vector<std::string> tracked = b.relevantVars;
  for (const std::string& name : extra) {
    if (std::find(tracked.begin(), tracked.end(), name) == tracked.end()) {
      tracked.push_back(name);
    }
  }
  b.space = observer::StateSpace::byNames(prog.vars, tracked);
  b.formula = logic::SpecParser(b.space).parse(spec);
  for (const VarId v : b.space.varIds()) b.trackedIds.insert(v);
  return b;
}

/// The observed run's relevant-state sequence, straight off the event
/// stream (no observer machinery) — this is all a JPAX-style tool sees.
std::vector<observer::GlobalState> relevantStateTrace(
    const std::vector<trace::Event>& events, const observer::StateSpace& space,
    const std::unordered_set<VarId>& trackedIds) {
  std::vector<observer::GlobalState> states;
  states.push_back(observer::GlobalState(space.initialValues()));
  for (const trace::Event& e : events) {
    if (!trace::isWriteLike(e.kind) || !trackedIds.contains(e.var)) continue;
    observer::GlobalState next = states.back();
    if (const auto slot = space.slotOf(e.var)) next.values[*slot] = e.value;
    states.push_back(std::move(next));
  }
  return states;
}

}  // namespace

PredictiveAnalyzer::PredictiveAnalyzer(const program::Program& prog,
                                       AnalyzerConfig config)
    : prog_(&prog), config_(std::move(config)) {
  Binding b = bindSpec(prog, config_.spec, config_.extraTrackedVars);
  relevantVars_ = std::move(b.relevantVars);
  space_ = std::move(b.space);
  formula_ = std::move(b.formula);
}

AnalysisResult PredictiveAnalyzer::analyze(program::Scheduler& sched) const {
  program::Executor ex(*prog_, sched);
  return analyzeRecord(ex.run(config_.maxSteps));
}

AnalysisResult PredictiveAnalyzer::analyzeWithSeed(std::uint64_t seed) const {
  program::RandomScheduler sched(seed);
  return analyze(sched);
}

AnalysisResult PredictiveAnalyzer::analyzeRecord(
    const program::ExecutionRecord& record) const {
  AnalysisResult result;
  result.space = space_;
  result.record = record;

  std::unordered_set<VarId> trackedIds;
  for (const VarId v : space_.varIds()) trackedIds.insert(v);

  // Instrument: Algorithm A over the execution's events, emitting relevant
  // messages through the configured channel into the observer.
  {
    telemetry::TraceSpan span("analysis.instrument", "analysis");
    auto channel = trace::makeChannel(config_.delivery, result.causality,
                                      config_.deliverySeed,
                                      config_.deliveryMaxDelay);
    core::Instrumentor instr(core::RelevancePolicy::writesOf(trackedIds),
                             *channel);
    instr.reserve(prog_->threadCount(), prog_->vars.size());
    for (const trace::Event& e : record.events) instr.onEvent(e);
    channel->close();
    result.causality.finalize();
    result.messagesEmitted = instr.messagesEmitted();
    result.eventsInstrumented = instr.eventsProcessed();
    span.arg("events", static_cast<std::int64_t>(result.eventsInstrumented));
    span.arg("messages", static_cast<std::int64_t>(result.messagesEmitted));
  }

  // Observed-run verdict (what a single-trace monitor would report).
  {
    telemetry::TraceSpan span("analysis.observed_run", "analysis");
    result.observedRun = result.causality.observedOrder();
    observer::RunEnumerator runs(result.causality, space_);
    result.observedStates = runs.statesAlong(result.observedRun);
    logic::SynthesizedMonitor linear(formula_);
    result.observedViolationIndex =
        linear.firstViolation(result.observedStates);
  }

  // Predictive verdict: the lattice, all runs in parallel, driven through
  // the plugin engine (a single-property AnalysisBus — the K=1 case of the
  // one-pass multi-property Engine, byte-identical to the old direct
  // monitor path).
  {
    telemetry::TraceSpan span("analysis.lattice_check", "analysis");
    observer::ComputationLattice lattice(result.causality, space_,
                                         config_.lattice);
    logic::SpecAnalysis plugin(space_, formula_, config_.spec);
    observer::AnalysisBus bus({&plugin});
    lattice.analyze(bus, result.predictedViolations);
    result.latticeStats = lattice.stats();
    span.arg("nodes", static_cast<std::int64_t>(result.latticeStats.totalNodes));
    span.arg("levels", static_cast<std::int64_t>(result.latticeStats.levels));
  }
  return result;
}

std::string AnalysisResult::describe(const observer::Violation& v) const {
  std::ostringstream os;
  os << "violation at cut " << v.cut.toString() << ", state <"
     << v.state.toString(space) << ">\n";
  os << "counterexample run:\n";
  observer::RunEnumerator runs(causality, space);
  const std::vector<observer::GlobalState> states = runs.statesAlong(v.path);
  os << "  (initial)  " << states.front().toString(space) << '\n';
  for (std::size_t i = 0; i < v.path.size(); ++i) {
    const trace::Message& m = causality.message(v.path[i]);
    std::string name = "?";
    if (const auto slot = space.slotOf(m.event.var)) name = space.name(*slot);
    os << "  e" << (i + 1) << ": <" << name << '=' << m.event.value << ", T"
       << (m.event.thread + 1) << ", " << m.clock << ">  ->  "
       << states[i + 1].toString(space) << '\n';
  }
  return os.str();
}

ObservedRunChecker::ObservedRunChecker(const program::Program& prog,
                                       std::string spec)
    : prog_(&prog), spec_(std::move(spec)) {
  Binding b = bindSpec(prog, spec_);
  space_ = std::move(b.space);
  formula_ = std::move(b.formula);
}

bool ObservedRunChecker::detects(program::Scheduler& sched) const {
  program::Executor ex(*prog_, sched);
  return detectsOnRecord(ex.run());
}

bool ObservedRunChecker::detectsWithSeed(std::uint64_t seed) const {
  program::RandomScheduler sched(seed);
  return detects(sched);
}

bool ObservedRunChecker::detectsOnRecord(
    const program::ExecutionRecord& record) const {
  std::unordered_set<VarId> trackedIds;
  for (const VarId v : space_.varIds()) trackedIds.insert(v);
  const auto states = relevantStateTrace(record.events, space_, trackedIds);
  logic::SynthesizedMonitor monitor(formula_);
  return monitor.firstViolation(states) >= 0;
}

GroundTruthResult groundTruth(const program::Program& prog,
                              const std::string& spec,
                              program::ExploreOptions opts) {
  const Binding b = bindSpec(prog, spec);
  GroundTruthResult out;
  program::ExhaustiveExplorer explorer(opts);
  explorer.explore(prog, [&](const program::ExecutionRecord& rec) {
    ++out.totalExecutions;
    if (rec.deadlocked) ++out.deadlockedExecutions;
    const auto states = relevantStateTrace(rec.events, b.space, b.trackedIds);
    logic::SynthesizedMonitor monitor(b.formula);
    if (monitor.firstViolation(states) >= 0) ++out.violatingExecutions;
    return true;
  });
  out.truncated = explorer.lastStats().truncated;
  return out;
}

}  // namespace mpx::analysis
