// Machine- and human-readable reports of an analysis.
//
// JMPaX's value was "the user will be given enough information (the entire
// counterexample execution) to understand the error and to correct it"
// (paper §1).  This module renders AnalysisResults — verdicts, lattice
// statistics, and counterexample runs with their intermediate states — as
// JSON (for tooling) and structured text (for humans), with no external
// dependencies.
#pragma once

#include <string>

#include "analysis/predictive_analyzer.hpp"
#include "detect/deadlock_detector.hpp"
#include "detect/race_detector.hpp"
#include "observer/analysis.hpp"

namespace mpx::analysis {

// --- the ONE report-rendering + exit-code path both mpx_cli and
// --- mpx_observerd use -------------------------------------------------

/// The violation report in paper notation (one line per violation with its
/// counterexample path, then the lattice statistics line).  Shared by the
/// daemon's HTTP status page, the daemon CLI, and mpx_cli, and exposed so
/// the loopback e2e tests can render an in-process analyzer's result
/// through the exact same code and assert byte equality.
[[nodiscard]] std::string renderViolationReport(
    const observer::StateSpace& space,
    const std::vector<observer::Violation>& violations,
    const observer::LatticeStats& stats, bool finished);

/// Concatenates per-plugin reports ("=== <name> ===" sections) plus a
/// findings total — the multi-property tail of both CLIs.
[[nodiscard]] std::string renderAnalysisReports(
    const std::vector<observer::AnalysisReport>& reports);

/// The common exit-code contract: 2 = analysis unusable (incomplete,
/// errored), 1 = violations found, 0 = clean.
[[nodiscard]] int exitCodeFor(bool usable, std::size_t violationCount);

/// Budget-aware overload: 3 = clean but BOUNDED — the degradation ladder
/// (or a width cap / beam) shed runs, so "no violation" is not a proof.
/// Violations still exit 1 (they carry genuine witnesses even when
/// bounded), and unusable still dominates with 2.
[[nodiscard]] int exitCodeFor(bool usable, std::size_t violationCount,
                              bool bounded);

struct ReportOptions {
  bool includeCounterexamples = true;
  bool includeObservedRun = true;
  /// Append a "metrics" block with the process-wide telemetry snapshot
  /// (counters, gauges, histogram count/sum).  Off by default: the snapshot
  /// is global state, so reports from the same process would differ.
  bool includeMetrics = false;
  std::size_t maxViolations = 16;
  int indent = 2;  ///< JSON pretty-print indentation; 0 = compact
};

/// The full analysis result as a JSON document.
[[nodiscard]] std::string toJson(const AnalysisResult& result,
                                 ReportOptions opts = {});

/// The full analysis result as indented text.
[[nodiscard]] std::string toText(const AnalysisResult& result,
                                 ReportOptions opts = {});

/// Race reports as JSON (array).
[[nodiscard]] std::string racesToJson(
    const std::vector<detect::RaceReport>& races,
    const trace::VarTable& vars);

/// Deadlock reports as JSON (array).
[[nodiscard]] std::string deadlocksToJson(
    const std::vector<detect::DeadlockReport>& reports,
    const std::vector<std::string>& lockNames);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace mpx::analysis
