// The §4 lasso/liveness search as a lattice-engine plugin.
//
// The paper's idea: "search for paths of the form u v in the computation
// lattice with the property that the shared variable global state ...
// reached by u is the same as the one reached by u v, and then check
// whether u v^ω satisfies the liveness property."
//
// The plugin rides the engine's packed monitor word with a StateVisitMonitor
// — a per-path Bloom filter of visited global states plus one "revisit"
// flag bit that fires when a path re-enters a state (hash bit) it already
// passed through.  A firing flag is only a CANDIDATE (hash collisions):
// onViolation replays the witness run, locates a genuine state repeat, and
// keeps the lasso only when it is real (and, when a property is given,
// only when u v^ω violates it).  No false positives survive; a real repeat
// always collides with its own hash bit, so no lasso reachable through a
// recorded witness is missed.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/liveness.hpp"
#include "observer/analysis.hpp"

namespace mpx::analysis {

/// Bloom-filter monitor over the states a lattice path visits.  Bits
/// [0, bloomBits) record state hashes; bit bloomBits flags "the newest
/// state's hash bit was already set" and is cleared by the next advance.
class StateVisitMonitor final : public observer::LatticeMonitor {
 public:
  /// `bloomBits` in [1, 63].
  explicit StateVisitMonitor(unsigned bloomBits) : bloomBits_(bloomBits) {}

  observer::MonitorState initial(const observer::GlobalState& s) override {
    return bitFor(s);
  }
  observer::MonitorState advance(observer::MonitorState prev,
                                 const observer::GlobalState& s) override {
    const observer::MonitorState seen = prev & ~flagMask();
    const observer::MonitorState bit = bitFor(s);
    observer::MonitorState next = seen | bit;
    if ((seen & bit) != 0) next |= flagMask();
    return next;
  }
  [[nodiscard]] bool isViolating(observer::MonitorState m) const override {
    return (m & flagMask()) != 0;
  }
  [[nodiscard]] unsigned stateBits() const override { return bloomBits_ + 1; }

 private:
  [[nodiscard]] observer::MonitorState bitFor(
      const observer::GlobalState& s) const {
    return 1ull << (s.hash() % bloomBits_);
  }
  [[nodiscard]] observer::MonitorState flagMask() const {
    return 1ull << bloomBits_;
  }

  unsigned bloomBits_;
};

class LassoAnalysis final : public observer::Analysis {
 public:
  /// `graph` and `space` must outlive the plugin; `property` (nullable:
  /// collect every lasso) must outlive it too.  The engine pass must run
  /// with LatticeOptions::recordPaths — the replay needs the witness.
  LassoAnalysis(const observer::CausalityGraph& graph,
                const observer::StateSpace& space,
                const logic::LtlFormula* property, LivenessOptions opts = {},
                unsigned bloomBits = 63);

  [[nodiscard]] std::string name() const override { return "lasso"; }
  [[nodiscard]] std::string kind() const override { return "lasso"; }
  [[nodiscard]] observer::LatticeMonitor* monitor() override {
    return &visit_;
  }

  /// Verifies the candidate; never accepts (lassos are not safety
  /// violations — they are collected here, not in the engine's list).
  bool onViolation(const observer::Violation& v,
                   observer::MonitorState componentState) override;
  void checkpoint(observer::ckpt::Writer& w) const override;
  [[nodiscard]] bool restore(observer::ckpt::Reader& r) override;
  [[nodiscard]] observer::AnalysisReport report() const override;

  [[nodiscard]] const std::vector<LassoViolation>& lassos() const noexcept {
    return lassos_;
  }
  [[nodiscard]] std::vector<LassoViolation> takeLassos() {
    return std::move(lassos_);
  }

 private:
  const observer::CausalityGraph* graph_;
  const observer::StateSpace* space_;
  const logic::LtlFormula* property_;
  LivenessOptions opts_;
  StateVisitMonitor visit_;
  std::set<std::size_t> seen_;  ///< lasso fingerprints (dedupe)
  std::vector<LassoViolation> lassos_;
};

}  // namespace mpx::analysis
