// May-happen-in-parallel + lockset prefilter (ISSUE 10 tentpole, after the
// lotus-style MHPAnalysis/LockSetAnalysis prepasses).
//
// Two independent classifications over one observed execution:
//
//  * Clock-certified never-concurrent variable PAIRS: (x, y) is
//    never-concurrent when every relevant access of x is causally ordered
//    (Theorem 3 clock comparison) with every relevant access of y.  This
//    is a property of the PARTIAL ORDER — true in every linearization the
//    lattice could expand — so the engine may shrink the union variable
//    space it expands without changing any verdict (the pruned variables'
//    values stay cut-determined; see Engine's state lift).
//
//  * Lockset/thread-locality race-free VARIABLES (raw-event feed,
//    in-process only): a variable accessed by a single thread, or whose
//    every access holds one common lock, cannot race even predictively —
//    the paper's §3.1 sync edges order any two same-lock critical
//    sections in every consistent permutation.  RaceAnalysis consults
//    this set to suppress guaranteed-ordered candidate pairs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "observer/analysis.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"

namespace mpx::analysis {

class MhpPrefilter final : public observer::Analysis {
 public:
  /// `vars` (optional) renders names in reports; must outlive the plugin.
  explicit MhpPrefilter(const trace::VarTable* vars = nullptr)
      : vars_(vars) {}

  [[nodiscard]] std::string name() const override { return "mhp-prefilter"; }
  [[nodiscard]] std::string kind() const override { return "mhp"; }

  void onRawEvent(const trace::Event& event,
                  const std::vector<LockId>& locksHeld) override;
  void onMessage(const trace::Message& m) override;
  void finish(const observer::LatticeStats& stats) override;

  /// Checkpoint = both replayable logs; restore() on a fresh plugin only.
  void checkpoint(observer::ckpt::Writer& w) const override;
  [[nodiscard]] bool restore(observer::ckpt::Reader& r) override;

  [[nodiscard]] observer::AnalysisReport report() const override;

  /// Never-concurrent pairs (var ids, lo < hi), canonical order.
  /// Recomputed on demand before finish().
  [[nodiscard]] std::vector<std::pair<VarId, VarId>> neverConcurrentPairs()
      const;

  /// Variables certified race-free by thread-locality or a common lock
  /// over every raw access (requires the raw-event feed).
  [[nodiscard]] std::vector<VarId> raceFreeVars() const;

  /// The pure pair classification, shared with the Engine's prepass:
  /// groups `messages` by variable and reports every pair of variables
  /// whose access sets are totally causally ordered against each other.
  [[nodiscard]] static std::vector<std::pair<VarId, VarId>>
  classifyNeverConcurrent(const std::vector<trace::Message>& messages);

 private:
  [[nodiscard]] std::vector<VarId> raceFreeVars_impl() const;

  const trace::VarTable* vars_;
  std::vector<trace::Message> log_;
  /// Raw-access census per variable: accessing threads, and the
  /// intersection of held locksets over all accesses so far.
  struct VarCensus {
    std::unordered_set<ThreadId> threads;
    std::vector<LockId> commonLocks;  ///< intersection; meaningless until first
    bool any = false;
  };
  std::unordered_map<VarId, VarCensus> census_;
  /// Raw (event, lockset) log — the census checkpoint payload.
  std::vector<std::pair<trace::Event, std::vector<LockId>>> rawLog_;

  bool finished_ = false;
  std::vector<std::pair<VarId, VarId>> pairs_;      ///< valid when finished_
  std::vector<VarId> raceFree_;                     ///< valid when finished_
};

}  // namespace mpx::analysis
