// Testing campaigns: many seeded runs, aggregated verdicts.
//
// The paper's pitch is statistical — "the chance of detecting this safety
// violation by monitoring only the actual run is very low" — so the
// natural workflow for a user is: run the program under N random
// schedules and compare what plain trace monitoring catches against what
// predictive analysis catches from the same traces.  Campaign packages
// that workflow (bench_prediction_power uses it for the Claim C1 table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/predictive_analyzer.hpp"

namespace mpx::analysis {

struct CampaignOptions {
  std::size_t trials = 100;
  std::uint64_t firstSeed = 0;
  /// Also run the exhaustive ground truth (exponential; small programs).
  bool withGroundTruth = false;
  program::ExploreOptions groundTruthOptions;
};

struct TrialOutcome {
  std::uint64_t seed = 0;
  bool observedDetected = false;
  bool predicted = false;
  bool deadlocked = false;
  std::uint64_t runsInLattice = 0;
};

struct CampaignResult {
  std::vector<TrialOutcome> trials;
  std::size_t observedDetections = 0;
  std::size_t predictedDetections = 0;
  std::size_t deadlocks = 0;
  GroundTruthResult groundTruth;  ///< valid when requested
  bool groundTruthComputed = false;

  [[nodiscard]] double observedRate() const {
    return trials.empty() ? 0.0
                          : static_cast<double>(observedDetections) /
                                static_cast<double>(trials.size());
  }
  [[nodiscard]] double predictedRate() const {
    return trials.empty() ? 0.0
                          : static_cast<double>(predictedDetections) /
                                static_cast<double>(trials.size());
  }

  /// One-paragraph human summary.
  [[nodiscard]] std::string summary() const;
};

/// Runs `opts.trials` random schedules of `prog`, analyzing each trace
/// with the observed-run baseline AND the predictive analyzer.
[[nodiscard]] CampaignResult runCampaign(const program::Program& prog,
                                         const std::string& spec,
                                         CampaignOptions opts = {});

// --- K properties, ONE lattice pass per trial --------------------------

/// Per-property tallies of a multi-property campaign.
struct MultiCampaignResult {
  std::vector<std::string> specs;
  std::size_t trials = 0;
  /// Indexed like `specs`.
  std::vector<std::size_t> observedDetections;
  std::vector<std::size_t> predictedDetections;
  std::size_t deadlocks = 0;
  /// Ground truth per spec (parallel to `specs`); valid when requested.
  std::vector<GroundTruthResult> groundTruth;
  bool groundTruthComputed = false;

  [[nodiscard]] std::string summary() const;
};

/// The one-pass form: every trial instruments the execution ONCE and
/// checks all K properties in a single lattice expansion (each property a
/// SpecAnalysis plugin on the shared engine bus) instead of K independent
/// passes.  Verdicts per property are identical to K single-spec
/// campaigns run over the union variable set.
[[nodiscard]] MultiCampaignResult runCampaign(
    const program::Program& prog, const std::vector<std::string>& specs,
    CampaignOptions opts = {});

}  // namespace mpx::analysis
