#include "analysis/report.hpp"

#include <sstream>

#include "observer/run_enumerator.hpp"
#include "telemetry/metrics.hpp"

namespace mpx::analysis {

std::string renderViolationReport(const observer::StateSpace& space,
                                  const std::vector<observer::Violation>& vs,
                                  const observer::LatticeStats& stats,
                                  bool finished) {
  std::ostringstream os;
  os << "analysis " << (finished ? "complete" : "INCOMPLETE") << '\n';
  os << "violations: " << vs.size() << '\n';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const observer::Violation& v = vs[i];
    os << "  violation " << (i + 1) << ": cut " << v.cut.toString()
       << ", state <" << v.state.toString(space) << ">, path";
    if (v.path.empty()) {
      os << " (initial state)";
    } else {
      for (const observer::EventRef& ref : v.path) {
        os << " T" << (ref.thread + 1) << '#' << ref.index;
      }
    }
    os << '\n';
  }
  os << "lattice: levels=" << stats.levels << " nodes=" << stats.totalNodes
     << " edges=" << stats.totalEdges << " peakWidth=" << stats.peakLevelWidth
     << " paths=" << stats.pathCount
     << (stats.pathCountSaturated ? " (saturated)" : "")
     << (stats.truncated ? " TRUNCATED" : "")
     << (stats.approximated ? " APPROXIMATED" : "") << '\n';
  // The verdict stamp: SOUND means the lattice was explored exhaustively
  // (every consistent run was analyzed), so both positive and negative
  // verdicts are trustworthy.  BOUNDED means some runs were shed — reported
  // violations still carry genuine witnesses (a subset of the exhaustive
  // set), but the ABSENCE of a violation proves nothing.
  if (!stats.bounded() && finished) {
    os << "verdict: SOUND\n";
  } else {
    const char* reason =
        stats.boundReason != observer::BoundReason::kNone
            ? observer::toString(stats.boundReason)
            : (stats.truncated        ? "level-width-cap"
               : stats.approximated   ? "beam"
                                      : "incomplete");
    os << "verdict: BOUNDED(" << reason << ", dropped_nodes="
       << (stats.droppedNodes + stats.beamPrunedNodes) << ")\n";
  }
  return os.str();
}

std::string renderAnalysisReports(
    const std::vector<observer::AnalysisReport>& reports) {
  std::ostringstream os;
  std::size_t findings = 0;
  for (const observer::AnalysisReport& r : reports) {
    os << "=== " << r.name << " ===\n" << r.text;
    findings += r.violationCount;
  }
  os << "total findings: " << findings << '\n';
  return os.str();
}

int exitCodeFor(bool usable, std::size_t violationCount) {
  if (!usable) return 2;
  return violationCount > 0 ? 1 : 0;
}

int exitCodeFor(bool usable, std::size_t violationCount, bool bounded) {
  if (!usable) return 2;
  if (violationCount > 0) return 1;
  return bounded ? 3 : 0;
}

std::string jsonEscape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

namespace {

/// Tiny structured JSON writer: tracks nesting and comma placement.
class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const std::string& k) {
    comma();
    newline();
    os_ << '"' << jsonEscape(k) << "\":";
    if (indent_ > 0) os_ << ' ';
    pendingValue_ = true;
  }

  void value(const std::string& v) {
    prefix();
    os_ << '"' << jsonEscape(v) << '"';
    post();
  }
  void value(std::int64_t v) {
    prefix();
    os_ << v;
    post();
  }
  void value(std::uint64_t v) {
    prefix();
    os_ << v;
    post();
  }
  void value(bool v) {
    prefix();
    os_ << (v ? "true" : "false");
    post();
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  void open(char c) {
    prefix();
    os_ << c;
    first_.push_back(true);
  }
  void close(char c) {
    first_.pop_back();
    newline();
    os_ << c;
    post();
  }
  void prefix() {
    if (!pendingValue_) {
      comma();
      newline();
    }
    pendingValue_ = false;
  }
  void post() {
    if (!first_.empty()) first_.back() = false;
  }
  void comma() {
    if (!first_.empty() && !first_.back()) os_ << ',';
  }
  void newline() {
    if (indent_ <= 0 || first_.empty()) return;
    os_ << '\n'
        << std::string(indent_ * first_.size(), ' ');
  }

  std::ostringstream os_;
  std::vector<bool> first_;
  int indent_;
  bool pendingValue_ = false;
};

void writeState(JsonWriter& w, const observer::GlobalState& s,
                const observer::StateSpace& space) {
  w.beginObject();
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    w.key(space.name(i));
    w.value(static_cast<std::int64_t>(s.values[i]));
  }
  w.endObject();
}

void writeViolation(JsonWriter& w, const AnalysisResult& r,
                    const observer::Violation& v, bool counterexamples) {
  w.beginObject();
  w.key("cut");
  w.value(v.cut.toString());
  w.key("state");
  writeState(w, v.state, r.space);
  if (counterexamples && !v.path.empty()) {
    observer::RunEnumerator runs(r.causality, r.space);
    const auto states = runs.statesAlong(v.path);
    w.key("counterexample");
    w.beginArray();
    for (std::size_t i = 0; i < v.path.size(); ++i) {
      const trace::Message& m = r.causality.message(v.path[i]);
      w.beginObject();
      w.key("thread");
      w.value(static_cast<std::uint64_t>(m.event.thread));
      std::string name = "?";
      if (const auto slot = r.space.slotOf(m.event.var)) {
        name = r.space.name(*slot);
      }
      w.key("var");
      w.value(name);
      w.key("value");
      w.value(static_cast<std::int64_t>(m.event.value));
      w.key("clock");
      w.value(m.clock.toString());
      w.key("stateAfter");
      writeState(w, states[i + 1], r.space);
      w.endObject();
    }
    w.endArray();
  }
  w.endObject();
}

void writeMetrics(JsonWriter& w) {
  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  w.beginObject();
  w.key("counters");
  w.beginObject();
  for (const auto& c : snap.counters) {
    w.key(c.name);
    w.value(c.value);
  }
  w.endObject();
  w.key("gauges");
  w.beginObject();
  for (const auto& g : snap.gauges) {
    w.key(g.name);
    w.value(g.value);
  }
  w.endObject();
  w.key("histograms");
  w.beginObject();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.beginObject();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

}  // namespace

std::string toJson(const AnalysisResult& r, ReportOptions opts) {
  JsonWriter w(opts.indent);
  w.beginObject();

  w.key("observedRunViolates");
  w.value(r.observedRunViolates());
  w.key("predictsViolation");
  w.value(r.predictsViolation());
  w.key("messagesEmitted");
  w.value(static_cast<std::uint64_t>(r.messagesEmitted));
  w.key("eventsInstrumented");
  w.value(static_cast<std::uint64_t>(r.eventsInstrumented));

  w.key("lattice");
  w.beginObject();
  w.key("nodes");
  w.value(static_cast<std::uint64_t>(r.latticeStats.totalNodes));
  w.key("levels");
  w.value(static_cast<std::uint64_t>(r.latticeStats.levels));
  w.key("edges");
  w.value(static_cast<std::uint64_t>(r.latticeStats.totalEdges));
  w.key("runs");
  w.value(static_cast<std::uint64_t>(r.latticeStats.pathCount));
  w.key("peakLiveNodes");
  w.value(static_cast<std::uint64_t>(r.latticeStats.peakLiveNodes));
  w.key("truncated");
  w.value(r.latticeStats.truncated);
  w.endObject();

  if (opts.includeObservedRun) {
    w.key("observedStates");
    w.beginArray();
    for (const auto& s : r.observedStates) writeState(w, s, r.space);
    w.endArray();
  }

  w.key("violations");
  w.beginArray();
  std::size_t count = 0;
  for (const auto& v : r.predictedViolations) {
    if (count++ >= opts.maxViolations) break;
    writeViolation(w, r, v, opts.includeCounterexamples);
  }
  w.endArray();

  if (opts.includeMetrics) {
    w.key("metrics");
    writeMetrics(w);
  }

  w.endObject();
  return w.str();
}

std::string toText(const AnalysisResult& r, ReportOptions opts) {
  std::ostringstream os;
  os << "observed run violates: " << (r.observedRunViolates() ? "YES" : "no")
     << '\n';
  os << "lattice: " << r.latticeStats.totalNodes << " nodes, "
     << r.latticeStats.levels << " levels, " << r.latticeStats.pathCount
     << " runs\n";
  os << "predicted violations: " << r.predictedViolations.size() << '\n';
  if (opts.includeObservedRun) {
    os << "observed states:";
    for (const auto& s : r.observedStates) os << ' ' << s.toString();
    os << '\n';
  }
  if (opts.includeCounterexamples) {
    std::size_t count = 0;
    for (const auto& v : r.predictedViolations) {
      if (count++ >= opts.maxViolations) break;
      os << '\n' << r.describe(v);
    }
  }
  return os.str();
}

std::string racesToJson(const std::vector<detect::RaceReport>& races,
                        const trace::VarTable& vars) {
  JsonWriter w(2);
  w.beginArray();
  for (const auto& race : races) {
    w.beginObject();
    w.key("var");
    w.value(vars.name(race.var));
    w.key("evidence");
    w.value(std::string(race.evidence == detect::RaceEvidence::kHappensBefore
                            ? "happens-before"
                            : "lockset"));
    w.key("firstThread");
    w.value(static_cast<std::uint64_t>(race.first.event.thread));
    w.key("secondThread");
    w.value(static_cast<std::uint64_t>(race.second.event.thread));
    w.key("description");
    w.value(race.describe(vars));
    w.endObject();
  }
  w.endArray();
  return w.str();
}

std::string deadlocksToJson(const std::vector<detect::DeadlockReport>& reports,
                            const std::vector<std::string>& lockNames) {
  JsonWriter w(2);
  w.beginArray();
  for (const auto& report : reports) {
    w.beginObject();
    w.key("cycle");
    w.beginArray();
    for (const LockId l : report.cycle) w.value(lockNames.at(l));
    w.endArray();
    w.key("description");
    w.value(report.describe(lockNames));
    w.endObject();
  }
  w.endArray();
  return w.str();
}

}  // namespace mpx::analysis
