#include "net/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace mpx::net {

std::uint32_t snapshotCrc32(const std::uint8_t* data, std::size_t len) {
  // Table-free bitwise CRC-32: snapshots are written once per epoch and
  // read once per restart, so simplicity beats a 1 KiB table.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

std::vector<std::uint8_t> encodeSnapshot(
    const std::vector<SnapshotEntry>& entries) {
  observer::ckpt::Writer w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u64(entries.size());
  for (const SnapshotEntry& e : entries) {
    w.str(e.tenant);
    w.u64(e.traceId);
    w.u64(e.blob.size());
    w.bytes(e.blob.data(), e.blob.size());
  }
  std::vector<std::uint8_t> out = w.take();
  const std::uint32_t crc = snapshotCrc32(out.data(), out.size());
  observer::ckpt::Writer trailer;
  trailer.u32(crc);
  const std::vector<std::uint8_t>& t = trailer.data();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

bool decodeSnapshot(const std::uint8_t* data, std::size_t len,
                    std::vector<SnapshotEntry>& out, const char** error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    out.clear();
    return false;
  };
  if (len < 4) return fail("snapshot shorter than its checksum");
  std::uint32_t stored = 0;
  std::memcpy(&stored, data + (len - 4), 4);
  if (snapshotCrc32(data, len - 4) != stored) {
    return fail("snapshot checksum mismatch");
  }
  observer::ckpt::Reader r(data, len - 4);
  if (r.u32() != kSnapshotMagic) return fail("snapshot magic mismatch");
  if (r.u16() != kSnapshotVersion) {
    return fail("unsupported snapshot version");
  }
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > kMaxSnapshotSessions) {
    return fail("snapshot session count malformed");
  }
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    SnapshotEntry e;
    e.tenant = r.str();
    e.traceId = r.u64();
    const std::uint64_t blobLen = r.len(1);
    if (!r.ok()) return fail("snapshot session entry malformed");
    e.blob.resize(static_cast<std::size_t>(blobLen));
    if (!e.blob.empty() && !r.raw(e.blob.data(), e.blob.size())) {
      return fail("snapshot session entry malformed");
    }
    out.push_back(std::move(e));
  }
  if (!r.atEnd()) return fail("snapshot has trailing bytes");
  return true;
}

bool writeSnapshotFile(const std::string& path,
                       const std::vector<SnapshotEntry>& entries,
                       const char** error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const std::vector<std::uint8_t> image = encodeSnapshot(entries);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail("cannot open snapshot temp file");
  const bool wrote =
      image.empty() ||
      std::fwrite(image.data(), 1, image.size(), f) == image.size();
#ifndef _WIN32
  // Durable before visible: the rename below must never publish a file
  // whose bytes are still in the page cache of a dying machine.
  const bool synced = wrote && ::fsync(::fileno(f)) == 0;
#else
  const bool synced = wrote;
#endif
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return fail("snapshot temp file write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("snapshot rename failed");
  }
  return true;
}

bool readSnapshotFile(const std::string& path, std::vector<SnapshotEntry>& out,
                      const char** error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    out.clear();
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open snapshot file");
  std::vector<std::uint8_t> image;
  std::uint8_t buf[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + n);
  }
  const bool readOk = std::ferror(f) == 0;
  std::fclose(f);
  if (!readOk) return fail("snapshot file read failed");
  return decodeSnapshot(image.data(), image.size(), out, error);
}

}  // namespace mpx::net
