#include "net/emitter.hpp"

#include <algorithm>
#include <cstring>
#include <random>

#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::net {

namespace {

/// Client-side transport telemetry.
struct EmitterMetrics {
  telemetry::Counter& bytesTx;
  telemetry::Counter& framesTx;
  telemetry::Counter& dropped;
  telemetry::Counter& reconnects;
  telemetry::Gauge& queueHwm;
  telemetry::Histogram& batchSize;

  static EmitterMetrics& get() {
    auto& reg = telemetry::registry();
    static EmitterMetrics m{
        reg.counter("mpx_net_bytes_tx_total",
                    "Bytes written to the observer socket"),
        reg.counter("mpx_net_frames_tx_total",
                    "Frames written to the observer socket"),
        reg.counter("mpx_net_messages_dropped_total",
                    "Messages discarded by backpressure or transport failure"),
        reg.counter("mpx_net_reconnects_total",
                    "Successful reconnections to the observer daemon"),
        reg.gauge("mpx_net_send_queue_depth_hwm",
                  "High-water mark of the emitter send queue"),
        reg.histogram("mpx_net_batch_messages",
                      "Messages per transmitted events frame",
                      telemetry::sizeBuckets()),
    };
    return m;
  }
};

/// splitmix64 finalizer: the rendezvous-hash mixer.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over "host:port" — the endpoint half of the rendezvous score.
std::uint64_t endpointHash(const Endpoint& e) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](char c) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  };
  for (const char c : e.host) mix(c);
  mix(':');
  mix(static_cast<char>(e.port >> 8));
  mix(static_cast<char>(e.port & 0xFF));
  return h;
}

}  // namespace

SocketEmitter::SocketEmitter(EmitterOptions opts) : opts_(std::move(opts)) {
  if (opts_.queueCapacity == 0) opts_.queueCapacity = 1;
  if (opts_.maxBatch == 0) opts_.maxBatch = 1;
  if (opts_.handshake.version >= kTraceContextProtocolVersion &&
      opts_.handshake.streamId == 0) {
    // A stream id survives reconnects, so the daemon can stitch the
    // connections of one logical client back together.  Mix the clock with
    // an address so two emitters created in the same nanosecond differ.
    opts_.handshake.streamId =
        telemetry::rawMonotonicNs() ^
        (reinterpret_cast<std::uintptr_t>(this) << 16) ^ opts_.jitterSeed;
    if (opts_.handshake.streamId == 0) opts_.handshake.streamId = 1;
  }
  // v3 peers stamp the handshake with the raw monotonic clock ONCE: the
  // resent handshake must be byte-identical across reconnects so the
  // daemon re-routes the stream to the same session.
  if (opts_.handshake.version >= kTraceContextProtocolVersion &&
      opts_.handshake.handshakeSendNs == 0) {
    opts_.handshake.handshakeSendNs = telemetry::rawMonotonicNs();
  }
  encodedHandshake_ = encodeHandshake(opts_.handshake);
  // Rendezvous-hash the fleet by trace id: every endpoint gets a score
  // mixing the trace key with the endpoint identity; sorting by score
  // gives each trace its own stable preference order, spreading traces
  // evenly and moving only 1/N of them when a node joins or leaves.
  if (opts_.endpoints.empty()) {
    ranked_.push_back(Endpoint{opts_.host, opts_.port});
  } else {
    const std::uint64_t traceKey = opts_.handshake.traceId != 0
                                       ? opts_.handshake.traceId
                                       : opts_.handshake.streamId;
    ranked_ = opts_.endpoints;
    std::stable_sort(ranked_.begin(), ranked_.end(),
                     [traceKey](const Endpoint& a, const Endpoint& b) {
                       return mix64(traceKey ^ endpointHash(a)) >
                              mix64(traceKey ^ endpointHash(b));
                     });
  }
  sender_ = std::thread([this] { senderLoop(); });
}

SocketEmitter::~SocketEmitter() { close(); }

void SocketEmitter::onMessage(const trace::Message& m) {
  std::unique_lock<std::mutex> lk(mu_);
  if (closing_ || failed_) {
    ++dropped_;
    if constexpr (telemetry::kEnabled) EmitterMetrics::get().dropped.add(1);
    return;
  }
  if (queue_.size() >= opts_.queueCapacity) {
    if (opts_.backpressure == Backpressure::kDrop) {
      ++dropped_;
      if constexpr (telemetry::kEnabled) EmitterMetrics::get().dropped.add(1);
      return;
    }
    notFull_.wait(lk, [this] {
      return queue_.size() < opts_.queueCapacity || closing_ || failed_;
    });
    if (closing_ || failed_) {
      ++dropped_;
      if constexpr (telemetry::kEnabled) EmitterMetrics::get().dropped.add(1);
      return;
    }
  }
  queue_.push_back(m);
  if constexpr (telemetry::kEnabled) {
    EmitterMetrics::get().queueHwm.recordMax(
        static_cast<std::int64_t>(queue_.size()));
  }
  notEmpty_.notify_one();
}

void SocketEmitter::close() {
  {
    std::lock_guard<std::mutex> lk(closeMu_);
    if (closed_) return;
    closed_ = true;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    closing_ = true;
  }
  notEmpty_.notify_all();
  notFull_.notify_all();
  if (sender_.joinable()) sender_.join();
  sock_.close();
}

bool SocketEmitter::ensureConnected() {
  if (sock_.valid()) return true;
  if (failed()) return false;
  std::mt19937_64 rng(opts_.jitterSeed ^ reconnects());
  for (std::size_t attempt = 0; attempt < opts_.maxReconnectAttempts;
       ++attempt) {
    {
      // A closing emitter with an empty queue must not sit out the full
      // backoff schedule against a daemon that is already gone.
      std::lock_guard<std::mutex> lk(mu_);
      if (closing_ && queue_.empty() && attempt > 0) break;
    }
    // Sticky routing with failover: the rendezvous winner first, then the
    // rest of the preference order when the chosen node is down.
    Socket s;
    for (const Endpoint& ep : ranked_) {
      s = Socket::connectTo(ep.host, ep.port);
      if (s.valid()) break;
    }
    if (s.valid()) {
      sock_ = std::move(s);
      // The handshake bytes are the SAME on every (re)connection — the
      // daemon joins the connections back into one stream/session by them.
      std::vector<std::uint8_t> frame;
      appendFrame(frame, FrameType::kHandshake, encodedHandshake_);
      if (sock_.sendAll(frame.data(), frame.size())) {
        if constexpr (telemetry::kEnabled) {
          EmitterMetrics::get().bytesTx.add(frame.size());
          EmitterMetrics::get().framesTx.add(1);
        }
        bool first;
        {
          std::lock_guard<std::mutex> lk(mu_);
          first = framesSent_ == 0 && reconnects_ == 0;
          ++framesSent_;
          if (!first) ++reconnects_;
        }
        bool replayed = true;
        if (!first) {
          if constexpr (telemetry::kEnabled) {
            EmitterMetrics::get().reconnects.add(1);
          }
          // Replay the recent-frame window: a daemon restored from an
          // epoch checkpoint is missing everything after its checkpointed
          // watermark; the overlap is deduplicated, the gap is closed.
          for (const std::vector<std::uint8_t>& past : resendWindow_) {
            if (!sock_.sendAll(past.data(), past.size())) {
              replayed = false;
              break;
            }
            std::lock_guard<std::mutex> lk(mu_);
            ++framesSent_;
          }
        }
        if (replayed) return true;
      }
      sock_.close();
    }
    // Exponential backoff with up to 50% jitter.
    auto delay = opts_.reconnectBase * (1u << std::min<std::size_t>(attempt, 10));
    delay = std::min<std::chrono::milliseconds>(delay, opts_.reconnectMax);
    const auto jitter = std::chrono::milliseconds(
        delay.count() > 0
            ? static_cast<std::int64_t>(
                  rng() % static_cast<std::uint64_t>(delay.count() + 1) / 2)
            : 0);
    std::this_thread::sleep_for(delay + jitter);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    failed_ = true;
  }
  notFull_.notify_all();
  return false;
}

bool SocketEmitter::sendFrame(FrameType type,
                              const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  appendFrame(frame, type, payload);
  // At-least-once: if the send fails, reconnect (which resends the
  // handshake and replays the recent-frame window) and retry the same
  // frame on the fresh connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!ensureConnected()) return false;
    if (sock_.sendAll(frame.data(), frame.size())) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++framesSent_;
      }
      if constexpr (telemetry::kEnabled) {
        EmitterMetrics::get().bytesTx.add(frame.size());
        EmitterMetrics::get().framesTx.add(1);
      }
      // Window the frame for post-reconnect replay.  kEndOfTrace stays
      // out: replaying it would double-count the stream's end at a
      // restored daemon.
      if (opts_.resendWindowFrames > 0 && type != FrameType::kEndOfTrace) {
        resendWindow_.push_back(std::move(frame));
        while (resendWindow_.size() > opts_.resendWindowFrames) {
          resendWindow_.pop_front();
        }
      }
      return true;
    }
    sock_.close();  // force a reconnect on the next attempt
  }
  return false;
}

void SocketEmitter::senderLoop() {
  std::vector<trace::Message> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lk(mu_);
      notEmpty_.wait(lk, [this] { return !queue_.empty() || closing_; });
      if (queue_.empty() && closing_) break;
      const std::size_t n = std::min(queue_.size(), opts_.maxBatch);
      batch.assign(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(n));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(n));
    }
    notFull_.notify_all();

    const bool v3 =
        opts_.handshake.version >= kTraceContextProtocolVersion;
    const bool v4 =
        opts_.handshake.version >= kSparseClockProtocolVersion;
    telemetry::TraceSpan span("emitter.batch", "net");
    span.arg("stream_id",
             static_cast<std::int64_t>(opts_.handshake.streamId));
    span.arg("messages", static_cast<std::int64_t>(batch.size()));
    std::vector<std::uint8_t> payload;
    if (v3) {
      // kEventsTs/kEventsSparse prefix: the raw monotonic clock at
      // frame-build time.  Stamped once per frame (not per message) so the
      // emitter hot path stays a queue push.
      const std::uint64_t sendNs = telemetry::rawMonotonicNs();
      payload.resize(kEventsTsPrefixSize);
      std::memcpy(payload.data(), &sendNs, sizeof(sendNs));
    }
    if (v4) {
      // Sparse clock tails, frame-local delta state: a resent frame is
      // byte-identical and a lost frame cannot corrupt its successors.
      trace::SparseClockCodec::FrameState st;
      for (const trace::Message& m : batch) {
        trace::SparseClockCodec::encode(m, st, payload);
      }
    } else {
      for (const trace::Message& m : batch) {
        trace::BinaryCodec::encode(m, payload);
      }
    }
    const FrameType frameType = v4   ? FrameType::kEventsSparse
                                : v3 ? FrameType::kEventsTs
                                     : FrameType::kEvents;
    if (!sendFrame(frameType, payload)) {
      std::lock_guard<std::mutex> lk(mu_);
      dropped_ += batch.size() + queue_.size();
      if constexpr (telemetry::kEnabled) {
        EmitterMetrics::get().dropped.add(batch.size() + queue_.size());
      }
      queue_.clear();
      continue;  // stay alive to drain (and drop) whatever else arrives
    }
    if constexpr (telemetry::kEnabled) {
      EmitterMetrics::get().batchSize.record(batch.size());
    }
  }
  // Graceful end-of-stream: only when the transport is still healthy.
  bool sendEnd;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sendEnd = !failed_;
  }
  if (sendEnd && sendFrame(FrameType::kEndOfTrace, {})) {
    sock_.shutdownWrite();
  }
}

std::uint64_t SocketEmitter::droppedMessages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::uint64_t SocketEmitter::reconnects() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reconnects_;
}

std::uint64_t SocketEmitter::framesSent() const {
  std::lock_guard<std::mutex> lk(mu_);
  return framesSent_;
}

bool SocketEmitter::failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failed_;
}

}  // namespace mpx::net
