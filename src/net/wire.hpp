// The framed wire protocol between an instrumented program and the
// out-of-process observer daemon (paper Fig. 4: the instrumented program
// ships messages <e, i, V_i> over a socket to the observer).
//
// Every frame is:
//
//   u32 magic "MPXF" | u8 type | u32 payloadLen | payload[payloadLen]
//
// (little-endian).  The magic on every frame makes stream corruption
// detectable immediately and lets the daemon tell an MPX client from a
// stray HTTP request on the same port.  Four frame types:
//
//   kHandshake   first frame of every connection: protocol version, the
//                instrumented program's thread count, the property specs
//                (v2 carries a LIST — the daemon checks all of them in one
//                lattice pass; v1 carried exactly one and still decodes),
//                the tracked variable names, and the full VarTable — so
//                the daemon can build its StateSpace/monitors and render
//                paper-notation reports without sharing memory.  v3 adds a
//                stream id (joins reconnecting connections and correlates
//                emitter/daemon trace spans) and the emitter's raw
//                monotonic clock at send time.
//   kEvents      a batch of BinaryCodec-encoded messages (>= 1).  Theorem 3
//                makes any batching/reordering across frames and
//                connections safe.
//   kEndOfTrace  the client's streams are complete (empty payload).
//   kEventsTs    v3: a kEvents payload prefixed with the emitter's raw
//                monotonic send timestamp (u64 ns), so the daemon can
//                compute emit-to-analyze lag per frame.
//   kEventsSparse v4: like kEventsTs (timestamp prefix) but the messages
//                use the sparse/delta clock tail (SparseClockCodec): wide
//                mostly-unchanged clocks ship as (index, value) pairs
//                instead of a dense u64 array.  Coding state is
//                frame-local, so every frame still decodes standalone and
//                the at-least-once redelivery story is unchanged.
//
// Delivery is at-least-once: an emitter that reconnects mid-batch resends
// the whole batch, so the daemon deduplicates by (thread, ownClock) —
// sound because Algorithm A emits exactly one message per (thread, k).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/codec.hpp"
#include "trace/var_table.hpp"

namespace mpx::net {

inline constexpr std::uint32_t kFrameMagic = 0x4658504Du;  // "MPXF" LE
/// v6: event frames may carry the atomic-region marker kinds (kRegionBegin
/// / kRegionEnd, ISSUE 10).  The handshake layout is identical to v5 — the
/// version number is a capability declaration: a daemon rejects region
/// events arriving on a stream that handshook < 6, because a v1–v5 peer
/// could only produce them through corruption.  Receivers still decode
/// every earlier layout — v1 single-spec and v2 list handshakes, v2
/// kEvents, v3 kEventsTs and v4 kEventsSparse frames; v1–v4 handshakes
/// decode with tenant == "" and traceId == 0 (the default session).
/// Versions above kProtocolVersion are rejected.
inline constexpr std::uint16_t kProtocolVersion = 6;
/// First version whose event frames may carry atomic-region markers.
inline constexpr std::uint16_t kRegionProtocolVersion = 6;
/// First version whose handshake carries the tenant name and trace id.
inline constexpr std::uint16_t kMultiTenantProtocolVersion = 5;
/// First version whose event frames may be kEventsSparse (sparse/delta
/// clock tails).  The handshake layout is identical to v3.
inline constexpr std::uint16_t kSparseClockProtocolVersion = 4;
/// First version whose handshake carries stream id + send clock and whose
/// event frames may be kEventsTs.
inline constexpr std::uint16_t kTraceContextProtocolVersion = 3;
/// First version whose handshake carries a spec LIST instead of one spec.
inline constexpr std::uint16_t kListSpecProtocolVersion = 2;
inline constexpr std::uint16_t kLegacyProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 4;
/// Default payload-size cap a receiver enforces (hostile length words must
/// not drive allocation).
inline constexpr std::size_t kDefaultMaxFramePayload = 8u << 20;

enum class FrameType : std::uint8_t {
  kHandshake = 1,
  kEvents = 2,
  kEndOfTrace = 3,
  kEventsTs = 4,      ///< v3: u64 send-timestamp (raw monotonic ns) + events
  kEventsSparse = 5,  ///< v4: u64 send-timestamp + sparse-clock messages
};

/// Size of the timestamp prefix in a kEventsTs payload.
inline constexpr std::size_t kEventsTsPrefixSize = 8;

struct Frame {
  FrameType type = FrameType::kEvents;
  std::vector<std::uint8_t> payload;
};

/// Everything the daemon needs to analyze and render a stream: carried in
/// the first frame of every connection.
struct Handshake {
  std::uint16_t version = kProtocolVersion;
  std::uint32_t threads = 0;          ///< instrumented program thread count
  /// ptLTL property source texts, checked in ONE lattice pass.  Empty =
  /// structure-only analysis.  A decoded v1 handshake has 0 or 1 entries.
  std::vector<std::string> specs;
  std::vector<std::string> tracked;   ///< relevant variable names, in order
  trace::VarTable vars;               ///< full table (names, initials, roles)
  /// v3: stable id for the logical stream.  Connections that reconnect keep
  /// the same id, so the daemon can aggregate per-stream stats and trace
  /// spans across TCP connections.  0 = unset (v1/v2 peers).
  std::uint64_t streamId = 0;
  /// v3: the emitter's raw monotonic clock (CLOCK_MONOTONIC ns) at
  /// handshake-encode time.  0 = unset (v1/v2 peers).
  std::uint64_t handshakeSendNs = 0;
  /// v5: the tenant this stream belongs to.  The daemon isolates analyzer
  /// sessions, budgets and reports per tenant.  Empty = default tenant
  /// (all v1–v4 peers).
  std::string tenant;
  /// v5: id of the trace this stream is part of.  Streams of one logical
  /// execution share a trace id and feed ONE analyzer session; distinct
  /// traces of the same tenant are analyzed independently.  0 = unset
  /// (v1–v4 peers; the daemon treats it as "the default trace").
  std::uint64_t traceId = 0;

  /// The v1 view: the first spec, or empty.
  [[nodiscard]] const std::string& primarySpec() const {
    static const std::string kEmpty;
    return specs.empty() ? kEmpty : specs.front();
  }
};

/// Builds the handshake for a program with the given variable table.
[[nodiscard]] Handshake makeHandshake(std::uint32_t threads,
                                      std::vector<std::string> specs,
                                      std::vector<std::string> tracked,
                                      const trace::VarTable& vars);
/// Single-property convenience (an empty spec means "no property").
[[nodiscard]] Handshake makeHandshake(std::uint32_t threads, std::string spec,
                                      std::vector<std::string> tracked,
                                      const trace::VarTable& vars);

/// Appends one frame (header + payload) to `out`.
void appendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::uint8_t* payload, std::size_t len);
inline void appendFrame(std::vector<std::uint8_t>& out, FrameType type,
                        const std::vector<std::uint8_t>& payload) {
  appendFrame(out, type, payload.data(), payload.size());
}

/// Handshake payload (de)serialization.  encodeHandshake honors
/// `h.version`: 1 emits the legacy single-spec layout (first spec or
/// empty), 2 emits the spec list, 3 additionally appends the stream id and
/// send clock, 5 additionally appends the tenant name and trace id.
/// decodeHandshake accepts ALL layouts (a v1 single spec decodes to a
/// one-element `specs`; v1/v2 handshakes decode with
/// streamId == handshakeSendNs == 0; v1–v4 handshakes decode with
/// tenant == "" and traceId == 0), rejects versions above
/// kProtocolVersion, and returns false on malformed payloads with a
/// static reason in `error` — it never throws (daemon-side input is
/// untrusted).
[[nodiscard]] std::vector<std::uint8_t> encodeHandshake(const Handshake& h);
[[nodiscard]] bool decodeHandshake(const std::vector<std::uint8_t>& payload,
                                   Handshake& out, const char** error);

/// Parses a kEvents payload into messages via BinaryCodec::tryDecode.
/// Returns false (static reason in `error`) on any corrupt or trailing
/// partial message — frames are atomic, so a partial message inside a
/// complete frame can only be corruption.
[[nodiscard]] bool decodeEventsPayload(const std::vector<std::uint8_t>& payload,
                                       std::vector<trace::Message>& out,
                                       const char** error);

/// Parses a kEventsTs payload: a u64 raw-monotonic send timestamp (LE ns)
/// followed by BinaryCodec-encoded messages.  Same error contract as
/// decodeEventsPayload; a payload shorter than the timestamp prefix is
/// corrupt.
[[nodiscard]] bool decodeEventsTsPayload(
    const std::vector<std::uint8_t>& payload, std::uint64_t& sendNs,
    std::vector<trace::Message>& out, const char** error);

/// Parses a kEventsSparse payload: a u64 raw-monotonic send timestamp
/// followed by SparseClockCodec-encoded messages.  Decoding state is
/// frame-local (a fresh SparseClockCodec::FrameState per call), so frames
/// decode standalone in any order.  Same error contract as
/// decodeEventsPayload.
[[nodiscard]] bool decodeEventsSparsePayload(
    const std::vector<std::uint8_t>& payload, std::uint64_t& sendNs,
    std::vector<trace::Message>& out, const char** error);

/// Incremental frame parser over an untrusted byte stream.  Feed bytes as
/// they arrive; pull whole frames out.  Once corrupt, stays corrupt (the
/// connection must be dropped — there is no resynchronization).
class FrameReader {
 public:
  explicit FrameReader(std::size_t maxPayload = kDefaultMaxFramePayload)
      : maxPayload_(maxPayload) {}

  enum class Status : std::uint8_t {
    kFrame,     ///< `out` holds one whole frame
    kNeedMore,  ///< buffered bytes are a prefix of a valid frame
    kCorrupt,   ///< stream is not (or no longer) a valid frame stream
  };

  void feed(const std::uint8_t* data, std::size_t len);

  /// Extracts the next whole frame if available.
  Status next(Frame& out);

  /// Static reason for the last kCorrupt status.
  [[nodiscard]] const char* error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  std::size_t maxPayload_;
  bool corrupt_ = false;
  const char* error_ = nullptr;
};

}  // namespace mpx::net
