// Snapshot files: the daemon's epoch checkpoints on disk.
//
// A snapshot holds every live AnalyzerSession of one daemon at one epoch,
// each as a self-contained session blob (analysis/session.hpp), so a
// restarted daemon resumes mid-trace where the checkpoint left it.  The
// emitter side's at-least-once redelivery replays the gap between the
// checkpointed watermark and the kill point; the session dedup bitmaps
// drop everything at or below the watermark, so the resumed analysis is
// byte-identical to an uninterrupted run.
//
// File layout (little-endian):
//
//   u32 magic "MPXS" | u16 version | u64 sessionCount
//   sessionCount × ( str tenant | u64 traceId | u64 blobLen | blob )
//   u32 crc32 (over every preceding byte)
//
// The trailing CRC makes torn or bit-flipped files detectable before any
// blob is parsed; writes go to "<path>.tmp" and are renamed into place, so
// a crash mid-write never clobbers the previous good snapshot.  Readers
// treat the file as hostile input (it also feeds a fuzz target): every
// length word is bounds-checked and failures come back as static strings,
// never exceptions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "observer/checkpoint.hpp"

namespace mpx::net {

inline constexpr std::uint32_t kSnapshotMagic = 0x5358504Du;  // "MPXS" LE
inline constexpr std::uint16_t kSnapshotVersion = 1;
/// A snapshot never legitimately holds more sessions than a daemon holds
/// connections; the cap keeps a hostile count from driving allocation.
inline constexpr std::uint64_t kMaxSnapshotSessions = 1u << 16;

/// One checkpointed session: its routing key and its opaque blob
/// (AnalyzerSession::checkpoint output — parsed by the session layer, not
/// here).
struct SnapshotEntry {
  std::string tenant;
  std::uint64_t traceId = 0;
  std::vector<std::uint8_t> blob;
};

/// CRC-32 (IEEE 802.3, reflected) over `data` — the checksum the snapshot
/// trailer carries.  Exposed so tests and the corpus generator can frame
/// valid files.
[[nodiscard]] std::uint32_t snapshotCrc32(const std::uint8_t* data,
                                          std::size_t len);

/// Serializes `entries` into a complete snapshot file image (header +
/// entries + CRC trailer).
[[nodiscard]] std::vector<std::uint8_t> encodeSnapshot(
    const std::vector<SnapshotEntry>& entries);

/// Parses a snapshot file image.  Returns false with a static reason in
/// `*error` on any malformed input (bad magic/version, truncation,
/// hostile length words, CRC mismatch); `out` is left empty then.  Never
/// throws.
[[nodiscard]] bool decodeSnapshot(const std::uint8_t* data, std::size_t len,
                                  std::vector<SnapshotEntry>& out,
                                  const char** error);

/// Writes `entries` to `path` atomically: encode, write "<path>.tmp",
/// fsync, rename.  Returns false with a static reason on any I/O failure
/// (the previous snapshot at `path`, if any, is untouched then).
[[nodiscard]] bool writeSnapshotFile(const std::string& path,
                                     const std::vector<SnapshotEntry>& entries,
                                     const char** error);

/// Reads and validates the snapshot at `path`.  Returns false with a
/// static reason when the file is missing, unreadable, or malformed.
[[nodiscard]] bool readSnapshotFile(const std::string& path,
                                    std::vector<SnapshotEntry>& out,
                                    const char** error);

}  // namespace mpx::net
