#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace mpx::net {

namespace {

/// One-time process-wide SIGPIPE suppression: a peer closing mid-send must
/// surface as an EPIPE error code, not kill the process.  (MSG_NOSIGNAL
/// covers send(); this covers any future write paths too.)
void ignoreSigpipe() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connectTo(const std::string& host, std::uint16_t port) {
  ignoreSigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Socket();
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return Socket();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

bool Socket::sendAll(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::ptrdiff_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::ptrdiff_t Socket::recvSome(void* data, std::size_t len) noexcept {
  std::ptrdiff_t n;
  do {
    n = ::recv(fd_, data, len, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

void Socket::shutdownWrite() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdownBoth() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

bool Listener::open(std::uint16_t port) {
  ignoreSigpipe();
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, 16) < 0 || ::pipe(wakePipe_) < 0) {
    close();
    return false;
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return true;
}

Socket Listener::accept() {
  while (fd_ >= 0) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wakePipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0) return Socket();  // stopped
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Socket(cfd);
  }
  return Socket();
}

void Listener::stop() noexcept {
  if (wakePipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const auto n = ::write(wakePipe_[1], &b, 1);
  }
}

void Listener::close() noexcept {
  stop();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  for (int& p : wakePipe_) {
    if (p >= 0) {
      ::close(p);
      p = -1;
    }
  }
  port_ = 0;
}

}  // namespace mpx::net
