// SocketEmitter: the client half of the Fig. 4 deployment.  A MessageSink
// that plugs into Runtime (or any instrumentor) exactly where a Channel
// does, but ships the messages over TCP to mpx_observerd instead of
// delivering in-process.
//
// Design goals, in paper order (§1: "the monitoring overhead on the
// program should be minimal"):
//   * onMessage() only copies the message into a bounded queue — no
//     syscalls, no encoding on the instrumented program's threads.
//   * A dedicated sender thread drains the queue in batches, encodes them
//     with BinaryCodec and frames them (one kEvents frame per batch).
//   * When the queue is full the configured backpressure policy applies:
//     kBlock stalls the producer (lossless), kDrop counts and discards
//     (bounded overhead, lossy — the daemon's report shows the gap).
//   * Connection loss triggers reconnect with exponential backoff plus
//     jitter; after reconnecting, the handshake — the SAME bytes every
//     time, stream id and all, so the daemon re-routes the stream to its
//     session — is resent, followed by the bounded window of recently
//     sent frames and the in-flight batch (at-least-once delivery; the
//     daemon deduplicates by (thread, ownClock)).  The window is what
//     lets a daemon restored from an epoch checkpoint catch up on the
//     gap between its checkpointed watermark and the kill point.
//   * With several observer endpoints configured, the emitter picks one
//     by rendezvous-hashing its trace id over the fleet — sticky, so
//     every stream of one trace lands on the same observer — and fails
//     over down the preference order when the chosen node is gone.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "trace/channel.hpp"

namespace mpx::net {

/// What onMessage does when the send queue is full.
enum class Backpressure : std::uint8_t {
  kBlock,  ///< stall the producing thread until the sender drains a slot
  kDrop,   ///< discard the message, count it in droppedMessages()
};

/// One observer node of a fleet.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct EmitterOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Observer fleet: when non-empty, host/port above are ignored and the
  /// emitter rendezvous-hashes its handshake trace id (stream id when the
  /// trace id is 0) over these endpoints.  The ordering is a per-trace
  /// preference list: the top choice is sticky, the rest are failover.
  std::vector<Endpoint> endpoints;
  /// Sent as the first frame of every (re)connection.  Encoded ONCE — the
  /// resent bytes are identical across reconnects (same stream id, same
  /// send timestamp), so the daemon can match the stream back up to its
  /// session and checkpointed state.
  Handshake handshake;
  /// Sent frames kept for replay after a reconnect (0 = none).  A daemon
  /// restored from an epoch checkpoint misses the frames between its
  /// checkpointed watermark and its death; replaying this window closes
  /// the gap (dedup drops the overlap).  kEndOfTrace is never windowed.
  std::size_t resendWindowFrames = 64;
  std::size_t queueCapacity = 8192;
  /// Max messages per kEvents frame.
  std::size_t maxBatch = 128;
  Backpressure backpressure = Backpressure::kBlock;
  /// Reconnect backoff: base * 2^attempt, capped at max, plus up to 50%
  /// seeded jitter (decorrelates a fleet of emitters hammering one daemon).
  std::chrono::milliseconds reconnectBase{5};
  std::chrono::milliseconds reconnectMax{500};
  /// Consecutive failed connect attempts before the emitter gives up and
  /// switches to dropping everything (so close() can always finish).
  std::size_t maxReconnectAttempts = 20;
  std::uint64_t jitterSeed = 0;
};

class SocketEmitter final : public trace::MessageSink {
 public:
  /// Starts the sender thread immediately; the connection itself is
  /// established (and re-established) by that thread.
  explicit SocketEmitter(EmitterOptions opts);
  ~SocketEmitter() override;

  SocketEmitter(const SocketEmitter&) = delete;
  SocketEmitter& operator=(const SocketEmitter&) = delete;

  /// Enqueue one observer-bound message.  Applies the backpressure policy;
  /// after close() or transport failure the message is dropped (counted).
  void onMessage(const trace::Message& m) override;

  /// Flushes the queue, sends the kEndOfTrace frame, and joins the sender
  /// thread.  Idempotent — double close is a no-op.
  void close();

  // --- introspection (tests, reports) --------------------------------
  /// The stream id carried in every handshake (0 for v1/v2 emitters;
  /// auto-generated for v3 emitters unless the caller set one).
  [[nodiscard]] std::uint64_t streamId() const noexcept {
    return opts_.handshake.streamId;
  }
  [[nodiscard]] std::uint64_t droppedMessages() const;
  [[nodiscard]] std::uint64_t reconnects() const;
  [[nodiscard]] std::uint64_t framesSent() const;
  /// True once the emitter has exhausted its reconnect budget.
  [[nodiscard]] bool failed() const;
  /// The fleet endpoint this emitter's trace rendezvous-hashed to (its
  /// sticky first choice; equals host/port when no fleet is configured).
  [[nodiscard]] const Endpoint& primaryEndpoint() const noexcept {
    return ranked_.front();
  }

 private:
  void senderLoop();
  /// Ensures a live connection with the handshake sent and the resend
  /// window replayed; applies backoff.  Returns false once the reconnect
  /// budget is exhausted.
  bool ensureConnected();
  bool sendFrame(FrameType type, const std::vector<std::uint8_t>& payload);

  EmitterOptions opts_;
  /// Fleet endpoints in rendezvous order for this trace (front = sticky
  /// choice).  Singleton {host, port} when no fleet is configured.
  std::vector<Endpoint> ranked_;
  /// The handshake bytes, encoded once and resent verbatim (sender-thread
  /// only after construction).
  std::vector<std::uint8_t> encodedHandshake_;
  /// Recently sent whole frames (header included), replayed after a
  /// reconnect.  Sender-thread only.
  std::deque<std::vector<std::uint8_t>> resendWindow_;

  mutable std::mutex mu_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<trace::Message> queue_;
  bool closing_ = false;
  bool failed_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t framesSent_ = 0;

  Socket sock_;          ///< sender-thread only
  std::thread sender_;
  bool closed_ = false;  ///< close() already ran (guarded by closeMu_)
  std::mutex closeMu_;
};

}  // namespace mpx::net
