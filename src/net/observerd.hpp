// ObserverDaemon: the observer half of the Fig. 4 deployment, as a library
// (the mpx_observerd binary is a thin main() around it, and the loopback
// e2e tests drive it in-process).
//
// The daemon accepts TCP connections on localhost.  Each connection is
// either
//   * an MPX frame stream — handshake, then any number of kEvents frames,
//     then kEndOfTrace.  The handshake's (tenant, trace id) pair — wire v5;
//     v1–v4 peers land on the default ("", 0) — routes the stream to an
//     AnalyzerSession: one OnlineAnalyzer with its own arenas, budget and
//     plugins per traced execution, so one daemon serves many tenants with
//     no cross-tenant interference.  Within a session, Theorem 3 makes any
//     interleaving of frames across connections safe, so a client may
//     spread its messages over several channels/connections to cut
//     emission latency, exactly as the paper suggests.
//   * a plain-text status probe ("GET ..."): the daemon replies with an
//     HTTP response carrying the violation report and the telemetry
//     snapshot, then closes.  Anything that is neither is logged, counted
//     and disconnected — a hostile or corrupt client never takes the
//     daemon down.
//
// Epoch checkpointing: with a checkpoint path configured the daemon
// serializes EVERY live session into one snapshot file (net/snapshot.hpp)
// whenever a session's consumption watermark has advanced by the
// configured interval since its last checkpoint — and on demand via
// checkpointNow(), which the binary wires to SIGTERM.  On start() the
// daemon restores all sessions from an existing snapshot and resumes
// mid-trace: reconnecting emitters resend their handshake and their
// recent-frame window, the per-session dedup drops everything at or below
// the checkpointed watermark, and the resumed analysis is byte-identical
// to an uninterrupted run.
//
// Lifecycle rules the tests pin down:
//   * A session is finalized (endOfTrace) once `expectedStreams`
//     kEndOfTrace frames of that session have arrived.
//   * A connection that dies without kEndOfTrace (client SIGKILL, network
//     reset) counts as aborted; the analysis stays consistent but may
//     never finish — the report says so instead of lying.
//   * Zero-message streams (handshake + kEndOfTrace) are legal.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/session.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "observer/analysis.hpp"
#include "observer/online.hpp"

namespace mpx::net {

/// The daemon's violation report in paper notation.  Exposed so the
/// loopback e2e tests can render an in-process OnlineAnalyzer's result
/// through the exact same code and assert byte equality.
[[nodiscard]] std::string renderViolationReport(
    const observer::StateSpace& space,
    const std::vector<observer::Violation>& violations,
    const observer::LatticeStats& stats, bool finished);

/// Aggregated lag observations in nanoseconds (kept as plain counters so
/// /streams works identically in telemetry-OFF builds).
struct LagStats {
  std::uint64_t count = 0;
  std::uint64_t sumNs = 0;
  std::uint64_t maxNs = 0;
  std::uint64_t lastNs = 0;

  void observe(std::uint64_t ns) noexcept {
    ++count;
    sumNs += ns;
    if (ns > maxNs) maxNs = ns;
    lastNs = ns;
  }
  [[nodiscard]] std::uint64_t meanNs() const noexcept {
    return count == 0 ? 0 : sumNs / count;
  }
};

/// Point-in-time view of one logical stream, as served by /streams.  A
/// stream is every connection sharing one handshake stream id (v3) within
/// one session; v1/v2 peers, which carry no id, aggregate under stream
/// id 0 of the default session.
struct StreamSnapshot {
  std::uint64_t streamId = 0;
  /// Session routing key (v5 handshake; ""/0 for earlier peers).
  std::string tenant;
  std::uint64_t traceId = 0;
  std::uint16_t version = 0;
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;
  std::uint64_t messages = 0;
  std::uint64_t duplicates = 0;
  /// Timestamped frames received but not yet fully folded into the lattice.
  std::uint64_t framesInFlight = 0;
  bool ended = false;
  /// Emit-to-receive lag (socket + queueing), from kEventsTs timestamps.
  LagStats receiveLag;
  /// Emit-to-analyze lag: send timestamp to the moment every message of
  /// the frame is at or below the analyzer's consumption watermark.
  LagStats analyzeLag;
  /// rawMonotonicNs() when the stream's last events frame arrived.
  std::uint64_t lastEventNs = 0;
};

/// Point-in-time view of one analyzer session, as served by /streams and
/// rendered by mpx_top's tenant grouping.
struct SessionSnapshot {
  std::string tenant;
  std::uint64_t traceId = 0;
  bool finished = false;
  std::uint64_t epoch = 0;          ///< checkpoints taken of this session
  std::uint64_t restores = 0;       ///< times rebuilt from a snapshot
  std::uint64_t watermarkLevel = 0;
  std::uint64_t pendingMessages = 0;
  std::uint64_t violations = 0;
  std::uint64_t streams = 0;
  std::uint64_t streamsEnded = 0;
  std::uint64_t accountedBytes = 0;  ///< analyzer working set (budget)
  std::string streamError;
};

struct DaemonOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// kEndOfTrace frames to collect before finalizing a session.  A client
  /// using N channels (connections) sends one per connection.
  std::size_t expectedStreams = 1;
  /// Parallel level expansion inside each OnlineAnalyzer (mpx_cli --jobs).
  std::size_t jobs = 1;
  std::size_t maxFramePayload = kDefaultMaxFramePayload;
  observer::LatticeOptions lattice;
  /// Properties checked IN ADDITION to the ones a handshake carries
  /// (mpx_observerd --property).  All of them become SpecAnalysis plugins
  /// on one shared bus — a single lattice pass checks every property.
  std::vector<std::string> extraSpecs;
  /// Daemon-side analysis plugins added to EVERY session
  /// (mpx_observerd --analysis): "atomicity" and/or "mhp".  Like
  /// extraSpecs they ride the session's bus; unlike specs they are
  /// message-fed and need no lattice state.
  std::vector<std::string> analyses;
  /// Admission control: maximum live client connections (0 = unlimited).
  /// A connection beyond the cap is SHED — told so and disconnected —
  /// instead of letting unbounded per-connection state kill the daemon.
  std::size_t maxConnections = 0;
  /// Per-tenant admission control atop maxConnections: maximum live
  /// handshaken connections per tenant (0 = unlimited).  A tenant over its
  /// cap is rejected at handshake time; other tenants are unaffected.
  std::size_t maxConnsPerTenant = 0;
  /// Epoch checkpointing: when non-empty, snapshots of all live sessions
  /// are written here (atomically, see net/snapshot.hpp) and restored from
  /// here on start().
  std::string checkpointPath;
  /// Watermark levels a session must advance before the next automatic
  /// checkpoint (0 = only checkpointNow(), e.g. on SIGTERM).
  std::uint64_t checkpointIntervalLevels = 0;
  /// Log connection errors to stderr (tests silence this).
  bool logErrors = true;
  /// When set, the flight recorder ring is dumped to this path on the
  /// first violation (the binary additionally dumps at exit/SIGTERM and
  /// installs the crash handlers).
  std::string flightDumpPath;
};

class ObserverDaemon {
 public:
  explicit ObserverDaemon(DaemonOptions opts);
  ~ObserverDaemon();

  ObserverDaemon(const ObserverDaemon&) = delete;
  ObserverDaemon& operator=(const ObserverDaemon&) = delete;

  /// Binds, listens, restores sessions from the checkpoint file (when
  /// configured and present), and starts the accept thread.  Returns false
  /// if the port cannot be bound.
  bool start();

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Blocks until every session finished (and at least one session exists)
  /// or the timeout expires.  Returns finished().
  bool waitFinished(std::chrono::milliseconds timeout);

  /// Stops accepting, closes every live connection, joins all threads.
  /// Idempotent.  The analysis state remains queryable afterwards.
  void stop();

  // --- analysis results (thread-safe snapshots) ----------------------
  // The session-less accessors read the DEFAULT session — the ("", 0) key
  // every pre-v5 peer lands on — or, when only named sessions exist, the
  // first one.  The pre-multi-tenant API is thus unchanged for the
  // single-session deployments the e2e tests and mpx_cli drive.
  [[nodiscard]] bool finished() const;
  [[nodiscard]] bool handshaken() const;
  [[nodiscard]] std::vector<observer::Violation> violations() const;
  [[nodiscard]] observer::LatticeStats stats() const;
  /// The property specs the default session checks (handshake specs plus
  /// opts.extraSpecs, first-seen order).  Empty before the handshake or in
  /// structure-only mode.
  [[nodiscard]] std::vector<std::string> specs() const;
  /// Per-plugin reports (one per spec), rendered through the shared
  /// analysis::renderAnalysisReports path.  Empty in structure-only mode.
  [[nodiscard]] std::vector<observer::AnalysisReport> analysisReports() const;

  // --- lifecycle counters --------------------------------------------
  [[nodiscard]] std::uint64_t connectionsAccepted() const;
  [[nodiscard]] std::uint64_t connectionsAborted() const;
  [[nodiscard]] std::uint64_t connectionsRejected() const;
  /// Connections turned away by admission control (connection cap, tenant
  /// cap, or an analyzer's working set already over its memory budget).
  [[nodiscard]] std::uint64_t connectionsShed() const;
  [[nodiscard]] std::uint64_t messagesIngested() const;
  [[nodiscard]] std::uint64_t duplicatesIgnored() const;
  /// Non-empty once the default session hit an unrecoverable analysis
  /// error (e.g. endOfTrace with gaps after an aborted client).
  [[nodiscard]] std::string streamError() const;

  // --- multi-tenant sessions -----------------------------------------
  [[nodiscard]] std::size_t sessionCount() const;
  /// Per-session state, one entry per live (tenant, trace id) key.
  [[nodiscard]] std::vector<SessionSnapshot> sessionSnapshots() const;
  /// Snapshots all sessions to opts.checkpointPath (atomic write).
  /// Returns false when no path is configured, there are no sessions, or
  /// the write failed.  Thread-safe; the binary calls it on SIGTERM.
  bool checkpointNow();
  /// Snapshot files successfully written (automatic + explicit).
  [[nodiscard]] std::uint64_t checkpointsWritten() const;
  /// Sessions rebuilt from the checkpoint file by start().
  [[nodiscard]] std::uint64_t sessionsRestored() const;

  // --- pipeline observability ----------------------------------------
  /// Last fully-analyzed lattice level of the default session
  /// (levelsCompleted - 1); 0 before the handshake.  The /streams
  /// progress watermark.
  [[nodiscard]] std::uint64_t watermarkLevel() const;
  /// Per-stream lag/dedup/watermark stats across all sessions.
  [[nodiscard]] std::vector<StreamSnapshot> streamSnapshots() const;
  /// The /streams endpoint body: global watermark + per-stream JSON plus
  /// the per-session array.
  [[nodiscard]] std::string renderStreamsJson() const;

  /// Human-readable violation report of the default session in paper
  /// notation — byte-identical to renderReport() over an in-process
  /// OnlineAnalyzer fed the same messages (the loopback e2e equality
  /// check).
  [[nodiscard]] std::string renderReport() const;

  /// The HTTP status body: lifecycle summary + report + telemetry text.
  [[nodiscard]] std::string renderStatus() const;

 private:
  struct Conn;

  /// Session routing key: the v5 handshake's (tenant, trace id); all
  /// pre-v5 peers share the default ("", 0).
  struct SessionKey {
    std::string tenant;
    std::uint64_t traceId = 0;
    bool operator<(const SessionKey& o) const noexcept {
      if (tenant != o.tenant) return tenant < o.tenant;
      return traceId < o.traceId;
    }
  };

  /// A timestamped frame whose messages are not yet all folded into the
  /// lattice: per-thread max own-clock indices + the emitter's send clock.
  struct PendingFrame {
    std::vector<LocalSeq> maxK;
    std::uint64_t sendNs = 0;
  };

  /// Accumulating per-stream state behind a StreamSnapshot.
  struct StreamState {
    StreamSnapshot snap;
    std::deque<PendingFrame> inFlight;
  };

  /// One analyzer session plus its transport-side bookkeeping.
  struct SessionState {
    std::unique_ptr<analysis::AnalyzerSession> session;
    /// Per-stream observability, keyed by handshake stream id.
    std::map<std::uint64_t, StreamState> streams;
    /// Violations already dumped/announced (flight-recorder on-violation
    /// trigger fires once per new violation batch).
    std::size_t violationsSeen = 0;
  };

  void acceptLoop();
  /// Joins and releases finished connections (accept-thread only, with
  /// connsMu_ held).
  void reapFinishedLocked();
  void serveConnection(std::shared_ptr<Conn> conn);
  /// Handles one whole frame; returns false to drop the connection (with
  /// `*error` describing why, or nullptr for a clean end).
  bool handleFrame(Conn& conn, const Frame& frame, const char** error);
  bool handleHandshake(Conn& conn, const Frame& frame, const char** error);
  bool handleEvents(Conn& conn, const Frame& frame, const char** error);
  void serveHttp(Socket& sock, const std::string& requestLine);
  void noteStreamEnd(Conn& conn);
  /// The default session for the legacy accessors: ("", 0) if present,
  /// else the first session, else nullptr.  Call with mu_ held.
  [[nodiscard]] const SessionState* defaultSessionLocked() const;
  [[nodiscard]] SessionState* sessionForLocked(const Conn& conn);
  [[nodiscard]] bool allFinishedLocked() const;
  /// Retires in-flight frames a session's analyzer has fully consumed,
  /// recording their emit-to-analyze lag, and refreshes the watermark and
  /// budget gauges.  Call with mu_ held after anything that can advance a
  /// lattice.
  void settleAnalyzedLocked();
  void noteViolationsLocked(SessionState& ss);
  /// Writes the snapshot file when any session crossed its checkpoint
  /// interval (call with mu_ held).
  void maybeCheckpointLocked();
  /// Serializes every session and writes the snapshot file (mu_ held).
  bool checkpointLocked();
  void logError(const char* what) const;

  DaemonOptions opts_;
  Listener listener_;
  std::thread acceptThread_;

  mutable std::mutex mu_;  ///< guards everything below
  std::condition_variable finishedCv_;
  /// All live analyses, keyed by (tenant, trace id).  Created on first
  /// handshake of the key, or restored from the checkpoint by start().
  std::map<SessionKey, SessionState> sessions_;
  /// Live handshaken connections per tenant (admission control).
  std::map<std::string, std::size_t> tenantLive_;
  std::uint64_t accepted_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t ingested_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t checkpointsWritten_ = 0;
  std::uint64_t sessionsRestored_ = 0;

  std::mutex connsMu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  bool stopping_ = false;  ///< guarded by connsMu_
};

}  // namespace mpx::net
