// ObserverDaemon: the observer half of the Fig. 4 deployment, as a library
// (the mpx_observerd binary is a thin main() around it, and the loopback
// e2e tests drive it in-process).
//
// The daemon accepts TCP connections on localhost.  Each connection is
// either
//   * an MPX frame stream — handshake, then any number of kEvents frames,
//     then kEndOfTrace.  All streams feed ONE OnlineAnalyzer; Theorem 3
//     makes any interleaving of frames across connections safe, so a
//     client may spread its messages over several channels/connections to
//     cut emission latency, exactly as the paper suggests.
//   * a plain-text status probe ("GET ..."): the daemon replies with an
//     HTTP response carrying the violation report and the telemetry
//     snapshot, then closes.  Anything that is neither is logged, counted
//     and disconnected — a hostile or corrupt client never takes the
//     daemon down.
//
// Lifecycle rules the tests pin down:
//   * The analyzer is finalized (endOfTrace) once `expectedStreams`
//     kEndOfTrace frames have arrived.
//   * A connection that dies without kEndOfTrace (client SIGKILL, network
//     reset) counts as aborted; the analysis stays consistent but may
//     never finish — the report says so instead of lying.
//   * Zero-message streams (handshake + kEndOfTrace) are legal.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "logic/spec_analysis.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "observer/analysis.hpp"
#include "observer/online.hpp"

namespace mpx::net {

/// The daemon's violation report in paper notation.  Exposed so the
/// loopback e2e tests can render an in-process OnlineAnalyzer's result
/// through the exact same code and assert byte equality.
[[nodiscard]] std::string renderViolationReport(
    const observer::StateSpace& space,
    const std::vector<observer::Violation>& violations,
    const observer::LatticeStats& stats, bool finished);

/// Aggregated lag observations in nanoseconds (kept as plain counters so
/// /streams works identically in telemetry-OFF builds).
struct LagStats {
  std::uint64_t count = 0;
  std::uint64_t sumNs = 0;
  std::uint64_t maxNs = 0;
  std::uint64_t lastNs = 0;

  void observe(std::uint64_t ns) noexcept {
    ++count;
    sumNs += ns;
    if (ns > maxNs) maxNs = ns;
    lastNs = ns;
  }
  [[nodiscard]] std::uint64_t meanNs() const noexcept {
    return count == 0 ? 0 : sumNs / count;
  }
};

/// Point-in-time view of one logical stream, as served by /streams.  A
/// stream is every connection sharing one handshake stream id (v3); v1/v2
/// peers, which carry no id, aggregate under stream id 0.
struct StreamSnapshot {
  std::uint64_t streamId = 0;
  std::uint16_t version = 0;
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;
  std::uint64_t messages = 0;
  std::uint64_t duplicates = 0;
  /// Timestamped frames received but not yet fully folded into the lattice.
  std::uint64_t framesInFlight = 0;
  bool ended = false;
  /// Emit-to-receive lag (socket + queueing), from kEventsTs timestamps.
  LagStats receiveLag;
  /// Emit-to-analyze lag: send timestamp to the moment every message of
  /// the frame is at or below the analyzer's consumption watermark.
  LagStats analyzeLag;
  /// rawMonotonicNs() when the stream's last events frame arrived.
  std::uint64_t lastEventNs = 0;
};

struct DaemonOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// kEndOfTrace frames to collect before finalizing the analyzer.  A
  /// client using N channels (connections) sends one per connection.
  std::size_t expectedStreams = 1;
  /// Parallel level expansion inside the OnlineAnalyzer (mpx_cli --jobs).
  std::size_t jobs = 1;
  std::size_t maxFramePayload = kDefaultMaxFramePayload;
  observer::LatticeOptions lattice;
  /// Properties checked IN ADDITION to the ones the handshake carries
  /// (mpx_observerd --property).  All of them become SpecAnalysis plugins
  /// on one shared bus — a single lattice pass checks every property.
  std::vector<std::string> extraSpecs;
  /// Admission control: maximum live client connections (0 = unlimited).
  /// A connection beyond the cap is SHED — told so and disconnected —
  /// instead of letting unbounded per-connection state kill the daemon.
  std::size_t maxConnections = 0;
  /// Log connection errors to stderr (tests silence this).
  bool logErrors = true;
  /// When set, the flight recorder ring is dumped to this path on the
  /// first violation (the binary additionally dumps at exit/SIGTERM and
  /// installs the crash handlers).
  std::string flightDumpPath;
};

class ObserverDaemon {
 public:
  explicit ObserverDaemon(DaemonOptions opts);
  ~ObserverDaemon();

  ObserverDaemon(const ObserverDaemon&) = delete;
  ObserverDaemon& operator=(const ObserverDaemon&) = delete;

  /// Binds, listens, and starts the accept thread.  Returns false if the
  /// port cannot be bound.
  bool start();

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Blocks until the analysis finished (all expected streams ended) or
  /// the timeout expires.  Returns finished().
  bool waitFinished(std::chrono::milliseconds timeout);

  /// Stops accepting, closes every live connection, joins all threads.
  /// Idempotent.  The analysis state remains queryable afterwards.
  void stop();

  // --- analysis results (thread-safe snapshots) ----------------------
  [[nodiscard]] bool finished() const;
  [[nodiscard]] bool handshaken() const;
  [[nodiscard]] std::vector<observer::Violation> violations() const;
  [[nodiscard]] observer::LatticeStats stats() const;
  /// The property specs the active analysis checks (handshake specs plus
  /// opts.extraSpecs, first-seen order).  Empty before the handshake or in
  /// structure-only mode.
  [[nodiscard]] std::vector<std::string> specs() const;
  /// Per-plugin reports (one per spec), rendered through the shared
  /// analysis::renderAnalysisReports path.  Empty in structure-only mode.
  [[nodiscard]] std::vector<observer::AnalysisReport> analysisReports() const;

  // --- lifecycle counters --------------------------------------------
  [[nodiscard]] std::uint64_t connectionsAccepted() const;
  [[nodiscard]] std::uint64_t connectionsAborted() const;
  [[nodiscard]] std::uint64_t connectionsRejected() const;
  /// Connections turned away by admission control (connection cap or the
  /// analyzer's accounted working set already over its memory budget).
  [[nodiscard]] std::uint64_t connectionsShed() const;
  [[nodiscard]] std::uint64_t messagesIngested() const;
  [[nodiscard]] std::uint64_t duplicatesIgnored() const;
  /// Non-empty once the stream hit an unrecoverable analysis error (e.g.
  /// endOfTrace with gaps after an aborted client).
  [[nodiscard]] std::string streamError() const;

  // --- pipeline observability ----------------------------------------
  /// Last fully-analyzed lattice level (levelsCompleted - 1); 0 before the
  /// handshake.  The /streams progress watermark.
  [[nodiscard]] std::uint64_t watermarkLevel() const;
  /// Per-stream lag/dedup/watermark stats, one entry per stream id.
  [[nodiscard]] std::vector<StreamSnapshot> streamSnapshots() const;
  /// The /streams endpoint body: global watermark + per-stream JSON.
  [[nodiscard]] std::string renderStreamsJson() const;

  /// Human-readable violation report in paper notation — byte-identical to
  /// renderReport() over an in-process OnlineAnalyzer fed the same
  /// messages (the loopback e2e equality check).
  [[nodiscard]] std::string renderReport() const;

  /// The HTTP status body: lifecycle summary + report + telemetry text.
  [[nodiscard]] std::string renderStatus() const;

 private:
  struct Conn;

  /// A timestamped frame whose messages are not yet all folded into the
  /// lattice: per-thread max own-clock indices + the emitter's send clock.
  struct PendingFrame {
    std::vector<LocalSeq> maxK;
    std::uint64_t sendNs = 0;
  };

  /// Accumulating per-stream state behind a StreamSnapshot.
  struct StreamState {
    StreamSnapshot snap;
    std::deque<PendingFrame> inFlight;
  };

  void acceptLoop();
  /// Joins and releases finished connections (accept-thread only, with
  /// connsMu_ held).
  void reapFinishedLocked();
  void serveConnection(std::shared_ptr<Conn> conn);
  /// Handles one whole frame; returns false to drop the connection (with
  /// `*error` describing why, or nullptr for a clean end).
  bool handleFrame(Conn& conn, const Frame& frame, const char** error);
  bool handleHandshake(Conn& conn, const Frame& frame, const char** error);
  bool handleEvents(Conn& conn, const Frame& frame, const char** error);
  void serveHttp(Socket& sock, const std::string& requestLine);
  void noteStreamEnd();
  /// Retires in-flight frames the analyzer has fully consumed, recording
  /// their emit-to-analyze lag, and refreshes the watermark gauge.  Call
  /// with mu_ held after anything that can advance the lattice.
  void settleAnalyzedLocked();
  void noteViolationsLocked();
  void logError(const char* what) const;

  DaemonOptions opts_;
  Listener listener_;
  std::thread acceptThread_;

  mutable std::mutex mu_;  ///< guards everything below
  std::condition_variable finishedCv_;
  // Analysis state, created on the first handshake.  One SpecAnalysis
  // plugin per property, all on one bus, driven by ONE online lattice.
  std::vector<std::unique_ptr<logic::SpecAnalysis>> plugins_;
  std::unique_ptr<observer::AnalysisBus> bus_;
  std::vector<std::string> specs_;
  std::unique_ptr<observer::OnlineAnalyzer> analyzer_;
  observer::StateSpace space_;
  Handshake handshake_;
  bool handshaken_ = false;
  bool finished_ = false;
  std::string streamError_;
  /// At-least-once dedup: seen_[thread] holds the own-clock indices already
  /// ingested (a reconnecting emitter resends its in-flight batch).
  std::vector<std::vector<bool>> seen_;
  std::size_t streamsEnded_ = 0;
  /// Per-stream observability state, keyed by handshake stream id.
  std::map<std::uint64_t, StreamState> streams_;
  /// Violations already dumped/announced (flight-recorder on-violation
  /// trigger fires once per new violation batch).
  std::size_t violationsSeen_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t ingested_ = 0;
  std::uint64_t duplicates_ = 0;

  std::mutex connsMu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  bool stopping_ = false;  ///< guarded by connsMu_
};

}  // namespace mpx::net
