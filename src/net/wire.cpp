#include "net/wire.hpp"

#include <cstring>

namespace mpx::net {

namespace {

// Handshake payloads are small and trusted only after validation; caps keep
// a hostile length word from driving allocation.
constexpr std::uint32_t kMaxStringLen = 1u << 16;
constexpr std::uint32_t kMaxVars = 1u << 20;

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void putString(std::vector<std::uint8_t>& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked reader over a handshake payload.
struct Reader {
  const std::vector<std::uint8_t>& in;
  std::size_t off = 0;

  template <typename T>
  bool read(T& v) {
    if (in.size() - off < sizeof(T)) return false;
    std::memcpy(&v, in.data() + off, sizeof(T));
    off += sizeof(T);
    return true;
  }

  bool readString(std::string& s) {
    std::uint32_t n = 0;
    if (!read(n) || n > kMaxStringLen || in.size() - off < n) return false;
    s.assign(reinterpret_cast<const char*>(in.data()) + off, n);
    off += n;
    return true;
  }
};

}  // namespace

Handshake makeHandshake(std::uint32_t threads,
                        std::vector<std::string> specs,
                        std::vector<std::string> tracked,
                        const trace::VarTable& vars) {
  Handshake h;
  h.threads = threads;
  h.specs = std::move(specs);
  h.tracked = std::move(tracked);
  h.vars = vars;
  return h;
}

Handshake makeHandshake(std::uint32_t threads, std::string spec,
                        std::vector<std::string> tracked,
                        const trace::VarTable& vars) {
  std::vector<std::string> specs;
  if (!spec.empty()) specs.push_back(std::move(spec));
  return makeHandshake(threads, std::move(specs), std::move(tracked), vars);
}

void appendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::uint8_t* payload, std::size_t len) {
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(len));
  out.insert(out.end(), payload, payload + len);
}

std::vector<std::uint8_t> encodeHandshake(const Handshake& h) {
  std::vector<std::uint8_t> out;
  put<std::uint16_t>(out, h.version);
  put<std::uint32_t>(out, h.threads);
  if (h.version <= kLegacyProtocolVersion) {
    // v1 layout: a single spec string (first spec, or empty) where v2
    // carries the list — emitted only for wire-compat tests and old peers.
    putString(out, h.primarySpec());
  } else {
    put<std::uint32_t>(out, static_cast<std::uint32_t>(h.specs.size()));
    for (const std::string& spec : h.specs) putString(out, spec);
  }
  if (h.version >= kTraceContextProtocolVersion) {
    // v3: stream identity and the emitter's send clock (decode is
    // version-gated, so v1/v2 peers never see these fields).
    put<std::uint64_t>(out, h.streamId);
    put<std::uint64_t>(out, h.handshakeSendNs);
  }
  if (h.version >= kMultiTenantProtocolVersion) {
    // v5: session routing key — version-gated like the v3 fields so the
    // trailing-bytes check still catches malformed older handshakes.
    putString(out, h.tenant);
    put<std::uint64_t>(out, h.traceId);
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(h.tracked.size()));
  for (const std::string& name : h.tracked) putString(out, name);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(h.vars.size()));
  for (VarId v = 0; v < h.vars.size(); ++v) {
    putString(out, h.vars.name(v));
    put<std::int64_t>(out, h.vars.initial(v));
    put<std::uint8_t>(out, static_cast<std::uint8_t>(h.vars.role(v)));
  }
  return out;
}

bool decodeHandshake(const std::vector<std::uint8_t>& payload, Handshake& out,
                     const char** error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  Reader r{payload};
  Handshake h;
  if (!r.read(h.version)) return fail("handshake truncated");
  if (h.version == 0 || h.version > kProtocolVersion) {
    return fail("unsupported protocol version");
  }
  if (!r.read(h.threads)) return fail("handshake truncated");
  if (h.version <= kLegacyProtocolVersion) {
    // v1 peers send exactly one spec string; empty means "no property".
    std::string spec;
    if (!r.readString(spec)) return fail("handshake spec malformed");
    if (!spec.empty()) h.specs.push_back(std::move(spec));
  } else {
    std::uint32_t nSpecs = 0;
    if (!r.read(nSpecs) || nSpecs > kMaxVars) {
      return fail("handshake spec-count malformed");
    }
    h.specs.reserve(nSpecs);
    for (std::uint32_t i = 0; i < nSpecs; ++i) {
      std::string spec;
      if (!r.readString(spec)) return fail("handshake spec malformed");
      h.specs.push_back(std::move(spec));
    }
  }
  if (h.version >= kTraceContextProtocolVersion) {
    if (!r.read(h.streamId) || !r.read(h.handshakeSendNs)) {
      return fail("handshake trace context malformed");
    }
  }
  if (h.version >= kMultiTenantProtocolVersion) {
    if (!r.readString(h.tenant) || !r.read(h.traceId)) {
      return fail("handshake tenant routing malformed");
    }
  }
  std::uint32_t nTracked = 0;
  if (!r.read(nTracked) || nTracked > kMaxVars) {
    return fail("handshake tracked-count malformed");
  }
  h.tracked.reserve(nTracked);
  for (std::uint32_t i = 0; i < nTracked; ++i) {
    std::string name;
    if (!r.readString(name)) return fail("handshake tracked name malformed");
    h.tracked.push_back(std::move(name));
  }
  std::uint32_t nVars = 0;
  if (!r.read(nVars) || nVars > kMaxVars) {
    return fail("handshake var-count malformed");
  }
  for (std::uint32_t i = 0; i < nVars; ++i) {
    std::string name;
    std::int64_t initial = 0;
    std::uint8_t role = 0;
    if (!r.readString(name) || !r.read(initial) || !r.read(role)) {
      return fail("handshake var entry malformed");
    }
    if (role > static_cast<std::uint8_t>(trace::VarRole::kCondition)) {
      return fail("handshake var role malformed");
    }
    try {
      h.vars.intern(name, initial, static_cast<trace::VarRole>(role));
    } catch (const std::exception&) {
      return fail("handshake var table inconsistent");
    }
  }
  if (r.off != payload.size()) return fail("handshake has trailing bytes");
  out = std::move(h);
  return true;
}

namespace {

bool decodeMessages(const std::uint8_t* data, std::size_t len,
                    std::vector<trace::Message>& out, const char** error) {
  std::size_t off = 0;
  while (off < len) {
    const trace::DecodeResult r =
        trace::BinaryCodec::tryDecode(data + off, len - off);
    if (r.status != trace::DecodeStatus::kOk) {
      if (error != nullptr) {
        *error = r.status == trace::DecodeStatus::kCorrupt
                     ? r.error
                     : "partial message inside events frame";
      }
      return false;
    }
    out.push_back(r.message);
    off += r.consumed;
  }
  return true;
}

}  // namespace

bool decodeEventsPayload(const std::vector<std::uint8_t>& payload,
                         std::vector<trace::Message>& out,
                         const char** error) {
  return decodeMessages(payload.data(), payload.size(), out, error);
}

bool decodeEventsTsPayload(const std::vector<std::uint8_t>& payload,
                           std::uint64_t& sendNs,
                           std::vector<trace::Message>& out,
                           const char** error) {
  if (payload.size() < kEventsTsPrefixSize) {
    if (error != nullptr) *error = "events-ts frame shorter than timestamp";
    return false;
  }
  std::memcpy(&sendNs, payload.data(), sizeof(sendNs));
  return decodeMessages(payload.data() + kEventsTsPrefixSize,
                        payload.size() - kEventsTsPrefixSize, out, error);
}

bool decodeEventsSparsePayload(const std::vector<std::uint8_t>& payload,
                               std::uint64_t& sendNs,
                               std::vector<trace::Message>& out,
                               const char** error) {
  if (payload.size() < kEventsTsPrefixSize) {
    if (error != nullptr) *error = "events-sparse frame shorter than timestamp";
    return false;
  }
  std::memcpy(&sendNs, payload.data(), sizeof(sendNs));
  const std::uint8_t* data = payload.data() + kEventsTsPrefixSize;
  const std::size_t len = payload.size() - kEventsTsPrefixSize;
  trace::SparseClockCodec::FrameState st;  // frame-local by construction
  std::size_t off = 0;
  while (off < len) {
    const trace::DecodeResult r =
        trace::SparseClockCodec::tryDecode(data + off, len - off, st);
    if (r.status != trace::DecodeStatus::kOk) {
      if (error != nullptr) {
        *error = r.status == trace::DecodeStatus::kCorrupt
                     ? r.error
                     : "partial message inside events frame";
      }
      return false;
    }
    out.push_back(r.message);
    off += r.consumed;
  }
  return true;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t len) {
  if (corrupt_) return;
  // Reclaim the consumed prefix before growing (long streams stay O(frame)).
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

FrameReader::Status FrameReader::next(Frame& out) {
  if (corrupt_) return Status::kCorrupt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return Status::kNeedMore;
  std::uint32_t magic = 0;
  std::uint8_t type = 0;
  std::uint32_t len = 0;
  std::memcpy(&magic, buf_.data() + pos_, 4);
  std::memcpy(&type, buf_.data() + pos_ + 4, 1);
  std::memcpy(&len, buf_.data() + pos_ + 5, 4);
  if (magic != kFrameMagic) {
    corrupt_ = true;
    error_ = "bad frame magic";
    return Status::kCorrupt;
  }
  if (type < static_cast<std::uint8_t>(FrameType::kHandshake) ||
      type > static_cast<std::uint8_t>(FrameType::kEventsSparse)) {
    corrupt_ = true;
    error_ = "unknown frame type";
    return Status::kCorrupt;
  }
  if (len > maxPayload_) {
    corrupt_ = true;
    error_ = "frame payload exceeds limit";
    return Status::kCorrupt;
  }
  if (avail < kFrameHeaderSize + len) return Status::kNeedMore;
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(
                                        pos_ + kFrameHeaderSize),
                     buf_.begin() + static_cast<std::ptrdiff_t>(
                                        pos_ + kFrameHeaderSize + len));
  pos_ += kFrameHeaderSize + len;
  return Status::kFrame;
}

}  // namespace mpx::net
