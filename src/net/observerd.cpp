#include "net/observerd.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "analysis/report.hpp"
#include "logic/parser.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::net {

namespace {

/// Daemon-side transport telemetry.
struct DaemonMetrics {
  telemetry::Counter& bytesRx;
  telemetry::Counter& framesRx;
  telemetry::Counter& framesCorrupt;
  telemetry::Counter& connections;
  telemetry::Counter& connectionsAborted;
  telemetry::Counter& messagesIngested;
  telemetry::Counter& duplicatesIgnored;
  telemetry::Counter& connectionsShed;

  static DaemonMetrics& get() {
    auto& reg = telemetry::registry();
    static DaemonMetrics m{
        reg.counter("mpx_net_bytes_rx_total",
                    "Bytes read from client sockets"),
        reg.counter("mpx_net_frames_rx_total",
                    "Whole frames received from clients"),
        reg.counter("mpx_net_frames_corrupt_total",
                    "Connections dropped for corrupt or malformed frames"),
        reg.counter("mpx_net_connections_total",
                    "Client connections accepted"),
        reg.counter("mpx_net_connections_aborted_total",
                    "Connections that died before end-of-trace"),
        reg.counter("mpx_net_messages_ingested_total",
                    "Messages fed into the online analyzer"),
        reg.counter("mpx_net_duplicates_ignored_total",
                    "Resent messages deduplicated (at-least-once delivery)"),
        reg.counter("mpx_net_connections_shed_total",
                    "Connections turned away by admission control "
                    "(connection cap or memory budget exhausted)"),
    };
    return m;
  }
};

/// Cross-process pipeline telemetry (tentpole of the observability layer):
/// how far behind the instrumented program the observer runs.
struct PipelineMetrics {
  telemetry::Histogram& receiveLagNs;
  telemetry::Histogram& analyzeLagNs;
  telemetry::Gauge& watermarkLevel;
  telemetry::Gauge& framesInFlight;
  telemetry::Gauge& streamsActive;

  static PipelineMetrics& get() {
    auto& reg = telemetry::registry();
    static PipelineMetrics m{
        reg.histogram("mpx_pipeline_receive_lag_ns",
                      "Emit-to-receive lag of timestamped event frames"),
        reg.histogram("mpx_pipeline_analyze_lag_ns",
                      "Emit-to-analyze lag: frame send until every message "
                      "of the frame is folded into the lattice"),
        reg.gauge("mpx_pipeline_watermark_level",
                  "Last fully-analyzed lattice level"),
        reg.gauge("mpx_pipeline_frames_in_flight",
                  "Timestamped frames received but not yet fully analyzed"),
        reg.gauge("mpx_pipeline_streams_active",
                  "Streams with a handshake but no end-of-trace yet"),
    };
    return m;
  }
};

/// A hostile own-clock index must not drive the dedup table's allocation.
constexpr LocalSeq kMaxLocalSeq = 1u << 24;

/// Lag clamped at zero: raw monotonic clocks on one machine share an
/// epoch, but scheduling can still order the reads unhelpfully.
std::uint64_t lagNs(std::uint64_t recvNs, std::uint64_t sendNs) noexcept {
  return recvNs > sendNs ? recvNs - sendNs : 0;
}

void appendJsonU64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
  if (comma) out += ", ";
}

void appendLagJson(std::string& out, const char* key, const LagStats& lag) {
  out += '"';
  out += key;
  out += "\": {";
  appendJsonU64(out, "count", lag.count);
  appendJsonU64(out, "sum_ns", lag.sumNs);
  appendJsonU64(out, "mean_ns", lag.meanNs());
  appendJsonU64(out, "max_ns", lag.maxNs);
  appendJsonU64(out, "last_ns", lag.lastNs, /*comma=*/false);
  out += '}';
}

}  // namespace

std::string renderViolationReport(const observer::StateSpace& space,
                                  const std::vector<observer::Violation>& vs,
                                  const observer::LatticeStats& stats,
                                  bool finished) {
  // The daemon and mpx_cli share ONE rendering + exit-code path; this
  // net-namespace name survives for the e2e byte-equality tests.
  return analysis::renderViolationReport(space, vs, stats, finished);
}

struct ObserverDaemon::Conn {
  Socket sock;
  std::thread thread;
  bool sawHandshake = false;
  bool sawEnd = false;
  /// Stream id from this connection's handshake (0 for v1/v2 peers).
  std::uint64_t streamId = 0;
  /// Set by the serving thread when it is done with the socket.  The fd is
  /// closed only after joining that thread (by the reaper or by stop()),
  /// so stop()'s shutdownBoth() never races a close().
  std::atomic<bool> done{false};
};

ObserverDaemon::ObserverDaemon(DaemonOptions opts) : opts_(std::move(opts)) {
  if (opts_.expectedStreams == 0) opts_.expectedStreams = 1;
}

ObserverDaemon::~ObserverDaemon() { stop(); }

bool ObserverDaemon::start() {
  if (!listener_.open(opts_.port)) return false;
  // Register the pipeline instruments up front so a /metrics scrape of an
  // idle daemon already exposes the series (gauges at zero, empty
  // histograms) instead of appearing only after the first frame.
  PipelineMetrics::get();
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

std::uint16_t ObserverDaemon::port() const noexcept {
  return listener_.port();
}

void ObserverDaemon::acceptLoop() {
  while (true) {
    Socket s = listener_.accept();
    if (!s.valid()) return;  // stopped or listener error
    // Admission control: turn the connection away (with a one-line notice)
    // when the live-connection cap is hit or the analyzer's accounted
    // working set already sits above its memory budget.  Shedding load at
    // the door keeps the daemon alive and its existing streams progressing;
    // the analysis is then INCOMPLETE/BOUNDED, which the report states.
    bool shed = false;
    if (opts_.maxConnections > 0) {
      std::lock_guard<std::mutex> lk(connsMu_);
      if (stopping_) return;
      reapFinishedLocked();
      shed = conns_.size() >= opts_.maxConnections;
    }
    if (!shed && opts_.lattice.memoryBudgetBytes > 0) {
      std::lock_guard<std::mutex> lk(mu_);
      shed = analyzer_ != nullptr &&
             analyzer_->stats().accountedBytes > opts_.lattice.memoryBudgetBytes;
    }
    if (shed) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++shed_;
      }
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().connectionsShed.add(1);
      }
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kConnShed);
      logError("shedding connection: observer at capacity");
      static const char kNotice[] =
          "MPX-SHED observer at capacity; retry later\n";
      s.sendAll(kNotice, sizeof kNotice - 1);
      s.shutdownBoth();
      continue;  // Socket destructor closes the fd
    }
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(s);
    {
      std::lock_guard<std::mutex> lk(connsMu_);
      if (stopping_) return;
      reapFinishedLocked();
      conns_.push_back(conn);
    }
    std::uint64_t ordinal = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ordinal = ++accepted_;
    }
    if constexpr (telemetry::kEnabled) DaemonMetrics::get().connections.add(1);
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kConnAccepted, ordinal);
    conn->thread = std::thread([this, conn] { serveConnection(conn); });
  }
}

void ObserverDaemon::reapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);  // Socket destructor closes the fd
    } else {
      ++it;
    }
  }
}

void ObserverDaemon::serveConnection(std::shared_ptr<Conn> conn) {
  // Marks the connection reapable on every exit path.
  struct DoneGuard {
    Conn& c;
    ~DoneGuard() { c.done.store(true, std::memory_order_release); }
  } guard{*conn};

  FrameReader reader(opts_.maxFramePayload);
  std::uint8_t buf[16 * 1024];
  std::vector<std::uint8_t> head;  // first bytes, until classified
  bool isFrameStream = false;
  bool isHttp = false;
  const char* error = nullptr;
  // An HTTP probe's request line is read in full before routing (it may
  // arrive byte by byte); anything longer than this is not a real probe.
  constexpr std::size_t kMaxRequestLine = 4096;

  while (error == nullptr) {
    const std::ptrdiff_t n = conn->sock.recvSome(buf, sizeof buf);
    if (n < 0) {
      error = "connection error";
      break;
    }
    if (n == 0) {
      if (isHttp) error = "http request truncated";
      break;  // peer closed
    }
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().bytesRx.add(static_cast<std::uint64_t>(n));
    }
    if (!isFrameStream) {
      // Decide what this connection is from its first four bytes: MPX
      // frames start with the magic; anything ASCII-request-shaped gets
      // the introspection API; the rest is garbage and is disconnected.
      head.insert(head.end(), buf, buf + n);
      if (head.size() < 4 && !isHttp) continue;
      std::uint32_t magic = 0;
      if (head.size() >= 4) std::memcpy(&magic, head.data(), 4);
      if (isHttp || magic != kFrameMagic) {
        const std::string text(reinterpret_cast<const char*>(head.data()),
                               head.size());
        if (isHttp || text.rfind("GET", 0) == 0 ||
            text.rfind("HEAD", 0) == 0) {
          isHttp = true;
          // Route only once the whole request line is here.
          const std::size_t eol = text.find('\n');
          if (eol == std::string::npos) {
            if (head.size() > kMaxRequestLine) {
              error = "http request line too long";
              break;
            }
            continue;
          }
          serveHttp(conn->sock, text.substr(0, eol));
          std::lock_guard<std::mutex> lk(mu_);
          ++rejected_;  // not an MPX stream (benign probe)
          return;
        }
        error = "not an MPX frame stream";
        break;
      }
      isFrameStream = true;
      reader.feed(head.data(), head.size());
      head.clear();
    } else {
      reader.feed(buf, static_cast<std::size_t>(n));
    }

    Frame frame;
    FrameReader::Status st;
    while ((st = reader.next(frame)) == FrameReader::Status::kFrame) {
      if constexpr (telemetry::kEnabled) DaemonMetrics::get().framesRx.add(1);
      if (!handleFrame(*conn, frame, &error)) break;
    }
    if (error == nullptr && st == FrameReader::Status::kCorrupt) {
      error = reader.error();
    }
  }

  // Half-close only: the fd itself is closed after this thread is joined,
  // so a concurrent stop() can safely shutdownBoth() on it.
  conn->sock.shutdownBoth();
  std::lock_guard<std::mutex> lk(mu_);
  if (error != nullptr) {
    logError(error);
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().framesCorrupt.add(1);
    }
    if (conn->sawHandshake && !conn->sawEnd) {
      ++aborted_;
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().connectionsAborted.add(1);
      }
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kConnAborted, conn->streamId);
    } else {
      ++rejected_;
    }
  } else if (conn->sawHandshake && !conn->sawEnd) {
    // Client vanished mid-stream (SIGKILL, network reset): the analyzer
    // keeps whatever arrived; finalization may now be impossible, which
    // the report states honestly.
    logError("client closed before end-of-trace");
    ++aborted_;
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().connectionsAborted.add(1);
    }
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kConnAborted, conn->streamId);
  } else if (!conn->sawHandshake && (isFrameStream || !head.empty())) {
    // Sent some bytes but died before a complete handshake (e.g. a frame
    // cut mid-header).  Nothing reached the analyzer.
    logError("client closed before a complete handshake");
    ++rejected_;
  }
}

bool ObserverDaemon::handleFrame(Conn& conn, const Frame& frame,
                                 const char** error) {
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEvent::kFrame, conn.streamId,
      static_cast<std::uint64_t>(frame.type), frame.payload.size());
  switch (frame.type) {
    case FrameType::kHandshake:
      return handleHandshake(conn, frame, error);
    case FrameType::kEvents:
    case FrameType::kEventsTs:
    case FrameType::kEventsSparse:
      return handleEvents(conn, frame, error);
    case FrameType::kEndOfTrace:
      if (!conn.sawHandshake) {
        *error = "end-of-trace before handshake";
        return false;
      }
      if (conn.sawEnd) {
        *error = "duplicate end-of-trace";
        return false;
      }
      conn.sawEnd = true;
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto& stream = streams_[conn.streamId];
        if (!stream.snap.ended) {
          stream.snap.ended = true;
          if constexpr (telemetry::kEnabled) {
            PipelineMetrics::get().streamsActive.add(-1);
          }
        }
      }
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kStreamEnd, conn.streamId);
      noteStreamEnd();
      return true;
  }
  *error = "unknown frame type";
  return false;
}

bool ObserverDaemon::handleHandshake(Conn& conn, const Frame& frame,
                                     const char** error) {
  Handshake h;
  if (!decodeHandshake(frame.payload, h, error)) return false;
  if (h.threads == 0) {
    *error = "handshake declares zero threads";
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (conn.sawHandshake) {
    // A reconnecting emitter resends its handshake on the SAME connection
    // never happens (each reconnect is a new connection), so a second
    // handshake on one connection is a protocol error.
    *error = "duplicate handshake";
    return false;
  }
  if (!handshaken_) {
    // The active property set: handshake specs plus daemon-side
    // --property additions, first-seen order, deduplicated.
    std::vector<std::string> specs = h.specs;
    for (const std::string& extra : opts_.extraSpecs) {
      if (std::find(specs.begin(), specs.end(), extra) == specs.end()) {
        specs.push_back(extra);
      }
    }
    try {
      space_ = observer::StateSpace::byNames(h.vars, h.tracked);
      observer::LatticeOptions lat = opts_.lattice;
      if (opts_.jobs > 0) lat.parallel.jobs = opts_.jobs;
      if (!specs.empty()) {
        // One SpecAnalysis plugin per property on one shared bus — the
        // daemon checks all K properties in a single lattice pass.
        for (const std::string& spec : specs) {
          const logic::Formula f = logic::SpecParser(space_).parse(spec);
          plugins_.push_back(
              std::make_unique<logic::SpecAnalysis>(space_, f, spec));
        }
        std::vector<observer::Analysis*> raw;
        raw.reserve(plugins_.size());
        for (auto& p : plugins_) raw.push_back(p.get());
        bus_ = std::make_unique<observer::AnalysisBus>(raw);
        analyzer_ = std::make_unique<observer::OnlineAnalyzer>(
            space_, h.threads, *bus_, lat);
      } else {
        analyzer_ = std::make_unique<observer::OnlineAnalyzer>(
            space_, h.threads, static_cast<observer::LatticeMonitor*>(nullptr),
            lat);
      }
    } catch (const std::exception&) {
      analyzer_.reset();
      bus_.reset();
      plugins_.clear();
      *error = "handshake rejected: unusable spec or variable set";
      return false;
    }
    specs_ = std::move(specs);
    seen_.assign(h.threads, {});
    handshake_ = std::move(h);
    handshaken_ = true;
  } else {
    // Additional channels of the same analysis must agree on the world.
    if (h.threads != handshake_.threads || h.specs != handshake_.specs) {
      *error = "handshake conflicts with the active analysis";
      return false;
    }
  }
  conn.sawHandshake = true;
  conn.streamId = h.streamId;
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEvent::kHandshake, h.streamId, h.version, h.threads);
  auto& stream = streams_[h.streamId];
  if (stream.snap.connections == 0) {
    stream.snap.streamId = h.streamId;
    if constexpr (telemetry::kEnabled) {
      PipelineMetrics::get().streamsActive.add(1);
    }
  }
  ++stream.snap.connections;
  stream.snap.version = h.version;
  return true;
}

bool ObserverDaemon::handleEvents(Conn& conn, const Frame& frame,
                                  const char** error) {
  if (!conn.sawHandshake) {
    *error = "events before handshake";
    return false;
  }
  if (conn.sawEnd) {
    *error = "events after end-of-trace";
    return false;
  }
  // Both timestamp-prefixed frame kinds (v3 dense, v4 sparse) feed the
  // pipeline-lag machinery; decoded messages are identical full clocks
  // either way, so everything downstream (dedup, lattice) is coding-blind.
  const bool timestamped = frame.type != FrameType::kEvents;
  std::uint64_t sendNs = 0;
  std::vector<trace::Message> messages;
  if (frame.type == FrameType::kEventsSparse) {
    if (!decodeEventsSparsePayload(frame.payload, sendNs, messages, error)) {
      return false;
    }
  } else if (frame.type == FrameType::kEventsTs) {
    if (!decodeEventsTsPayload(frame.payload, sendNs, messages, error)) {
      return false;
    }
  } else {
    if (!decodeEventsPayload(frame.payload, messages, error)) return false;
  }
  const std::uint64_t recvNs = telemetry::rawMonotonicNs();

  // The daemon-side frame span carries the stream id, so a merged
  // emitter+daemon trace joins in one Perfetto view.
  telemetry::TraceSpan span("daemon.frame", "net");
  span.arg("stream_id", static_cast<std::int64_t>(conn.streamId));
  span.arg("messages", static_cast<std::int64_t>(messages.size()));

  std::lock_guard<std::mutex> lk(mu_);
  auto& stream = streams_[conn.streamId];
  ++stream.snap.frames;
  stream.snap.lastEventNs = recvNs;
  if (timestamped) {
    const std::uint64_t lag = lagNs(recvNs, sendNs);
    stream.snap.receiveLag.observe(lag);
    if constexpr (telemetry::kEnabled) {
      PipelineMetrics::get().receiveLagNs.record(lag);
    }
  }
  // Per-thread max own-clock index of this frame: the frame counts as
  // analyzed once the analyzer's consumption watermark covers it.
  std::vector<LocalSeq> frameMaxK(handshake_.threads, 0);
  for (const trace::Message& m : messages) {
    if (finished_) {
      *error = "events after the analysis finished";
      return false;
    }
    const ThreadId j = m.event.thread;
    if (j >= handshake_.threads) {
      *error = "message from undeclared thread";
      return false;
    }
    const LocalSeq k = m.clock[j];
    if (k == 0 || k > kMaxLocalSeq) {
      *error = "message own-clock out of range";
      return false;
    }
    frameMaxK[j] = std::max(frameMaxK[j], k);
    auto& seen = seen_[j];
    if (k < seen.size() && seen[k]) {
      ++duplicates_;
      ++stream.snap.duplicates;
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().duplicatesIgnored.add(1);
      }
      continue;
    }
    try {
      analyzer_->onMessage(m);
    } catch (const std::exception&) {
      *error = "message rejected by the analyzer";
      return false;
    }
    if (k >= seen.size()) seen.resize(k + 1, false);
    seen[k] = true;
    ++ingested_;
    ++stream.snap.messages;
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().messagesIngested.add(1);
    }
  }
  if (timestamped) {
    stream.inFlight.push_back(PendingFrame{std::move(frameMaxK), sendNs});
  }
  settleAnalyzedLocked();
  noteViolationsLocked();
  return true;
}

void ObserverDaemon::noteStreamEnd() {
  std::lock_guard<std::mutex> lk(mu_);
  ++streamsEnded_;
  if (streamsEnded_ < opts_.expectedStreams || finished_ ||
      analyzer_ == nullptr) {
    return;
  }
  try {
    analyzer_->endOfTrace();
    finished_ = analyzer_->finished();
  } catch (const std::exception& e) {
    streamError_ = e.what();
  }
  settleAnalyzedLocked();
  noteViolationsLocked();
  finishedCv_.notify_all();
}

void ObserverDaemon::settleAnalyzedLocked() {
  if (analyzer_ == nullptr) return;
  const std::vector<LocalSeq>& ck = analyzer_->consumedK();
  const std::uint64_t now = telemetry::rawMonotonicNs();
  for (auto& [id, stream] : streams_) {
    while (!stream.inFlight.empty()) {
      const PendingFrame& f = stream.inFlight.front();
      bool analyzed = finished_;  // finalization consumed everything
      if (!analyzed) {
        analyzed = true;
        for (std::size_t j = 0; j < f.maxK.size(); ++j) {
          if (j >= ck.size() || ck[j] < f.maxK[j]) {
            analyzed = false;
            break;
          }
        }
      }
      if (!analyzed) break;  // frames settle in arrival order per stream
      const std::uint64_t lag = lagNs(now, f.sendNs);
      stream.snap.analyzeLag.observe(lag);
      if constexpr (telemetry::kEnabled) {
        PipelineMetrics::get().analyzeLagNs.record(lag);
      }
      stream.inFlight.pop_front();
    }
    stream.snap.framesInFlight = stream.inFlight.size();
  }
  if constexpr (telemetry::kEnabled) {
    std::int64_t total = 0;
    for (const auto& [id, s] : streams_) {
      total += static_cast<std::int64_t>(s.inFlight.size());
    }
    PipelineMetrics::get().framesInFlight.set(total);
    PipelineMetrics::get().watermarkLevel.set(
        static_cast<std::int64_t>(analyzer_->levelsCompleted() - 1));
  }
}

void ObserverDaemon::noteViolationsLocked() {
  if (analyzer_ == nullptr) return;
  const std::size_t n = analyzer_->violations().size();
  if (n > violationsSeen_) {
    violationsSeen_ = n;
    // On-violation flight dump: the post-mortem trail of how the pipeline
    // got here, written while the state is still fresh.
    if (!opts_.flightDumpPath.empty()) {
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kDump, /*reason=*/2);
      telemetry::FlightRecorder::global().dumpToFile(
          opts_.flightDumpPath.c_str());
    }
  }
}

void ObserverDaemon::serveHttp(Socket& sock, const std::string& requestLine) {
  // "GET /path HTTP/1.x" — the path is the second whitespace token.
  std::string path = "/";
  {
    const std::size_t sp1 = requestLine.find(' ');
    if (sp1 != std::string::npos) {
      const std::size_t start = requestLine.find_first_not_of(' ', sp1);
      if (start != std::string::npos) {
        std::size_t end = requestLine.find(' ', start);
        if (end == std::string::npos) end = requestLine.size();
        path = requestLine.substr(start, end - start);
        while (!path.empty() &&
               (path.back() == '\r' || path.back() == '\n')) {
          path.pop_back();
        }
      }
    }
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
  }

  const char* status = "200 OK";
  const char* contentType = "text/plain";
  std::string body;
  if (path == "/" || path.empty()) {
    body = renderStatus();  // the legacy status page
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/metrics") {
    body = telemetry::toPrometheusText(telemetry::registry().snapshot());
  } else if (path == "/streams") {
    contentType = "application/json";
    body = renderStreamsJson();
  } else if (path == "/report") {
    body = renderReport();
    std::vector<observer::AnalysisReport> reports;
    {
      std::lock_guard<std::mutex> lk(mu_);
      reports.reserve(plugins_.size());
      for (const auto& p : plugins_) reports.push_back(p->report());
    }
    if (!reports.empty()) {
      body += '\n';
      body += analysis::renderAnalysisReports(reports);
    }
  } else if (path == "/flightrecorder") {
    contentType = "application/json";
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kDump, /*reason=*/3);
    body = telemetry::FlightRecorder::global().toJson();
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }

  std::ostringstream os;
  os << "HTTP/1.0 " << status << "\r\nContent-Type: " << contentType
     << "\r\nContent-Length: " << body.size()
     << "\r\nConnection: close\r\n\r\n"
     << body;
  const std::string resp = os.str();
  sock.sendAll(resp.data(), resp.size());
  sock.shutdownWrite();
}

bool ObserverDaemon::waitFinished(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  finishedCv_.wait_for(lk, timeout, [this] {
    return finished_ || !streamError_.empty();
  });
  return finished_;
}

void ObserverDaemon::stop() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(connsMu_);
    if (stopping_) return;
    stopping_ = true;
    conns = conns_;
  }
  listener_.stop();
  if (acceptThread_.joinable()) acceptThread_.join();
  for (auto& c : conns) c->sock.shutdownBoth();
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  listener_.close();
  {
    std::lock_guard<std::mutex> lk(mu_);
    finishedCv_.notify_all();
  }
}

bool ObserverDaemon::finished() const {
  std::lock_guard<std::mutex> lk(mu_);
  return finished_;
}

bool ObserverDaemon::handshaken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return handshaken_;
}

std::vector<observer::Violation> ObserverDaemon::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return analyzer_ != nullptr ? analyzer_->violations()
                              : std::vector<observer::Violation>{};
}

observer::LatticeStats ObserverDaemon::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return analyzer_ != nullptr ? analyzer_->stats() : observer::LatticeStats{};
}

std::vector<std::string> ObserverDaemon::specs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return specs_;
}

std::vector<observer::AnalysisReport> ObserverDaemon::analysisReports() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<observer::AnalysisReport> out;
  out.reserve(plugins_.size());
  for (const auto& p : plugins_) out.push_back(p->report());
  return out;
}

std::uint64_t ObserverDaemon::connectionsAccepted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return accepted_;
}

std::uint64_t ObserverDaemon::connectionsAborted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return aborted_;
}

std::uint64_t ObserverDaemon::connectionsRejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

std::uint64_t ObserverDaemon::connectionsShed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

std::uint64_t ObserverDaemon::messagesIngested() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ingested_;
}

std::uint64_t ObserverDaemon::duplicatesIgnored() const {
  std::lock_guard<std::mutex> lk(mu_);
  return duplicates_;
}

std::uint64_t ObserverDaemon::watermarkLevel() const {
  std::lock_guard<std::mutex> lk(mu_);
  return analyzer_ != nullptr ? analyzer_->levelsCompleted() - 1 : 0;
}

std::vector<StreamSnapshot> ObserverDaemon::streamSnapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<StreamSnapshot> out;
  out.reserve(streams_.size());
  for (const auto& [id, s] : streams_) out.push_back(s.snap);
  return out;
}

std::string ObserverDaemon::renderStreamsJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  ";
  out += "\"handshaken\": ";
  out += handshaken_ ? "true" : "false";
  out += ", \"finished\": ";
  out += finished_ ? "true" : "false";
  out += ",\n  ";
  const observer::LatticeStats stats =
      analyzer_ != nullptr ? analyzer_->stats() : observer::LatticeStats{};
  appendJsonU64(out, "levels", stats.levels);
  appendJsonU64(out, "watermark_level",
                analyzer_ != nullptr ? analyzer_->levelsCompleted() - 1 : 0);
  appendJsonU64(out, "pending_messages",
                analyzer_ != nullptr ? analyzer_->pendingMessages() : 0);
  out += "\"degradation\": \"";
  out += observer::toString(stats.degradation);
  out += "\", \"bound_reason\": \"";
  out += observer::toString(stats.boundReason);
  out += "\",\n  ";
  appendJsonU64(out, "streams_ended", streamsEnded_);
  appendJsonU64(out, "expected_streams", opts_.expectedStreams);
  appendJsonU64(out, "connections_accepted", accepted_);
  appendJsonU64(out, "messages_ingested", ingested_);
  appendJsonU64(out, "duplicates_ignored", duplicates_, /*comma=*/false);
  out += ",\n  \"streams\": [";
  bool first = true;
  for (const auto& [id, s] : streams_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    appendJsonU64(out, "stream_id", s.snap.streamId);
    appendJsonU64(out, "version", s.snap.version);
    appendJsonU64(out, "connections", s.snap.connections);
    appendJsonU64(out, "frames", s.snap.frames);
    appendJsonU64(out, "messages", s.snap.messages);
    appendJsonU64(out, "duplicates", s.snap.duplicates);
    appendJsonU64(out, "frames_in_flight", s.inFlight.size());
    out += "\"ended\": ";
    out += s.snap.ended ? "true" : "false";
    out += ", ";
    appendLagJson(out, "receive_lag_ns", s.snap.receiveLag);
    out += ", ";
    appendLagJson(out, "analyze_lag_ns", s.snap.analyzeLag);
    out += ", ";
    appendJsonU64(out, "last_event_ns", s.snap.lastEventNs, /*comma=*/false);
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string ObserverDaemon::streamError() const {
  std::lock_guard<std::mutex> lk(mu_);
  return streamError_;
}

std::string ObserverDaemon::renderReport() const {
  std::lock_guard<std::mutex> lk(mu_);
  return renderViolationReport(
      space_,
      analyzer_ != nullptr ? analyzer_->violations()
                           : std::vector<observer::Violation>{},
      analyzer_ != nullptr ? analyzer_->stats() : observer::LatticeStats{},
      finished_);
}

std::string ObserverDaemon::renderStatus() const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lk(mu_);
    os << "mpx_observerd status\n";
    os << "handshaken: " << (handshaken_ ? "yes" : "no")
       << ", streams ended: " << streamsEnded_ << '/' << opts_.expectedStreams
       << '\n';
    os << "connections: accepted=" << accepted_ << " aborted=" << aborted_
       << " rejected=" << rejected_ << " shed=" << shed_ << '\n';
    os << "messages: ingested=" << ingested_
       << " duplicates_ignored=" << duplicates_ << '\n';
    if (!streamError_.empty()) os << "stream error: " << streamError_ << '\n';
    os << '\n'
       << renderViolationReport(
              space_,
              analyzer_ != nullptr ? analyzer_->violations()
                                   : std::vector<observer::Violation>{},
              analyzer_ != nullptr ? analyzer_->stats()
                                   : observer::LatticeStats{},
              finished_);
    if (!plugins_.empty()) {
      std::vector<observer::AnalysisReport> reports;
      reports.reserve(plugins_.size());
      for (const auto& p : plugins_) reports.push_back(p->report());
      os << '\n' << analysis::renderAnalysisReports(reports);
    }
  }
  os << '\n' << telemetry::toPrometheusText(telemetry::registry().snapshot());
  return os.str();
}

void ObserverDaemon::logError(const char* what) const {
  if (opts_.logErrors) {
    std::fprintf(stderr, "mpx_observerd: dropping connection: %s\n", what);
  }
}

}  // namespace mpx::net
