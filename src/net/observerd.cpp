#include "net/observerd.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "analysis/report.hpp"
#include "net/snapshot.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/trace_span.hpp"

namespace mpx::net {

namespace {

/// Daemon-side transport telemetry.
struct DaemonMetrics {
  telemetry::Counter& bytesRx;
  telemetry::Counter& framesRx;
  telemetry::Counter& framesCorrupt;
  telemetry::Counter& connections;
  telemetry::Counter& connectionsAborted;
  telemetry::Counter& messagesIngested;
  telemetry::Counter& duplicatesIgnored;
  telemetry::Counter& connectionsShed;

  static DaemonMetrics& get() {
    auto& reg = telemetry::registry();
    static DaemonMetrics m{
        reg.counter("mpx_net_bytes_rx_total",
                    "Bytes read from client sockets"),
        reg.counter("mpx_net_frames_rx_total",
                    "Whole frames received from clients"),
        reg.counter("mpx_net_frames_corrupt_total",
                    "Connections dropped for corrupt or malformed frames"),
        reg.counter("mpx_net_connections_total",
                    "Client connections accepted"),
        reg.counter("mpx_net_connections_aborted_total",
                    "Connections that died before end-of-trace"),
        reg.counter("mpx_net_messages_ingested_total",
                    "Messages fed into the online analyzer"),
        reg.counter("mpx_net_duplicates_ignored_total",
                    "Resent messages deduplicated (at-least-once delivery)"),
        reg.counter("mpx_net_connections_shed_total",
                    "Connections turned away by admission control "
                    "(connection cap or memory budget exhausted)"),
    };
    return m;
  }
};

/// Cross-process pipeline telemetry (tentpole of the observability layer):
/// how far behind the instrumented program the observer runs.
struct PipelineMetrics {
  telemetry::Histogram& receiveLagNs;
  telemetry::Histogram& analyzeLagNs;
  telemetry::Gauge& watermarkLevel;
  telemetry::Gauge& framesInFlight;
  telemetry::Gauge& streamsActive;

  static PipelineMetrics& get() {
    auto& reg = telemetry::registry();
    static PipelineMetrics m{
        reg.histogram("mpx_pipeline_receive_lag_ns",
                      "Emit-to-receive lag of timestamped event frames"),
        reg.histogram("mpx_pipeline_analyze_lag_ns",
                      "Emit-to-analyze lag: frame send until every message "
                      "of the frame is folded into the lattice"),
        reg.gauge("mpx_pipeline_watermark_level",
                  "Last fully-analyzed lattice level"),
        reg.gauge("mpx_pipeline_frames_in_flight",
                  "Timestamped frames received but not yet fully analyzed"),
        reg.gauge("mpx_pipeline_streams_active",
                  "Streams with a handshake but no end-of-trace yet"),
    };
    return m;
  }
};

/// Fleet/multi-tenant telemetry: session routing, epoch checkpoints,
/// restores, and per-tenant admission control.
struct FleetMetrics {
  telemetry::Gauge& sessionsActive;
  telemetry::Gauge& tenantsActive;
  telemetry::Counter& checkpoints;
  telemetry::Counter& checkpointBytes;
  telemetry::Counter& checkpointFailures;
  telemetry::Counter& restores;
  telemetry::Counter& tenantShed;

  static FleetMetrics& get() {
    auto& reg = telemetry::registry();
    static FleetMetrics m{
        reg.gauge("mpx_fleet_sessions_active",
                  "Live analyzer sessions, one per (tenant, trace id)"),
        reg.gauge("mpx_fleet_tenants_active",
                  "Tenants with at least one live session"),
        reg.counter("mpx_fleet_checkpoints_total",
                    "Snapshot files written (epoch + explicit checkpoints)"),
        reg.counter("mpx_fleet_checkpoint_bytes_total",
                    "Bytes written into snapshot files"),
        reg.counter("mpx_fleet_checkpoint_failures_total",
                    "Snapshot writes that failed (previous file kept)"),
        reg.counter("mpx_fleet_restores_total",
                    "Analyzer sessions rebuilt from a snapshot at startup"),
        reg.counter("mpx_fleet_tenant_shed_total",
                    "Connections rejected by the per-tenant connection cap"),
    };
    return m;
  }
};

/// Lag clamped at zero: raw monotonic clocks on one machine share an
/// epoch, but scheduling can still order the reads unhelpfully.
std::uint64_t lagNs(std::uint64_t recvNs, std::uint64_t sendNs) noexcept {
  return recvNs > sendNs ? recvNs - sendNs : 0;
}

void appendJsonU64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
  if (comma) out += ", ";
}

void appendJsonStr(std::string& out, const char* key, const std::string& v,
                   bool comma = true) {
  out += '"';
  out += key;
  out += "\": \"";
  for (const char c : v) {
    // Tenant names are operator-chosen tokens; escape just enough that a
    // hostile handshake cannot break the JSON framing.
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  out += '"';
  if (comma) out += ", ";
}

void appendLagJson(std::string& out, const char* key, const LagStats& lag) {
  out += '"';
  out += key;
  out += "\": {";
  appendJsonU64(out, "count", lag.count);
  appendJsonU64(out, "sum_ns", lag.sumNs);
  appendJsonU64(out, "mean_ns", lag.meanNs());
  appendJsonU64(out, "max_ns", lag.maxNs);
  appendJsonU64(out, "last_ns", lag.lastNs, /*comma=*/false);
  out += '}';
}

/// One "key=value" query parameter, unescaped verbatim (tenant names are
/// expected to be URL-safe tokens).
std::string queryParam(const std::string& query, const char* key) {
  const std::string needle = std::string(key) + '=';
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (query.compare(pos, needle.size(), needle) == 0) {
      return query.substr(pos + needle.size(), end - pos - needle.size());
    }
    pos = end + 1;
  }
  return {};
}

}  // namespace

std::string renderViolationReport(const observer::StateSpace& space,
                                  const std::vector<observer::Violation>& vs,
                                  const observer::LatticeStats& stats,
                                  bool finished) {
  // The daemon and mpx_cli share ONE rendering + exit-code path; this
  // net-namespace name survives for the e2e byte-equality tests.
  return analysis::renderViolationReport(space, vs, stats, finished);
}

struct ObserverDaemon::Conn {
  Socket sock;
  std::thread thread;
  bool sawHandshake = false;
  bool sawEnd = false;
  /// Stream id from this connection's handshake (0 for v1/v2 peers).
  std::uint64_t streamId = 0;
  /// Protocol version the handshake declared.  Region events (wire v6
  /// capability) are rejected on connections that handshook below
  /// kRegionProtocolVersion — an old emitter cannot emit a kind it does
  /// not know, so such a frame is corruption or hostility.
  std::uint16_t version = 0;
  /// Session routing key from the handshake (""/0 for pre-v5 peers).
  std::string tenant;
  std::uint64_t traceId = 0;
  /// Set by the serving thread when it is done with the socket.  The fd is
  /// closed only after joining that thread (by the reaper or by stop()),
  /// so stop()'s shutdownBoth() never races a close().
  std::atomic<bool> done{false};
};

ObserverDaemon::ObserverDaemon(DaemonOptions opts) : opts_(std::move(opts)) {
  if (opts_.expectedStreams == 0) opts_.expectedStreams = 1;
}

ObserverDaemon::~ObserverDaemon() { stop(); }

bool ObserverDaemon::start() {
  if (!listener_.open(opts_.port)) return false;
  // Register the pipeline instruments up front so a /metrics scrape of an
  // idle daemon already exposes the series (gauges at zero, empty
  // histograms) instead of appearing only after the first frame.
  PipelineMetrics::get();
  if constexpr (telemetry::kEnabled) FleetMetrics::get();
  if (!opts_.checkpointPath.empty()) {
    // Resume-on-start: rebuild every checkpointed session.  A missing file
    // is a fresh start, not an error; a corrupt file is reported and
    // ignored (the daemon still comes up, emitters replay from scratch and
    // the reports say INCOMPLETE where the replay cannot cover the gap).
    std::vector<SnapshotEntry> entries;
    const char* err = nullptr;
    if (readSnapshotFile(opts_.checkpointPath, entries, &err)) {
      std::lock_guard<std::mutex> lk(mu_);
      for (const SnapshotEntry& e : entries) {
        observer::ckpt::Reader r(e.blob.data(), e.blob.size());
        auto session = analysis::AnalyzerSession::restore(r, opts_.jobs);
        if (session == nullptr) {
          logError("checkpoint session blob unusable; skipping");
          continue;
        }
        SessionState ss;
        ss.violationsSeen = session->violations().size();
        ss.session = std::move(session);
        sessions_[SessionKey{e.tenant, e.traceId}] = std::move(ss);
        ++sessionsRestored_;
        if constexpr (telemetry::kEnabled) FleetMetrics::get().restores.add(1);
      }
      if constexpr (telemetry::kEnabled) {
        FleetMetrics::get().sessionsActive.set(
            static_cast<std::int64_t>(sessions_.size()));
      }
    } else if (err != nullptr &&
               std::strcmp(err, "cannot open snapshot file") != 0) {
      logError(err);
    }
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

std::uint16_t ObserverDaemon::port() const noexcept {
  return listener_.port();
}

void ObserverDaemon::acceptLoop() {
  while (true) {
    Socket s = listener_.accept();
    if (!s.valid()) return;  // stopped or listener error
    // Admission control: turn the connection away (with a one-line notice)
    // when the live-connection cap is hit or any analyzer's accounted
    // working set already sits above its memory budget.  Shedding load at
    // the door keeps the daemon alive and its existing streams progressing;
    // the analysis is then INCOMPLETE/BOUNDED, which the report states.
    bool shed = false;
    if (opts_.maxConnections > 0) {
      std::lock_guard<std::mutex> lk(connsMu_);
      if (stopping_) return;
      reapFinishedLocked();
      shed = conns_.size() >= opts_.maxConnections;
    }
    if (!shed && opts_.lattice.memoryBudgetBytes > 0) {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& [key, ss] : sessions_) {
        if (ss.session != nullptr &&
            ss.session->stats().accountedBytes >
                opts_.lattice.memoryBudgetBytes) {
          shed = true;
          break;
        }
      }
    }
    if (shed) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++shed_;
      }
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().connectionsShed.add(1);
      }
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kConnShed);
      logError("shedding connection: observer at capacity");
      static const char kNotice[] =
          "MPX-SHED observer at capacity; retry later\n";
      s.sendAll(kNotice, sizeof kNotice - 1);
      s.shutdownBoth();
      continue;  // Socket destructor closes the fd
    }
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(s);
    {
      std::lock_guard<std::mutex> lk(connsMu_);
      if (stopping_) return;
      reapFinishedLocked();
      conns_.push_back(conn);
    }
    std::uint64_t ordinal = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ordinal = ++accepted_;
    }
    if constexpr (telemetry::kEnabled) DaemonMetrics::get().connections.add(1);
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kConnAccepted, ordinal);
    conn->thread = std::thread([this, conn] { serveConnection(conn); });
  }
}

void ObserverDaemon::reapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);  // Socket destructor closes the fd
    } else {
      ++it;
    }
  }
}

void ObserverDaemon::serveConnection(std::shared_ptr<Conn> conn) {
  // Marks the connection reapable on every exit path.
  struct DoneGuard {
    Conn& c;
    ~DoneGuard() { c.done.store(true, std::memory_order_release); }
  } guard{*conn};

  FrameReader reader(opts_.maxFramePayload);
  std::uint8_t buf[16 * 1024];
  std::vector<std::uint8_t> head;  // first bytes, until classified
  bool isFrameStream = false;
  bool isHttp = false;
  const char* error = nullptr;
  // An HTTP probe's request line is read in full before routing (it may
  // arrive byte by byte); anything longer than this is not a real probe.
  constexpr std::size_t kMaxRequestLine = 4096;

  while (error == nullptr) {
    const std::ptrdiff_t n = conn->sock.recvSome(buf, sizeof buf);
    if (n < 0) {
      error = "connection error";
      break;
    }
    if (n == 0) {
      if (isHttp) error = "http request truncated";
      break;  // peer closed
    }
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().bytesRx.add(static_cast<std::uint64_t>(n));
    }
    if (!isFrameStream) {
      // Decide what this connection is from its first four bytes: MPX
      // frames start with the magic; anything ASCII-request-shaped gets
      // the introspection API; the rest is garbage and is disconnected.
      head.insert(head.end(), buf, buf + n);
      if (head.size() < 4 && !isHttp) continue;
      std::uint32_t magic = 0;
      if (head.size() >= 4) std::memcpy(&magic, head.data(), 4);
      if (isHttp || magic != kFrameMagic) {
        const std::string text(reinterpret_cast<const char*>(head.data()),
                               head.size());
        if (isHttp || text.rfind("GET", 0) == 0 ||
            text.rfind("HEAD", 0) == 0) {
          isHttp = true;
          // Route only once the whole request line is here.
          const std::size_t eol = text.find('\n');
          if (eol == std::string::npos) {
            if (head.size() > kMaxRequestLine) {
              error = "http request line too long";
              break;
            }
            continue;
          }
          serveHttp(conn->sock, text.substr(0, eol));
          std::lock_guard<std::mutex> lk(mu_);
          ++rejected_;  // not an MPX stream (benign probe)
          return;
        }
        error = "not an MPX frame stream";
        break;
      }
      isFrameStream = true;
      reader.feed(head.data(), head.size());
      head.clear();
    } else {
      reader.feed(buf, static_cast<std::size_t>(n));
    }

    Frame frame;
    FrameReader::Status st;
    while ((st = reader.next(frame)) == FrameReader::Status::kFrame) {
      if constexpr (telemetry::kEnabled) DaemonMetrics::get().framesRx.add(1);
      if (!handleFrame(*conn, frame, &error)) break;
    }
    if (error == nullptr && st == FrameReader::Status::kCorrupt) {
      error = reader.error();
    }
  }

  // Half-close only: the fd itself is closed after this thread is joined,
  // so a concurrent stop() can safely shutdownBoth() on it.
  conn->sock.shutdownBoth();
  std::lock_guard<std::mutex> lk(mu_);
  if (conn->sawHandshake) {
    // Release the tenant's admission-control slot.
    auto it = tenantLive_.find(conn->tenant);
    if (it != tenantLive_.end() && it->second > 0 && --it->second == 0) {
      tenantLive_.erase(it);
    }
  }
  if (error != nullptr) {
    logError(error);
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().framesCorrupt.add(1);
    }
    if (conn->sawHandshake && !conn->sawEnd) {
      ++aborted_;
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().connectionsAborted.add(1);
      }
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kConnAborted, conn->streamId);
    } else {
      ++rejected_;
    }
  } else if (conn->sawHandshake && !conn->sawEnd) {
    // Client vanished mid-stream (SIGKILL, network reset): the analyzer
    // keeps whatever arrived; finalization may now be impossible, which
    // the report states honestly.
    logError("client closed before end-of-trace");
    ++aborted_;
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().connectionsAborted.add(1);
    }
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kConnAborted, conn->streamId);
  } else if (!conn->sawHandshake && (isFrameStream || !head.empty())) {
    // Sent some bytes but died before a complete handshake (e.g. a frame
    // cut mid-header).  Nothing reached the analyzer.
    logError("client closed before a complete handshake");
    ++rejected_;
  }
}

bool ObserverDaemon::handleFrame(Conn& conn, const Frame& frame,
                                 const char** error) {
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEvent::kFrame, conn.streamId,
      static_cast<std::uint64_t>(frame.type), frame.payload.size());
  switch (frame.type) {
    case FrameType::kHandshake:
      return handleHandshake(conn, frame, error);
    case FrameType::kEvents:
    case FrameType::kEventsTs:
    case FrameType::kEventsSparse:
      return handleEvents(conn, frame, error);
    case FrameType::kEndOfTrace:
      if (!conn.sawHandshake) {
        *error = "end-of-trace before handshake";
        return false;
      }
      if (conn.sawEnd) {
        *error = "duplicate end-of-trace";
        return false;
      }
      conn.sawEnd = true;
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kStreamEnd, conn.streamId);
      noteStreamEnd(conn);
      return true;
  }
  *error = "unknown frame type";
  return false;
}

bool ObserverDaemon::handleHandshake(Conn& conn, const Frame& frame,
                                     const char** error) {
  Handshake h;
  if (!decodeHandshake(frame.payload, h, error)) return false;
  if (h.threads == 0) {
    *error = "handshake declares zero threads";
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (conn.sawHandshake) {
    // A reconnecting emitter resends its handshake on a NEW connection,
    // never the same one, so a second handshake here is a protocol error.
    *error = "duplicate handshake";
    return false;
  }
  // Per-tenant admission control: one tenant flooding connections must not
  // starve the others.  Applied before any session is built.
  if (opts_.maxConnsPerTenant > 0) {
    const auto it = tenantLive_.find(h.tenant);
    if (it != tenantLive_.end() && it->second >= opts_.maxConnsPerTenant) {
      ++shed_;
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().connectionsShed.add(1);
        FleetMetrics::get().tenantShed.add(1);
      }
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kConnShed);
      *error = "tenant over connection limit";
      return false;
    }
  }
  const SessionKey key{h.tenant, h.traceId};
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    // First handshake of this (tenant, trace): build the session.  The
    // active property set is the handshake specs plus daemon-side
    // --property additions, first-seen order, deduplicated.
    analysis::AnalyzerSession::Config cfg;
    cfg.threads = h.threads;
    cfg.handshakeSpecs = h.specs;
    cfg.specs = h.specs;
    for (const std::string& extra : opts_.extraSpecs) {
      if (std::find(cfg.specs.begin(), cfg.specs.end(), extra) ==
          cfg.specs.end()) {
        cfg.specs.push_back(extra);
      }
    }
    cfg.tracked = h.tracked;
    cfg.vars = h.vars;
    cfg.analyses = opts_.analyses;
    cfg.expectedStreams = opts_.expectedStreams;
    cfg.lattice = opts_.lattice;
    if (opts_.jobs > 0) cfg.lattice.parallel.jobs = opts_.jobs;
    try {
      SessionState ss;
      ss.session =
          std::make_unique<analysis::AnalyzerSession>(std::move(cfg));
      it = sessions_.emplace(key, std::move(ss)).first;
    } catch (const std::exception&) {
      *error = "handshake rejected: unusable spec or variable set";
      return false;
    }
    if constexpr (telemetry::kEnabled) {
      FleetMetrics::get().sessionsActive.set(
          static_cast<std::int64_t>(sessions_.size()));
      std::size_t tenants = 0;
      std::string last;
      bool first = true;
      for (const auto& [k, s] : sessions_) {
        if (first || k.tenant != last) ++tenants;
        last = k.tenant;
        first = false;
      }
      FleetMetrics::get().tenantsActive.set(
          static_cast<std::int64_t>(tenants));
    }
  } else {
    // Additional channels of the same session must agree on the world —
    // against the specs the FIRST handshake carried, not the merged set.
    const analysis::AnalyzerSession::Config& cfg =
        it->second.session->config();
    if (h.threads != cfg.threads || h.specs != cfg.handshakeSpecs) {
      *error = "handshake conflicts with the active analysis";
      return false;
    }
  }
  conn.sawHandshake = true;
  conn.streamId = h.streamId;
  conn.version = h.version;
  conn.tenant = h.tenant;
  conn.traceId = h.traceId;
  ++tenantLive_[h.tenant];
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEvent::kHandshake, h.streamId, h.version, h.threads);
  auto& stream = it->second.streams[h.streamId];
  if (stream.snap.connections == 0) {
    stream.snap.streamId = h.streamId;
    stream.snap.tenant = h.tenant;
    stream.snap.traceId = h.traceId;
    if constexpr (telemetry::kEnabled) {
      PipelineMetrics::get().streamsActive.add(1);
    }
  }
  ++stream.snap.connections;
  stream.snap.version = h.version;
  return true;
}

bool ObserverDaemon::handleEvents(Conn& conn, const Frame& frame,
                                  const char** error) {
  if (!conn.sawHandshake) {
    *error = "events before handshake";
    return false;
  }
  if (conn.sawEnd) {
    *error = "events after end-of-trace";
    return false;
  }
  // Both timestamp-prefixed frame kinds (v3 dense, v4 sparse) feed the
  // pipeline-lag machinery; decoded messages are identical full clocks
  // either way, so everything downstream (dedup, lattice) is coding-blind.
  const bool timestamped = frame.type != FrameType::kEvents;
  std::uint64_t sendNs = 0;
  std::vector<trace::Message> messages;
  if (frame.type == FrameType::kEventsSparse) {
    if (!decodeEventsSparsePayload(frame.payload, sendNs, messages, error)) {
      return false;
    }
  } else if (frame.type == FrameType::kEventsTs) {
    if (!decodeEventsTsPayload(frame.payload, sendNs, messages, error)) {
      return false;
    }
  } else {
    if (!decodeEventsPayload(frame.payload, messages, error)) return false;
  }
  // Region events are a v6 capability: a peer that handshook below
  // kRegionProtocolVersion never legitimately produces them, so treat
  // one as stream corruption rather than silently analyzing it.
  if (conn.version < kRegionProtocolVersion) {
    for (const trace::Message& m : messages) {
      if (trace::isRegionMarker(m.event.kind)) {
        *error = "region event from a pre-v6 peer";
        return false;
      }
    }
  }
  const std::uint64_t recvNs = telemetry::rawMonotonicNs();

  // The daemon-side frame span carries the stream id, so a merged
  // emitter+daemon trace joins in one Perfetto view.
  telemetry::TraceSpan span("daemon.frame", "net");
  span.arg("stream_id", static_cast<std::int64_t>(conn.streamId));
  span.arg("messages", static_cast<std::int64_t>(messages.size()));

  std::lock_guard<std::mutex> lk(mu_);
  SessionState* ss = sessionForLocked(conn);
  if (ss == nullptr || ss->session == nullptr) {
    *error = "events for an unknown session";
    return false;
  }
  analysis::AnalyzerSession& session = *ss->session;
  auto& stream = ss->streams[conn.streamId];
  ++stream.snap.frames;
  stream.snap.lastEventNs = recvNs;
  if (timestamped) {
    const std::uint64_t lag = lagNs(recvNs, sendNs);
    stream.snap.receiveLag.observe(lag);
    if constexpr (telemetry::kEnabled) {
      PipelineMetrics::get().receiveLagNs.record(lag);
    }
  }
  // Per-thread max own-clock index of this frame: the frame counts as
  // analyzed once the session's consumption watermark covers it.
  std::vector<LocalSeq> frameMaxK(session.config().threads, 0);
  for (const trace::Message& m : messages) {
    const analysis::AnalyzerSession::Ingest res = session.ingest(m, error);
    if (res == analysis::AnalyzerSession::Ingest::kError) return false;
    // ingest validated thread and own-clock on both non-error outcomes.
    const ThreadId j = m.event.thread;
    frameMaxK[j] = std::max(frameMaxK[j], m.clock[j]);
    if (res == analysis::AnalyzerSession::Ingest::kDuplicate) {
      ++duplicates_;
      ++stream.snap.duplicates;
      if constexpr (telemetry::kEnabled) {
        DaemonMetrics::get().duplicatesIgnored.add(1);
      }
      continue;
    }
    ++ingested_;
    ++stream.snap.messages;
    if constexpr (telemetry::kEnabled) {
      DaemonMetrics::get().messagesIngested.add(1);
    }
  }
  if (timestamped) {
    stream.inFlight.push_back(PendingFrame{std::move(frameMaxK), sendNs});
  }
  settleAnalyzedLocked();
  noteViolationsLocked(*ss);
  maybeCheckpointLocked();
  return true;
}

void ObserverDaemon::noteStreamEnd(Conn& conn) {
  std::lock_guard<std::mutex> lk(mu_);
  SessionState* ss = sessionForLocked(conn);
  if (ss == nullptr || ss->session == nullptr) return;
  auto& stream = ss->streams[conn.streamId];
  if (!stream.snap.ended) {
    stream.snap.ended = true;
    if constexpr (telemetry::kEnabled) {
      PipelineMetrics::get().streamsActive.add(-1);
    }
  }
  ss->session->noteStreamEnd();
  settleAnalyzedLocked();
  noteViolationsLocked(*ss);
  if (ss->session->finished() && !opts_.checkpointPath.empty()) {
    // A finished session's last epoch: the snapshot then holds the final
    // verdict, so a restart after completion still serves the report.
    checkpointLocked();
  }
  finishedCv_.notify_all();
}

const ObserverDaemon::SessionState* ObserverDaemon::defaultSessionLocked()
    const {
  if (sessions_.empty()) return nullptr;
  const auto it = sessions_.find(SessionKey{});
  return it != sessions_.end() ? &it->second : &sessions_.begin()->second;
}

ObserverDaemon::SessionState* ObserverDaemon::sessionForLocked(
    const Conn& conn) {
  const auto it = sessions_.find(SessionKey{conn.tenant, conn.traceId});
  return it != sessions_.end() ? &it->second : nullptr;
}

bool ObserverDaemon::allFinishedLocked() const {
  if (sessions_.empty()) return false;
  for (const auto& [key, ss] : sessions_) {
    if (ss.session == nullptr || !ss.session->finished()) return false;
  }
  return true;
}

void ObserverDaemon::settleAnalyzedLocked() {
  const std::uint64_t now = telemetry::rawMonotonicNs();
  std::int64_t totalInFlight = 0;
  for (auto& [key, ss] : sessions_) {
    if (ss.session == nullptr) continue;
    const std::vector<LocalSeq>& ck = ss.session->consumedK();
    const bool sessionDone = ss.session->finished();
    for (auto& [id, stream] : ss.streams) {
      while (!stream.inFlight.empty()) {
        const PendingFrame& f = stream.inFlight.front();
        bool analyzed = sessionDone;  // finalization consumed everything
        if (!analyzed) {
          analyzed = true;
          for (std::size_t j = 0; j < f.maxK.size(); ++j) {
            if (j >= ck.size() || ck[j] < f.maxK[j]) {
              analyzed = false;
              break;
            }
          }
        }
        if (!analyzed) break;  // frames settle in arrival order per stream
        const std::uint64_t lag = lagNs(now, f.sendNs);
        stream.snap.analyzeLag.observe(lag);
        if constexpr (telemetry::kEnabled) {
          PipelineMetrics::get().analyzeLagNs.record(lag);
        }
        stream.inFlight.pop_front();
      }
      stream.snap.framesInFlight = stream.inFlight.size();
      totalInFlight += static_cast<std::int64_t>(stream.inFlight.size());
    }
  }
  if constexpr (telemetry::kEnabled) {
    PipelineMetrics::get().framesInFlight.set(totalInFlight);
    const SessionState* def = defaultSessionLocked();
    PipelineMetrics::get().watermarkLevel.set(
        def != nullptr && def->session != nullptr
            ? static_cast<std::int64_t>(def->session->watermarkLevel())
            : 0);
    // Per-tenant budget gauges: how much of the lattice memory budget each
    // tenant's sessions account for (label baked into the series name).
    std::string tenant;
    std::uint64_t bytes = 0;
    bool have = false;
    const auto flush = [&] {
      if (!have) return;
      telemetry::registry()
          .gauge("mpx_observer_budget_accounted_bytes{tenant=\"" + tenant +
                     "\"}",
                 "Analyzer working-set bytes accounted to this tenant")
          .set(static_cast<std::int64_t>(bytes));
    };
    for (const auto& [key, ss] : sessions_) {
      if (ss.session == nullptr) continue;
      if (!have || key.tenant != tenant) {
        flush();
        tenant = key.tenant;
        bytes = 0;
        have = true;
      }
      bytes += ss.session->stats().accountedBytes;
    }
    flush();
  }
}

void ObserverDaemon::noteViolationsLocked(SessionState& ss) {
  if (ss.session == nullptr) return;
  const std::size_t n = ss.session->violations().size();
  if (n > ss.violationsSeen) {
    ss.violationsSeen = n;
    // On-violation flight dump: the post-mortem trail of how the pipeline
    // got here, written while the state is still fresh.
    if (!opts_.flightDumpPath.empty()) {
      telemetry::FlightRecorder::global().record(
          telemetry::FlightEvent::kDump, /*reason=*/2);
      telemetry::FlightRecorder::global().dumpToFile(
          opts_.flightDumpPath.c_str());
    }
  }
}

void ObserverDaemon::maybeCheckpointLocked() {
  if (opts_.checkpointPath.empty() || opts_.checkpointIntervalLevels == 0) {
    return;
  }
  for (const auto& [key, ss] : sessions_) {
    if (ss.session == nullptr) continue;
    if (ss.session->watermarkLevel() >=
        ss.session->lastCheckpointLevel() + opts_.checkpointIntervalLevels) {
      checkpointLocked();
      return;  // one file covers every session
    }
  }
}

bool ObserverDaemon::checkpointLocked() {
  if (opts_.checkpointPath.empty() || sessions_.empty()) return false;
  std::vector<SnapshotEntry> entries;
  entries.reserve(sessions_.size());
  for (auto& [key, ss] : sessions_) {
    if (ss.session == nullptr) continue;
    observer::ckpt::Writer w;
    ss.session->checkpoint(w);
    entries.push_back(SnapshotEntry{key.tenant, key.traceId, w.take()});
  }
  std::size_t bytes = 0;
  for (const SnapshotEntry& e : entries) bytes += e.blob.size();
  const char* err = nullptr;
  if (!writeSnapshotFile(opts_.checkpointPath, entries, &err)) {
    logError(err != nullptr ? err : "snapshot write failed");
    if constexpr (telemetry::kEnabled) {
      FleetMetrics::get().checkpointFailures.add(1);
    }
    return false;
  }
  ++checkpointsWritten_;
  if constexpr (telemetry::kEnabled) {
    FleetMetrics::get().checkpoints.add(1);
    FleetMetrics::get().checkpointBytes.add(bytes);
  }
  return true;
}

bool ObserverDaemon::checkpointNow() {
  std::lock_guard<std::mutex> lk(mu_);
  return checkpointLocked();
}

std::uint64_t ObserverDaemon::checkpointsWritten() const {
  std::lock_guard<std::mutex> lk(mu_);
  return checkpointsWritten_;
}

std::uint64_t ObserverDaemon::sessionsRestored() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessionsRestored_;
}

std::size_t ObserverDaemon::sessionCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.size();
}

std::vector<SessionSnapshot> ObserverDaemon::sessionSnapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SessionSnapshot> out;
  out.reserve(sessions_.size());
  for (const auto& [key, ss] : sessions_) {
    if (ss.session == nullptr) continue;
    SessionSnapshot s;
    s.tenant = key.tenant;
    s.traceId = key.traceId;
    s.finished = ss.session->finished();
    s.epoch = ss.session->epoch();
    s.restores = ss.session->restoreCount();
    s.watermarkLevel = ss.session->watermarkLevel();
    s.pendingMessages = ss.session->pendingMessages();
    s.violations = ss.session->violations().size();
    s.streams = ss.streams.size();
    s.streamsEnded = ss.session->streamsEnded();
    s.accountedBytes = ss.session->stats().accountedBytes;
    s.streamError = ss.session->streamError();
    out.push_back(std::move(s));
  }
  return out;
}

void ObserverDaemon::serveHttp(Socket& sock, const std::string& requestLine) {
  // "GET /path HTTP/1.x" — the path is the second whitespace token.
  std::string path = "/";
  std::string query;
  {
    const std::size_t sp1 = requestLine.find(' ');
    if (sp1 != std::string::npos) {
      const std::size_t start = requestLine.find_first_not_of(' ', sp1);
      if (start != std::string::npos) {
        std::size_t end = requestLine.find(' ', start);
        if (end == std::string::npos) end = requestLine.size();
        path = requestLine.substr(start, end - start);
        while (!path.empty() &&
               (path.back() == '\r' || path.back() == '\n')) {
          path.pop_back();
        }
      }
    }
    const std::size_t q = path.find('?');
    if (q != std::string::npos) {
      query = path.substr(q + 1);
      path.resize(q);
    }
  }

  const char* status = "200 OK";
  const char* contentType = "text/plain";
  std::string body;
  if (path == "/" || path.empty()) {
    body = renderStatus();  // the legacy status page
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/metrics") {
    body = telemetry::toPrometheusText(telemetry::registry().snapshot());
  } else if (path == "/streams") {
    contentType = "application/json";
    body = renderStreamsJson();
  } else if (path == "/report") {
    // ?tenant=NAME&trace=ID selects a session; no params = the default.
    const std::string tenant = queryParam(query, "tenant");
    const std::string traceStr = queryParam(query, "trace");
    std::uint64_t traceId = 0;
    bool traceOk = true;
    if (!traceStr.empty()) {
      try {
        traceId = std::stoull(traceStr);
      } catch (const std::exception&) {
        traceOk = false;
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    const SessionState* ss = nullptr;
    if (!traceOk) {
      ss = nullptr;
    } else if (tenant.empty() && traceStr.empty()) {
      ss = defaultSessionLocked();
    } else {
      const auto it = sessions_.find(SessionKey{tenant, traceId});
      ss = it != sessions_.end() ? &it->second : nullptr;
    }
    if (ss != nullptr && ss->session != nullptr) {
      body = ss->session->renderReport();
      const std::vector<observer::AnalysisReport> reports =
          ss->session->analysisReports();
      if (!reports.empty()) {
        body += '\n';
        body += analysis::renderAnalysisReports(reports);
      }
    } else if (!tenant.empty() || !traceStr.empty()) {
      status = "404 Not Found";
      body = "no such session\n";
    } else {
      body = renderViolationReport(observer::StateSpace{}, {},
                                   observer::LatticeStats{}, false);
    }
  } else if (path == "/flightrecorder") {
    contentType = "application/json";
    telemetry::FlightRecorder::global().record(
        telemetry::FlightEvent::kDump, /*reason=*/3);
    body = telemetry::FlightRecorder::global().toJson();
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }

  std::ostringstream os;
  os << "HTTP/1.0 " << status << "\r\nContent-Type: " << contentType
     << "\r\nContent-Length: " << body.size()
     << "\r\nConnection: close\r\n\r\n"
     << body;
  const std::string resp = os.str();
  sock.sendAll(resp.data(), resp.size());
  sock.shutdownWrite();
}

bool ObserverDaemon::waitFinished(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  finishedCv_.wait_for(lk, timeout, [this] {
    if (allFinishedLocked()) return true;
    for (const auto& [key, ss] : sessions_) {
      if (ss.session != nullptr && !ss.session->streamError().empty()) {
        return true;
      }
    }
    return false;
  });
  return allFinishedLocked();
}

void ObserverDaemon::stop() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(connsMu_);
    if (stopping_) return;
    stopping_ = true;
    conns = conns_;
  }
  listener_.stop();
  if (acceptThread_.joinable()) acceptThread_.join();
  for (auto& c : conns) c->sock.shutdownBoth();
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  listener_.close();
  {
    std::lock_guard<std::mutex> lk(mu_);
    finishedCv_.notify_all();
  }
}

bool ObserverDaemon::finished() const {
  std::lock_guard<std::mutex> lk(mu_);
  return allFinishedLocked();
}

bool ObserverDaemon::handshaken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !sessions_.empty();
}

std::vector<observer::Violation> ObserverDaemon::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  return ss != nullptr && ss->session != nullptr
             ? ss->session->violations()
             : std::vector<observer::Violation>{};
}

observer::LatticeStats ObserverDaemon::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  return ss != nullptr && ss->session != nullptr ? ss->session->stats()
                                                 : observer::LatticeStats{};
}

std::vector<std::string> ObserverDaemon::specs() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  return ss != nullptr && ss->session != nullptr
             ? ss->session->config().specs
             : std::vector<std::string>{};
}

std::vector<observer::AnalysisReport> ObserverDaemon::analysisReports() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  return ss != nullptr && ss->session != nullptr
             ? ss->session->analysisReports()
             : std::vector<observer::AnalysisReport>{};
}

std::uint64_t ObserverDaemon::connectionsAccepted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return accepted_;
}

std::uint64_t ObserverDaemon::connectionsAborted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return aborted_;
}

std::uint64_t ObserverDaemon::connectionsRejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

std::uint64_t ObserverDaemon::connectionsShed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

std::uint64_t ObserverDaemon::messagesIngested() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ingested_;
}

std::uint64_t ObserverDaemon::duplicatesIgnored() const {
  std::lock_guard<std::mutex> lk(mu_);
  return duplicates_;
}

std::uint64_t ObserverDaemon::watermarkLevel() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  return ss != nullptr && ss->session != nullptr
             ? ss->session->watermarkLevel()
             : 0;
}

std::vector<StreamSnapshot> ObserverDaemon::streamSnapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<StreamSnapshot> out;
  for (const auto& [key, ss] : sessions_) {
    for (const auto& [id, s] : ss.streams) out.push_back(s.snap);
  }
  return out;
}

std::string ObserverDaemon::renderStreamsJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  ";
  out += "\"handshaken\": ";
  out += !sessions_.empty() ? "true" : "false";
  out += ", \"finished\": ";
  out += allFinishedLocked() ? "true" : "false";
  out += ",\n  ";
  const SessionState* def = defaultSessionLocked();
  const analysis::AnalyzerSession* ds =
      def != nullptr ? def->session.get() : nullptr;
  const observer::LatticeStats stats =
      ds != nullptr ? ds->stats() : observer::LatticeStats{};
  appendJsonU64(out, "levels", stats.levels);
  appendJsonU64(out, "watermark_level",
                ds != nullptr ? ds->watermarkLevel() : 0);
  appendJsonU64(out, "pending_messages",
                ds != nullptr ? ds->pendingMessages() : 0);
  out += "\"degradation\": \"";
  out += observer::toString(stats.degradation);
  out += "\", \"bound_reason\": \"";
  out += observer::toString(stats.boundReason);
  out += "\",\n  ";
  std::uint64_t streamsEnded = 0;
  for (const auto& [key, ss] : sessions_) {
    if (ss.session != nullptr) streamsEnded += ss.session->streamsEnded();
  }
  appendJsonU64(out, "streams_ended", streamsEnded);
  appendJsonU64(out, "expected_streams", opts_.expectedStreams);
  appendJsonU64(out, "connections_accepted", accepted_);
  appendJsonU64(out, "messages_ingested", ingested_);
  appendJsonU64(out, "duplicates_ignored", duplicates_);
  appendJsonU64(out, "checkpoints_written", checkpointsWritten_);
  appendJsonU64(out, "sessions_restored", sessionsRestored_);
  std::uint64_t violationsTotal = 0;
  for (const auto& [key, ss] : sessions_) {
    if (ss.session != nullptr) violationsTotal += ss.session->violations().size();
  }
  appendJsonU64(out, "violations_total", violationsTotal);
  appendJsonU64(out, "sessions_active", sessions_.size(),
                /*comma=*/false);
  out += ",\n  \"sessions\": [";
  bool firstSession = true;
  for (const auto& [key, ss] : sessions_) {
    if (ss.session == nullptr) continue;
    out += firstSession ? "\n" : ",\n";
    firstSession = false;
    out += "    {";
    appendJsonStr(out, "tenant", key.tenant);
    appendJsonU64(out, "trace_id", key.traceId);
    out += "\"finished\": ";
    out += ss.session->finished() ? "true" : "false";
    out += ", ";
    appendJsonU64(out, "epoch", ss.session->epoch());
    appendJsonU64(out, "restores", ss.session->restoreCount());
    appendJsonU64(out, "watermark_level", ss.session->watermarkLevel());
    appendJsonU64(out, "pending_messages", ss.session->pendingMessages());
    appendJsonU64(out, "violations", ss.session->violations().size());
    appendJsonU64(out, "streams_ended", ss.session->streamsEnded());
    appendJsonU64(out, "accounted_bytes", ss.session->stats().accountedBytes);
    appendJsonU64(out, "streams", ss.streams.size(), /*comma=*/false);
    out += '}';
  }
  out += firstSession ? "]" : "\n  ]";
  out += ",\n  \"streams\": [";
  bool first = true;
  for (const auto& [key, ss] : sessions_) {
    for (const auto& [id, s] : ss.streams) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {";
      appendJsonU64(out, "stream_id", s.snap.streamId);
      appendJsonStr(out, "tenant", s.snap.tenant);
      appendJsonU64(out, "trace_id", s.snap.traceId);
      appendJsonU64(out, "version", s.snap.version);
      appendJsonU64(out, "connections", s.snap.connections);
      appendJsonU64(out, "frames", s.snap.frames);
      appendJsonU64(out, "messages", s.snap.messages);
      appendJsonU64(out, "duplicates", s.snap.duplicates);
      appendJsonU64(out, "frames_in_flight", s.inFlight.size());
      out += "\"ended\": ";
      out += s.snap.ended ? "true" : "false";
      out += ", ";
      appendLagJson(out, "receive_lag_ns", s.snap.receiveLag);
      out += ", ";
      appendLagJson(out, "analyze_lag_ns", s.snap.analyzeLag);
      out += ", ";
      appendJsonU64(out, "last_event_ns", s.snap.lastEventNs,
                    /*comma=*/false);
      out += '}';
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string ObserverDaemon::streamError() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  return ss != nullptr && ss->session != nullptr ? ss->session->streamError()
                                                 : std::string{};
}

std::string ObserverDaemon::renderReport() const {
  std::lock_guard<std::mutex> lk(mu_);
  const SessionState* ss = defaultSessionLocked();
  if (ss != nullptr && ss->session != nullptr) {
    return ss->session->renderReport();
  }
  return renderViolationReport(observer::StateSpace{}, {},
                               observer::LatticeStats{}, false);
}

std::string ObserverDaemon::renderStatus() const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const SessionState* def = defaultSessionLocked();
    const analysis::AnalyzerSession* ds =
        def != nullptr ? def->session.get() : nullptr;
    std::uint64_t streamsEnded = 0;
    for (const auto& [key, ss] : sessions_) {
      if (ss.session != nullptr) streamsEnded += ss.session->streamsEnded();
    }
    os << "mpx_observerd status\n";
    os << "handshaken: " << (!sessions_.empty() ? "yes" : "no")
       << ", streams ended: " << streamsEnded << '/' << opts_.expectedStreams
       << '\n';
    os << "sessions: " << sessions_.size()
       << " restored=" << sessionsRestored_
       << " checkpoints=" << checkpointsWritten_ << '\n';
    os << "connections: accepted=" << accepted_ << " aborted=" << aborted_
       << " rejected=" << rejected_ << " shed=" << shed_ << '\n';
    os << "messages: ingested=" << ingested_
       << " duplicates_ignored=" << duplicates_ << '\n';
    if (ds != nullptr && !ds->streamError().empty()) {
      os << "stream error: " << ds->streamError() << '\n';
    }
    os << '\n';
    if (ds != nullptr) {
      os << ds->renderReport();
      const std::vector<observer::AnalysisReport> reports =
          ds->analysisReports();
      if (!reports.empty()) {
        os << '\n' << analysis::renderAnalysisReports(reports);
      }
    } else {
      os << renderViolationReport(observer::StateSpace{}, {},
                                  observer::LatticeStats{}, false);
    }
  }
  os << '\n' << telemetry::toPrometheusText(telemetry::registry().snapshot());
  return os.str();
}

void ObserverDaemon::logError(const char* what) const {
  if (opts_.logErrors) {
    std::fprintf(stderr, "mpx_observerd: dropping connection: %s\n", what);
  }
}

}  // namespace mpx::net
