// Thin RAII wrappers over POSIX TCP sockets — just enough for the paper's
// Fig. 4 deployment (instrumented program and observer as separate
// processes talking over a socket).  No frameworks: blocking sockets, a
// self-pipe to make accept() and recv() interruptible, full-buffer
// send/recv helpers.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace mpx::net {

/// A connected TCP stream socket.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking connect to host:port.  Returns an invalid socket on failure
  /// (errno preserved); never throws.
  static Socket connectTo(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes the whole buffer (looping over partial sends, retrying EINTR).
  /// Returns false on any error — the connection is then unusable.
  bool sendAll(const void* data, std::size_t len) noexcept;

  /// Reads up to `len` bytes.  Returns >0 bytes read, 0 on orderly peer
  /// shutdown, -1 on error.
  std::ptrdiff_t recvSome(void* data, std::size_t len) noexcept;

  /// Half-close the write side (signals end-of-stream to the peer while
  /// still allowing reads).
  void shutdownWrite() noexcept;
  /// Full shutdown: wakes any thread blocked in recv on this socket.
  void shutdownBoth() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.  accept() can be woken from
/// another thread via stop() (self-pipe; closing the listening fd alone is
/// not a reliable wakeup).
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).  Returns false
  /// on failure.
  bool open(std::uint16_t port);

  /// The bound port (useful after open(0)).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Blocks until a connection arrives or stop() is called.  Returns an
  /// invalid socket once stopped or on listener error.
  Socket accept();

  /// Wakes all accept() calls; subsequent accepts return invalid sockets.
  void stop() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  int wakePipe_[2] = {-1, -1};  ///< [0]=read end polled by accept, [1]=write
  std::uint16_t port_ = 0;
};

}  // namespace mpx::net
