// Predictive deadlock detection via lock-order graphs.
//
// A successful execution that acquires lock B while holding lock A, and
// elsewhere acquires A while holding B, deadlocks under a different
// schedule even though the observed run completed — the same
// predict-from-one-run idea the paper applies to safety properties, applied
// to the lock acquisition order.  We build the lock-order graph from the
// execution's kLockAcquire events (with the locks held at each acquire) and
// report every cycle as a potential deadlock, with the witnessing
// (thread, held-lock, acquired-lock) edges.
//
// The interpreter also detects *actual* deadlocks (no runnable thread);
// this module predicts the ones that did not happen.  Edge COLLECTION
// lives in the DeadlockAnalysis lattice plugin (deadlock_analysis.hpp) —
// this header keeps the pure graph algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace mpx::detect {

/// One edge of the lock-order graph: `thread` acquired `to` while holding
/// `from`.
struct LockOrderEdge {
  ThreadId thread = kNoThread;
  LockId from = 0;
  LockId to = 0;
  GlobalSeq witness = kNoSeq;  ///< globalSeq of the acquiring event

  friend bool operator==(const LockOrderEdge&, const LockOrderEdge&) = default;
};

/// A potential deadlock: a cycle in the lock-order graph.
struct DeadlockReport {
  std::vector<LockId> cycle;           ///< locks in cycle order
  std::vector<LockOrderEdge> edges;    ///< one witness edge per cycle arc

  [[nodiscard]] std::string describe(
      const std::vector<std::string>& lockNames) const;
};

/// Enumerates the elementary cycles of the lock-order graph, each reported
/// once (canonicalized by smallest-lock rotation), with one witness edge
/// per cycle arc.
[[nodiscard]] std::vector<DeadlockReport> findLockCycles(
    const std::vector<LockOrderEdge>& edges);

}  // namespace mpx::detect
