// Predictive deadlock detection via lock-order graphs.
//
// A successful execution that acquires lock B while holding lock A, and
// elsewhere acquires A while holding B, deadlocks under a different
// schedule even though the observed run completed — the same
// predict-from-one-run idea the paper applies to safety properties, applied
// to the lock acquisition order.  We build the lock-order graph from the
// execution's kLockAcquire events (with the locks held at each acquire) and
// report every cycle as a potential deadlock, with the witnessing
// (thread, held-lock, acquired-lock) edges.
//
// The interpreter also detects *actual* deadlocks (no runnable thread);
// this module predicts the ones that did not happen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "program/scheduler.hpp"
#include "trace/event.hpp"

namespace mpx::detect {

/// One edge of the lock-order graph: `thread` acquired `to` while holding
/// `from`.
struct LockOrderEdge {
  ThreadId thread = kNoThread;
  LockId from = 0;
  LockId to = 0;
  GlobalSeq witness = kNoSeq;  ///< globalSeq of the acquiring event

  friend bool operator==(const LockOrderEdge&, const LockOrderEdge&) = default;
};

/// A potential deadlock: a cycle in the lock-order graph.
struct DeadlockReport {
  std::vector<LockId> cycle;           ///< locks in cycle order
  std::vector<LockOrderEdge> edges;    ///< one witness edge per cycle arc

  [[nodiscard]] std::string describe(
      const std::vector<std::string>& lockNames) const;
};

class DeadlockPredictor {
 public:
  /// Analyzes a completed execution.  `record` must come from a program run
  /// (its locksHeld array gives the held-set at each event).
  [[nodiscard]] std::vector<DeadlockReport> analyze(
      const program::ExecutionRecord& record,
      const program::Program& prog) const;

  /// The raw lock-order edges (deduplicated), for inspection/tests.
  [[nodiscard]] std::vector<LockOrderEdge> lockOrderEdges(
      const program::ExecutionRecord& record,
      const program::Program& prog) const;
};

}  // namespace mpx::detect
