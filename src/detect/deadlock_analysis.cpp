#include "detect/deadlock_analysis.hpp"

#include <algorithm>
#include <sstream>

namespace mpx::detect {

DeadlockAnalysis::DeadlockAnalysis(const program::Program& prog)
    : prog_(&prog) {
  for (LockId l = 0; l < prog.lockVars.size(); ++l) {
    lockOfVar_.emplace(prog.lockVars[l], l);
  }
}

void DeadlockAnalysis::onRawEvent(const trace::Event& event,
                                  const std::vector<LockId>& locksHeld) {
  if (event.kind != trace::EventKind::kLockAcquire) return;
  const auto it = lockOfVar_.find(event.var);
  if (it == lockOfVar_.end()) return;
  const LockId acquired = it->second;
  // locksHeld includes the just-acquired lock.
  for (const LockId held : locksHeld) {
    if (held == acquired) continue;
    LockOrderEdge edge{event.thread, held, acquired, event.globalSeq};
    const bool dup = std::any_of(
        edges_.begin(), edges_.end(), [&edge](const LockOrderEdge& x) {
          return x.from == edge.from && x.to == edge.to;
        });
    if (!dup) edges_.push_back(edge);
  }
}

void DeadlockAnalysis::finish(const observer::LatticeStats& stats) {
  (void)stats;
  reports_ = findLockCycles(edges_);
}

namespace {
constexpr std::uint8_t kDeadlockCkptVersion = 1;
}  // namespace

void DeadlockAnalysis::checkpoint(observer::ckpt::Writer& w) const {
  w.u8(kDeadlockCkptVersion);
  w.u64(edges_.size());
  for (const LockOrderEdge& e : edges_) {
    w.u32(e.thread);
    w.u32(e.from);
    w.u32(e.to);
    w.u64(e.witness);
  }
}

bool DeadlockAnalysis::restore(observer::ckpt::Reader& r) {
  if (r.u8() != kDeadlockCkptVersion) return false;
  edges_.clear();
  const std::uint64_t n = r.len(20);
  edges_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    LockOrderEdge e;
    e.thread = r.u32();
    e.from = r.u32();
    e.to = r.u32();
    e.witness = r.u64();
    edges_.push_back(e);
  }
  return r.ok();
}

observer::AnalysisReport DeadlockAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = reports_.size();
  std::ostringstream os;
  os << "potential deadlocks: " << reports_.size() << '\n';
  for (const DeadlockReport& d : reports_) {
    os << "  " << d.describe(prog_->lockNames) << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::detect
