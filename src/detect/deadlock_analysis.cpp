#include "detect/deadlock_analysis.hpp"

#include <algorithm>
#include <sstream>

namespace mpx::detect {

DeadlockAnalysis::DeadlockAnalysis(const program::Program& prog)
    : prog_(&prog) {
  for (LockId l = 0; l < prog.lockVars.size(); ++l) {
    lockOfVar_.emplace(prog.lockVars[l], l);
  }
}

void DeadlockAnalysis::onRawEvent(const trace::Event& event,
                                  const std::vector<LockId>& locksHeld) {
  if (event.kind != trace::EventKind::kLockAcquire) return;
  const auto it = lockOfVar_.find(event.var);
  if (it == lockOfVar_.end()) return;
  const LockId acquired = it->second;
  // locksHeld includes the just-acquired lock.
  for (const LockId held : locksHeld) {
    if (held == acquired) continue;
    LockOrderEdge edge{event.thread, held, acquired, event.globalSeq};
    const bool dup = std::any_of(
        edges_.begin(), edges_.end(), [&edge](const LockOrderEdge& x) {
          return x.from == edge.from && x.to == edge.to;
        });
    if (!dup) edges_.push_back(edge);
  }
}

void DeadlockAnalysis::finish(const observer::LatticeStats& stats) {
  (void)stats;
  reports_ = findLockCycles(edges_);
}

observer::AnalysisReport DeadlockAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = reports_.size();
  std::ostringstream os;
  os << "potential deadlocks: " << reports_.size() << '\n';
  for (const DeadlockReport& d : reports_) {
    os << "  " << d.describe(prog_->lockNames) << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::detect
