#include "detect/race_analysis.hpp"

#include <sstream>

namespace mpx::detect {

RaceAnalysis::RaceAnalysis(const program::Program& prog,
                           const std::vector<std::string>& varNames,
                           RaceOptions opts)
    : prog_(&prog),
      varNames_(varNames),
      opts_(opts),
      candidates_([&] {
        std::unordered_set<VarId> c;
        for (const auto& n : varNames) c.insert(prog.vars.id(n));
        return c;
      }()),
      instr_(core::RelevancePolicy::accessesOf(candidates_), sink_) {
  instr_.excludeFromCausality(candidates_);
}

std::string RaceAnalysis::name() const {
  std::string n = "race:";
  for (const auto& v : varNames_) n += ' ' + v;
  return n;
}

void RaceAnalysis::onRawEvent(const trace::Event& event,
                              const std::vector<LockId>& locksHeld) {
  instr_.onEvent(event);
  locksets_.emplace(event.globalSeq, locksHeld);
}

void RaceAnalysis::finish(const observer::LatticeStats& stats) {
  (void)stats;
  races_ = RacePredictor(opts_).analyze(sink_.messages(), locksets_);
}

observer::AnalysisReport RaceAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = races_.size();
  std::ostringstream os;
  os << "races: " << races_.size() << '\n';
  for (const RaceReport& race : races_) {
    os << "  " << race.describe(prog_->vars) << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::detect
