#include "detect/race_analysis.hpp"

#include <sstream>

namespace mpx::detect {

RaceAnalysis::RaceAnalysis(const program::Program& prog,
                           const std::vector<std::string>& varNames,
                           RaceOptions opts)
    : prog_(&prog),
      varNames_(varNames),
      opts_(opts),
      candidates_([&] {
        std::unordered_set<VarId> c;
        for (const auto& n : varNames) c.insert(prog.vars.id(n));
        return c;
      }()),
      instr_(core::RelevancePolicy::accessesOf(candidates_), sink_) {
  instr_.excludeFromCausality(candidates_);
}

std::string RaceAnalysis::name() const {
  std::string n = "race:";
  for (const auto& v : varNames_) n += ' ' + v;
  return n;
}

void RaceAnalysis::onRawEvent(const trace::Event& event,
                              const std::vector<LockId>& locksHeld) {
  instr_.onEvent(event);
  locksets_.emplace(event.globalSeq, locksHeld);
  rawLog_.emplace_back(event, locksHeld);
}

namespace {

constexpr std::uint8_t kRaceCkptVersion = 1;
constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(trace::EventKind::kRegionEnd);

void writeEvent(observer::ckpt::Writer& w, const trace::Event& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u32(e.thread);
  w.u32(e.var);
  w.i64(e.value);
  w.u64(e.localSeq);
  w.u64(e.globalSeq);
}

bool readEvent(observer::ckpt::Reader& r, trace::Event& e) {
  const std::uint8_t kind = r.u8();
  if (kind > kMaxEventKind) return false;
  e.kind = static_cast<trace::EventKind>(kind);
  e.thread = r.u32();
  e.var = r.u32();
  e.value = r.i64();
  e.localSeq = r.u64();
  e.globalSeq = r.u64();
  return r.ok();
}

}  // namespace

void RaceAnalysis::checkpoint(observer::ckpt::Writer& w) const {
  w.u8(kRaceCkptVersion);
  w.u64(rawLog_.size());
  for (const auto& [event, locks] : rawLog_) {
    writeEvent(w, event);
    w.u64(locks.size());
    for (const LockId l : locks) w.u32(l);
  }
}

bool RaceAnalysis::restore(observer::ckpt::Reader& r) {
  if (r.u8() != kRaceCkptVersion) return false;
  const std::uint64_t n = r.len(29 + 8);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    trace::Event event;
    if (!readEvent(r, event)) return false;
    std::vector<LockId> locks(static_cast<std::size_t>(r.len(4)));
    for (auto& l : locks) l = r.u32();
    if (!r.ok()) return false;
    onRawEvent(event, locks);
  }
  return r.ok();
}

void RaceAnalysis::finish(const observer::LatticeStats& stats) {
  (void)stats;
  races_ = RacePredictor(opts_).analyze(sink_.messages(), locksets_);
  if (suppressionSource_) {
    std::unordered_set<VarId> raceFree;
    for (const VarId v : suppressionSource_()) raceFree.insert(v);
    const std::size_t before = races_.size();
    std::erase_if(races_, [&](const RaceReport& r) {
      return raceFree.contains(r.var);
    });
    suppressed_ = before - races_.size();
  }
}

observer::AnalysisReport RaceAnalysis::report() const {
  observer::AnalysisReport r;
  r.name = name();
  r.kind = kind();
  r.violationCount = races_.size();
  std::ostringstream os;
  os << "races: " << races_.size();
  if (suppressed_ != 0) os << " (mhp-suppressed: " << suppressed_ << ')';
  os << '\n';
  for (const RaceReport& race : races_) {
    os << "  " << race.describe(prog_->vars) << '\n';
  }
  r.text = os.str();
  return r;
}

}  // namespace mpx::detect
