// The predictive race detector as a lattice-engine plugin.
//
// The detector never needed the lattice itself — it needs the MVC clocks of
// all accesses of the candidate variables, under the race-detection
// causality projection (candidates excluded from MVC joins; program order
// and synchronization kept).  As a plugin it builds those clocks from the
// engine's raw-event feed with a private Instrumentor, so one observed
// execution drives property checking AND race prediction in one pass.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/instrumentor.hpp"
#include "detect/race_detector.hpp"
#include "observer/analysis.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::detect {

class RaceAnalysis final : public observer::Analysis {
 public:
  /// Watches the named variables of `prog` for races.  `prog` must outlive
  /// the plugin (its VarTable renders the report).
  RaceAnalysis(const program::Program& prog,
               const std::vector<std::string>& varNames,
               RaceOptions opts = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string kind() const override { return "race"; }

  void onRawEvent(const trace::Event& event,
                  const std::vector<LockId>& locksHeld) override;
  void finish(const observer::LatticeStats& stats) override;
  /// The Instrumentor's clock state is a deterministic function of the raw
  /// event stream, so the checkpoint is the replayable (event, lockset)
  /// log; restore() — valid on a FRESHLY constructed plugin only — replays
  /// it through onRawEvent.
  void checkpoint(observer::ckpt::Writer& w) const override;
  [[nodiscard]] bool restore(observer::ckpt::Reader& r) override;
  [[nodiscard]] observer::AnalysisReport report() const override;

  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept {
    return races_;
  }

  /// MHP-prefilter hook (ISSUE 10): `source` yields variable ids certified
  /// race-free (thread-local, or one common lock over every access — both
  /// hold in every consistent permutation, so suppression is sound even
  /// predictively).  Invoked during finish(); run the supplying plugin
  /// BEFORE this one on the bus so its classification is ready.  Reports
  /// on those variables are suppressed and counted.
  void setSuppressionSource(std::function<std::vector<VarId>()> source) {
    suppressionSource_ = std::move(source);
  }
  [[nodiscard]] std::size_t suppressedRaces() const noexcept {
    return suppressed_;
  }

 private:
  const program::Program* prog_;
  std::vector<std::string> varNames_;
  RaceOptions opts_;
  std::unordered_set<VarId> candidates_;
  trace::CollectingSink sink_;
  core::Instrumentor instr_;
  std::unordered_map<GlobalSeq, std::vector<LockId>> locksets_;
  std::vector<RaceReport> races_;
  /// Raw events in arrival order, with the locks held after each — the
  /// checkpoint payload (see checkpoint()).
  std::vector<std::pair<trace::Event, std::vector<LockId>>> rawLog_;
  std::function<std::vector<VarId>()> suppressionSource_;
  std::size_t suppressed_ = 0;
};

}  // namespace mpx::detect
