// Predictive deadlock detection as a lattice-engine plugin.
//
// The lock-order graph is a pure function of the raw event stream (which
// kLockAcquire happened while which locks were held), so the plugin only
// listens to onRawEvent and runs the cycle search at finish() — no monitor
// component, no node dispatch.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "detect/deadlock_detector.hpp"
#include "observer/analysis.hpp"
#include "program/scheduler.hpp"

namespace mpx::detect {

class DeadlockAnalysis final : public observer::Analysis {
 public:
  /// `prog` must outlive the plugin (lockVars maps events to locks;
  /// lockNames render the report).
  explicit DeadlockAnalysis(const program::Program& prog);

  [[nodiscard]] std::string name() const override { return "deadlock"; }
  [[nodiscard]] std::string kind() const override { return "deadlock"; }

  void onRawEvent(const trace::Event& event,
                  const std::vector<LockId>& locksHeld) override;
  void finish(const observer::LatticeStats& stats) override;
  /// The lock-order graph is the whole accumulated state (reports_ is
  /// recomputed from it at finish), so the checkpoint is just the edges.
  void checkpoint(observer::ckpt::Writer& w) const override;
  [[nodiscard]] bool restore(observer::ckpt::Reader& r) override;
  [[nodiscard]] observer::AnalysisReport report() const override;

  /// The deduplicated lock-order edges accumulated so far.
  [[nodiscard]] const std::vector<LockOrderEdge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<DeadlockReport>& deadlocks()
      const noexcept {
    return reports_;
  }

 private:
  const program::Program* prog_;
  std::map<VarId, LockId> lockOfVar_;
  std::vector<LockOrderEdge> edges_;
  std::vector<DeadlockReport> reports_;
};

}  // namespace mpx::detect
