// Predictive data-race detection on top of the MVC causality.
//
// The paper motivates predictive analysis with data-races ("like in the
// case of data-races, the chance of detecting this safety violation by
// monitoring only the actual run is very low", §1).  With Algorithm A
// instrumenting *all* accesses of the monitored variables (relevance =
// accessesOf), two accesses race exactly when:
//   * they touch the same variable from different threads,
//   * at least one is a write, and
//   * their clocks are concurrent (Theorem 3: neither V[i] <= V'[i] nor
//     V'[i'] <= V[i']) — no causal path, so some consistent run executes
//     them adjacently in either order.
//
// Because §3.1 instruments lock acquire/release as writes of the lock's
// shared variable, consistently lock-protected accesses are causally
// ordered through the lock variable and never reported: the happens-before
// verdict is sound for the observed causality.  An optional Eraser-style
// lockset refinement additionally flags conflicting accesses whose lockset
// intersection is empty even when this execution happened to order them
// (more predictive, may false-positive).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/var_table.hpp"
#include "vc/types.hpp"

namespace mpx::detect {

/// Why a pair of accesses was reported.
enum class RaceEvidence : std::uint8_t {
  kHappensBefore,  ///< MVC-concurrent conflicting accesses
  kLocksetOnly,    ///< causally ordered, but no common lock protects them
};

struct RaceReport {
  VarId var = kNoVar;
  trace::Message first;   ///< lower global sequence number
  trace::Message second;
  RaceEvidence evidence = RaceEvidence::kHappensBefore;
  std::vector<LockId> firstLocks;
  std::vector<LockId> secondLocks;

  [[nodiscard]] std::string describe(const trace::VarTable& vars) const;
};

struct RaceOptions {
  bool happensBefore = true;  ///< report MVC-concurrent conflicting pairs
  bool lockset = false;       ///< additionally report lockset-disjoint pairs
  std::size_t maxReports = 1000;
  bool dedupeByVarAndThreads = true;  ///< one report per (var, t1, t2) triple
};

class RacePredictor {
 public:
  explicit RacePredictor(RaceOptions opts = {}) : opts_(opts) {}

  /// `accesses` are the messages of all read/write events of the candidate
  /// variables (from an Instrumentor with RelevancePolicy::accessesOf).
  /// `locksets`, keyed by event globalSeq, gives the locks held at each
  /// access (from ExecutionRecord::locksHeld); required for lockset mode.
  ///
  /// Message collection from an execution lives in the RaceAnalysis
  /// lattice plugin (race_analysis.hpp), which owns the instrumented
  /// causality projection; this class keeps the pure pairwise analysis.
  [[nodiscard]] std::vector<RaceReport> analyze(
      const std::vector<trace::Message>& accesses,
      const std::unordered_map<GlobalSeq, std::vector<LockId>>& locksets = {})
      const;

 private:
  RaceOptions opts_;
};

/// Helper: builds the globalSeq -> lockset map from parallel event/lockset
/// arrays (the shape ExecutionRecord provides).
[[nodiscard]] std::unordered_map<GlobalSeq, std::vector<LockId>> locksetIndex(
    const std::vector<trace::Event>& events,
    const std::vector<std::vector<LockId>>& locksHeld);

}  // namespace mpx::detect
