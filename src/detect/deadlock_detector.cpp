#include "detect/deadlock_detector.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace mpx::detect {

std::string DeadlockReport::describe(
    const std::vector<std::string>& lockNames) const {
  std::ostringstream os;
  os << "potential deadlock: cycle ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    os << lockNames.at(cycle[i]) << " -> ";
  }
  os << lockNames.at(cycle.front()) << " [witnesses:";
  for (const LockOrderEdge& e : edges) {
    os << " T" << e.thread << ":" << lockNames.at(e.from) << "->"
       << lockNames.at(e.to);
  }
  os << "]";
  return os.str();
}

namespace {

/// DFS cycle enumeration on the lock-order graph.  Reports each elementary
/// cycle once (by smallest-lock rotation).
class CycleFinder {
 public:
  explicit CycleFinder(const std::vector<LockOrderEdge>& edges) {
    for (const LockOrderEdge& e : edges) {
      adj_[e.from].push_back(&e);
    }
  }

  std::vector<DeadlockReport> run() {
    for (const auto& [from, outs] : adj_) {
      path_.clear();
      onPath_.clear();
      dfs(from);
    }
    return std::move(reports_);
  }

 private:
  void dfs(LockId at) {
    onPath_.push_back(at);
    for (const LockOrderEdge* e : adj_[at]) {
      const auto cycleStart =
          std::find(onPath_.begin(), onPath_.end(), e->to);
      path_.push_back(e);
      if (cycleStart != onPath_.end()) {
        emit(static_cast<std::size_t>(cycleStart - onPath_.begin()));
      } else {
        dfs(e->to);
      }
      path_.pop_back();
    }
    onPath_.pop_back();
  }

  void emit(std::size_t startIdx) {
    DeadlockReport r;
    for (std::size_t i = startIdx; i < onPath_.size(); ++i) {
      r.cycle.push_back(onPath_[i]);
      r.edges.push_back(*path_[path_.size() - onPath_.size() + i]);
    }
    // Canonicalize: rotate so the smallest lock id is first, then dedupe.
    const auto minIt = std::min_element(r.cycle.begin(), r.cycle.end());
    const std::size_t rot = static_cast<std::size_t>(minIt - r.cycle.begin());
    std::rotate(r.cycle.begin(), r.cycle.begin() + rot, r.cycle.end());
    std::rotate(r.edges.begin(), r.edges.begin() + rot, r.edges.end());
    for (const DeadlockReport& existing : reports_) {
      if (existing.cycle == r.cycle) return;
    }
    reports_.push_back(std::move(r));
  }

  std::map<LockId, std::vector<const LockOrderEdge*>> adj_;
  std::vector<LockId> onPath_;
  std::vector<const LockOrderEdge*> path_;
  std::vector<DeadlockReport> reports_;
};

}  // namespace

std::vector<DeadlockReport> findLockCycles(
    const std::vector<LockOrderEdge>& edges) {
  CycleFinder finder(edges);
  return finder.run();
}

}  // namespace mpx::detect
