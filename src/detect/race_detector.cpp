#include "detect/race_detector.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

namespace mpx::detect {

std::string RaceReport::describe(const trace::VarTable& vars) const {
  std::ostringstream os;
  os << "data race on '" << vars.name(var) << "': "
     << trace::toString(first.event.kind) << " by T" << first.event.thread
     << " (value " << first.event.value << ") vs "
     << trace::toString(second.event.kind) << " by T" << second.event.thread
     << " (value " << second.event.value << ") — "
     << (evidence == RaceEvidence::kHappensBefore
             ? "causally concurrent (no happens-before edge)"
             : "no common lock (lockset evidence)");
  return os.str();
}

namespace {

bool conflicting(const trace::Message& a, const trace::Message& b) {
  if (a.event.thread == b.event.thread) return false;
  if (a.event.var != b.event.var) return false;
  // Two atomic updates never race with each other (C++ memory-model
  // convention); an atomic against a plain access still does.
  if (a.event.kind == trace::EventKind::kAtomicUpdate &&
      b.event.kind == trace::EventKind::kAtomicUpdate) {
    return false;
  }
  const bool aWrite = trace::isWriteLike(a.event.kind);
  const bool bWrite = trace::isWriteLike(b.event.kind);
  return aWrite || bWrite;
}

std::vector<LockId> sortedLocks(
    const std::unordered_map<GlobalSeq, std::vector<LockId>>& locksets,
    GlobalSeq seq) {
  const auto it = locksets.find(seq);
  if (it == locksets.end()) return {};
  std::vector<LockId> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

bool disjoint(const std::vector<LockId>& a, const std::vector<LockId>& b) {
  // Both sorted.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) ++i;
    else ++j;
  }
  return true;
}

}  // namespace

std::vector<RaceReport> RacePredictor::analyze(
    const std::vector<trace::Message>& accesses,
    const std::unordered_map<GlobalSeq, std::vector<LockId>>& locksets) const {
  std::vector<RaceReport> out;
  std::set<std::tuple<VarId, ThreadId, ThreadId>> seen;

  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      if (out.size() >= opts_.maxReports) return out;
      const trace::Message* a = &accesses[i];
      const trace::Message* b = &accesses[j];
      if (!conflicting(*a, *b)) continue;
      if (a->event.globalSeq > b->event.globalSeq) std::swap(a, b);

      const bool concurrent = a->concurrentWith(*b);
      std::optional<RaceEvidence> evidence;
      if (opts_.happensBefore && concurrent) {
        evidence = RaceEvidence::kHappensBefore;
      } else if (opts_.lockset && !concurrent) {
        const auto la = sortedLocks(locksets, a->event.globalSeq);
        const auto lb = sortedLocks(locksets, b->event.globalSeq);
        if (disjoint(la, lb)) evidence = RaceEvidence::kLocksetOnly;
      }
      if (!evidence) continue;

      if (opts_.dedupeByVarAndThreads) {
        const ThreadId t1 = std::min(a->event.thread, b->event.thread);
        const ThreadId t2 = std::max(a->event.thread, b->event.thread);
        if (!seen.insert({a->event.var, t1, t2}).second) continue;
      }

      RaceReport r;
      r.var = a->event.var;
      r.first = *a;
      r.second = *b;
      r.evidence = *evidence;
      r.firstLocks = sortedLocks(locksets, a->event.globalSeq);
      r.secondLocks = sortedLocks(locksets, b->event.globalSeq);
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::unordered_map<GlobalSeq, std::vector<LockId>> locksetIndex(
    const std::vector<trace::Event>& events,
    const std::vector<std::vector<LockId>>& locksHeld) {
  std::unordered_map<GlobalSeq, std::vector<LockId>> out;
  out.reserve(events.size());
  for (std::size_t i = 0; i < events.size() && i < locksHeld.size(); ++i) {
    out.emplace(events[i].globalSeq, locksHeld[i]);
  }
  return out;
}

}  // namespace mpx::detect
