// Fixed-size worker pool for the observer's level-expansion hot path.
//
// The pool is deliberately small and deterministic-friendly rather than
// general-purpose:
//
//  * parallelFor(n, body) splits [0, n) into exactly `workers()` contiguous
//    chunks via static division — chunk boundaries depend only on (n,
//    workers), never on timing — so callers can merge worker-local results
//    in chunk-index order and obtain results identical to a serial run.
//  * parallelFor blocks until every chunk finished.  If chunks throw, the
//    exception from the LOWEST chunk index is rethrown (again: determinism;
//    a serial loop would have surfaced that one first).
//  * Calling parallelFor from inside a pool worker (reentrancy) runs the
//    loop inline on the calling thread instead of deadlocking on the pool.
//  * submit(fn) is a conventional future-returning escape hatch for tests
//    and one-off tasks.
//
// Telemetry: the pool exports its size, a utilization gauge (percent of
// worker-seconds actually spent in chunk bodies during the most recent
// parallelFor), and counters for loops/chunks executed.  See
// docs/OBSERVABILITY.md.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mpx::parallel {

/// How a lattice / analyzer should parallelize level expansion.
///
/// jobs == 1 (the default) means strictly serial: no pool is created and
/// the legacy single-threaded code path runs.  jobs == 0 means "one per
/// hardware thread".
struct ParallelConfig {
  std::size_t jobs = 1;         ///< worker count; 1 = serial, 0 = hardware
  std::size_t minFrontier = 16; ///< below this many nodes, expand serially
  /// Optional externally owned pool to use instead of creating one.  The
  /// pool must outlive the analysis; its worker count wins over `jobs`.
  class ThreadPool* pool = nullptr;

  /// Effective worker count (resolves jobs==0 to the hardware).
  [[nodiscard]] std::size_t effectiveJobs() const noexcept;
  /// True iff this config ever runs anything concurrently.
  [[nodiscard]] bool enabled() const noexcept { return effectiveJobs() > 1; }
};

class ThreadPool {
 public:
  /// Chunk body: [begin, end) slice of the iteration space plus the chunk's
  /// stable index (0-based, < workers()).
  using ChunkFn =
      std::function<void(std::size_t begin, std::size_t end,
                         std::size_t chunkIndex)>;

  /// Spawns `workers` threads (0 resolves to the hardware concurrency,
  /// clamped to at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

  /// Runs `body` over [0, n) split into exactly workers() contiguous chunks
  /// (fewer when n < workers(): empty chunks are skipped).  Blocks until all
  /// chunks complete; rethrows the exception of the lowest-index failing
  /// chunk.  Deterministic partition: chunk c covers
  /// [c*ceil(n/W) ... min(n, (c+1)*ceil(n/W))).
  void parallelFor(std::size_t n, const ChunkFn& body);

  /// Conventional task submission; the future carries the result/exception.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool insideWorker() const noexcept;

 private:
  void enqueue(std::function<void()> job);
  void workerLoop(std::size_t index);

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Static contiguous chunking shared by the pool and its tests: returns the
/// [begin, end) slice of chunk `c` when [0, n) is split into `chunks` parts.
[[nodiscard]] inline std::pair<std::size_t, std::size_t> chunkRange(
    std::size_t n, std::size_t chunks, std::size_t c) noexcept {
  const std::size_t step = chunks == 0 ? n : (n + chunks - 1) / chunks;
  const std::size_t begin = std::min(n, c * step);
  const std::size_t end = std::min(n, begin + step);
  return {begin, end};
}

}  // namespace mpx::parallel
