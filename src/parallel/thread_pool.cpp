#include "parallel/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>

#include "parallel/pool_metrics.hpp"

namespace mpx::parallel {

namespace {

/// Identifies which pool (if any) owns the current thread, for the
/// reentrancy guard.  A raw pointer is enough: it is only compared, never
/// dereferenced, and a worker thread cannot outlive its pool.
thread_local const ThreadPool* tlsOwnerPool = nullptr;

[[nodiscard]] std::size_t hardwareWorkers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

std::size_t ParallelConfig::effectiveJobs() const noexcept {
  if (pool != nullptr) return pool->workers();
  return jobs == 0 ? hardwareWorkers() : jobs;
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = workers == 0 ? hardwareWorkers() : workers;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
  if constexpr (telemetry::kEnabled) {
    PoolMetrics::get().workers.recordMax(static_cast<std::int64_t>(n));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::insideWorker() const noexcept { return tlsOwnerPool == this; }

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop(std::size_t /*index*/) {
  tlsOwnerPool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallelFor(std::size_t n, const ChunkFn& body) {
  if (n == 0) return;
  const std::size_t chunks = workers();

  // Reentrant call from a worker of THIS pool: run inline — queuing would
  // deadlock when every worker is already occupied by the outer loop.
  if (chunks <= 1 || insideWorker()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = chunkRange(n, chunks, c);
      if (begin < end) body(begin, end, c);
    }
    return;
  }

  struct LoopState {
    std::atomic<std::size_t> remaining;
    std::atomic<std::uint64_t> busyNs{0};
    std::mutex mu;
    std::condition_variable done;
    // Lowest failing chunk index wins — what a serial loop would surface.
    std::size_t firstFailure = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  LoopState state;

  std::size_t live = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (auto [begin, end] = chunkRange(n, chunks, c); begin < end) ++live;
  }
  state.remaining.store(live, std::memory_order_relaxed);

  const auto wallStart = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = chunkRange(n, chunks, c);
    if (begin >= end) continue;
    enqueue([&state, &body, begin, end, c] {
      const auto t0 = std::chrono::steady_clock::now();
      std::exception_ptr err;
      try {
        body(begin, end, c);
      } catch (...) {
        err = std::current_exception();
      }
      const auto t1 = std::chrono::steady_clock::now();
      state.busyNs.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()),
          std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(state.mu);
        if (err && c < state.firstFailure) {
          state.firstFailure = c;
          state.error = err;
        }
      }
      if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Notify under the lock so the waiter cannot miss the wakeup
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lk(state.mu);
        state.done.notify_one();
      }
    });
  }

  {
    std::unique_lock<std::mutex> lk(state.mu);
    state.done.wait(lk, [&state] {
      return state.remaining.load(std::memory_order_acquire) == 0;
    });
  }

  if constexpr (telemetry::kEnabled) {
    const auto wallNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - wallStart)
                            .count();
    auto& m = PoolMetrics::get();
    m.parallelForTotal.add(1);
    m.chunksTotal.add(live);
    if (wallNs > 0) {
      const auto denom =
          static_cast<std::uint64_t>(wallNs) * static_cast<std::uint64_t>(chunks);
      const std::uint64_t pct =
          std::min<std::uint64_t>(100, state.busyNs.load() * 100 / denom);
      m.utilizationPct.recordMax(static_cast<std::int64_t>(pct));
    }
  }

  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace mpx::parallel
