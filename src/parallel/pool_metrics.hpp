// Telemetry for the parallel execution layer.  Internal to src/parallel.
#pragma once

#include "telemetry/metrics.hpp"

namespace mpx::parallel {

struct PoolMetrics {
  telemetry::Gauge& workers;
  telemetry::Gauge& utilizationPct;
  telemetry::Counter& parallelForTotal;
  telemetry::Counter& chunksTotal;

  static PoolMetrics& get() {
    static PoolMetrics m{
        telemetry::registry().gauge(
            "mpx_parallel_pool_workers",
            "High-water mark of thread-pool worker count"),
        telemetry::registry().gauge(
            "mpx_parallel_pool_utilization_pct",
            "Peak percent of worker-time spent in chunk bodies during one "
            "parallelFor"),
        telemetry::registry().counter(
            "mpx_parallel_for_total",
            "parallelFor invocations dispatched to the pool"),
        telemetry::registry().counter(
            "mpx_parallel_chunks_total",
            "Non-empty chunks executed by pool workers"),
    };
    return m;
  }
};

}  // namespace mpx::parallel
