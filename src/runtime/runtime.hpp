// Instrumented shared-memory runtime for REAL C++ threads.
//
// The paper lists three ways to deploy Algorithm A: bytecode
// instrumentation, a modified JVM, or "to enforce shared variable updates
// via library functions, which execute A as well" (§1).  This module is
// that third option for C++: programs declare their shared variables as
// mpx::runtime::SharedVar, their locks as InstrumentedMutex, and every
// access runs Algorithm A before returning.
//
// A single global mutex serializes all instrumented accesses.  That is not
// an implementation shortcut so much as the paper's model made concrete:
// §2.1 assumes "all shared memory accesses are atomic and instantaneous"
// (sequential consistency), and the serialization point is what assigns
// the total order M that the happens-before analysis is defined over.
// Claim C3's benches measure exactly this cost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/instrumentor.hpp"
#include "detect/race_detector.hpp"
#include "trace/channel.hpp"
#include "trace/var_table.hpp"

namespace mpx::runtime {

/// Maps std::thread ids to the dense ThreadIds the MVCs are indexed by.
/// Threads register lazily on their first instrumented access — this is
/// the "dynamically created threads" support the paper mentions in §2.
class ThreadRegistry {
 public:
  /// Dense id of the calling thread, registering it if new.
  /// Caller must hold the runtime lock.
  ThreadId currentLocked();

  [[nodiscard]] std::size_t threadCount() const { return next_; }

 private:
  std::unordered_map<std::thread::id, ThreadId> ids_;
  ThreadId next_ = 0;
};

class SharedVar;
class InstrumentedMutex;
class InstrumentedCondition;

/// The per-program instrumentation context: variable table, Algorithm A
/// state, and the observer-bound message stream.
class Runtime {
 public:
  /// Messages for relevant events are pushed into `sink` (already
  /// serialized by the runtime's global lock).
  explicit Runtime(trace::MessageSink& sink);

  /// Declares a shared variable.  Thread-safe; idempotent per name.
  SharedVar declare(const std::string& name, Value initial = 0);

  /// Declares an instrumented lock.
  std::unique_ptr<InstrumentedMutex> declareMutex(const std::string& name);

  /// Declares an instrumented condition variable (uses `mutex`'s lock).
  std::unique_ptr<InstrumentedCondition> declareCondition(
      const std::string& name);

  /// Marks a variable relevant: its writes are reported to the observer
  /// (JMPaX marks exactly the spec's variables).
  void markRelevant(const std::string& name);

  [[nodiscard]] const trace::VarTable& vars() const noexcept { return vars_; }
  [[nodiscard]] std::uint64_t eventsProcessed() const;
  [[nodiscard]] std::uint64_t messagesEmitted() const;
  [[nodiscard]] std::size_t threadsSeen() const;

  /// Record every event with the locks its thread held at that instant —
  /// the input the race predictor needs.  Must be enabled before the
  /// threads run; the recording is drained with takeRecording().
  void enableRecording();
  struct RecordedEvent {
    trace::Event event;
    std::vector<VarId> locksHeld;  ///< lock VarIds held by event.thread
  };
  [[nodiscard]] std::vector<RecordedEvent> takeRecording();

  /// Predictive race analysis over a recording: instruments the recorded
  /// events with the race-detection causality projection (candidate
  /// variables excluded from MVC joins; §3.1 sync edges kept) and reports
  /// conflicting concurrent access pairs.  Lock identity for the lockset
  /// refinement is the lock variable id.
  [[nodiscard]] std::vector<detect::RaceReport> analyzeRaces(
      const std::vector<RecordedEvent>& recording,
      const std::vector<std::string>& varNames,
      detect::RaceOptions opts = {}) const;

 private:
  friend class SharedVar;
  friend class InstrumentedMutex;
  friend class InstrumentedCondition;

  /// The instrumented access primitives; each takes the global lock,
  /// stamps the event into the total order M, and runs Algorithm A.
  Value read(VarId v);
  void write(VarId v, Value value);
  void syncEvent(trace::EventKind kind, VarId v);

  trace::Event makeEventLocked(trace::EventKind kind, ThreadId t, VarId v,
                               Value value);

  /// Acquires the global mutex, recording contention telemetry (waiters on
  /// the sequential-consistency point are the runtime's scaling limit).
  [[nodiscard]] std::unique_lock<std::mutex> lockGlobal() const;

  mutable std::mutex mu_;  ///< the sequential-consistency point
  trace::VarTable vars_;
  std::vector<Value> values_;  ///< current valuation, by VarId
  std::shared_ptr<std::unordered_set<VarId>> relevant_;
  core::Instrumentor instr_;
  ThreadRegistry registry_;
  GlobalSeq nextSeq_ = 1;
  std::vector<LocalSeq> nextLocal_;
  bool recording_ = false;
  std::vector<RecordedEvent> recorded_;
  std::vector<std::vector<VarId>> heldLocks_;  ///< by dense ThreadId
};

/// A shared variable whose every access executes Algorithm A.
class SharedVar {
 public:
  SharedVar() = default;

  [[nodiscard]] Value load() const { return rt_->read(id_); }
  void store(Value v) { rt_->write(id_, v); }

  /// Read-modify-write convenience (two events: a read and a write, like
  /// the paper's x++ which is a read of x followed by a write of x).
  Value fetchAdd(Value delta) {
    const Value old = load();
    store(old + delta);
    return old;
  }

  [[nodiscard]] VarId id() const noexcept { return id_; }

 private:
  friend class Runtime;
  SharedVar(Runtime& rt, VarId id) : rt_(&rt), id_(id) {}
  Runtime* rt_ = nullptr;
  VarId id_ = kNoVar;
};

/// A mutex whose acquire/release are writes of a lock-role shared variable
/// (paper §3.1), giving synchronized regions the expected happens-before.
class InstrumentedMutex {
 public:
  void lock();
  void unlock();

  /// RAII guard.
  class Guard {
   public:
    explicit Guard(InstrumentedMutex& m) : m_(&m) { m_->lock(); }
    ~Guard() { m_->unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    InstrumentedMutex* m_;
  };

 private:
  friend class Runtime;
  friend class InstrumentedCondition;
  InstrumentedMutex(Runtime& rt, VarId lockVar) : rt_(&rt), lockVar_(lockVar) {}
  Runtime* rt_;
  VarId lockVar_;
  std::mutex m_;
};

/// Condition variable; notify writes the condition's dummy shared variable
/// before notification, and the woken thread writes it after (paper §3.1).
class InstrumentedCondition {
 public:
  /// Must be called with `m` held; releases it while waiting, reacquires
  /// before returning (emitting the §3.1 event pattern).
  template <typename Pred>
  void wait(InstrumentedMutex& m, Pred pred) {
    while (!pred()) {
      rt_->syncEvent(trace::EventKind::kLockRelease, m.lockVar_);
      {
        std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
        cv_.wait(lk);
        lk.release();
      }
      rt_->syncEvent(trace::EventKind::kLockAcquire, m.lockVar_);
      rt_->syncEvent(trace::EventKind::kWaitResume, condVar_);
    }
  }

  void notifyAll() {
    rt_->syncEvent(trace::EventKind::kNotify, condVar_);
    cv_.notify_all();
  }

 private:
  friend class Runtime;
  InstrumentedCondition(Runtime& rt, VarId condVar)
      : rt_(&rt), condVar_(condVar) {}
  Runtime* rt_;
  VarId condVar_;
  std::condition_variable cv_;
};

}  // namespace mpx::runtime
