// Instrumented shared-memory runtime for REAL C++ threads.
//
// The paper lists three ways to deploy Algorithm A: bytecode
// instrumentation, a modified JVM, or "to enforce shared variable updates
// via library functions, which execute A as well" (§1).  This module is
// that third option for C++: programs declare their shared variables as
// mpx::runtime::SharedVar, their locks as InstrumentedMutex, and every
// access runs Algorithm A before returning.
//
// Locking is STRIPED, not global: every shared variable carries its own
// mutex protecting its value and its MVCs (V^a_x, V^w_x), and the thread
// registry is sharded.  Algorithm A makes this sound because one event
// touches exactly one variable's state plus the issuing thread's own clock
// (V_i), which no other thread ever reads or writes:
//
//  * Per-variable atomicity — steps 2-3 for an event on x read and write
//    only {V_i, V^a_x, V^w_x, value_x}, all under x's mutex, so
//    same-variable accesses are serialized exactly as §2.1's "all shared
//    memory accesses are atomic and instantaneous" requires.
//  * Total order M — each event draws its globalSeq from one atomic
//    counter WHILE HOLDING the variable's mutex.  Same-variable events get
//    seqs in their serialization order, same-thread events in program
//    order; causality ≺ is the transitive closure of those two edge kinds,
//    so e ≺ e' still implies seq(e) < seq(e') (the Theorem 3 invariant the
//    runtime tests assert).  Any linearization of the striped execution in
//    seq order is a legal execution of the old single-mutex runtime.
//  * Lock ordering — an event path holds at most ONE variable mutex.  Any
//    future multi-variable operation MUST acquire variable mutexes in
//    ascending VarId order.  The full hierarchy is
//      structMu_ (shared) -> var mutex -> { recordMu_ | sinkMu_ }
//    where structMu_ is held shared on event paths and uniquely only by
//    declare()/markRelevant() (which grow the tables).
//
// See DESIGN.md ("Striped runtime locking") for the full argument.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/instrumentor.hpp"
#include "detect/race_detector.hpp"
#include "trace/channel.hpp"
#include "trace/var_table.hpp"
#include "vc/clock.hpp"

namespace mpx::runtime {

/// Per-thread instrumentation state: the MVC V_i, the thread's local event
/// numbering, and its lockset.  Only ever touched by the owning thread
/// (under the variable mutex of the event being processed).
struct ThreadState {
  ThreadId id = 0;
  vc::Clock vi;                  ///< V_i (backend chosen by the runtime)
  LocalSeq nextLocal = 1;
  std::vector<VarId> heldLocks;  ///< lock VarIds currently held
};

/// Maps std::thread ids to the dense ThreadIds the MVCs are indexed by,
/// sharded so registration lookups of different threads do not contend.
/// Threads register lazily on their first instrumented access — this is
/// the "dynamically created threads" support the paper mentions in §2.
class ShardedThreadRegistry {
 public:
  ShardedThreadRegistry();

  /// Clock backend newly registered threads get for V_i.  Must be set
  /// before any thread registers (the Runtime constructor does).
  void setClockBackend(vc::ClockBackend backend) noexcept {
    backend_ = backend;
  }

  /// State of the calling thread, registering it if new.  Thread-safe; the
  /// returned reference is stable for the registry's lifetime and cached
  /// thread-locally.
  ThreadState& current();

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return next_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::thread::id, std::unique_ptr<ThreadState>> states;
  };
  std::array<Shard, kShards> shards_;
  std::atomic<ThreadId> next_{0};
  std::uint64_t generation_;  ///< process-unique key for the TLS cache
  vc::ClockBackend backend_ = vc::ClockBackend::kFlat;
};

class SharedVar;
class InstrumentedMutex;
class InstrumentedCondition;

/// The per-program instrumentation context: variable table, Algorithm A
/// state, and the observer-bound message stream.
class Runtime {
 public:
  /// Messages for relevant events are pushed into `sink`.  Emissions are
  /// serialized (the sink need not be thread-safe); each thread's messages
  /// arrive in its program order, cross-thread interleaving follows the
  /// total order M.
  ///
  /// `backend` selects the MVC representation for V_i / V^a_x / V^w_x.
  /// The runtime's thread count is dynamic, so kAuto resolves to flat
  /// here; pass vc::ClockBackend::kTree explicitly for wide programs.
  explicit Runtime(trace::MessageSink& sink,
                   vc::ClockBackend backend = vc::ClockBackend::kAuto);

  /// Declares a shared variable.  Thread-safe; idempotent per name.
  SharedVar declare(const std::string& name, Value initial = 0);

  /// Declares an instrumented lock.
  std::unique_ptr<InstrumentedMutex> declareMutex(const std::string& name);

  /// Declares an instrumented condition variable (uses `mutex`'s lock).
  std::unique_ptr<InstrumentedCondition> declareCondition(
      const std::string& name);

  /// Marks a variable relevant: its writes are reported to the observer
  /// (JMPaX marks exactly the spec's variables).
  void markRelevant(const std::string& name);

  /// Annotated atomic-region boundaries (ISSUE 10): emit a kRegionBegin /
  /// kRegionEnd marker event on the calling thread.  Region markers access
  /// no variable (Algorithm A steps 2-3 skip them) but are ALWAYS relevant:
  /// the thread's own clock component ticks and a message is emitted, so
  /// the observer can segment the thread's relevant events into
  /// transactions for conflict-serializability checking.  `regionId` is a
  /// programmer-chosen label carried in the event's value; nesting is
  /// allowed (the analysis merges nested regions into the outermost one).
  void atomicBegin(Value regionId = 0);
  void atomicEnd(Value regionId = 0);

  [[nodiscard]] const trace::VarTable& vars() const noexcept { return vars_; }
  [[nodiscard]] std::uint64_t eventsProcessed() const;
  [[nodiscard]] std::uint64_t messagesEmitted() const;
  [[nodiscard]] std::size_t threadsSeen() const;

  /// Record every event with the locks its thread held at that instant —
  /// the input the race predictor needs.  Must be enabled before the
  /// threads run; the recording is drained with takeRecording().
  void enableRecording();
  struct RecordedEvent {
    trace::Event event;
    std::vector<VarId> locksHeld;  ///< lock VarIds held by event.thread
  };
  /// The recording in total order M (sorted by globalSeq — appends from
  /// different stripes may land out of order).
  [[nodiscard]] std::vector<RecordedEvent> takeRecording();

  /// Predictive race analysis over a recording: instruments the recorded
  /// events with the race-detection causality projection (candidate
  /// variables excluded from MVC joins; §3.1 sync edges kept) and reports
  /// conflicting concurrent access pairs.  Lock identity for the lockset
  /// refinement is the lock variable id.
  [[nodiscard]] std::vector<detect::RaceReport> analyzeRaces(
      const std::vector<RecordedEvent>& recording,
      const std::vector<std::string>& varNames,
      detect::RaceOptions opts = {}) const;

 private:
  friend class SharedVar;
  friend class InstrumentedMutex;
  friend class InstrumentedCondition;

  /// Striped per-variable state: the current value and the variable MVCs,
  /// all under the stripe mutex.
  struct VarState {
    std::mutex mu;
    Value value = 0;
    vc::Clock va;  ///< V^a_x
    vc::Clock vw;  ///< V^w_x
    std::uint64_t contended = 0;  ///< contended acquisitions (under mu)
  };

  /// The instrumented access primitives; each locks the variable's stripe,
  /// stamps the event into the total order M, and runs Algorithm A.
  Value read(VarId v);
  void write(VarId v, Value value);
  void syncEvent(trace::EventKind kind, VarId v);

  /// Shared event path: called with structMu_ held shared.  Runs Algorithm
  /// A steps 1-4 for one event under the variable's stripe mutex.
  Value processEvent(trace::EventKind kind, VarId v, Value writeValue);

  /// Event path for variable-less region markers: no stripe to lock and no
  /// clock joins — tick, record, emit.
  void regionMarker(trace::EventKind kind, Value regionId);

  VarId internVar(const std::string& name, Value initial, trace::VarRole role);
  [[nodiscard]] VarState& stateOf(VarId v);

  /// Guards the *shape* of the tables (vars_, varStates_ growth, the
  /// relevant set).  Event paths hold it shared; declarations hold it
  /// uniquely.  Never acquired after a stripe mutex.
  mutable std::shared_mutex structMu_;
  vc::ClockBackend clockBackend_;  ///< resolved backend for every MVC
  trace::VarTable vars_;
  std::deque<VarState> varStates_;  ///< by VarId; deque: stable references
  std::unordered_set<VarId> relevant_;
  trace::MessageSink* sink_;
  mutable std::mutex sinkMu_;    ///< serializes sink_->onMessage
  ShardedThreadRegistry registry_;
  std::atomic<GlobalSeq> nextSeq_{1};
  std::atomic<std::uint64_t> eventsProcessed_{0};
  std::atomic<std::uint64_t> messagesEmitted_{0};
  std::atomic<bool> recording_{false};
  mutable std::mutex recordMu_;  ///< guards recorded_
  std::vector<RecordedEvent> recorded_;
};

/// A shared variable whose every access executes Algorithm A.
class SharedVar {
 public:
  SharedVar() = default;

  [[nodiscard]] Value load() const { return rt_->read(id_); }
  void store(Value v) { rt_->write(id_, v); }

  /// Read-modify-write convenience (two events: a read and a write, like
  /// the paper's x++ which is a read of x followed by a write of x).
  /// NOTE: the two events are individually atomic but the pair is not —
  /// exactly like the paper's x++.
  Value fetchAdd(Value delta) {
    const Value old = load();
    store(old + delta);
    return old;
  }

  [[nodiscard]] VarId id() const noexcept { return id_; }

 private:
  friend class Runtime;
  SharedVar(Runtime& rt, VarId id) : rt_(&rt), id_(id) {}
  Runtime* rt_ = nullptr;
  VarId id_ = kNoVar;
};

/// A mutex whose acquire/release are writes of a lock-role shared variable
/// (paper §3.1), giving synchronized regions the expected happens-before.
class InstrumentedMutex {
 public:
  void lock();
  void unlock();

  /// RAII guard.
  class Guard {
   public:
    explicit Guard(InstrumentedMutex& m) : m_(&m) { m_->lock(); }
    ~Guard() { m_->unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    InstrumentedMutex* m_;
  };

 private:
  friend class Runtime;
  friend class InstrumentedCondition;
  InstrumentedMutex(Runtime& rt, VarId lockVar) : rt_(&rt), lockVar_(lockVar) {}
  Runtime* rt_;
  VarId lockVar_;
  std::mutex m_;
};

/// Condition variable; notify writes the condition's dummy shared variable
/// before notification, and the woken thread writes it after (paper §3.1).
class InstrumentedCondition {
 public:
  /// Must be called with `m` held; releases it while waiting, reacquires
  /// before returning (emitting the §3.1 event pattern).
  template <typename Pred>
  void wait(InstrumentedMutex& m, Pred pred) {
    while (!pred()) {
      rt_->syncEvent(trace::EventKind::kLockRelease, m.lockVar_);
      {
        std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
        cv_.wait(lk);
        lk.release();
      }
      rt_->syncEvent(trace::EventKind::kLockAcquire, m.lockVar_);
      rt_->syncEvent(trace::EventKind::kWaitResume, condVar_);
    }
  }

  void notifyAll() {
    rt_->syncEvent(trace::EventKind::kNotify, condVar_);
    cv_.notify_all();
  }

 private:
  friend class Runtime;
  InstrumentedCondition(Runtime& rt, VarId condVar)
      : rt_(&rt), condVar_(condVar) {}
  Runtime* rt_;
  VarId condVar_;
  std::condition_variable cv_;
};

}  // namespace mpx::runtime

/// Annotation macros for atomic regions (ISSUE 10).  `rt` is a
/// mpx::runtime::Runtime (or reference); `id` is an integer region label.
/// Wrap the code the programmer intends to execute atomically:
///
///   MPX_ATOMIC_BEGIN(rt, 1);
///   acct.write(acct.read() + amount);
///   MPX_ATOMIC_END(rt, 1);
///
/// AtomicityAnalysis reports every observed cut under which the enclosed
/// accesses are not conflict-serializable with the other threads' regions.
#define MPX_ATOMIC_BEGIN(rt, id) (rt).atomicBegin(id)
#define MPX_ATOMIC_END(rt, id) (rt).atomicEnd(id)
