#include "runtime/runtime.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"

namespace mpx::runtime {

namespace {

/// Real-thread runtime telemetry: contention on the global mutex (the
/// paper's sequential-consistency point) and thread registration.
struct RuntimeMetrics {
  telemetry::Counter& lockAcquisitions;
  telemetry::Counter& lockContended;
  telemetry::Histogram& lockWaitNs;
  telemetry::Gauge& threads;

  static RuntimeMetrics& get() {
    static RuntimeMetrics m{
        telemetry::registry().counter(
            "mpx_runtime_lock_acquisitions_total",
            "Acquisitions of the runtime's global serialization mutex"),
        telemetry::registry().counter(
            "mpx_runtime_lock_contended_total",
            "Global-mutex acquisitions that had to wait"),
        telemetry::registry().histogram(
            "mpx_runtime_lock_wait_ns",
            "Wait time for contended global-mutex acquisitions"),
        telemetry::registry().gauge(
            "mpx_runtime_threads_registered",
            "High-water mark of threads seen by the runtime"),
    };
    return m;
  }
};

}  // namespace

ThreadId ThreadRegistry::currentLocked() {
  const std::thread::id self = std::this_thread::get_id();
  const auto it = ids_.find(self);
  if (it != ids_.end()) return it->second;
  const ThreadId id = next_++;
  ids_.emplace(self, id);
  if constexpr (telemetry::kEnabled) {
    RuntimeMetrics::get().threads.recordMax(static_cast<std::int64_t>(next_));
  }
  return id;
}

namespace {

core::RelevancePolicy relevantWritesOf(
    std::shared_ptr<std::unordered_set<VarId>> set) {
  return core::RelevancePolicy::custom(
      [set = std::move(set)](const trace::Event& e) {
        return trace::isWriteLike(e.kind) && set->contains(e.var);
      });
}

}  // namespace

Runtime::Runtime(trace::MessageSink& sink)
    : relevant_(std::make_shared<std::unordered_set<VarId>>()),
      instr_(relevantWritesOf(relevant_), sink) {
  if constexpr (telemetry::kEnabled) {
    RuntimeMetrics::get();  // register the runtime metric names up front
  }
}

std::unique_lock<std::mutex> Runtime::lockGlobal() const {
  if constexpr (telemetry::kEnabled) {
    RuntimeMetrics& tm = RuntimeMetrics::get();
    std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
    if (!lk.owns_lock()) {
      tm.lockContended.add(1);
      const std::uint64_t t0 = telemetry::nowNs();
      lk.lock();
      tm.lockWaitNs.record(telemetry::nowNs() - t0);
    }
    tm.lockAcquisitions.add(1);
    return lk;
  } else {
    return std::unique_lock<std::mutex>(mu_);
  }
}

SharedVar Runtime::declare(const std::string& name, Value initial) {
  const auto lock = lockGlobal();
  const VarId id = vars_.intern(name, initial, trace::VarRole::kData);
  if (id >= values_.size()) values_.resize(id + 1, 0);
  values_[id] = initial;
  return SharedVar(*this, id);
}

std::unique_ptr<InstrumentedMutex> Runtime::declareMutex(
    const std::string& name) {
  const auto lock = lockGlobal();
  const VarId id =
      vars_.intern("__lock_" + name, 0, trace::VarRole::kLock);
  if (id >= values_.size()) values_.resize(id + 1, 0);
  return std::unique_ptr<InstrumentedMutex>(new InstrumentedMutex(*this, id));
}

std::unique_ptr<InstrumentedCondition> Runtime::declareCondition(
    const std::string& name) {
  const auto lock = lockGlobal();
  const VarId id =
      vars_.intern("__cond_" + name, 0, trace::VarRole::kCondition);
  if (id >= values_.size()) values_.resize(id + 1, 0);
  return std::unique_ptr<InstrumentedCondition>(
      new InstrumentedCondition(*this, id));
}

void Runtime::markRelevant(const std::string& name) {
  const auto lock = lockGlobal();
  relevant_->insert(vars_.id(name));
}

trace::Event Runtime::makeEventLocked(trace::EventKind kind, ThreadId t,
                                      VarId v, Value value) {
  if (t >= nextLocal_.size()) nextLocal_.resize(t + 1, 1);
  if (t >= heldLocks_.size()) heldLocks_.resize(t + 1);
  trace::Event e;
  e.kind = kind;
  e.thread = t;
  e.var = v;
  e.value = value;
  e.localSeq = nextLocal_[t]++;
  e.globalSeq = nextSeq_++;

  // Maintain per-thread locksets (acquire counts itself; release drops
  // before recording — mirroring program::ExecutionRecord's convention).
  if (kind == trace::EventKind::kLockAcquire) {
    heldLocks_[t].push_back(v);
  } else if (kind == trace::EventKind::kLockRelease) {
    auto& held = heldLocks_[t];
    const auto it = std::find(held.begin(), held.end(), v);
    if (it != held.end()) held.erase(it);
  }
  if (recording_) recorded_.push_back(RecordedEvent{e, heldLocks_[t]});
  return e;
}

void Runtime::enableRecording() {
  const auto lock = lockGlobal();
  recording_ = true;
}

std::vector<Runtime::RecordedEvent> Runtime::takeRecording() {
  const auto lock = lockGlobal();
  return std::move(recorded_);
}

std::vector<detect::RaceReport> Runtime::analyzeRaces(
    const std::vector<RecordedEvent>& recording,
    const std::vector<std::string>& varNames, detect::RaceOptions opts) const {
  std::unordered_set<VarId> candidates;
  {
    const auto lock = lockGlobal();
    for (const auto& name : varNames) candidates.insert(vars_.id(name));
  }

  trace::CollectingSink sink;
  core::Instrumentor instr(core::RelevancePolicy::accessesOf(candidates),
                           sink);
  instr.excludeFromCausality(candidates);
  std::unordered_map<GlobalSeq, std::vector<LockId>> locksets;
  for (const RecordedEvent& r : recording) {
    instr.onEvent(r.event);
    locksets.emplace(r.event.globalSeq,
                     std::vector<LockId>(r.locksHeld.begin(),
                                         r.locksHeld.end()));
  }
  return detect::RacePredictor{opts}.analyze(sink.messages(), locksets);
}

Value Runtime::read(VarId v) {
  const auto lock = lockGlobal();
  const ThreadId t = registry_.currentLocked();
  const Value value = values_.at(v);
  instr_.onEvent(makeEventLocked(trace::EventKind::kRead, t, v, value));
  return value;
}

void Runtime::write(VarId v, Value value) {
  const auto lock = lockGlobal();
  const ThreadId t = registry_.currentLocked();
  values_.at(v) = value;
  instr_.onEvent(makeEventLocked(trace::EventKind::kWrite, t, v, value));
}

void Runtime::syncEvent(trace::EventKind kind, VarId v) {
  const auto lock = lockGlobal();
  const ThreadId t = registry_.currentLocked();
  const Value value = ++values_.at(v);
  instr_.onEvent(makeEventLocked(kind, t, v, value));
}

std::uint64_t Runtime::eventsProcessed() const {
  const auto lock = lockGlobal();
  return instr_.eventsProcessed();
}

std::uint64_t Runtime::messagesEmitted() const {
  const auto lock = lockGlobal();
  return instr_.messagesEmitted();
}

std::size_t Runtime::threadsSeen() const {
  const auto lock = lockGlobal();
  return registry_.threadCount();
}

void InstrumentedMutex::lock() {
  m_.lock();
  rt_->syncEvent(trace::EventKind::kLockAcquire, lockVar_);
}

void InstrumentedMutex::unlock() {
  rt_->syncEvent(trace::EventKind::kLockRelease, lockVar_);
  m_.unlock();
}

}  // namespace mpx::runtime
