#include "runtime/runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"

namespace mpx::runtime {

namespace {

/// Real-thread runtime telemetry: per-stripe lock contention (the striped
/// successor of the old global-mutex counters) and thread registration.
struct RuntimeMetrics {
  telemetry::Counter& stripeAcquisitions;
  telemetry::Counter& stripeContended;
  telemetry::Histogram& stripeWaitNs;
  telemetry::Gauge& stripeContentionHwm;
  telemetry::Gauge& threads;

  static RuntimeMetrics& get() {
    static RuntimeMetrics m{
        telemetry::registry().counter(
            "mpx_runtime_stripe_acquisitions_total",
            "Acquisitions of per-variable stripe mutexes by the runtime"),
        telemetry::registry().counter(
            "mpx_runtime_stripe_contended_total",
            "Stripe acquisitions that had to wait"),
        telemetry::registry().histogram(
            "mpx_runtime_stripe_wait_ns",
            "Wait time for contended stripe acquisitions"),
        telemetry::registry().gauge(
            "mpx_runtime_stripe_contention_hwm",
            "High-water mark of contended acquisitions on one stripe"),
        telemetry::registry().gauge(
            "mpx_runtime_threads_registered",
            "High-water mark of threads seen by the runtime"),
    };
    return m;
  }
};

/// Algorithm A instruments (same names the interpreter pipeline registers
/// in core/instrumentor.cpp — the registry dedups by name, so both hosts
/// report into the same counters).
struct EventMetrics {
  telemetry::Counter& relevant;
  telemetry::Counter& irrelevant;
  telemetry::Counter& messages;
  telemetry::Histogram& eventNs;

  static EventMetrics& get() {
    static EventMetrics m{
        telemetry::registry().counter(
            "mpx_runtime_events_relevant_total",
            "Events that ticked the thread clock and emitted a message "
            "(Algorithm A steps 1 and 4)"),
        telemetry::registry().counter(
            "mpx_runtime_events_irrelevant_total",
            "Events processed by Algorithm A without emitting a message"),
        telemetry::registry().counter(
            "mpx_runtime_messages_emitted_total",
            "Messages <e, i, V_i> sent toward the observer"),
        telemetry::registry().histogram(
            "mpx_runtime_algorithm_a_ns",
            "Per-event latency of Algorithm A (sampled; default every 64th event)"),
    };
    return m;
  }
};

/// Process-unique registry generations for the thread-local cache (plain
/// pointer keys could alias across a destroy/construct at the same
/// address).
std::uint64_t nextRegistryGeneration() {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ShardedThreadRegistry::ShardedThreadRegistry()
    : generation_(nextRegistryGeneration()) {}

ThreadState& ShardedThreadRegistry::current() {
  struct CacheEntry {
    std::uint64_t generation = 0;
    ThreadState* state = nullptr;
  };
  thread_local CacheEntry cache;
  if (cache.generation == generation_) return *cache.state;

  const std::thread::id self = std::this_thread::get_id();
  Shard& shard = shards_[std::hash<std::thread::id>{}(self) % kShards];
  std::lock_guard<std::mutex> lk(shard.mu);
  auto& slot = shard.states[self];
  if (slot == nullptr) {
    slot = std::make_unique<ThreadState>();
    slot->id = next_.fetch_add(1, std::memory_order_acq_rel);
    slot->vi = vc::Clock(backend_);
    slot->vi.setOwner(slot->id);
    if constexpr (telemetry::kEnabled) {
      RuntimeMetrics::get().threads.recordMax(
          static_cast<std::int64_t>(slot->id) + 1);
    }
  }
  cache = CacheEntry{generation_, slot.get()};
  return *slot;
}

Runtime::Runtime(trace::MessageSink& sink, vc::ClockBackend backend)
    : clockBackend_(vc::resolveBackend(backend, /*threads=*/0)), sink_(&sink) {
  // kAuto resolves against "unknown width" => flat: real-thread programs
  // register threads dynamically, so there is no declared count to select
  // on.  Callers that know they are wide pass kTree explicitly.
  registry_.setClockBackend(clockBackend_);
  if constexpr (telemetry::kEnabled) {
    RuntimeMetrics::get();  // register the runtime metric names up front
    EventMetrics::get();
  }
}

VarId Runtime::internVar(const std::string& name, Value initial,
                         trace::VarRole role) {
  std::unique_lock lk(structMu_);
  const VarId id = vars_.intern(name, initial, role);
  while (id >= varStates_.size()) {
    varStates_.emplace_back();
    varStates_.back().va = vc::Clock(clockBackend_);
    varStates_.back().vw = vc::Clock(clockBackend_);
  }
  varStates_[id].value = initial;
  return id;
}

SharedVar Runtime::declare(const std::string& name, Value initial) {
  return SharedVar(*this, internVar(name, initial, trace::VarRole::kData));
}

std::unique_ptr<InstrumentedMutex> Runtime::declareMutex(
    const std::string& name) {
  const VarId id = internVar("__lock_" + name, 0, trace::VarRole::kLock);
  return std::unique_ptr<InstrumentedMutex>(new InstrumentedMutex(*this, id));
}

std::unique_ptr<InstrumentedCondition> Runtime::declareCondition(
    const std::string& name) {
  const VarId id = internVar("__cond_" + name, 0, trace::VarRole::kCondition);
  return std::unique_ptr<InstrumentedCondition>(
      new InstrumentedCondition(*this, id));
}

void Runtime::markRelevant(const std::string& name) {
  std::unique_lock lk(structMu_);
  relevant_.insert(vars_.id(name));
}

Runtime::VarState& Runtime::stateOf(VarId v) {
  if (v >= varStates_.size()) {
    throw std::out_of_range("Runtime: access to undeclared variable id " +
                            std::to_string(v));
  }
  return varStates_[v];
}

Value Runtime::processEvent(trace::EventKind kind, VarId v, Value writeValue) {
  const std::uint64_t eventIndex =
      eventsProcessed_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t t0 = 0;
  bool sampled = false;
  if constexpr (telemetry::kEnabled) {
    // Timing every event would double its cost; the period is 1/64 by
    // default and configurable via --telemetry-sample / MPX_TELEMETRY_SAMPLE.
    sampled = telemetry::shouldSampleLatency(eventIndex);
    if (sampled) t0 = telemetry::nowNs();
  }

  ThreadState& ts = registry_.current();
  VarState& vs = stateOf(v);

  // Stripe acquisition, with contention telemetry.
  std::unique_lock<std::mutex> lk(vs.mu, std::defer_lock);
  if constexpr (telemetry::kEnabled) {
    RuntimeMetrics& tm = RuntimeMetrics::get();
    if (!lk.try_lock()) {
      tm.stripeContended.add(1);
      const std::uint64_t w0 = telemetry::nowNs();
      lk.lock();
      tm.stripeWaitNs.record(telemetry::nowNs() - w0);
      tm.stripeContentionHwm.recordMax(
          static_cast<std::int64_t>(++vs.contended));
    }
    tm.stripeAcquisitions.add(1);
  } else {
    lk.lock();
  }

  // The event's value: reads observe, writes store, sync events bump the
  // dummy variable (so every acquire/release is a fresh write).
  Value value;
  switch (kind) {
    case trace::EventKind::kRead:
      value = vs.value;
      break;
    case trace::EventKind::kWrite:
      vs.value = writeValue;
      value = writeValue;
      break;
    default:
      value = ++vs.value;
      break;
  }

  trace::Event e;
  e.kind = kind;
  e.thread = ts.id;
  e.var = v;
  e.value = value;
  e.localSeq = ts.nextLocal++;
  // Drawn while holding the stripe: same-variable events get seqs in their
  // serialization order, so ≺ implies seq order (header invariant).
  e.globalSeq = nextSeq_.fetch_add(1, std::memory_order_acq_rel);

  // Maintain per-thread locksets (acquire counts itself; release drops
  // before recording — mirroring program::ExecutionRecord's convention).
  if (kind == trace::EventKind::kLockAcquire) {
    ts.heldLocks.push_back(v);
  } else if (kind == trace::EventKind::kLockRelease) {
    const auto it = std::find(ts.heldLocks.begin(), ts.heldLocks.end(), v);
    if (it != ts.heldLocks.end()) ts.heldLocks.erase(it);
  }

  // Algorithm A (paper Fig. 2).  Shadow-epoch tick first (tree backend):
  // every knowledge state this event publishes gets a unique label.
  ts.vi.onEventStart();
  // Step 1: tick if relevant.
  const bool relevant = trace::isWriteLike(kind) && relevant_.contains(v);
  if (relevant) ts.vi.increment(ts.id);
  if (kind == trace::EventKind::kRead) {
    // Step 2: V_i <- max{V_i, V^w_x};  V^a_x <- max{V^a_x, V_i}.
    ts.vi.joinWith(vs.vw);
    vs.va.joinWith(ts.vi);
  } else {
    // Step 3 (writes and write-like sync events, §3.1):
    // V^w_x <- V^a_x <- V_i <- max{V^a_x, V_i}.
    ts.vi.joinWith(vs.va);
    vs.va.assignFrom(ts.vi);
    vs.vw.assignFrom(ts.vi);
  }

  if (recording_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> rlk(recordMu_);
    recorded_.push_back(RecordedEvent{e, ts.heldLocks});
  }

  // Step 4: if e is relevant then send message <e, i, V_i> to observer.
  if (relevant) {
    messagesEmitted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> slk(sinkMu_);
    sink_->onMessage(trace::Message{e, ts.vi.flat()});
  }

  if constexpr (telemetry::kEnabled) {
    EventMetrics& tm = EventMetrics::get();
    (relevant ? tm.relevant : tm.irrelevant).add(1);
    if (relevant) tm.messages.add(1);
    if (sampled) tm.eventNs.record(telemetry::nowNs() - t0);
  }
  return value;
}

Value Runtime::read(VarId v) {
  std::shared_lock lk(structMu_);
  return processEvent(trace::EventKind::kRead, v, 0);
}

void Runtime::write(VarId v, Value value) {
  std::shared_lock lk(structMu_);
  processEvent(trace::EventKind::kWrite, v, value);
}

void Runtime::syncEvent(trace::EventKind kind, VarId v) {
  std::shared_lock lk(structMu_);
  processEvent(kind, v, 0);
}

void Runtime::atomicBegin(Value regionId) {
  regionMarker(trace::EventKind::kRegionBegin, regionId);
}

void Runtime::atomicEnd(Value regionId) {
  regionMarker(trace::EventKind::kRegionEnd, regionId);
}

void Runtime::regionMarker(trace::EventKind kind, Value regionId) {
  std::shared_lock lk(structMu_);
  eventsProcessed_.fetch_add(1, std::memory_order_relaxed);
  ThreadState& ts = registry_.current();

  trace::Event e;
  e.kind = kind;
  e.thread = ts.id;
  e.var = kNoVar;
  e.value = regionId;
  e.localSeq = ts.nextLocal++;
  // No stripe to hold: a region marker's only causal predecessors are the
  // same thread's earlier events, whose seqs were drawn before this call
  // started — fetch_add monotonicity preserves the seq-order invariant.
  e.globalSeq = nextSeq_.fetch_add(1, std::memory_order_acq_rel);

  // Region markers are unconditionally relevant: tick and emit, no joins
  // (the event accesses no variable, so Algorithm A steps 2-3 are vacuous).
  ts.vi.onEventStart();
  ts.vi.increment(ts.id);

  if (recording_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> rlk(recordMu_);
    recorded_.push_back(RecordedEvent{e, ts.heldLocks});
  }

  messagesEmitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> slk(sinkMu_);
    sink_->onMessage(trace::Message{e, ts.vi.flat()});
  }

  if constexpr (telemetry::kEnabled) {
    EventMetrics& tm = EventMetrics::get();
    tm.relevant.add(1);
    tm.messages.add(1);
  }
}

void Runtime::enableRecording() {
  recording_.store(true, std::memory_order_release);
}

std::vector<Runtime::RecordedEvent> Runtime::takeRecording() {
  std::vector<RecordedEvent> out;
  {
    std::lock_guard<std::mutex> lk(recordMu_);
    out = std::move(recorded_);
    recorded_.clear();
  }
  // Restore the total order M: stripes append as they finish, which can
  // differ from globalSeq order across variables.
  std::sort(out.begin(), out.end(),
            [](const RecordedEvent& a, const RecordedEvent& b) {
              return a.event.globalSeq < b.event.globalSeq;
            });
  return out;
}

std::vector<detect::RaceReport> Runtime::analyzeRaces(
    const std::vector<RecordedEvent>& recording,
    const std::vector<std::string>& varNames, detect::RaceOptions opts) const {
  std::unordered_set<VarId> candidates;
  {
    std::shared_lock lk(structMu_);
    for (const auto& name : varNames) candidates.insert(vars_.id(name));
  }

  trace::CollectingSink sink;
  core::Instrumentor instr(core::RelevancePolicy::accessesOf(candidates),
                           sink);
  instr.excludeFromCausality(candidates);
  std::unordered_map<GlobalSeq, std::vector<LockId>> locksets;
  for (const RecordedEvent& r : recording) {
    instr.onEvent(r.event);
    locksets.emplace(r.event.globalSeq,
                     std::vector<LockId>(r.locksHeld.begin(),
                                         r.locksHeld.end()));
  }
  return detect::RacePredictor{opts}.analyze(sink.messages(), locksets);
}

std::uint64_t Runtime::eventsProcessed() const {
  return eventsProcessed_.load(std::memory_order_relaxed);
}

std::uint64_t Runtime::messagesEmitted() const {
  return messagesEmitted_.load(std::memory_order_relaxed);
}

std::size_t Runtime::threadsSeen() const { return registry_.threadCount(); }

void InstrumentedMutex::lock() {
  m_.lock();
  rt_->syncEvent(trace::EventKind::kLockAcquire, lockVar_);
}

void InstrumentedMutex::unlock() {
  rt_->syncEvent(trace::EventKind::kLockRelease, lockVar_);
  m_.unlock();
}

}  // namespace mpx::runtime
