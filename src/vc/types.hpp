// Fundamental identifier and value types shared across all mpx modules.
//
// The paper (Rosu & Sen, IPDPS'04) works with a fixed set of threads
// t_1..t_n, a set S of shared variables, and integer-valued program states.
// We use dense small integer ids for threads and variables so that vector
// clocks and per-variable MVC tables can be flat arrays.
#pragma once

#include <cstdint>
#include <limits>

namespace mpx {

/// Dense thread index, 0-based (the paper's t_i uses 1-based i; we use 0).
using ThreadId = std::uint32_t;

/// Dense shared-variable index.  Locks and condition variables are mapped
/// into this same id space by the instrumentor (paper §3.1 treats locks as
/// shared variables that are written on acquire/release).
using VarId = std::uint32_t;

/// Dense lock (mutex) index within a program, before mapping to a VarId.
using LockId = std::uint32_t;

/// Dense condition-variable index within a program.
using CondId = std::uint32_t;

/// Per-thread event sequence number: the k in e^k_i.  Starts at 1 for the
/// first event of a thread, matching the paper's indexing.
using LocalSeq = std::uint64_t;

/// Global sequence number stamping the total order of the observed
/// multithreaded execution M (the paper assumes sequentially consistent,
/// atomic shared accesses; this stamp realises the "happens before in M"
/// order <_x used to define variable access precedence).
using GlobalSeq = std::uint64_t;

/// Program values.  The paper's examples are integer-valued.
using Value = std::int64_t;

/// Sentinel for "no thread".
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

/// Sentinel for "no variable".
inline constexpr VarId kNoVar = std::numeric_limits<VarId>::max();

/// Sentinel for "no global sequence number assigned yet".
inline constexpr GlobalSeq kNoSeq = std::numeric_limits<GlobalSeq>::max();

}  // namespace mpx
