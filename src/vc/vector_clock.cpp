#include "vc/vector_clock.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mpx::vc {

void VectorClock::set(ThreadId t, std::uint64_t v) {
  if (t >= c_.size()) {
    if (v == 0) return;  // zeros beyond the stored size are implicit
    c_.resize(static_cast<std::size_t>(t) + 1, 0);
  }
  c_[t] = v;
}

std::uint64_t VectorClock::increment(ThreadId t) {
  if (t >= c_.size()) c_.resize(static_cast<std::size_t>(t) + 1, 0);
  return ++c_[t];
}

void VectorClock::joinWith(const VectorClock& other) {
  if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
  for (std::size_t j = 0; j < other.c_.size(); ++j) {
    c_[j] = std::max(c_[j], other.c_[j]);
  }
}

VectorClock VectorClock::join(const VectorClock& a, const VectorClock& b) {
  VectorClock out = a;
  out.joinWith(b);
  return out;
}

bool VectorClock::lessEq(const VectorClock& other) const noexcept {
  for (std::size_t j = 0; j < c_.size(); ++j) {
    if (c_[j] > other.get(static_cast<ThreadId>(j))) return false;
  }
  return true;
}

bool VectorClock::less(const VectorClock& other) const noexcept {
  return lessEq(other) && !(*this == other);
}

bool VectorClock::concurrentWith(const VectorClock& other) const noexcept {
  return compare(other) == Ordering::kConcurrent;
}

Ordering VectorClock::compare(const VectorClock& other) const noexcept {
  bool le = true;  // this <= other so far
  bool ge = true;  // this >= other so far
  const std::size_t n = std::max(c_.size(), other.c_.size());
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t a = get(static_cast<ThreadId>(j));
    const std::uint64_t b = other.get(static_cast<ThreadId>(j));
    if (a < b) ge = false;
    if (a > b) le = false;
    if (!le && !ge) return Ordering::kConcurrent;
  }
  if (le && ge) return Ordering::kEqual;
  return le ? Ordering::kLess : Ordering::kGreater;
}

bool VectorClock::operator==(const VectorClock& other) const noexcept {
  const std::size_t n = std::max(c_.size(), other.c_.size());
  for (std::size_t j = 0; j < n; ++j) {
    if (get(static_cast<ThreadId>(j)) != other.get(static_cast<ThreadId>(j))) {
      return false;
    }
  }
  return true;
}

std::uint64_t VectorClock::sum() const noexcept {
  std::uint64_t s = 0;
  for (const std::uint64_t v : c_) s += v;
  return s;
}

bool VectorClock::isZero() const noexcept {
  return std::all_of(c_.begin(), c_.end(),
                     [](std::uint64_t v) { return v == 0; });
}

void VectorClock::clear() noexcept { std::fill(c_.begin(), c_.end(), 0); }

std::string VectorClock::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t VectorClock::hash() const noexcept {
  // FNV-1a over the zero-trimmed prefix so growth history is irrelevant.
  std::size_t last = c_.size();
  while (last > 0 && c_[last - 1] == 0) --last;
  std::size_t h = 1469598103934665603ull;
  for (std::size_t j = 0; j < last; ++j) {
    h ^= static_cast<std::size_t>(c_[j]) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

void VectorClock::normalize() noexcept {
  while (!c_.empty() && c_.back() == 0) c_.pop_back();
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '(';
  const auto& c = vc.components();
  for (std::size_t j = 0; j < c.size(); ++j) {
    if (j != 0) os << ',';
    os << c[j];
  }
  os << ')';
  return os;
}

}  // namespace mpx::vc
