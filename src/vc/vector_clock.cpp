#include "vc/vector_clock.hpp"

#include <ostream>
#include <sstream>

namespace mpx::vc {

Ordering VectorClock::compare(const VectorClock& other) const noexcept {
  bool le = true;  // this <= other so far
  bool ge = true;  // this >= other so far
  const std::size_t n = std::max(size_, other.size_);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t a = get(static_cast<ThreadId>(j));
    const std::uint64_t b = other.get(static_cast<ThreadId>(j));
    if (a < b) ge = false;
    if (a > b) le = false;
    if (!le && !ge) return Ordering::kConcurrent;
  }
  if (le && ge) return Ordering::kEqual;
  return le ? Ordering::kLess : Ordering::kGreater;
}

bool VectorClock::operator==(const VectorClock& other) const noexcept {
  const std::size_t n = std::max(size_, other.size_);
  for (std::size_t j = 0; j < n; ++j) {
    if (get(static_cast<ThreadId>(j)) != other.get(static_cast<ThreadId>(j))) {
      return false;
    }
  }
  return true;
}

std::uint64_t VectorClock::sum() const noexcept {
  std::uint64_t s = 0;
  for (std::size_t j = 0; j < size_; ++j) s += data_[j];
  return s;
}

bool VectorClock::isZero() const noexcept {
  return std::all_of(data_, data_ + size_,
                     [](std::uint64_t v) { return v == 0; });
}

std::string VectorClock::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t VectorClock::hash() const noexcept {
  // FNV-1a over the zero-trimmed prefix so growth history is irrelevant.
  std::size_t last = size_;
  while (last > 0 && data_[last - 1] == 0) --last;
  std::size_t h = 1469598103934665603ull;
  for (std::size_t j = 0; j < last; ++j) {
    h ^= static_cast<std::size_t>(data_[j]) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '(';
  const auto c = vc.components();
  for (std::size_t j = 0; j < c.size(); ++j) {
    if (j != 0) os << ',';
    os << c[j];
  }
  os << ')';
  return os;
}

}  // namespace mpx::vc
