#include "vc/tree_clock.hpp"

namespace mpx::vc {

void TreeClock::onEventStart() {
  const auto owner = static_cast<std::uint32_t>(owner_);
  ensureNode(owner);
  if (root_ < 0) root_ = owner_;
  ++nodes_[owner].sclk;
}

void TreeClock::ensureNode(std::uint32_t tid) {
  if (tid >= nodes_.size()) nodes_.resize(static_cast<std::size_t>(tid) + 1);
}

void TreeClock::detach(std::int32_t t) {
  Node& n = nodes_[static_cast<std::uint32_t>(t)];
  if (n.parent < 0) return;  // root or not attached
  if (n.prev >= 0) {
    nodes_[static_cast<std::uint32_t>(n.prev)].next = n.next;
  } else {
    nodes_[static_cast<std::uint32_t>(n.parent)].head = n.next;
  }
  if (n.next >= 0) nodes_[static_cast<std::uint32_t>(n.next)].prev = n.prev;
  n.parent = n.prev = n.next = -1;
}

void TreeClock::attachUnder(std::int32_t child, std::int32_t parent) {
  Node& c = nodes_[static_cast<std::uint32_t>(child)];
  Node& p = nodes_[static_cast<std::uint32_t>(parent)];
  c.parent = parent;
  c.prev = -1;
  c.next = p.head;
  if (p.head >= 0) nodes_[static_cast<std::uint32_t>(p.head)].prev = child;
  p.head = child;
}

void TreeClock::absorbNode(const TreeClock& src, std::int32_t v,
                           std::int32_t attach) {
  const auto vt = static_cast<std::uint32_t>(v);
  ensureNode(vt);
  if (root_ != v) {
    // Move the node to its new provenance position.  Its existing children
    // stay beneath it: they were known at its OLD shadow epoch, so a
    // fortiori at the new one — the subtree invariant survives the move.
    detach(v);
    attachUnder(v, attach);
  }
  // else: src knows this (non-owner) tree's frozen root thread further than
  // the frozen copy does; the root updates in place and stays the root.
  nodes_[vt].sclk = src.nodes_[vt].sclk;
  flat_.set(static_cast<ThreadId>(vt), src.flat_.get(static_cast<ThreadId>(vt)));
}

JoinStats TreeClock::joinWith(const TreeClock& src) {
  JoinStats st;
  if (this == &src || src.root_ < 0) return st;
  if (root_ < 0) {
    // Empty target (a variable clock before its first write): a join from
    // nothing is a monotone copy.
    monotoneAssignFrom(src);
    st.entriesTouched = 1;
    st.changed = true;
    return st;
  }

  const auto srt = static_cast<std::uint32_t>(src.root_);
  ++st.entriesTouched;  // the src root probe
  const bool rootKnown = shadow(srt) >= src.nodes_[srt].sclk;
  if (rootKnown && src.rootDominated_) {
    // O(1) whole-tree skip: everything beneath a dominated root was known
    // to its owner at that shadow epoch, which we have already absorbed.
    return st;
  }

  bool changed = false;
  if (!rootKnown) {
    changed = true;
    ensureNode(srt);
    if (root_ != src.root_) {
      detach(src.root_);
      attachUnder(src.root_, root_);
    }
    nodes_[srt].sclk = src.nodes_[srt].sclk;
    flat_.set(static_cast<ThreadId>(srt),
              src.flat_.get(static_cast<ThreadId>(srt)));
  }

  // Children of an UNDOMINATED src root must not hang under our copy of
  // that root: its entry does not certify their content, and a later
  // subtree skip through it would drop reader knowledge.  They re-attach
  // under our root instead (whose coverage is tracked by rootDominated_).
  const std::int32_t topAttach =
      src.rootDominated_ ? src.root_ : root_;
  scratch_.clear();
  for (std::int32_t c = src.nodes_[srt].head; c >= 0;
       c = src.nodes_[static_cast<std::uint32_t>(c)].next) {
    scratch_.emplace_back(c, topAttach);
  }
  while (!scratch_.empty()) {
    const auto [v, attach] = scratch_.back();
    scratch_.pop_back();
    ++st.entriesTouched;
    const auto vt = static_cast<std::uint32_t>(v);
    // Subtree skip: a node's entry certifies its whole src subtree (the
    // subtree is what v's thread knew at sclk, and stays frozen in src
    // until v is re-attached), so knowing the entry means knowing the
    // subtree.
    if (shadow(vt) >= src.nodes_[vt].sclk) continue;
    changed = true;
    absorbNode(src, v, attach);
    for (std::int32_t c = src.nodes_[vt].head; c >= 0;
         c = src.nodes_[static_cast<std::uint32_t>(c)].next) {
      scratch_.emplace_back(c, v);
    }
  }

  st.changed = changed;
  // A thread clock (owner-rooted, live) always covers its own content; a
  // variable clock that absorbed foreign knowledge no longer does.
  if (changed && root_ != owner_) rootDominated_ = false;
  return st;
}

void TreeClock::monotoneAssignFrom(const TreeClock& src) {
  nodes_ = src.nodes_;
  root_ = src.root_;
  rootDominated_ = src.rootDominated_;
  flat_ = src.flat_;
  // owner_ is this clock's identity, not content — deliberately untouched.
}

}  // namespace mpx::vc
