// Tree clock backend for Algorithm A's MVCs — joins that cost O(changed
// entries) instead of O(width), after Mathur–Tunç–Pavlogiannis ("tree
// clocks", arXiv 2201.06325), adapted to this paper's instrumentation
// setting.
//
// A TreeClock stores the same component values as a flat VectorClock (the
// `flat_` mirror IS the authoritative clk storage; every read-side query
// delegates to it) plus a rooted tree over thread ids that remembers the
// PROVENANCE of each entry: a node v hangs under the node whose join
// brought v's value in.  A join then descends only into subtrees the
// target does not already know, so re-absorbing a mostly-known clock
// touches a handful of nodes where the flat join scans the whole width.
//
// ## The shadow clock, and why the paper's clk cannot prune
//
// The tree-clock paper prunes on the component values themselves, which is
// sound for sync-only clocks that tick on every operation.  Algorithm A's
// MVCs tick V_i[i] only on RELEVANT events (paper Fig. 2 step 1), so one
// (thread, clk) epoch can label MANY distinct knowledge states: a thread
// can publish V^w_x at epoch t@k, then gain knowledge through reads
// (which never tick), then publish V^w_z still at t@k with strictly more
// knowledge.  "I already know t@k" therefore does NOT imply "I already
// know this publication", and pruning on clk drops causality edges.
//
// The fix: each tree node carries a SHADOW component `sclk`, ticked by the
// owning thread's onEventStart() at EVERY event (relevant or not).  Shadow
// epochs are unique per knowledge state — all of an event's joins happen
// after the tick and all its publications after the joins — so "my shadow
// of t >= the node's sclk" soundly means "I possess everything thread t
// knew at that point".  All pruning decisions compare sclk; the real MVC
// values ride along as payload in `flat_`.
//
// ## Root domination
//
// The O(1) whole-tree skip ("the source's root is already known, skip the
// source entirely") needs the source's root entry to dominate the whole
// tree.  That holds for thread clocks (V_i is exactly what thread i knows)
// and for freshly write-published variable clocks (V^w_x, V^a_x right
// after step 3 are monotone copies of V_i), but NOT for access clocks that
// readers have joined into: V^a_x's root stays frozen at the last writer
// while reader knowledge accumulates beneath it.  The `rootDominated_`
// flag tracks this; undominated sources skip the O(1) check and fall back
// to per-child probing, and an undominated source's root is never used as
// an attachment certificate in the target (its children re-attach under
// the target's root instead).  This also means the sibling-early-break of
// the original tree-clock Join (via attach-time aclk certificates) is
// unavailable here — Algorithm A's join-built variable clocks cannot carry
// sound attach certificates — so Join probes every child of a visited node
// at O(1) each and prunes whole SUBTREES, which preserves the
// O(changed + probed frontier) bound that matters.
#pragma once

#include <cstdint>
#include <vector>

#include "vc/vector_clock.hpp"

namespace mpx::vc {

/// Provenance-tree MVC.  Same observable value surface as VectorClock
/// (delegated to the flat mirror); joins and assignments exploit the tree.
class TreeClock {
 public:
  TreeClock() = default;

  /// Declares this clock to be thread `t`'s V_i.  Must be set before the
  /// first event; variable clocks (V^a_x, V^w_x) never call this.
  void setOwner(ThreadId t) { owner_ = static_cast<std::int32_t>(t); }

  /// Start-of-event shadow tick (thread clocks only): creates the root on
  /// the first event and bumps the owner's sclk.  Must precede the event's
  /// joins — shadow epochs are what make pruning sound (see file header).
  void onEventStart();

  /// Step 1 tick of the REAL clock value.  `t` must be the owner.
  std::uint64_t increment(ThreadId t) { return flat_.increment(t); }

  /// V <- max{V, src}, descending only into unknown subtrees.
  JoinStats joinWith(const TreeClock& src);

  /// V <- src, structurally (step 3's V^w_x <- V^a_x <- V_i publications).
  /// Precondition: *this <= src component-wise, which step 3 guarantees
  /// after the join.  Re-roots this clock at src's root so the copy stays
  /// root-dominated — the property the O(1) join skip feeds on.
  void monotoneAssignFrom(const TreeClock& src);

  /// The component values, as a flat clock (message emission reads this
  /// verbatim, so reports are byte-identical across backends).
  [[nodiscard]] const VectorClock& flat() const noexcept { return flat_; }

  [[nodiscard]] std::uint64_t get(ThreadId t) const noexcept {
    return flat_.get(t);
  }

  /// Shadow component read (pruning metadata; exposed for tests).
  [[nodiscard]] std::uint64_t shadow(ThreadId t) const noexcept {
    return t < nodes_.size() ? nodes_[t].sclk : 0;
  }

  [[nodiscard]] bool rootDominated() const noexcept { return rootDominated_; }
  [[nodiscard]] std::int32_t rootTid() const noexcept { return root_; }
  [[nodiscard]] bool empty() const noexcept { return root_ < 0; }

 private:
  /// One tree node per thread id, stored densely (tids are small and
  /// dense in every host: the runtime registry and the interpreter both
  /// hand them out sequentially).  sclk == 0 means "never seen".
  struct Node {
    std::uint64_t sclk = 0;
    std::int32_t parent = -1;  ///< tid of parent, -1 = root or absent
    std::int32_t head = -1;    ///< first child tid
    std::int32_t prev = -1;    ///< previous sibling tid
    std::int32_t next = -1;    ///< next sibling tid
  };

  void ensureNode(std::uint32_t tid);
  /// Unlinks `t` from its parent's child list, keeping t's own children.
  void detach(std::int32_t t);
  void attachUnder(std::int32_t child, std::int32_t parent);
  /// Copy one entry (shadow + value) from src, moving the node under
  /// `attach` unless it is this tree's root.
  void absorbNode(const TreeClock& src, std::int32_t v, std::int32_t attach);

  std::vector<Node> nodes_;
  VectorClock flat_;
  std::int32_t root_ = -1;
  std::int32_t owner_ = -1;
  bool rootDominated_ = true;
  /// Join DFS worklist: (src node, tid to attach copies under).  A member
  /// so the per-event joins stay allocation-free once warmed up.
  std::vector<std::pair<std::int32_t, std::int32_t>> scratch_;
};

}  // namespace mpx::vc
