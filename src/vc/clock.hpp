// Pluggable clock backend facade for Algorithm A.
//
// The hosts of Algorithm A (core/instrumentor.cpp and runtime/runtime.cpp)
// manipulate clocks through this facade so the MVC representation can be
// chosen per trace without touching the algorithm:
//
//   * kFlat — the SBO VectorClock.  O(width) joins that never leave the
//     inline buffer for <= 8 threads; unbeatable at small widths.
//   * kTree — the provenance TreeClock (tree_clock.hpp).  O(changed)
//     amortized joins; wins once the width clears the SBO buffer.
//   * kAuto — resolve by declared thread count at reserve() time:
//     <= VectorClock::kInlineComponents stays flat, wider goes tree.
//
// Whatever the backend, flat() exposes the component values as a plain
// VectorClock — message emission, the causality graph, the observer
// frontier and every test read that, so reports are byte-identical across
// backends (certified by the differential sweep in tests/analysis and the
// randomized equivalence test in tests/vc).
#pragma once

#include <cstdint>

#include "vc/tree_clock.hpp"
#include "vc/vector_clock.hpp"

namespace mpx::vc {

enum class ClockBackend : std::uint8_t {
  kFlat = 0,
  kTree = 1,
  kAuto = 2,
};

/// kAuto resolution rule: stay flat while every clock fits the SBO buffer,
/// go tree beyond it.  Deterministic in the declared thread count so the
/// same trace always picks the same backend.
[[nodiscard]] constexpr ClockBackend resolveBackend(
    ClockBackend requested, std::size_t threads) noexcept {
  if (requested != ClockBackend::kAuto) return requested;
  return threads > VectorClock::kInlineComponents ? ClockBackend::kTree
                                                  : ClockBackend::kFlat;
}

/// One MVC behind the selected backend.  Only the operations Algorithm A
/// performs are exposed; in particular there is no arbitrary set() — tree
/// clocks are only sound for clocks describing causal pasts of one
/// execution, which Algorithm A's op sequence guarantees.
class Clock {
 public:
  Clock() = default;  // flat
  explicit Clock(ClockBackend backend)
      : isTree_(backend == ClockBackend::kTree) {}

  [[nodiscard]] ClockBackend backend() const noexcept {
    return isTree_ ? ClockBackend::kTree : ClockBackend::kFlat;
  }

  /// Thread-clock identity (V_i's owning thread).  No-op for flat.
  void setOwner(ThreadId t) {
    if (isTree_) tree_.setOwner(t);
  }

  /// Must run once at the start of every event on the event's thread
  /// clock, BEFORE the event's joins: ticks the tree backend's shadow
  /// epoch (see tree_clock.hpp).  No-op for flat.
  void onEventStart() {
    if (isTree_) tree_.onEventStart();
  }

  /// Step 1: V[t] <- V[t] + 1.
  std::uint64_t increment(ThreadId t) {
    return isTree_ ? tree_.increment(t) : flat_.increment(t);
  }

  /// Steps 2-3: V <- max{V, other}.  Backends must match (one trace, one
  /// backend).
  JoinStats joinWith(const Clock& other) {
    return isTree_ ? tree_.joinWith(other.tree_)
                   : flat_.joinWith(other.flat_);
  }

  /// Step 3 publication: V <- other.  Requires *this <= other (which the
  /// preceding join established) so the tree backend may monotone-copy.
  void assignFrom(const Clock& other) {
    if (isTree_) {
      tree_.monotoneAssignFrom(other.tree_);
    } else {
      flat_ = other.flat_;
    }
  }

  /// The component values as a flat clock (what messages carry).
  [[nodiscard]] const VectorClock& flat() const noexcept {
    return isTree_ ? tree_.flat() : flat_;
  }

  [[nodiscard]] std::uint64_t get(ThreadId t) const noexcept {
    return flat().get(t);
  }

  /// Backend internals, for tests and the shootout bench.
  [[nodiscard]] const TreeClock& tree() const noexcept { return tree_; }

 private:
  VectorClock flat_;  ///< used by the flat backend only
  TreeClock tree_;    ///< used by the tree backend only (owns its mirror)
  bool isTree_ = false;
};

}  // namespace mpx::vc
