// Chrome trace-event spans: a process-wide recorder plus a TraceSpan RAII
// guard.  The recorder's toChromeTraceJson() output loads directly into
// chrome://tracing or Perfetto (ui.perfetto.dev), giving a flame-style
// timeline of the analysis pipeline: instrumentation, channel flushes, and
// lattice level construction.
//
// Recording is off by default (a single relaxed atomic-bool check per
// span), and the whole facility compiles to no-ops when telemetry is
// disabled at build time.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"

namespace mpx::telemetry {

#if MPX_TELEMETRY_ENABLED

class TraceRecorder {
 public:
  /// The process-wide recorder all spans report into.
  static TraceRecorder& global();

  void setEnabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one complete ("ph":"X") event.  Timestamps are nowNs() values.
  void recordComplete(
      std::string name, std::string category, std::uint64_t startNs,
      std::uint64_t durationNs,
      std::vector<std::pair<std::string, std::int64_t>> args = {});

  /// Records an instant ("ph":"i") event at the current time.
  void recordInstant(std::string name, std::string category);

  /// Sets the "pid" emitted on every trace event (default 1).  The emitter
  /// and daemon set their real process ids so a merged client+daemon trace
  /// renders as two processes in one Perfetto load, joined by the
  /// stream_id span argument.
  void setPid(std::uint32_t pid) noexcept {
    pid_.store(pid, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t pid() const noexcept {
    return pid_.load(std::memory_order_relaxed);
  }

  /// Optional process label rendered as a Chrome "process_name" metadata
  /// event (Perfetto shows it as the track group title).
  void setProcessName(std::string name);

  [[nodiscard]] std::size_t spanCount() const;
  void clear();

  /// The recorded timeline as a Chrome trace-event JSON document.
  [[nodiscard]] std::string toChromeTraceJson() const;

 private:
  struct Record {
    std::string name;
    std::string category;
    char phase;  ///< 'X' (complete) or 'i' (instant)
    std::uint64_t startNs;
    std::uint64_t durationNs;
    std::uint32_t tid;
    std::vector<std::pair<std::string, std::int64_t>> args;
  };

  std::uint32_t tidLocked(std::thread::id id);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> pid_{1};
  mutable std::mutex mu_;
  std::string processName_;
  std::vector<Record> records_;
  std::map<std::thread::id, std::uint32_t> tids_;
};

/// RAII span: measures construction-to-destruction and reports it to the
/// global recorder (only when recording is enabled — construction is a
/// single atomic load otherwise).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) noexcept {
    if (TraceRecorder::global().enabled()) {
      active_ = true;
      name_ = name;
      category_ = category;
      start_ = nowNs();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an integer argument shown in the trace viewer's detail pane.
  void arg(const char* key, std::int64_t value) {
    if (active_) args_.emplace_back(key, value);
  }

  ~TraceSpan() {
    if (active_) {
      TraceRecorder::global().recordComplete(name_, category_, start_,
                                             nowNs() - start_,
                                             std::move(args_));
    }
  }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ = 0;
  std::vector<std::pair<std::string, std::int64_t>> args_;
};

#else  // !MPX_TELEMETRY_ENABLED

class TraceRecorder {
 public:
  static TraceRecorder& global();
  void setEnabled(bool) noexcept {}
  [[nodiscard]] bool enabled() const noexcept { return false; }
  void setPid(std::uint32_t) noexcept {}
  [[nodiscard]] std::uint32_t pid() const noexcept { return 1; }
  void setProcessName(std::string) {}
  void recordComplete(std::string, std::string, std::uint64_t, std::uint64_t,
                      std::vector<std::pair<std::string, std::int64_t>> = {}) {
  }
  void recordInstant(std::string, std::string) {}
  [[nodiscard]] std::size_t spanCount() const { return 0; }
  void clear() {}
  [[nodiscard]] std::string toChromeTraceJson() const {
    return "{\"traceEvents\": []}\n";
  }
};

class TraceSpan {
 public:
  TraceSpan(const char*, const char*) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void arg(const char*, std::int64_t) {}
};

#endif  // MPX_TELEMETRY_ENABLED

}  // namespace mpx::telemetry
