#include "telemetry/export.hpp"

#include <sstream>

namespace mpx::telemetry {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; we emit our own names so
/// this is belt-and-braces for exotic registrations.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Exposition-format HELP escaping: backslash and line feed must be
/// escaped (`\\` and `\n`) or a multi-line help string corrupts the whole
/// scrape.
std::string promEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void writeHelpAndType(std::ostringstream& os, const std::string& name,
                      const std::string& help, const char* type) {
  if (!help.empty()) {
    os << "# HELP " << name << ' ' << promEscapeHelp(help) << '\n';
  }
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

std::string toPrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const CounterSample& c : snap.counters) {
    const std::string name = sanitize(c.name);
    writeHelpAndType(os, name, c.help, "counter");
    os << name << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = sanitize(g.name);
    writeHelpAndType(os, name, g.help, "gauge");
    os << name << ' ' << g.value << '\n';
  }
  for (const HistogramSample& h : snap.histograms) {
    const std::string name = sanitize(h.name);
    writeHelpAndType(os, name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << name << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
         << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << name << "_sum " << h.sum << '\n';
    os << name << "_count " << h.count << '\n';
  }
  return os.str();
}

std::string toJson(const MetricsSnapshot& snap, int indent) {
  std::ostringstream os;
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad1 = indent > 0 ? std::string(indent, ' ') : "";
  const std::string pad2 = indent > 0 ? std::string(2 * indent, ' ') : "";
  const std::string sp = indent > 0 ? " " : "";

  os << '{' << nl;
  os << pad1 << "\"counters\":" << sp << '{' << nl;
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << pad2 << '"' << jsonEscape(snap.counters[i].name)
       << "\":" << sp << snap.counters[i].value
       << (i + 1 < snap.counters.size() ? "," : "") << nl;
  }
  os << pad1 << "}," << nl;

  os << pad1 << "\"gauges\":" << sp << '{' << nl;
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << pad2 << '"' << jsonEscape(snap.gauges[i].name) << "\":" << sp
       << snap.gauges[i].value << (i + 1 < snap.gauges.size() ? "," : "")
       << nl;
  }
  os << pad1 << "}," << nl;

  os << pad1 << "\"histograms\":" << sp << '{' << nl;
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSample& h = snap.histograms[i];
    os << pad2 << '"' << jsonEscape(h.name) << "\":" << sp
       << "{\"count\":" << sp << h.count << "," << sp << "\"sum\":" << sp
       << h.sum << "," << sp << "\"buckets\":" << sp << '[';
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) os << ',' << sp;
      os << "{\"le\":" << sp << h.bounds[b] << "," << sp << "\"count\":" << sp
         << h.counts[b] << '}';
    }
    if (!h.bounds.empty()) os << ',' << sp;
    os << "{\"le\":" << sp << "\"+Inf\"," << sp << "\"count\":" << sp
       << (h.counts.empty() ? std::uint64_t{0} : h.counts.back());
    os << "}]}" << (i + 1 < snap.histograms.size() ? "," : "") << nl;
  }
  os << pad1 << '}' << nl;
  os << '}';
  return os.str();
}

}  // namespace mpx::telemetry
