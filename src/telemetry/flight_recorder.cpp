#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "telemetry/timer.hpp"

namespace mpx::telemetry {

namespace {

// --- async-signal-safe formatting helpers ---------------------------------

/// Writes `v` in decimal into `buf` (must hold >= 21 bytes); returns the
/// number of characters written.  No locale, no allocation.
std::size_t u64ToDec(std::uint64_t v, char* buf) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

/// Buffered write(2) wrapper: batches small appends so a dump is a few
/// syscalls, not thousands.  Everything here is async-signal-safe.
struct FdWriter {
  int fd;
  char buf[4096] = {};
  std::size_t len = 0;
  bool ok = true;

  void flush() noexcept {
    std::size_t off = 0;
    while (ok && off < len) {
      const ::ssize_t n = ::write(fd, buf + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* s, std::size_t n) noexcept {
    if (n > sizeof(buf)) {  // oversized literal: write through
      flush();
      std::size_t off = 0;
      while (ok && off < n) {
        const ::ssize_t w = ::write(fd, s + off, n - off);
        if (w < 0) {
          if (errno == EINTR) continue;
          ok = false;
          return;
        }
        off += static_cast<std::size_t>(w);
      }
      return;
    }
    if (len + n > sizeof(buf)) flush();
    std::memcpy(buf + len, s, n);
    len += n;
  }
  void lit(const char* s) noexcept { put(s, std::strlen(s)); }
  void num(std::uint64_t v) noexcept {
    char d[21];
    put(d, u64ToDec(v, d));
  }
};

// Crash-handler state: the dump path lives in static storage because a
// signal handler cannot touch the heap.
char g_crashDumpPath[512] = {0};
std::atomic<bool> g_handlerInstalled{false};

void crashHandler(int sig) noexcept {
  FlightRecorder::global().record(FlightEvent::kDump, /*reason=*/1,
                                  static_cast<std::uint64_t>(sig));
  if (g_crashDumpPath[0] != '\0') {
    FlightRecorder::global().dumpToFile(g_crashDumpPath);
  } else {
    FlightRecorder::global().dumpToFd(STDERR_FILENO);
  }
  // Re-raise with the default disposition so the exit status still says
  // "killed by SIGSEGV/SIGABRT" (and core dumps still happen).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

const char* flightEventName(FlightEvent e) noexcept {
  switch (e) {
    case FlightEvent::kConnAccepted: return "conn_accepted";
    case FlightEvent::kConnShed: return "conn_shed";
    case FlightEvent::kConnAborted: return "conn_aborted";
    case FlightEvent::kHandshake: return "handshake";
    case FlightEvent::kFrame: return "frame";
    case FlightEvent::kStreamEnd: return "stream_end";
    case FlightEvent::kLevel: return "level";
    case FlightEvent::kDegradation: return "degradation";
    case FlightEvent::kViolation: return "violation";
    case FlightEvent::kDump: return "dump";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

void FlightRecorder::record(FlightEvent type, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq % kCapacity];
  s.state.store(2 * seq + 1, std::memory_order_release);  // writing
  s.seq.store(seq, std::memory_order_relaxed);
  s.tsNs.store(rawMonotonicNs(), std::memory_order_relaxed);
  s.type.store(static_cast<std::uint64_t>(type), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.c.store(c, std::memory_order_relaxed);
  s.state.store(2 * seq + 2, std::memory_order_release);  // published
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return head_.load(std::memory_order_relaxed);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(kCapacity);
  for (const Slot& s : slots_) {
    const std::uint64_t before = s.state.load(std::memory_order_acquire);
    if (before == 0 || before % 2 == 1) continue;  // empty or mid-write
    FlightRecord r;
    r.seq = s.seq.load(std::memory_order_relaxed);
    r.tsNs = s.tsNs.load(std::memory_order_relaxed);
    r.type = static_cast<FlightEvent>(s.type.load(std::memory_order_relaxed));
    r.a = s.a.load(std::memory_order_relaxed);
    r.b = s.b.load(std::memory_order_relaxed);
    r.c = s.c.load(std::memory_order_relaxed);
    if (s.state.load(std::memory_order_acquire) != before) continue;  // torn
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& x, const FlightRecord& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::string FlightRecorder::toJson() const {
  const std::vector<FlightRecord> events = snapshot();
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\n  \"recorded\": ";
  char d[21];
  out.append(d, u64ToDec(recorded(), d));
  out += ",\n  \"events\": [";
  bool first = true;
  for (const FlightRecord& r : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"seq\": ";
    out.append(d, u64ToDec(r.seq, d));
    out += ", \"ts_ns\": ";
    out.append(d, u64ToDec(r.tsNs, d));
    out += ", \"type\": \"";
    out += flightEventName(r.type);
    out += "\", \"a\": ";
    out.append(d, u64ToDec(r.a, d));
    out += ", \"b\": ";
    out.append(d, u64ToDec(r.b, d));
    out += ", \"c\": ";
    out.append(d, u64ToDec(r.c, d));
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool FlightRecorder::dumpToFd(int fd) const noexcept {
  FdWriter w{fd};
  w.lit("{\n  \"recorded\": ");
  w.num(recorded());
  w.lit(",\n  \"events\": [");
  // Walk the ring in publish order starting at the oldest surviving slot.
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t first =
      head > kCapacity ? head - kCapacity : 0;
  bool any = false;
  for (std::uint64_t seq = first; seq < head; ++seq) {
    const Slot& s = slots_[seq % kCapacity];
    const std::uint64_t before = s.state.load(std::memory_order_acquire);
    if (before != 2 * seq + 2) continue;  // overwritten or mid-write
    const std::uint64_t tsNs = s.tsNs.load(std::memory_order_relaxed);
    const std::uint64_t type = s.type.load(std::memory_order_relaxed);
    const std::uint64_t a = s.a.load(std::memory_order_relaxed);
    const std::uint64_t b = s.b.load(std::memory_order_relaxed);
    const std::uint64_t c = s.c.load(std::memory_order_relaxed);
    if (s.state.load(std::memory_order_acquire) != before) continue;
    w.lit(any ? ",\n" : "\n");
    any = true;
    w.lit("    {\"seq\": ");
    w.num(seq);
    w.lit(", \"ts_ns\": ");
    w.num(tsNs);
    w.lit(", \"type\": \"");
    w.lit(flightEventName(static_cast<FlightEvent>(type)));
    w.lit("\", \"a\": ");
    w.num(a);
    w.lit(", \"b\": ");
    w.num(b);
    w.lit(", \"c\": ");
    w.num(c);
    w.lit("}");
  }
  w.lit("\n  ]\n}\n");
  w.flush();
  return w.ok;
}

bool FlightRecorder::dumpToFile(const char* path) const noexcept {
  if (path == nullptr || path[0] == '\0') return false;
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dumpToFd(fd);
  ::close(fd);
  return ok;
}

void FlightRecorder::installCrashHandler(const char* path) {
  if (path != nullptr) {
    std::strncpy(g_crashDumpPath, path, sizeof(g_crashDumpPath) - 1);
    g_crashDumpPath[sizeof(g_crashDumpPath) - 1] = '\0';
  }
  if (g_handlerInstalled.exchange(true)) return;
  struct ::sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &crashHandler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

void FlightRecorder::reset() noexcept {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& s : slots_) s.state.store(0, std::memory_order_relaxed);
}

}  // namespace mpx::telemetry
