// Process-wide metrics registry: atomic counters, gauges, and fixed-bucket
// histograms.
//
// The paper's pipeline is *online* — Algorithm A runs inside the observed
// program and the observer advances the computation lattice while the
// program executes — so the instrumentation itself must be observable
// without perturbing the run.  Every instrument here is a single relaxed
// atomic word (or a short array of them for histograms), cheap enough for
// the per-access hot path; registration (a mutex-protected name lookup)
// happens once per call site, never per event.
//
// When the build disables telemetry (CMake option MPX_TELEMETRY=OFF, which
// defines MPX_TELEMETRY_ENABLED=0), this header swaps in no-op stubs with
// the identical API, so every hook in runtime/, trace/, and observer/
// compiles away to (near) nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#ifndef MPX_TELEMETRY_ENABLED
#define MPX_TELEMETRY_ENABLED 1
#endif

#if MPX_TELEMETRY_ENABLED
#include <atomic>
#endif

namespace mpx::telemetry {

/// Compile-time switch, usable with `if constexpr` to skip clock reads and
/// other hook-side work in disabled builds.
inline constexpr bool kEnabled = MPX_TELEMETRY_ENABLED != 0;

// ---------------------------------------------------------------------------
// Snapshot types (always available; exporters operate on these, so report
// rendering and the CLI compile identically in both modes).
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  /// Upper bucket bounds (inclusive); an implicit +Inf bucket follows.
  std::vector<std::uint64_t> bounds;
  /// counts.size() == bounds.size() + 1; counts[i] = observations with
  /// value <= bounds[i] (non-cumulative; exporters cumulate for Prometheus).
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// Default bucket bounds for nanosecond latency histograms: powers of four
/// from 64ns to ~1s (13 buckets + implicit +Inf).
[[nodiscard]] std::vector<std::uint64_t> latencyBucketsNs();

/// Default bucket bounds for size-ish histograms (frontier widths, queue
/// depths): powers of two from 1 to 65536.
[[nodiscard]] std::vector<std::uint64_t> sizeBuckets();

// ---------------------------------------------------------------------------
// Algorithm A latency sampling control (always available: the CLIs parse
// the flag even in telemetry-OFF builds).
// ---------------------------------------------------------------------------

/// Sets the latency sample period: roughly every n-th event is timed
/// (n is rounded UP to a power of two so the hot path stays one mask).
/// n == 0 disables latency sampling entirely; the default is 64, which
/// keeps historical BENCH numbers comparable.  Overrides any
/// MPX_TELEMETRY_SAMPLE environment setting.
void setLatencySampleEvery(std::uint64_t n) noexcept;

/// The effective (rounded) sample period; 0 when sampling is off.
[[nodiscard]] std::uint64_t latencySampleEvery() noexcept;

/// True when the event with per-site ordinal `idx` should be timed.  The
/// MPX_TELEMETRY_SAMPLE environment variable is applied on first use.
[[nodiscard]] bool shouldSampleLatency(std::uint64_t idx) noexcept;

#if MPX_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Real instruments.
// ---------------------------------------------------------------------------

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A value that can go up and down; recordMax() turns it into a
/// high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if `v` is greater (atomic high-water mark).
  void recordMax(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram.  record() is a linear scan over ~a dozen bounds
/// plus three relaxed adds — no allocation, no locking.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)),
        counts_(std::make_unique<std::atomic<std::uint64_t>[]>(
            bounds_.size() + 1)) {}

  void record(std::uint64_t v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name -> instrument registry.  Instruments are created on first lookup
/// and live for the process lifetime, so call sites can cache references.
class MetricsRegistry {
 public:
  /// The process-wide registry all mpx layers report into.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& help = {});
  /// `bounds` is honored only on the creating call; later lookups of the
  /// same name return the existing histogram.
  Histogram& histogram(const std::string& name, const std::string& help = {},
                       std::vector<std::uint64_t> bounds = latencyBucketsNs());

  /// Consistent point-in-time copy of every registered instrument.
  /// CONTRACT: each section is sorted by metric name, so two runs of the
  /// same workload render byte-identical --stats / report JSON regardless
  /// of registration (thread interleaving) order.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every instrument, keeping registrations (tests; per-run CLI
  /// deltas).
  void reset();

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    std::string help;
  };

  // Registration is a hash lookup (hot call sites cache the reference
  // anyway); snapshot() sorts, per its contract above.
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry<Counter>> counters_;
  std::unordered_map<std::string, Entry<Gauge>> gauges_;
  std::unordered_map<std::string, Entry<Histogram>> histograms_;
};

#else  // !MPX_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// No-op stubs: identical API, empty bodies.  Hook sites compile unchanged
// and the optimizer removes the calls entirely.
// ---------------------------------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void recordMax(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  void reset() noexcept {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();
  Counter& counter(const char*, const char* = "") { return counter_; }
  Gauge& gauge(const char*, const char* = "") { return gauge_; }
  Histogram& histogram(const char*, const char* = "",
                       std::vector<std::uint64_t> = {}) {
    return histogram_;
  }
  // std::string overloads so call sites may pass either.
  Counter& counter(const std::string&, const std::string& = {}) {
    return counter_;
  }
  Gauge& gauge(const std::string&, const std::string& = {}) { return gauge_; }
  Histogram& histogram(const std::string&, const std::string& = {},
                       std::vector<std::uint64_t> = {}) {
    return histogram_;
  }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // MPX_TELEMETRY_ENABLED

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& registry() { return MetricsRegistry::global(); }

}  // namespace mpx::telemetry
