#include "telemetry/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace mpx::telemetry {

namespace {

/// Sampling state: `off` wins over the mask.  Defaults match the
/// historical hardcoded 1/64.
std::atomic<std::uint64_t> g_latencySampleMask{63};
std::atomic<bool> g_latencySampleOff{false};

/// The store half of setLatencySampleEvery (shared with the env path).
void applySamplePeriod(std::uint64_t n) noexcept {
  if (n == 0) {
    g_latencySampleOff.store(true, std::memory_order_relaxed);
    return;
  }
  std::uint64_t p = 1;
  while (p < n && p < (1ull << 62)) p <<= 1;
  g_latencySampleMask.store(p - 1, std::memory_order_relaxed);
  g_latencySampleOff.store(false, std::memory_order_relaxed);
}

/// MPX_TELEMETRY_SAMPLE, applied once on first use (an explicit
/// setLatencySampleEvery afterwards overrides it).
bool applyLatencySampleEnv() {
  const char* env = std::getenv("MPX_TELEMETRY_SAMPLE");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') {
      applySamplePeriod(static_cast<std::uint64_t>(v));
    }
  }
  return true;
}

void ensureLatencySampleEnvApplied() {
  static const bool applied = applyLatencySampleEnv();
  (void)applied;
}

}  // namespace

void setLatencySampleEvery(std::uint64_t n) noexcept {
  ensureLatencySampleEnvApplied();  // fix the ordering: explicit set wins
  applySamplePeriod(n);
}

std::uint64_t latencySampleEvery() noexcept {
  ensureLatencySampleEnvApplied();
  if (g_latencySampleOff.load(std::memory_order_relaxed)) return 0;
  return g_latencySampleMask.load(std::memory_order_relaxed) + 1;
}

bool shouldSampleLatency(std::uint64_t idx) noexcept {
  ensureLatencySampleEnvApplied();
  if (g_latencySampleOff.load(std::memory_order_relaxed)) return false;
  return (idx & g_latencySampleMask.load(std::memory_order_relaxed)) == 0;
}

std::vector<std::uint64_t> latencyBucketsNs() {
  // Powers of four, 64ns .. ~1.07s.
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 64; v <= (1ull << 30); v <<= 2) b.push_back(v);
  return b;
}

std::vector<std::uint64_t> sizeBuckets() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1; v <= (1ull << 16); v <<= 1) b.push_back(v);
  return b;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

#if MPX_TELEMETRY_ENABLED

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Histogram>(std::move(bounds));
    entry.help = help;
  }
  return *entry.instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    snap.counters.push_back(
        CounterSample{name, entry.help, entry.instrument->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    snap.gauges.push_back(
        GaugeSample{name, entry.help, entry.instrument->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.instrument;
    HistogramSample s;
    s.name = name;
    s.help = entry.help;
    s.bounds = h.bounds();
    s.counts.resize(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.counts[i] = h.bucketCount(i);
    }
    s.count = h.count();
    s.sum = h.sum();
    snap.histograms.push_back(std::move(s));
  }
  // The documented contract: name-sorted sections, so --stats dumps and
  // report JSON diff cleanly across runs whatever the registration order.
  const auto byName = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), byName);
  std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
  std::sort(snap.histograms.begin(), snap.histograms.end(), byName);
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.instrument->reset();
  for (auto& [name, entry] : gauges_) entry.instrument->reset();
  for (auto& [name, entry] : histograms_) entry.instrument->reset();
}

#endif  // MPX_TELEMETRY_ENABLED

}  // namespace mpx::telemetry
