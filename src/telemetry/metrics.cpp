#include "telemetry/metrics.hpp"

namespace mpx::telemetry {

std::vector<std::uint64_t> latencyBucketsNs() {
  // Powers of four, 64ns .. ~1.07s.
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 64; v <= (1ull << 30); v <<= 2) b.push_back(v);
  return b;
}

std::vector<std::uint64_t> sizeBuckets() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1; v <= (1ull << 16); v <<= 1) b.push_back(v);
  return b;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

#if MPX_TELEMETRY_ENABLED

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Histogram>(std::move(bounds));
    entry.help = help;
  }
  return *entry.instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    snap.counters.push_back(
        CounterSample{name, entry.help, entry.instrument->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    snap.gauges.push_back(
        GaugeSample{name, entry.help, entry.instrument->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.instrument;
    HistogramSample s;
    s.name = name;
    s.help = entry.help;
    s.bounds = h.bounds();
    s.counts.resize(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.counts[i] = h.bucketCount(i);
    }
    s.count = h.count();
    s.sum = h.sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.instrument->reset();
  for (auto& [name, entry] : gauges_) entry.instrument->reset();
  for (auto& [name, entry] : histograms_) entry.instrument->reset();
}

#endif  // MPX_TELEMETRY_ENABLED

}  // namespace mpx::telemetry
