// Renderers for metrics snapshots: Prometheus text exposition format (for
// scraping / quick terminal dumps) and JSON (for tooling and the bench
// emitters).  Both operate on the plain MetricsSnapshot value type, so they
// compile and link identically whether telemetry is enabled or stubbed.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace mpx::telemetry {

/// Prometheus text exposition format, version 0.0.4:
///
///   # HELP mpx_runtime_events_relevant_total ...
///   # TYPE mpx_runtime_events_relevant_total counter
///   mpx_runtime_events_relevant_total 42
///
/// Histograms render cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`, as Prometheus expects.
[[nodiscard]] std::string toPrometheusText(const MetricsSnapshot& snap);

/// The snapshot as a JSON document:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {"count", "sum", "buckets": [{"le", "count"}]}}}
/// `indent` > 0 pretty-prints; 0 emits one line.
[[nodiscard]] std::string toJson(const MetricsSnapshot& snap, int indent = 2);

}  // namespace mpx::telemetry
