// Flight recorder: a lock-free fixed-size ring of recent structured
// pipeline events (connections, frames, level completions, degradation
// rung changes, violations), kept so a dying daemon leaves a post-mortem
// artifact instead of a bare "report INCOMPLETE".
//
// Recording is a relaxed fetch_add plus a handful of plain stores into a
// pre-allocated slot — safe from any thread, cheap enough to leave on
// always (it is NOT gated on MPX_TELEMETRY_ENABLED: the recorder is most
// valuable exactly when the rest of telemetry was compiled out).
//
// Slots are published seqlock-style: a writer bumps the slot's sequence
// word last (release), and readers that observe a torn or in-progress slot
// skip it.  dumpToFd() is async-signal-safe — no allocation, no locking,
// hand-rolled decimal formatting straight into write(2) — so the SIGSEGV/
// SIGABRT handlers installed by installCrashHandler() can call it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mpx::telemetry {

/// What happened.  Values are stable (they appear in dump JSON).
enum class FlightEvent : std::uint8_t {
  kConnAccepted = 1,   ///< a = connection ordinal
  kConnShed = 2,       ///< a = active connections at shed time
  kConnAborted = 3,    ///< a = connection ordinal
  kHandshake = 4,      ///< a = stream id, b = protocol version, c = threads
  kFrame = 5,          ///< a = stream id, b = frame type, c = payload bytes
  kStreamEnd = 6,      ///< a = stream id
  kLevel = 7,          ///< a = level index, b = frontier width
  kDegradation = 8,    ///< a = new DegradationMode, b = BoundReason
  kViolation = 9,      ///< a = level index
  kDump = 10,          ///< a = reason (0 exit, 1 signal, 2 violation, 3 demand)
};

/// Stable lowercase name for an event type ("conn_accepted", ...).
[[nodiscard]] const char* flightEventName(FlightEvent e) noexcept;

struct FlightRecord {
  std::uint64_t seq = 0;   ///< global record ordinal (monotonic)
  std::uint64_t tsNs = 0;  ///< rawMonotonicNs() at record time
  FlightEvent type = FlightEvent::kConnAccepted;
  std::uint64_t a = 0, b = 0, c = 0;  ///< event-specific payload (see enum)
};

class FlightRecorder {
 public:
  /// Ring capacity: enough for the recent past, small enough to dump from
  /// a signal handler in bounded time.
  static constexpr std::size_t kCapacity = 1024;

  /// The process-wide recorder every pipeline layer reports into.
  static FlightRecorder& global();

  /// Appends one event.  Lock-free, wait-free except for the ring-slot
  /// claim; callable from any thread.
  void record(FlightEvent type, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0) noexcept;

  /// Total events ever recorded (>= kCapacity means the ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  /// Point-in-time copy of the surviving ring contents in seq order.
  /// Torn slots (a writer mid-publish) are skipped.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// The snapshot as a JSON document (non-signal path: /flightrecorder
  /// endpoint, on-violation dumps).
  [[nodiscard]] std::string toJson() const;

  /// Async-signal-safe dump: writes the same JSON shape straight to `fd`
  /// with write(2) and stack buffers.  Returns false on a write error.
  bool dumpToFd(int fd) const noexcept;

  /// Async-signal-safe: opens `path` (create/truncate) and dumps into it.
  bool dumpToFile(const char* path) const noexcept;

  /// Installs SIGSEGV/SIGABRT handlers that dump the ring to `path`
  /// (copied into static storage) and then re-raise the signal with the
  /// default disposition.  Pass nullptr to leave the path unset (handlers
  /// then write to stderr).  Idempotent.
  static void installCrashHandler(const char* path);

  /// Clears the ring (tests).
  void reset() noexcept;

 private:
  struct Slot {
    /// 0 = empty; odd (2*seq+1) = writer in progress; even (2*seq+2) =
    /// published.  Readers that see the state change under them skip the
    /// slot.  Fields are relaxed atomics so concurrent overwrite+snapshot
    /// is well-defined (and clean under TSan); the state word orders them.
    std::atomic<std::uint64_t> state{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> tsNs{0};
    std::atomic<std::uint64_t> type{0};
    std::atomic<std::uint64_t> a{0}, b{0}, c{0};
  };

  std::atomic<std::uint64_t> head_{0};
  Slot slots_[kCapacity];
};

}  // namespace mpx::telemetry
