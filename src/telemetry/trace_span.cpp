#include "telemetry/trace_span.hpp"

#include <sstream>

namespace mpx::telemetry {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder instance;
  return instance;
}

#if MPX_TELEMETRY_ENABLED

namespace {

/// Minimal JSON string escaping (the span names and categories are all
/// internal literals, but arg keys could in principle carry anything).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes `ns` as a microsecond value with three fractional digits (the
/// trace-event format's "ts"/"dur" fields are in microseconds).
void writeUs(std::ostream& os, std::uint64_t ns) {
  const std::uint64_t frac = ns % 1000;
  os << (ns / 1000) << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

std::uint32_t TraceRecorder::tidLocked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(tids_.size() + 1);
  tids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::recordComplete(
    std::string name, std::string category, std::uint64_t startNs,
    std::uint64_t durationNs,
    std::vector<std::pair<std::string, std::int64_t>> args) {
  const std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(Record{std::move(name), std::move(category), 'X',
                            startNs, durationNs,
                            tidLocked(std::this_thread::get_id()),
                            std::move(args)});
}

void TraceRecorder::recordInstant(std::string name, std::string category) {
  const std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(Record{std::move(name), std::move(category), 'i',
                            nowNs(), 0,
                            tidLocked(std::this_thread::get_id()),
                            {}});
}

void TraceRecorder::setProcessName(std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  processName_ = std::move(name);
}

std::size_t TraceRecorder::spanCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::string TraceRecorder::toChromeTraceJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t pid = pid_.load(std::memory_order_relaxed);
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  if (!processName_.empty()) {
    os << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": \"" << escape(processName_)
       << "\"}}";
    first = false;
  }
  for (const Record& r : records_) {
    if (!first) os << ',';
    first = false;
    // Chrome trace timestamps are microseconds; keep sub-us precision with
    // a fractional part.
    os << "\n  {\"name\": \"" << escape(r.name) << "\", \"cat\": \""
       << escape(r.category) << "\", \"ph\": \"" << r.phase
       << "\", \"pid\": " << pid << ", \"tid\": " << r.tid << ", \"ts\": ";
    writeUs(os, r.startNs);
    if (r.phase == 'X') {
      os << ", \"dur\": ";
      writeUs(os, r.durationNs);
    }
    if (r.phase == 'i') {
      os << ", \"s\": \"t\"";
    }
    if (!r.args.empty()) {
      os << ", \"args\": {";
      bool firstArg = true;
      for (const auto& [k, v] : r.args) {
        if (!firstArg) os << ", ";
        firstArg = false;
        os << '"' << escape(k) << "\": " << v;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
  return os.str();
}

#endif  // MPX_TELEMETRY_ENABLED

}  // namespace mpx::telemetry
