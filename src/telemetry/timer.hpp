// Monotonic clock helpers and the ScopedTimer RAII latency probe.
#pragma once

#include <chrono>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace mpx::telemetry {

/// Nanoseconds since an arbitrary process-local epoch (first call).
/// Monotonic; shared by ScopedTimer and the trace-span recorder so span
/// timestamps and latency histograms line up.
inline std::uint64_t nowNs() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

/// Raw monotonic nanoseconds with NO process-local epoch: the steady-clock
/// reading itself.  On Linux steady_clock is CLOCK_MONOTONIC, which is
/// system-wide, so timestamps taken in different processes on the SAME
/// machine are directly comparable — this is what the wire protocol's v3
/// send timestamps and the daemon's emit-to-analyze lag computation use.
/// Cross-machine deployments must treat these lags as approximate (clock
/// offset is not compensated; see docs/TRACING.md).
inline std::uint64_t rawMonotonicNs() noexcept {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock::now().time_since_epoch())
          .count());
}

#if MPX_TELEMETRY_ENABLED

/// Records the enclosing scope's wall time into a histogram on destruction.
///
///   telemetry::ScopedTimer t(levelLatencyNs);
///   ... expand one lattice level ...
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept : h_(&h), start_(nowNs()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { h_->record(nowNs() - start_); }

  /// Elapsed nanoseconds so far (the timer keeps running).
  [[nodiscard]] std::uint64_t elapsedNs() const noexcept {
    return nowNs() - start_;
  }

 private:
  Histogram* h_;
  std::uint64_t start_;
};

#else

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  [[nodiscard]] std::uint64_t elapsedNs() const noexcept { return 0; }
};

#endif  // MPX_TELEMETRY_ENABLED

}  // namespace mpx::telemetry
