#include "core/lamport.hpp"

namespace mpx::core {

void LamportInstrumentor::onEvent(const trace::Event& e) {
  const ThreadId i = e.thread;
  ensure(li_, i);

  const bool relevant = relevance_.isRelevant(e);
  const bool isRead = e.kind == trace::EventKind::kRead;

  // Join first (classic Lamport receive), then tick, then publish — so a
  // relevant event's stamp strictly exceeds every causal predecessor's.
  if (e.accessesVariable()) {
    const VarId x = e.var;
    ensure(la_, x);
    ensure(lw_, x);
    li_[i] = std::max(li_[i], isRead ? lw_[x] : la_[x]);
  }
  if (relevant) ++li_[i];
  if (e.accessesVariable()) {
    const VarId x = e.var;
    if (isRead) {
      la_[x] = std::max(la_[x], li_[i]);
    } else {
      la_[x] = li_[i];
      lw_[x] = li_[i];
    }
  }

  if (relevant) emitted_.push_back(LamportStamped{e, li_[i]});
}

}  // namespace mpx::core
