// Reference (specification-level) causality, computed directly from the
// definition in paper §2.2 — used as the oracle against which Algorithm A
// is verified (Theorem 3 and requirements (a)-(c)).
//
// Given the full event sequence of a multithreaded execution M, the
// multithreaded computation ≺ is the smallest partial order with:
//   * e^k_i ≺ e^l_i when k < l                        (program order)
//   * e ≺ e' when e <_x e' and at least one of e, e' is a write of x
//                                                     (variable causality)
//   * transitive closure.
//
// This is O(n^2) with bitset rows — fine for the test-sized executions it
// exists to check.
#pragma once

#include <cstdint>
#include <vector>

#include "core/relevance.hpp"
#include "trace/event.hpp"

namespace mpx::core {

class ReferenceCausality {
 public:
  /// `events` must be the complete execution in its observed total order.
  explicit ReferenceCausality(const std::vector<trace::Event>& events);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// e_a ≺ e_b (strict; indices into the event sequence).
  [[nodiscard]] bool precedes(std::size_t a, std::size_t b) const {
    // reach_[b] is the predecessor bitset of b.
    return reach_[b][a >> 6] >> (a & 63) & 1u;
  }

  /// e_a ∥ e_b.
  [[nodiscard]] bool concurrent(std::size_t a, std::size_t b) const {
    return a != b && !precedes(a, b) && !precedes(b, a);
  }

  /// Number of events of thread j that are relevant (under `policy`) and
  /// causally precede event `k` — including event k itself when k belongs
  /// to thread j and is relevant.  This is exactly the value requirement
  /// (a) says V_i[j] must hold after processing event k.
  [[nodiscard]] std::uint64_t relevantPredecessorsFromThread(
      std::size_t k, ThreadId j, const RelevancePolicy& policy) const;

  /// Same count, but w.r.t. the most recent event at-or-before `k` that
  /// accesses variable x (requirement (b)); 0 if x was never accessed.
  [[nodiscard]] std::uint64_t relevantUpToLastAccess(
      std::size_t k, VarId x, ThreadId j, const RelevancePolicy& policy) const;

  /// Same, w.r.t. the most recent write of x (requirement (c)).
  [[nodiscard]] std::uint64_t relevantUpToLastWrite(
      std::size_t k, VarId x, ThreadId j, const RelevancePolicy& policy) const;

  [[nodiscard]] const trace::Event& event(std::size_t k) const {
    return (*events_)[k];
  }

 private:
  const std::vector<trace::Event>* events_;
  std::size_t n_;
  std::size_t words_;
  /// reach_[b] is a bitset over event indices a with a ≺ b (predecessors).
  std::vector<std::vector<std::uint64_t>> reach_;
};

}  // namespace mpx::core
