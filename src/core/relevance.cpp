#include "core/relevance.hpp"

namespace mpx::core {

RelevancePolicy RelevancePolicy::writesOf(std::unordered_set<VarId> vars) {
  auto shared = std::make_shared<std::unordered_set<VarId>>(std::move(vars));
  return RelevancePolicy([shared](const trace::Event& e) {
    return trace::isWriteLike(e.kind) && shared->contains(e.var);
  });
}

RelevancePolicy RelevancePolicy::accessesOf(std::unordered_set<VarId> vars) {
  auto shared = std::make_shared<std::unordered_set<VarId>>(std::move(vars));
  return RelevancePolicy([shared](const trace::Event& e) {
    return e.accessesVariable() && shared->contains(e.var);
  });
}

RelevancePolicy RelevancePolicy::allSharedAccesses() {
  return RelevancePolicy(
      [](const trace::Event& e) { return e.accessesVariable(); });
}

RelevancePolicy RelevancePolicy::nothing() {
  return RelevancePolicy([](const trace::Event&) { return false; });
}

RelevancePolicy RelevancePolicy::custom(
    std::function<bool(const trace::Event&)> pred) {
  return RelevancePolicy(std::move(pred));
}

}  // namespace mpx::core
