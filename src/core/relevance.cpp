#include "core/relevance.hpp"

namespace mpx::core {

// Atomic-region markers are relevant under every variable-selecting policy:
// a region annotation constrains whatever relevant events it encloses, so
// the markers must reach the observer with ticked clocks no matter which
// variables the property tracks (they access no variable themselves, so
// Algorithm A steps 2-3 still skip them).

RelevancePolicy RelevancePolicy::writesOf(std::unordered_set<VarId> vars) {
  auto shared = std::make_shared<std::unordered_set<VarId>>(std::move(vars));
  return RelevancePolicy([shared](const trace::Event& e) {
    if (trace::isRegionMarker(e.kind)) return true;
    return trace::isWriteLike(e.kind) && shared->contains(e.var);
  });
}

RelevancePolicy RelevancePolicy::accessesOf(std::unordered_set<VarId> vars) {
  auto shared = std::make_shared<std::unordered_set<VarId>>(std::move(vars));
  return RelevancePolicy([shared](const trace::Event& e) {
    if (trace::isRegionMarker(e.kind)) return true;
    return e.accessesVariable() && shared->contains(e.var);
  });
}

RelevancePolicy RelevancePolicy::allSharedAccesses() {
  return RelevancePolicy([](const trace::Event& e) {
    return e.accessesVariable() || trace::isRegionMarker(e.kind);
  });
}

RelevancePolicy RelevancePolicy::nothing() {
  return RelevancePolicy([](const trace::Event&) { return false; });
}

RelevancePolicy RelevancePolicy::custom(
    std::function<bool(const trace::Event&)> pred) {
  return RelevancePolicy(std::move(pred));
}

}  // namespace mpx::core
