// Negative control: scalar Lamport clocks instead of MVCs.
//
// The paper builds on VECTOR clocks "inspired by [Fidge, Mattern]" because
// scalar Lamport clocks, while consistent with causality (e ≺ e' implies
// L(e) < L(e')), cannot EXPRESS concurrency: from L(e) < L(e') the observer
// cannot tell whether e causally precedes e' or merely happened earlier.
// An observer fed Lamport timestamps must conservatively assume every
// timestamp-ordered pair is causally ordered — collapsing the computation
// lattice to the single observed run and losing all predictive power.
//
// This instrumentor exists so tests and benches can quantify exactly that
// loss (DESIGN.md ablation: "why vector clocks").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/relevance.hpp"
#include "trace/event.hpp"

namespace mpx::core {

/// A relevant event as the Lamport observer sees it.
struct LamportStamped {
  trace::Event event;
  std::uint64_t stamp = 0;
};

/// Scalar-clock analogue of Algorithm A: per-thread clocks L_i and
/// per-variable access/write clocks L^a_x, L^w_x, with max+1 maintenance.
class LamportInstrumentor {
 public:
  explicit LamportInstrumentor(RelevancePolicy relevance)
      : relevance_(std::move(relevance)) {}

  void onEvent(const trace::Event& e);

  [[nodiscard]] const std::vector<LamportStamped>& emitted() const noexcept {
    return emitted_;
  }

  [[nodiscard]] std::uint64_t threadClock(ThreadId t) const {
    return t < li_.size() ? li_[t] : 0;
  }

  /// The reconstruction available to a Lamport observer: the classic
  /// (stamp, thread) lexicographic TOTAL order.  Causality implies this
  /// order, but the converse is unknowable — concurrency is gone, so the
  /// observer can justify exactly one run.
  [[nodiscard]] static bool mayPrecede(const LamportStamped& a,
                                       const LamportStamped& b) {
    if (a.event.thread == b.event.thread) {
      return a.event.localSeq < b.event.localSeq;
    }
    if (a.stamp != b.stamp) return a.stamp < b.stamp;
    return a.event.thread < b.event.thread;
  }

 private:
  void ensure(std::vector<std::uint64_t>& v, std::size_t i) {
    if (i >= v.size()) v.resize(i + 1, 0);
  }

  RelevancePolicy relevance_;
  std::vector<std::uint64_t> li_;
  std::vector<std::uint64_t> la_;
  std::vector<std::uint64_t> lw_;
  std::vector<LamportStamped> emitted_;
};

}  // namespace mpx::core
