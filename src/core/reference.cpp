#include "core/reference.hpp"

#include <stdexcept>

namespace mpx::core {

ReferenceCausality::ReferenceCausality(const std::vector<trace::Event>& events)
    : events_(&events), n_(events.size()), words_((n_ + 63) / 64) {
  // reach_[b] is the bitset of indices a with a ≺ b (strict predecessors).
  reach_.assign(n_, std::vector<std::uint64_t>(words_, 0));

  std::vector<std::size_t> lastOfThread;       // thread -> last event index
  std::vector<std::size_t> lastWrite;          // var -> last write index
  std::vector<std::vector<std::size_t>> readsSinceWrite;  // var -> reads

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  const auto addPred = [this](std::size_t b, std::size_t a) {
    // a ≺ b, and by induction everything ≺ a is already in reach_[a].
    for (std::size_t w = 0; w < words_; ++w) reach_[b][w] |= reach_[a][w];
    reach_[b][a >> 6] |= 1ull << (a & 63);
  };

  for (std::size_t b = 0; b < n_; ++b) {
    const trace::Event& e = (*events_)[b];

    if (e.thread >= lastOfThread.size()) {
      lastOfThread.resize(e.thread + 1, kNone);
    }
    if (lastOfThread[e.thread] != kNone) addPred(b, lastOfThread[e.thread]);
    lastOfThread[e.thread] = b;

    if (e.accessesVariable()) {
      if (e.var >= lastWrite.size()) {
        lastWrite.resize(e.var + 1, kNone);
        readsSinceWrite.resize(e.var + 1);
      }
      if (e.kind == trace::EventKind::kRead) {
        // Reads depend only on the last write (read-read is permutable).
        if (lastWrite[e.var] != kNone) addPred(b, lastWrite[e.var]);
        readsSinceWrite[e.var].push_back(b);
      } else {
        // Write-like: depends on the last write and every read since it
        // (earlier accesses are covered transitively through them).
        if (lastWrite[e.var] != kNone) addPred(b, lastWrite[e.var]);
        for (const std::size_t r : readsSinceWrite[e.var]) addPred(b, r);
        readsSinceWrite[e.var].clear();
        lastWrite[e.var] = b;
      }
    }
  }
}

std::uint64_t ReferenceCausality::relevantPredecessorsFromThread(
    std::size_t k, ThreadId j, const RelevancePolicy& policy) const {
  std::uint64_t count = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    const trace::Event& e = (*events_)[a];
    if (e.thread != j || !policy.isRelevant(e)) continue;
    if (precedes(a, k) || (a == k)) ++count;
  }
  return count;
}

namespace {

/// Accumulates {m} ∪ preds(m) for each qualifying event m ≤ k, then counts
/// relevant members of thread j.
struct UnionCounter {
  explicit UnionCounter(std::size_t words) : acc(words, 0) {}
  std::vector<std::uint64_t> acc;
  void add(std::size_t m, const std::vector<std::uint64_t>& predRow) {
    for (std::size_t w = 0; w < acc.size(); ++w) acc[w] |= predRow[w];
    acc[m >> 6] |= 1ull << (m & 63);
  }
  [[nodiscard]] bool contains(std::size_t a) const {
    return acc[a >> 6] >> (a & 63) & 1u;
  }
};

}  // namespace

std::uint64_t ReferenceCausality::relevantUpToLastAccess(
    std::size_t k, VarId x, ThreadId j, const RelevancePolicy& policy) const {
  UnionCounter uc(words_);
  for (std::size_t m = 0; m <= k && m < n_; ++m) {
    const trace::Event& e = (*events_)[m];
    if (e.accessesVariable() && e.var == x) uc.add(m, reach_[m]);
  }
  std::uint64_t count = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    const trace::Event& e = (*events_)[a];
    if (e.thread == j && policy.isRelevant(e) && uc.contains(a)) ++count;
  }
  return count;
}

std::uint64_t ReferenceCausality::relevantUpToLastWrite(
    std::size_t k, VarId x, ThreadId j, const RelevancePolicy& policy) const {
  UnionCounter uc(words_);
  for (std::size_t m = 0; m <= k && m < n_; ++m) {
    const trace::Event& e = (*events_)[m];
    if (e.accessesVariable() && e.var == x &&
        e.kind != trace::EventKind::kRead) {
      uc.add(m, reach_[m]);
    }
  }
  std::uint64_t count = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    const trace::Event& e = (*events_)[a];
    if (e.thread == j && policy.isRelevant(e) && uc.contains(a)) ++count;
  }
  return count;
}

}  // namespace mpx::core
