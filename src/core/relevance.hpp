// Relevance policies: which events are reported to the observer.
//
// Paper §2.3: to minimize messages, a subset R ⊆ E of *relevant* events is
// chosen and the observer reconstructs the R-relevant causality
// ⊳ = ≺ ∩ (R × R).  JMPaX's instrumentation module "parses the user
// specification, extracts the set of shared variables it refers to, i.e.
// the relevant variables ... if the shared variable is relevant and the
// access is a write then the event is considered relevant" (§4.1).
//
// Other analyses want different R: the race predictor needs *every* access
// (reads and writes) of the monitored variables, and requirement-property
// tests want to sweep arbitrary R.  Hence a small policy object.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>

#include "trace/event.hpp"

namespace mpx::core {

class RelevancePolicy {
 public:
  /// JMPaX default: writes (incl. write-like sync events) of the given
  /// variables are relevant.
  [[nodiscard]] static RelevancePolicy writesOf(
      std::unordered_set<VarId> vars);

  /// Reads and writes of the given variables are relevant (race detection).
  [[nodiscard]] static RelevancePolicy accessesOf(
      std::unordered_set<VarId> vars);

  /// Every shared access is relevant (worst case / stress tests).
  [[nodiscard]] static RelevancePolicy allSharedAccesses();

  /// Nothing is relevant (pure-overhead baseline: MVCs still update).
  [[nodiscard]] static RelevancePolicy nothing();

  /// Arbitrary predicate.
  [[nodiscard]] static RelevancePolicy custom(
      std::function<bool(const trace::Event&)> pred);

  [[nodiscard]] bool isRelevant(const trace::Event& e) const {
    return pred_(e);
  }

 private:
  explicit RelevancePolicy(std::function<bool(const trace::Event&)> pred)
      : pred_(std::move(pred)) {}
  std::function<bool(const trace::Event&)> pred_;
};

}  // namespace mpx::core
