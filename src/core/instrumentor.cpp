#include "core/instrumentor.hpp"

namespace mpx::core {

const vc::VectorClock Instrumentor::kZero{};

void Instrumentor::reserve(std::size_t threads, std::size_t vars) {
  if (vi_.size() < threads) vi_.resize(threads);
  if (va_.size() < vars) {
    va_.resize(vars);
    vw_.resize(vars);
  }
}

void Instrumentor::ensureThread(ThreadId t) {
  if (t >= vi_.size()) vi_.resize(static_cast<std::size_t>(t) + 1);
}

void Instrumentor::ensureVar(VarId x) {
  if (x >= va_.size()) {
    va_.resize(static_cast<std::size_t>(x) + 1);
    vw_.resize(static_cast<std::size_t>(x) + 1);
  }
}

void Instrumentor::onEvent(const trace::Event& e) {
  ++eventsProcessed_;
  const ThreadId i = e.thread;
  ensureThread(i);
  vc::VectorClock& vi = vi_[i];

  // Step 1: if e is relevant then V_i[i] <- V_i[i] + 1.
  const bool relevant = relevance_.isRelevant(e);
  if (relevant) vi.increment(i);

  if (e.accessesVariable() && !causalityExcluded_.contains(e.var)) {
    const VarId x = e.var;
    ensureVar(x);
    if (e.kind == trace::EventKind::kRead) {
      // Step 2: V_i <- max{V_i, V^w_x};  V^a_x <- max{V^a_x, V_i}.
      vi.joinWith(vw_[x]);
      va_[x].joinWith(vi);
    } else {
      // Step 3 (writes and write-like sync events, §3.1):
      // V^w_x <- V^a_x <- V_i <- max{V^a_x, V_i}.
      vi.joinWith(va_[x]);
      va_[x] = vi;
      vw_[x] = vi;
    }
  }

  // Step 4: if e is relevant then send message <e, i, V_i> to observer.
  if (relevant) {
    ++messagesEmitted_;
    sink_->onMessage(trace::Message{e, vi});
  }
}

const vc::VectorClock& Instrumentor::threadClock(ThreadId t) const {
  return t < vi_.size() ? vi_[t] : kZero;
}

const vc::VectorClock& Instrumentor::accessClock(VarId x) const {
  return x < va_.size() ? va_[x] : kZero;
}

const vc::VectorClock& Instrumentor::writeClock(VarId x) const {
  return x < vw_.size() ? vw_[x] : kZero;
}

}  // namespace mpx::core
