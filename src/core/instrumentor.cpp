#include "core/instrumentor.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/timer.hpp"

namespace mpx::core {

namespace {

/// Algorithm A telemetry (the "runtime" layer of the metric catalog: these
/// count what the in-program instrumentation does, whichever host drives
/// it — the real-thread runtime or the interpreter pipeline).
struct InstrumentorMetrics {
  telemetry::Counter& relevant;
  telemetry::Counter& irrelevant;
  telemetry::Counter& messages;
  telemetry::Histogram& eventNs;

  static InstrumentorMetrics& get() {
    static InstrumentorMetrics m{
        telemetry::registry().counter(
            "mpx_runtime_events_relevant_total",
            "Events that ticked the thread clock and emitted a message "
            "(Algorithm A steps 1 and 4)"),
        telemetry::registry().counter(
            "mpx_runtime_events_irrelevant_total",
            "Events processed by Algorithm A without emitting a message"),
        telemetry::registry().counter(
            "mpx_runtime_messages_emitted_total",
            "Messages <e, i, V_i> sent toward the observer"),
        telemetry::registry().histogram(
            "mpx_runtime_algorithm_a_ns",
            "Per-event latency of Algorithm A (sampled; default every 64th event)"),
    };
    return m;
  }
};

}  // namespace

const vc::VectorClock Instrumentor::kZero{};

void Instrumentor::reserve(std::size_t threads, std::size_t vars) {
  if (!backendResolved_) {
    // The selection point: kAuto resolves against the declared thread
    // count, once, before any clock exists.  Clocks created lazily before
    // any reserve() pin the backend to flat (width unknown).
    backend_ = vc::resolveBackend(requestedBackend_, threads);
    backendResolved_ = true;
  }
  if (vi_.size() < threads) {
    const std::size_t old = vi_.size();
    vi_.resize(threads, vc::Clock(backend_));
    for (std::size_t t = old; t < threads; ++t) {
      vi_[t].setOwner(static_cast<ThreadId>(t));
    }
  }
  if (va_.size() < vars) {
    va_.resize(vars, vc::Clock(backend_));
    vw_.resize(vars, vc::Clock(backend_));
  }
}

void Instrumentor::ensureThread(ThreadId t) {
  if (t < vi_.size()) return;
  backendResolved_ = true;  // too late for kAuto: stays flat if unresolved
  const std::size_t old = vi_.size();
  vi_.resize(static_cast<std::size_t>(t) + 1, vc::Clock(backend_));
  for (std::size_t j = old; j < vi_.size(); ++j) {
    vi_[j].setOwner(static_cast<ThreadId>(j));
  }
}

void Instrumentor::ensureVar(VarId x) {
  if (x < va_.size()) return;
  backendResolved_ = true;
  va_.resize(static_cast<std::size_t>(x) + 1, vc::Clock(backend_));
  vw_.resize(static_cast<std::size_t>(x) + 1, vc::Clock(backend_));
}

void Instrumentor::onEvent(const trace::Event& e) {
  std::uint64_t t0 = 0;
  bool sampled = false;
  if constexpr (telemetry::kEnabled) {
    // Timing every event would double its cost (two clock reads against a
    // handful of vector-clock joins); the period defaults to 1/64 and is
    // configurable via --telemetry-sample / MPX_TELEMETRY_SAMPLE.
    sampled = telemetry::shouldSampleLatency(eventsProcessed_);
    if (sampled) t0 = telemetry::nowNs();
  }
  ++eventsProcessed_;
  const ThreadId i = e.thread;
  ensureThread(i);
  vc::Clock& vi = vi_[i];
  // Shadow-epoch tick (tree backend): before the event's joins, so every
  // knowledge state this event publishes has a unique (thread, sclk) label.
  vi.onEventStart();

  // Step 1: if e is relevant then V_i[i] <- V_i[i] + 1.
  const bool relevant = relevance_.isRelevant(e);
  if (relevant) vi.increment(i);

  if (e.accessesVariable() && !causalityExcluded_.contains(e.var)) {
    const VarId x = e.var;
    ensureVar(x);
    if (e.kind == trace::EventKind::kRead) {
      // Step 2: V_i <- max{V_i, V^w_x};  V^a_x <- max{V^a_x, V_i}.
      noteJoin(vi.joinWith(vw_[x]));
      noteJoin(va_[x].joinWith(vi));
    } else {
      // Step 3 (writes and write-like sync events, §3.1):
      // V^w_x <- V^a_x <- V_i <- max{V^a_x, V_i}.
      noteJoin(vi.joinWith(va_[x]));
      va_[x].assignFrom(vi);
      vw_[x].assignFrom(vi);
    }
  }

  // Step 4: if e is relevant then send message <e, i, V_i> to observer.
  if (relevant) {
    ++messagesEmitted_;
    sink_->onMessage(trace::Message{e, vi.flat()});
  }

  if constexpr (telemetry::kEnabled) {
    InstrumentorMetrics& tm = InstrumentorMetrics::get();
    (relevant ? tm.relevant : tm.irrelevant).add(1);
    if (relevant) tm.messages.add(1);
    if (sampled) tm.eventNs.record(telemetry::nowNs() - t0);
  }
}

const vc::VectorClock& Instrumentor::threadClock(ThreadId t) const {
  return t < vi_.size() ? vi_[t].flat() : kZero;
}

const vc::VectorClock& Instrumentor::accessClock(VarId x) const {
  return x < va_.size() ? va_[x].flat() : kZero;
}

const vc::VectorClock& Instrumentor::writeClock(VarId x) const {
  return x < vw_.size() ? vw_[x].flat() : kZero;
}

}  // namespace mpx::core
