// Boundary behavior of the static chunking and parallelFor: zero items,
// fewer items than workers, a single worker, and the exact-multiple edges.
// The lattice's parallel expansion and the budget enforcer both lean on
// chunkRange covering [0, n) disjointly in chunk-index order — an
// off-by-one here silently corrupts merged frontiers.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mpx::parallel {
namespace {

TEST(ChunkRangeBoundary, ZeroItemsYieldsOnlyEmptyChunks) {
  for (std::size_t chunks = 0; chunks <= 4; ++chunks) {
    for (std::size_t c = 0; c < chunks + 2; ++c) {
      const auto [begin, end] = chunkRange(0, chunks, c);
      EXPECT_EQ(begin, 0u) << "chunks " << chunks << " c " << c;
      EXPECT_EQ(end, 0u) << "chunks " << chunks << " c " << c;
    }
  }
}

TEST(ChunkRangeBoundary, ZeroChunksDegeneratesToOneFullSlice) {
  // chunks == 0 must not divide by zero; chunk 0 covers everything.
  const auto [begin, end] = chunkRange(7, 0, 0);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 7u);
}

TEST(ChunkRangeBoundary, FewerItemsThanChunks) {
  // n=3 over 5 chunks: ceil(3/5)=1 item per chunk, chunks 3 and 4 empty.
  for (std::size_t c = 0; c < 3; ++c) {
    const auto [begin, end] = chunkRange(3, 5, c);
    EXPECT_EQ(begin, c);
    EXPECT_EQ(end, c + 1);
  }
  for (std::size_t c = 3; c < 5; ++c) {
    const auto [begin, end] = chunkRange(3, 5, c);
    EXPECT_EQ(begin, end) << "chunk " << c << " should be empty";
  }
}

TEST(ChunkRangeBoundary, SingleChunkTakesAll) {
  const auto [begin, end] = chunkRange(9, 1, 0);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 9u);
}

TEST(ChunkRangeBoundary, PartitionPropertySweep) {
  // For every (n, chunks): chunks are in order, disjoint, cover [0, n)
  // exactly, and no chunk exceeds ceil(n/chunks).
  for (std::size_t n = 0; n <= 40; ++n) {
    for (std::size_t chunks = 1; chunks <= 8; ++chunks) {
      const std::size_t ceilStep = (n + chunks - 1) / chunks;
      std::size_t cursor = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = chunkRange(n, chunks, c);
        ASSERT_LE(begin, end) << "n " << n << " chunks " << chunks;
        if (begin < end) {
          ASSERT_EQ(begin, cursor) << "gap/overlap at chunk " << c;
          ASSERT_LE(end - begin, ceilStep);
          cursor = end;
        }
      }
      ASSERT_EQ(cursor, n) << "n " << n << " chunks " << chunks
                           << " not fully covered";
    }
  }
}

TEST(ParallelForBoundary, ZeroItemsNeverCallsBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallelFor(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForBoundary, FewerItemsThanWorkersVisitsEachIndexOnce) {
  ThreadPool pool(4);
  for (std::size_t n = 1; n < 4; ++n) {
    std::vector<std::atomic<int>> seen(n);
    for (auto& s : seen) s.store(0);
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end,
                            std::size_t chunk) {
      EXPECT_LT(chunk, pool.workers());
      for (std::size_t i = begin; i < end; ++i) ++seen[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(seen[i].load(), 1) << "n " << n << " index " << i;
    }
  }
}

TEST(ParallelForBoundary, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> bodies;
  pool.parallelFor(5, [&](std::size_t, std::size_t, std::size_t) {
    bodies.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(bodies.size(), 1u);  // one chunk covering everything
  EXPECT_EQ(bodies.front(), caller);
}

TEST(ParallelForBoundary, ExactWorkerMultiplesCoverEverything) {
  ThreadPool pool(3);
  for (const std::size_t n : {3u, 6u, 7u}) {
    std::vector<std::atomic<int>> seen(n);
    for (auto& s : seen) s.store(0);
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) ++seen[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(seen[i].load(), 1) << "n " << n << " index " << i;
    }
  }
}

TEST(ParallelForBoundary, LowestFailingChunkExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.parallelFor(8, [&](std::size_t, std::size_t, std::size_t chunk) {
      throw std::runtime_error("chunk " + std::to_string(chunk));
    });
    FAIL() << "parallelFor swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

}  // namespace
}  // namespace mpx::parallel
