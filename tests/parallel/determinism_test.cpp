// The level_expand.hpp determinism contract, asserted end-to-end: for every
// corpus computation, parallel expansion (jobs=4) and serial expansion
// produce identical violation sets, identical LatticeStats, and identical
// retained levels (cuts, states, path counts, monitor-state sets — a
// stronger check than per-level hashes).  Violation ORDER may differ, so
// sets are compared canonically sorted.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "../support/fixtures.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/lattice.hpp"
#include "observer/online.hpp"
#include "program/corpus.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::ObservedComputation;
using mpx::testing::observe;

/// Canonical key of a violation, independent of discovery order and of
/// which equivalent witness path it carries.
std::string violationKey(const Violation& v) {
  std::ostringstream os;
  os << v.cut.toString() << '|' << v.state.toString() << '|' << v.monitorState;
  return os.str();
}

std::vector<std::string> sortedKeys(const std::vector<Violation>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) keys.push_back(violationKey(v));
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expectSameStats(const LatticeStats& a, const LatticeStats& b) {
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.totalNodes, b.totalNodes);
  EXPECT_EQ(a.totalEdges, b.totalEdges);
  EXPECT_EQ(a.peakLevelWidth, b.peakLevelWidth);
  EXPECT_EQ(a.peakLiveNodes, b.peakLiveNodes);
  EXPECT_EQ(a.gcNodes, b.gcNodes);
  EXPECT_EQ(a.pathCount, b.pathCount);
  EXPECT_EQ(a.pathCountSaturated, b.pathCountSaturated);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.monitorStatesPeak, b.monitorStatesPeak);
  EXPECT_EQ(a.prunedMonitorStates, b.prunedMonitorStates);
  EXPECT_EQ(a.beamPrunedNodes, b.beamPrunedNodes);
  EXPECT_EQ(a.approximated, b.approximated);
}

/// Retained levels are sorted by cut, so direct comparison is exact.
void expectSameLevels(const std::vector<std::vector<LevelNode>>& a,
                      const std::vector<std::vector<LevelNode>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t L = 0; L < a.size(); ++L) {
    ASSERT_EQ(a[L].size(), b[L].size()) << "level " << L;
    for (std::size_t i = 0; i < a[L].size(); ++i) {
      EXPECT_EQ(a[L][i].cut, b[L][i].cut) << "level " << L;
      EXPECT_EQ(a[L][i].state.values, b[L][i].state.values) << "level " << L;
      EXPECT_EQ(a[L][i].pathCount, b[L][i].pathCount) << "level " << L;
      EXPECT_EQ(a[L][i].monitorStates, b[L][i].monitorStates)
          << "level " << L;
    }
  }
}

LatticeOptions optsFor(std::size_t jobs) {
  LatticeOptions opts;
  opts.retention = Retention::kFull;  // retain everything for comparison
  opts.maxViolations = 1u << 20;      // the cap must not bind: with
                                      // different discovery orders, a
                                      // binding cap could keep different
                                      // subsets of the same violation set
  opts.parallel.jobs = jobs;
  opts.parallel.minFrontier = 1;      // parallelize even tiny levels
  return opts;
}

/// A corpus case: a computation plus (optionally) a property to monitor.
struct Case {
  std::string name;
  ObservedComputation comp;
  std::string spec;  ///< empty = structure-only build()
};

std::vector<Case> corpusCases() {
  std::vector<Case> cases;
  cases.push_back({"landing", mpx::testing::landingComputation(),
                   program::corpus::landingProperty()});
  cases.push_back({"xyz", mpx::testing::xyzComputation(),
                   program::corpus::xyzProperty()});
  {
    // Wide lattice, no monitor: structure + path-count determinism.
    program::GreedyScheduler sched;
    cases.push_back({"independentWriters3x3-structure",
                     observe(program::corpus::independentWriters(3, 3), sched,
                             {"v0", "v1", "v2"}),
                     ""});
  }
  {
    // Wide lattice WITH a monitor whose violations appear mid-lattice on
    // many cuts: stresses the deferred merge-time violation emission.
    program::GreedyScheduler sched;
    cases.push_back({"independentWriters3x3-monitored",
                     observe(program::corpus::independentWriters(3, 3), sched,
                             {"v0", "v1", "v2"}),
                     "!(v0 = 2 && v1 = 2)"});
  }
  {
    program::GreedyScheduler sched;
    cases.push_back({"readersWriter",
                     observe(program::corpus::readersWriter(2), sched,
                             {"readers", "writing"}),
                     program::corpus::readersWriterProperty()});
  }
  return cases;
}

struct BatchResult {
  LatticeStats stats;
  std::vector<Violation> violations;
  std::vector<std::vector<LevelNode>> levels;
};

BatchResult runBatch(const Case& c, std::size_t jobs) {
  BatchResult out;
  ComputationLattice lattice(c.comp.graph, c.comp.space, optsFor(jobs));
  if (c.spec.empty()) {
    out.stats = lattice.build();
  } else {
    logic::SynthesizedMonitor mon(
        logic::SpecParser(c.comp.space).parse(c.spec));
    out.stats = lattice.check(mon, out.violations);
  }
  out.levels = lattice.levels();
  return out;
}

TEST(ParallelDeterminism, BatchLatticeMatchesSerialAcrossCorpus) {
  for (const Case& c : corpusCases()) {
    SCOPED_TRACE(c.name);
    const BatchResult serial = runBatch(c, 1);
    for (const std::size_t jobs : {2u, 4u}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      const BatchResult par = runBatch(c, jobs);
      expectSameStats(serial.stats, par.stats);
      EXPECT_EQ(sortedKeys(serial.violations), sortedKeys(par.violations));
      expectSameLevels(serial.levels, par.levels);
    }
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable) {
  // Same jobs count twice: not just set-equal but fully reproducible.
  const auto cases = corpusCases();
  const Case& c = cases[3];  // the monitored wide lattice
  const BatchResult a = runBatch(c, 4);
  const BatchResult b = runBatch(c, 4);
  expectSameStats(a.stats, b.stats);
  EXPECT_EQ(sortedKeys(a.violations), sortedKeys(b.violations));
  expectSameLevels(a.levels, b.levels);
}

TEST(ParallelDeterminism, OnlineAnalyzerMatchesSerialOnline) {
  for (const Case& c : corpusCases()) {
    if (c.spec.empty()) continue;
    SCOPED_TRACE(c.name);

    const auto runOnline = [&c](std::size_t jobs) {
      logic::SynthesizedMonitor mon(
          logic::SpecParser(c.comp.space).parse(c.spec));
      OnlineAnalyzer online(c.comp.space, c.comp.prog.threadCount(), &mon,
                            optsFor(jobs));
      for (const auto& ref : c.comp.graph.observedOrder()) {
        online.onMessage(c.comp.graph.message(ref));
      }
      online.endOfTrace();
      EXPECT_TRUE(online.finished());
      return std::pair{online.stats(), online.violations()};
    };

    const auto [serialStats, serialViolations] = runOnline(1);
    const auto [parStats, parViolations] = runOnline(4);
    expectSameStats(serialStats, parStats);
    EXPECT_EQ(sortedKeys(serialViolations), sortedKeys(parViolations));
  }
}

TEST(ParallelDeterminism, ParallelMatchesBatchAcrossDeliveryOrders) {
  // Shuffled arrival + parallel expansion together: the two sources of
  // nondeterminism must still cancel out.
  const auto c = mpx::testing::xyzComputation();
  std::vector<trace::Message> msgs;
  for (const auto& ref : c.graph.observedOrder()) {
    msgs.push_back(c.graph.message(ref));
  }

  const BatchResult batch = runBatch(
      Case{"xyz", c, program::corpus::xyzProperty()}, 1);

  std::mt19937_64 rng(11);
  for (int round = 0; round < 5; ++round) {
    std::shuffle(msgs.begin(), msgs.end(), rng);
    logic::SynthesizedMonitor mon(
        logic::SpecParser(c.space).parse(program::corpus::xyzProperty()));
    OnlineAnalyzer online(c.space, c.prog.threadCount(), &mon, optsFor(4));
    for (const auto& m : msgs) online.onMessage(m);
    online.endOfTrace();
    ASSERT_TRUE(online.finished()) << "round " << round;
    EXPECT_EQ(online.stats().totalNodes, batch.stats.totalNodes);
    EXPECT_EQ(sortedKeys(online.violations()), sortedKeys(batch.violations))
        << "round " << round;
  }
}

}  // namespace
}  // namespace mpx::observer
