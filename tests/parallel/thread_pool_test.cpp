// ThreadPool semantics: deterministic chunking, blocking parallelFor,
// exception propagation (lowest chunk index wins), submit futures, and the
// reentrancy guard.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace mpx::parallel {
namespace {

TEST(ChunkRange, PartitionsWithoutGapsOrOverlap) {
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 100u, 1000u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 4u, 8u, 17u}) {
      std::size_t covered = 0;
      std::size_t prevEnd = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = chunkRange(n, chunks, c);
        ASSERT_LE(begin, end);
        if (begin < end) {
          ASSERT_EQ(begin, prevEnd) << "gap before chunk " << c;
          prevEnd = end;
          covered += end - begin;
        }
      }
      ASSERT_EQ(prevEnd, n) << "n=" << n << " chunks=" << chunks;
      ASSERT_EQ(covered, n);
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(hits.size(), [&](std::size_t b, std::size_t e,
                                    std::size_t /*c*/) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunkBoundariesAreTheStaticPartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> seen;
  pool.parallelFor(10, [&](std::size_t b, std::size_t e, std::size_t c) {
    std::lock_guard<std::mutex> lk(mu);
    seen.push_back({b, e, c});
  });
  ASSERT_EQ(seen.size(), 3u);  // 10 items over 3 workers: no empty chunk
  for (const auto& [b, e, c] : seen) {
    const auto [eb, ee] = chunkRange(10, 3, c);
    EXPECT_EQ(b, eb);
    EXPECT_EQ(e, ee);
  }
}

TEST(ThreadPool, ParallelForIsABarrier) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.parallelFor(100, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) done.fetch_add(1);
  });
  // All work completed by the time parallelFor returns.
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, LowestChunkIndexExceptionWins) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    // 4 items over 4 workers: chunk c covers exactly item c.
    pool.parallelFor(4, [&](std::size_t b, std::size_t, std::size_t c) {
      (void)b;
      if (c == 1) throw std::runtime_error("chunk-1");
      if (c == 3) throw std::runtime_error("chunk-3");
      completed.fetch_add(1);
    });
    FAIL() << "expected parallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk-1") << "lowest failing chunk must win";
  }
  // Non-throwing chunks all ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 2);
}

TEST(ThreadPool, SubmitDeliversResultsAndExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 6 * 7; });
  auto bad = pool.submit([]() -> int { throw std::logic_error("boom"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ThreadPool, ReentrantParallelForRunsInline) {
  ThreadPool pool(2);
  // Every worker is occupied by the outer task; a queued inner loop could
  // never start.  The guard must detect the worker context and run inline.
  auto fut = pool.submit([&pool] {
    EXPECT_TRUE(pool.insideWorker());
    std::atomic<int> hits{0};
    pool.parallelFor(8, [&](std::size_t b, std::size_t e, std::size_t) {
      for (std::size_t i = b; i < e; ++i) hits.fetch_add(1);
    });
    return hits.load();
  });
  EXPECT_EQ(fut.get(), 8);
  EXPECT_FALSE(pool.insideWorker());
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no synchronization needed: runs on this thread
  pool.parallelFor(10, [&](std::size_t b, std::size_t e, std::size_t c) {
    EXPECT_EQ(c, 0u);
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45u);
}

TEST(ParallelConfig, ResolvesJobsAndEnabledState) {
  ParallelConfig serial;
  EXPECT_EQ(serial.effectiveJobs(), 1u);
  EXPECT_FALSE(serial.enabled());

  ParallelConfig four;
  four.jobs = 4;
  EXPECT_EQ(four.effectiveJobs(), 4u);
  EXPECT_TRUE(four.enabled());

  ParallelConfig hardware;
  hardware.jobs = 0;
  EXPECT_GE(hardware.effectiveJobs(), 1u);

  ThreadPool pool(3);
  ParallelConfig injected;
  injected.jobs = 1;  // the injected pool's width wins
  injected.pool = &pool;
  EXPECT_EQ(injected.effectiveJobs(), 3u);
  EXPECT_TRUE(injected.enabled());
}

}  // namespace
}  // namespace mpx::parallel
