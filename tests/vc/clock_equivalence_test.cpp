// Cross-backend equivalence: the flat VectorClock and the TreeClock must
// be observationally identical under every Algorithm-A-shaped op sequence.
//
// The tree backend's pruning (shadow epochs, root domination, subtree
// skips) is a pure representation optimization — this test is the fuzzer
// for that claim.  It drives BOTH backends through the same seeded random
// Algorithm A schedule (thread clocks V_i, variable clocks V^a_x / V^w_x;
// reads join, writes join-then-publish) at widths from 1 to 128 threads
// and asserts the flat() projection of every clock matches after every
// single operation.  Any unsound skip in the tree join shows up here as
// the first diverging component.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "vc/clock.hpp"

namespace mpx::vc {
namespace {

/// One backend's full Algorithm A clock state.
struct State {
  std::vector<Clock> vi;  ///< thread clocks
  std::vector<Clock> va;  ///< access clocks
  std::vector<Clock> vw;  ///< write clocks

  State(ClockBackend backend, std::size_t threads, std::size_t vars) {
    vi.assign(threads, Clock(backend));
    for (std::size_t t = 0; t < threads; ++t) {
      vi[t].setOwner(static_cast<ThreadId>(t));
    }
    va.assign(vars, Clock(backend));
    vw.assign(vars, Clock(backend));
  }

  /// Algorithm A for one event.  `relevant` drives step 1, `isWrite`
  /// selects step 2 vs step 3.
  void step(ThreadId i, VarId x, bool isWrite, bool relevant) {
    Clock& v = vi[i];
    v.onEventStart();
    if (relevant) v.increment(i);
    if (isWrite) {
      v.joinWith(va[x]);
      va[x].assignFrom(v);
      vw[x].assignFrom(v);
    } else {
      v.joinWith(vw[x]);
      va[x].joinWith(v);
    }
  }
};

void expectSameState(const State& flat, const State& tree, std::size_t op,
                     std::uint64_t seed) {
  for (std::size_t t = 0; t < flat.vi.size(); ++t) {
    ASSERT_EQ(flat.vi[t].flat(), tree.vi[t].flat())
        << "V_" << t << " diverged at op " << op << " (seed " << seed << ")";
  }
  for (std::size_t x = 0; x < flat.va.size(); ++x) {
    ASSERT_EQ(flat.va[x].flat(), tree.va[x].flat())
        << "V^a_" << x << " diverged at op " << op << " (seed " << seed
        << ")";
    ASSERT_EQ(flat.vw[x].flat(), tree.vw[x].flat())
        << "V^w_" << x << " diverged at op " << op << " (seed " << seed
        << ")";
  }
}

struct Shape {
  std::size_t threads;
  std::size_t vars;
  std::size_t ops;
};

class ClockEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Shape>> {};

TEST_P(ClockEquivalence, FlatAndTreeAgreeOnEveryOperation) {
  const auto [seed, shape] = GetParam();
  std::mt19937_64 rng(seed);
  State flat(ClockBackend::kFlat, shape.threads, shape.vars);
  State tree(ClockBackend::kTree, shape.threads, shape.vars);

  for (std::size_t op = 0; op < shape.ops; ++op) {
    const auto i = static_cast<ThreadId>(rng() % shape.threads);
    const auto x = static_cast<VarId>(rng() % shape.vars);
    const bool isWrite = rng() % 2 == 0;
    const bool relevant = rng() % 4 != 0;  // mostly-relevant, like a spec run
    flat.step(i, x, isWrite, relevant);
    tree.step(i, x, isWrite, relevant);
    expectSameState(flat, tree, op, seed);
  }
}

// Shapes bracket the interesting regimes: width 1 (degenerate), widths
// around the SBO spill point (7/8/9), a hot-lock shape (many threads, one
// variable), a disjoint shape (threads mostly alone), and wide 64/128.
// Total ops across the suite exceed 10k per backend.
INSTANTIATE_TEST_SUITE_P(
    Sweep, ClockEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 42, 0xfeedu),
                       ::testing::Values(Shape{1, 1, 200}, Shape{2, 2, 400},
                                         Shape{7, 3, 400}, Shape{8, 3, 400},
                                         Shape{9, 3, 400}, Shape{32, 1, 500},
                                         Shape{32, 32, 500},
                                         Shape{64, 8, 500},
                                         Shape{128, 4, 400})));

TEST(ClockEquivalence, TreeJoinSkipsDominatedSubtrees) {
  // The optimization this backend exists for: after thread 0 absorbs the
  // whole system once, re-joining an unchanged clock touches O(1) entries,
  // not O(width).
  constexpr std::size_t kThreads = 64;
  State tree(ClockBackend::kTree, kThreads, 1);
  // Every thread writes the variable once: V^a accumulates all threads.
  for (std::size_t t = 0; t < kThreads; ++t) {
    tree.step(static_cast<ThreadId>(t), 0, /*isWrite=*/true,
              /*relevant=*/true);
  }
  // Thread 0 reads: absorbs the full frontier once...
  tree.step(0, 0, /*isWrite=*/false, /*relevant=*/true);
  // ...then re-reads with nothing new.  The stale re-join must probe only
  // the root, not all 64 components.
  Clock& v0 = tree.vi[0];
  v0.onEventStart();
  const JoinStats st = v0.joinWith(tree.vw[0]);
  EXPECT_FALSE(st.changed);
  EXPECT_LE(st.entriesTouched, 2u)
      << "dominated-subtree skip must be O(1), got O(width) probing";
}

}  // namespace
}  // namespace mpx::vc
