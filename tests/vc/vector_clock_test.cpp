// Unit and property tests for the MVC data structure.
#include "vc/vector_clock.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mpx::vc {
namespace {

TEST(VectorClock, DefaultIsZeroAndEmpty) {
  const VectorClock v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.isZero());
  EXPECT_EQ(v.sum(), 0u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[100], 0u);
}

TEST(VectorClockSbo, SpillBoundaryAtInlineCapacity) {
  // 7 and 8 components stay in the inline buffer; 9 spills to the heap.
  for (std::size_t n : {std::size_t{7}, std::size_t{8}, std::size_t{9}}) {
    VectorClock v;
    for (std::size_t j = 0; j < n; ++j) {
      v.set(static_cast<ThreadId>(j), j + 1);
    }
    EXPECT_EQ(v.size(), n);
    EXPECT_EQ(v.isInline(), n <= VectorClock::kInlineComponents) << n;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(v[static_cast<ThreadId>(j)], j + 1) << "n=" << n << " j=" << j;
    }
    EXPECT_EQ(v.sum(), n * (n + 1) / 2);
  }
}

TEST(VectorClockSbo, CopyAndMoveAcrossBoundary) {
  for (std::size_t n : {std::size_t{7}, std::size_t{8}, std::size_t{9}}) {
    VectorClock src;
    for (std::size_t j = 0; j < n; ++j) {
      src.set(static_cast<ThreadId>(j), 10 + j);
    }
    const VectorClock copy = src;
    EXPECT_EQ(copy, src);
    EXPECT_EQ(copy.isInline(), n <= VectorClock::kInlineComponents);

    VectorClock moved = std::move(src);
    EXPECT_EQ(moved, copy);
    EXPECT_EQ(src.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
    EXPECT_TRUE(src.isInline());

    // Assignment in both directions across the boundary.
    VectorClock narrow{1, 2, 3};
    narrow = moved;
    EXPECT_EQ(narrow, copy);
    VectorClock wide(VectorClock::kInlineComponents + 4);
    wide = VectorClock{1, 2, 3};
    EXPECT_EQ(wide, (VectorClock{1, 2, 3}));
  }
}

TEST(VectorClockSbo, JoinAcrossBoundaryMatchesSemantics) {
  // Inline ⊔ heap must grow the inline side past the spill point.
  VectorClock narrow;
  narrow.set(0, 5);
  VectorClock wide;
  wide.set(static_cast<ThreadId>(VectorClock::kInlineComponents + 1), 3);
  ASSERT_TRUE(narrow.isInline());
  ASSERT_FALSE(wide.isInline());

  VectorClock j = narrow;
  j.joinWith(wide);
  EXPECT_FALSE(j.isInline());
  EXPECT_EQ(j[0], 5u);
  EXPECT_EQ(j[static_cast<ThreadId>(VectorClock::kInlineComponents + 1)], 3u);
  EXPECT_EQ(j, VectorClock::join(wide, narrow));

  // Equality and hash ignore representation: a spilled clock whose tail is
  // zero equals its inline twin.
  VectorClock spilled(VectorClock::kInlineComponents + 8);
  spilled.set(2, 9);
  VectorClock compact;
  compact.set(2, 9);
  EXPECT_EQ(spilled, compact);
  EXPECT_EQ(spilled.hash(), compact.hash());
}

TEST(VectorClockSbo, IncrementGrowsThroughBoundary) {
  VectorClock v;
  for (std::size_t j = 0; j < VectorClock::kInlineComponents + 4; ++j) {
    EXPECT_EQ(v.increment(static_cast<ThreadId>(j)), 1u);
  }
  EXPECT_FALSE(v.isInline());
  EXPECT_EQ(v.sum(), VectorClock::kInlineComponents + 4);
}

TEST(VectorClock, SizedConstructorZeroInitializes) {
  const VectorClock v(4);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.isZero());
}

TEST(VectorClock, InitializerListAndIndexing) {
  const VectorClock v{3, 0, 7};
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(v[1], 0u);
  EXPECT_EQ(v[2], 7u);
  EXPECT_EQ(v[3], 0u);  // beyond stored size reads 0
  EXPECT_EQ(v.sum(), 10u);
}

TEST(VectorClock, SetGrowsOnDemand) {
  VectorClock v;
  v.set(2, 5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 5u);
  EXPECT_EQ(v[0], 0u);
}

TEST(VectorClock, SettingZeroBeyondSizeIsNoop) {
  VectorClock v;
  v.set(10, 0);
  EXPECT_EQ(v.size(), 0u);
}

TEST(VectorClock, IncrementReturnsNewValueAndGrows) {
  VectorClock v;
  EXPECT_EQ(v.increment(1), 1u);
  EXPECT_EQ(v.increment(1), 2u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v.size(), 2u);
}

TEST(VectorClock, JoinTakesComponentwiseMax) {
  const VectorClock a{3, 1, 0};
  const VectorClock b{1, 4};
  const VectorClock j = VectorClock::join(a, b);
  EXPECT_EQ(j[0], 3u);
  EXPECT_EQ(j[1], 4u);
  EXPECT_EQ(j[2], 0u);
}

TEST(VectorClock, JoinWithGrowsReceiver) {
  VectorClock a{1};
  const VectorClock b{0, 0, 9};
  a.joinWith(b);
  EXPECT_EQ(a[2], 9u);
  EXPECT_EQ(a[0], 1u);
}

TEST(VectorClock, EqualityIgnoresTrailingZeros) {
  VectorClock a{1, 2};
  VectorClock b{1, 2, 0, 0};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(VectorClock, LessEqAndLess) {
  const VectorClock a{1, 2};
  const VectorClock b{1, 3};
  EXPECT_TRUE(a.lessEq(b));
  EXPECT_TRUE(a.less(b));
  EXPECT_FALSE(b.lessEq(a));
  EXPECT_TRUE(a.lessEq(a));
  EXPECT_FALSE(a.less(a));
}

TEST(VectorClock, CompareAllOutcomes) {
  const VectorClock a{1, 2};
  EXPECT_EQ(a.compare(VectorClock{1, 2}), Ordering::kEqual);
  EXPECT_EQ(a.compare(VectorClock{2, 2}), Ordering::kLess);
  EXPECT_EQ(a.compare(VectorClock{0, 2}), Ordering::kGreater);
  EXPECT_EQ(a.compare(VectorClock{2, 1}), Ordering::kConcurrent);
}

TEST(VectorClock, ConcurrentWith) {
  const VectorClock a{1, 0};
  const VectorClock b{0, 1};
  EXPECT_TRUE(a.concurrentWith(b));
  EXPECT_TRUE(b.concurrentWith(a));
  EXPECT_FALSE(a.concurrentWith(a));
}

TEST(VectorClock, CompareWithDifferentSizes) {
  const VectorClock a{1};
  const VectorClock b{1, 1};
  EXPECT_EQ(a.compare(b), Ordering::kLess);
  EXPECT_EQ(b.compare(a), Ordering::kGreater);
}

TEST(VectorClock, ClearKeepsSizeZerosValues) {
  VectorClock v{4, 5};
  v.clear();
  EXPECT_TRUE(v.isZero());
  EXPECT_EQ(v.size(), 2u);
}

TEST(VectorClock, NormalizeDropsTrailingZeros) {
  VectorClock v{1, 0, 0};
  v.normalize();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v, (VectorClock{1}));
}

TEST(VectorClock, RegressionCopyAssignmentNormalizesLikeCopyConstruction) {
  // Copy-assign used to keep the source's trailing zeros while copy-
  // construction dropped them, so two copies of one value could disagree
  // on size()/components() — and therefore on their wire encoding.  All
  // copy paths must yield the same canonical representation; moves keep
  // the source representation on purpose (the wire tests rely on building
  // non-canonical clocks by move).
  VectorClock grown{1, 2, 0, 0, 0};
  ASSERT_EQ(grown.size(), 5u);  // initializer_list keeps trailing zeros

  VectorClock assigned;
  assigned = grown;
  const VectorClock constructed(grown);
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_EQ(constructed.size(), 2u);
  EXPECT_EQ(assigned.components().size(), constructed.components().size());

  // Assigning over a wider clock must not keep stale tail components.
  VectorClock wide{9, 9, 9, 9, 9, 9, 9};
  wide = VectorClock{1};
  EXPECT_EQ(wide.size(), 1u);

  VectorClock moved = std::move(grown);
  EXPECT_EQ(moved.size(), 5u);  // moves preserve representation
}

TEST(VectorClock, JoinWithReportsTouchedEntriesAndStaleness) {
  VectorClock a{5, 5, 5};
  const VectorClock stale{1, 2, 3};
  // Stale join: every component already dominated — scan only, no change.
  JoinStats st = a.joinWith(stale);
  EXPECT_EQ(st.entriesTouched, 3u);
  EXPECT_FALSE(st.changed);
  EXPECT_EQ(a, (VectorClock{5, 5, 5}));

  // Self-join short-circuits without touching any component.
  st = a.joinWith(a);
  EXPECT_EQ(st.entriesTouched, 0u);
  EXPECT_FALSE(st.changed);

  // A growing join touches the other clock's width and reports the change.
  const VectorClock ahead{6, 5, 5, 1};
  st = a.joinWith(ahead);
  EXPECT_EQ(st.entriesTouched, 4u);
  EXPECT_TRUE(st.changed);
  EXPECT_EQ(a, (VectorClock{6, 5, 5, 1}));

  // Partial staleness: the scan stops at the first growing component.
  VectorClock b{9, 0};
  st = b.joinWith(VectorClock{1, 4});
  EXPECT_TRUE(st.changed);
  EXPECT_EQ(b, (VectorClock{9, 4}));
}

TEST(VectorClock, ToStringFormat) {
  EXPECT_EQ((VectorClock{1, 2}).toString(), "(1,2)");
  EXPECT_EQ(VectorClock().toString(), "()");
}

TEST(VectorClock, HashDiffersForDifferentClocks) {
  // Not guaranteed in theory, but catastrophic if these trivially collide.
  EXPECT_NE((VectorClock{1, 0}).hash(), (VectorClock{0, 1}).hash());
  EXPECT_NE((VectorClock{1}).hash(), (VectorClock{2}).hash());
}

// ------------------------------------------------------------------
// Property sweeps: the partial order laws on random clocks.
// ------------------------------------------------------------------

class VectorClockProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  VectorClock randomClock(std::mt19937_64& rng, std::size_t n) {
    VectorClock v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.set(static_cast<ThreadId>(i), rng() % 4);
    }
    return v;
  }
};

TEST_P(VectorClockProperty, CompareIsConsistentWithLessEq) {
  std::mt19937_64 rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const VectorClock a = randomClock(rng, 1 + rng() % 5);
    const VectorClock b = randomClock(rng, 1 + rng() % 5);
    const Ordering ord = a.compare(b);
    EXPECT_EQ(ord == Ordering::kEqual, a == b);
    EXPECT_EQ(ord == Ordering::kLess, a.less(b));
    EXPECT_EQ(ord == Ordering::kGreater, b.less(a));
    EXPECT_EQ(ord == Ordering::kConcurrent,
              !a.lessEq(b) && !b.lessEq(a));
  }
}

TEST_P(VectorClockProperty, JoinIsLeastUpperBound) {
  std::mt19937_64 rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 200; ++iter) {
    const VectorClock a = randomClock(rng, 1 + rng() % 5);
    const VectorClock b = randomClock(rng, 1 + rng() % 5);
    const VectorClock j = VectorClock::join(a, b);
    EXPECT_TRUE(a.lessEq(j));
    EXPECT_TRUE(b.lessEq(j));
    // Least: any upper bound dominates the join.
    VectorClock ub = j;
    ub.set(0, ub[0] + 1);
    EXPECT_TRUE(j.lessEq(ub));
    // Join is idempotent, commutative, associative.
    EXPECT_EQ(VectorClock::join(a, a), a);
    EXPECT_EQ(VectorClock::join(a, b), VectorClock::join(b, a));
    const VectorClock c = randomClock(rng, 1 + rng() % 5);
    EXPECT_EQ(VectorClock::join(VectorClock::join(a, b), c),
              VectorClock::join(a, VectorClock::join(b, c)));
  }
}

TEST_P(VectorClockProperty, OrderIsTransitiveAndAntisymmetric) {
  std::mt19937_64 rng(GetParam() ^ 0x1234);
  for (int iter = 0; iter < 200; ++iter) {
    const VectorClock a = randomClock(rng, 3);
    const VectorClock b = randomClock(rng, 3);
    const VectorClock c = randomClock(rng, 3);
    if (a.lessEq(b) && b.lessEq(c)) {
      EXPECT_TRUE(a.lessEq(c));
    }
    if (a.lessEq(b) && b.lessEq(a)) {
      EXPECT_EQ(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace mpx::vc
