// Predictive race detection.
//
// The full causality ≺ of the paper orders ALL conflicting accesses of a
// variable, so race detection uses the causality *projection*: candidate
// variables are excluded from MVC joins, leaving program order plus
// synchronization (lock/cond/thread dummy-variable writes, §3.1).  Two
// conflicting accesses whose projected clocks are concurrent race; the
// Eraser-style lockset mode additionally flags conflicting accesses that
// this execution happened to order through unrelated synchronization.
#include "detect/race_detector.hpp"

#include <gtest/gtest.h>

#include "detect/race_analysis.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace mpx::detect {
namespace {

program::ExecutionRecord greedy(const program::Program& p) {
  program::GreedyScheduler sched;
  return program::runProgram(p, sched);
}

/// Drives the RaceAnalysis plugin the way the engine bus does: every raw
/// event with its lockset, then finish().  The standalone traversal this
/// replaced is gone — the plugin IS the race detector's entry point now.
struct RaceHarness {
  RaceOptions opts;

  [[nodiscard]] std::vector<RaceReport> analyzeExecution(
      const program::ExecutionRecord& rec, const program::Program& p,
      const std::vector<std::string>& varNames) const {
    RaceAnalysis plugin(p, varNames, opts);
    static const std::vector<LockId> kNoLocks;
    for (std::size_t i = 0; i < rec.events.size(); ++i) {
      plugin.onRawEvent(rec.events[i], i < rec.locksHeld.size()
                                           ? rec.locksHeld[i]
                                           : kNoLocks);
    }
    plugin.finish({});
    return plugin.races();
  }
};

RaceOptions hbOnly() {
  RaceOptions o;
  o.happensBefore = true;
  o.lockset = false;
  return o;
}

RaceOptions withLockset() {
  RaceOptions o;
  o.happensBefore = true;
  o.lockset = true;
  return o;
}

TEST(RacePredictor, UnsynchronizedWritesRace) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(1));
  auto t2 = b.thread();
  t2.write(x, program::lit(2));
  const program::Program p = b.build();

  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"x"});
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].evidence, RaceEvidence::kHappensBefore);
  EXPECT_EQ(races[0].var, x);
}

TEST(RacePredictor, UnsynchronizedReadWriteRaces) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.read(x, 0);
  auto t2 = b.thread();
  t2.write(x, program::lit(2));
  const program::Program p = b.build();
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"x"});
  ASSERT_EQ(races.size(), 1u);
  EXPECT_NE(races[0].first.event.thread, races[0].second.event.thread);
}

TEST(RacePredictor, ReadReadDoesNotRace) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 7);
  auto t1 = b.thread();
  t1.read(x, 0);
  auto t2 = b.thread();
  t2.read(x, 0);
  const program::Program p = b.build();
  EXPECT_TRUE(RaceHarness{withLockset()}
                  .analyzeExecution(greedy(p), p, {"x"})
                  .empty());
}

TEST(RacePredictor, SameThreadDoesNotRace) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.read(x, 0).write(x, program::reg(0) + program::lit(1));
  const program::Program p = b.build();
  EXPECT_TRUE(RaceHarness{withLockset()}
                  .analyzeExecution(greedy(p), p, {"x"})
                  .empty());
}

TEST(RacePredictor, BankAccountRaceFoundFromSerializedRun) {
  // The greedy run serializes the deposits (benign), yet the projection
  // shows the critical sections unordered: the race is PREDICTED from a
  // successful execution — the paper's selling point, applied to races.
  const program::Program p = program::corpus::bankAccountRacy();
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"balance"});
  ASSERT_FALSE(races.empty());
  EXPECT_EQ(races[0].evidence, RaceEvidence::kHappensBefore);
}

TEST(RacePredictor, LockedAccountNeverRaces) {
  const program::Program p = program::corpus::bankAccountLocked();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    program::RandomScheduler sched(seed);
    const auto rec = program::runProgram(p, sched);
    EXPECT_TRUE(RaceHarness{withLockset()}
                    .analyzeExecution(rec, p, {"balance"})
                    .empty())
        << "seed " << seed;
  }
}

TEST(RacePredictor, LockProtectionCreatesHappensBefore) {
  // Same structure as UnsynchronizedWritesRace but under a lock: the lock
  // variable's writes order the accesses -> no race.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const LockId m = b.lock("m");
  auto t1 = b.thread();
  t1.synchronized(m, [&](program::ThreadBuilder& s) {
    s.write(x, program::lit(1));
  });
  auto t2 = b.thread();
  t2.synchronized(m, [&](program::ThreadBuilder& s) {
    s.write(x, program::lit(2));
  });
  const program::Program p = b.build();
  EXPECT_TRUE(RaceHarness{withLockset()}
                  .analyzeExecution(greedy(p), p, {"x"})
                  .empty());
}

TEST(RacePredictor, PartialLockingStillRaces) {
  // Only one side takes the lock: no common protection.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const LockId m = b.lock("m");
  auto t1 = b.thread();
  t1.synchronized(m, [&](program::ThreadBuilder& s) {
    s.write(x, program::lit(1));
  });
  auto t2 = b.thread();
  t2.write(x, program::lit(2));
  const program::Program p = b.build();
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"x"});
  ASSERT_EQ(races.size(), 1u);
}

TEST(RacePredictor, LocksetCatchesAccidentallyOrderedRace) {
  // The two x-writes are unprotected, but both threads pass through an
  // unrelated critical section that orders them in THIS run: the projected
  // happens-before sees an order, the lockset evidence still fires.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  const LockId m = b.lock("m");
  auto t1 = b.thread();
  t1.write(x, program::lit(1)).synchronized(m, [&](program::ThreadBuilder& s) {
    s.write(y, program::lit(1));
  });
  auto t2 = b.thread();
  t2.synchronized(m, [&](program::ThreadBuilder& s) {
     s.write(y, program::lit(2));
   }).write(x, program::lit(2));
  const program::Program p = b.build();

  // t1 fully, then t2: t1's unlock happens-before t2's lock, ordering the
  // x-writes transitively.
  const auto rec = greedy(p);
  EXPECT_TRUE(
      RaceHarness{hbOnly()}.analyzeExecution(rec, p, {"x"}).empty());
  const auto races =
      RaceHarness{withLockset()}.analyzeExecution(rec, p, {"x"});
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].evidence, RaceEvidence::kLocksetOnly);
}

TEST(RacePredictor, DedupeOneReportPerVarAndThreadPair) {
  const program::Program p =
      program::corpus::bankAccountRacy(/*depositsPerThread=*/3);
  const auto rec = greedy(p);
  const auto once =
      RaceHarness{hbOnly()}.analyzeExecution(rec, p, {"balance"});
  EXPECT_EQ(once.size(), 1u);

  RaceOptions all = hbOnly();
  all.dedupeByVarAndThreads = false;
  const auto full = RaceHarness{all}.analyzeExecution(rec, p, {"balance"});
  EXPECT_GT(full.size(), once.size());
}

TEST(RacePredictor, MaxReportsCap) {
  const program::Program p =
      program::corpus::bankAccountRacy(/*depositsPerThread=*/4);
  RaceOptions opts = hbOnly();
  opts.dedupeByVarAndThreads = false;
  opts.maxReports = 2;
  EXPECT_EQ(RaceHarness{opts}
                .analyzeExecution(greedy(p), p, {"balance"})
                .size(),
            2u);
}

TEST(RacePredictor, ReportOrdersPairByGlobalSeq) {
  const program::Program p = program::corpus::bankAccountRacy();
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"balance"});
  ASSERT_FALSE(races.empty());
  EXPECT_LT(races[0].first.event.globalSeq, races[0].second.event.globalSeq);
}

TEST(RacePredictor, AtomicUpdatesDoNotRaceWithEachOther) {
  const program::Program p = program::corpus::casCounter(2, 2);
  const auto rec = greedy(p);
  // CAS retry loops contain plain reads too, and a plain read can race
  // with another thread's atomic write — but two atomic updates must not
  // be reported against each other.
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      rec, p, {"counter"});
  for (const auto& r : races) {
    EXPECT_FALSE(r.first.event.kind == trace::EventKind::kAtomicUpdate &&
                 r.second.event.kind == trace::EventKind::kAtomicUpdate)
        << r.describe(p.vars);
  }
}

TEST(RacePredictor, AtomicAgainstPlainWriteStillRaces) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.compareExchange(x, 0, program::lit(0), program::lit(1));
  auto t2 = b.thread();
  t2.write(x, program::lit(7));  // plain, unsynchronized
  const program::Program p = b.build();
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"x"});
  ASSERT_FALSE(races.empty());
}

TEST(RaceReport, DescribeMentionsVariableAndThreads) {
  program::ProgramBuilder b;
  const VarId x = b.var("shared_counter", 0);
  auto t1 = b.thread();
  t1.read(x, 0);
  auto t2 = b.thread();
  t2.write(x, program::lit(1));
  const program::Program p = b.build();
  const auto races = RaceHarness{hbOnly()}.analyzeExecution(
      greedy(p), p, {"shared_counter"});
  ASSERT_EQ(races.size(), 1u);
  const std::string desc = races[0].describe(p.vars);
  EXPECT_NE(desc.find("shared_counter"), std::string::npos);
  EXPECT_NE(desc.find("T0"), std::string::npos);
  EXPECT_NE(desc.find("T1"), std::string::npos);
}

TEST(RacePredictor, SpawnJoinOrdersWorkerAgainstMain) {
  // main reads `a`/`c` only after joining the workers that wrote them: the
  // thread dummy-variable writes (§3.1) order the accesses — the
  // happens-before predictor is clean.
  const program::Program p = program::corpus::spawnJoin();
  const auto rec = greedy(p);
  EXPECT_TRUE(RaceHarness{hbOnly()}
                  .analyzeExecution(rec, p, {"a", "c", "sum"})
                  .empty());

  // The lockset refinement, blind to fork/join ordering, raises its classic
  // Eraser false positive here — documented behaviour, which is why it is
  // off by default.
  RaceOptions locksetOnly;
  locksetOnly.happensBefore = false;
  locksetOnly.lockset = true;
  EXPECT_FALSE(RaceHarness{locksetOnly}
                   .analyzeExecution(rec, p, {"a", "c", "sum"})
                   .empty());
}

}  // namespace
}  // namespace mpx::detect
