// Predictive deadlock detection via lock-order graph cycles.
#include "detect/deadlock_detector.hpp"

#include <gtest/gtest.h>

#include "detect/deadlock_analysis.hpp"
#include "program/corpus.hpp"
#include "program/explorer.hpp"

namespace mpx::detect {
namespace {

program::ExecutionRecord greedy(const program::Program& p) {
  program::GreedyScheduler sched;
  return program::runProgram(p, sched);
}

/// Drives the DeadlockAnalysis plugin the way the engine bus does: every
/// raw event with its lockset, then finish() (which runs the cycle search).
struct DeadlockHarness {
  static void feed(DeadlockAnalysis& plugin,
                   const program::ExecutionRecord& rec) {
    static const std::vector<LockId> kNoLocks;
    for (std::size_t i = 0; i < rec.events.size(); ++i) {
      plugin.onRawEvent(rec.events[i], i < rec.locksHeld.size()
                                           ? rec.locksHeld[i]
                                           : kNoLocks);
    }
    plugin.finish({});
  }

  [[nodiscard]] std::vector<DeadlockReport> analyze(
      const program::ExecutionRecord& rec, const program::Program& p) const {
    DeadlockAnalysis plugin(p);
    feed(plugin, rec);
    return plugin.deadlocks();
  }

  [[nodiscard]] std::vector<LockOrderEdge> lockOrderEdges(
      const program::ExecutionRecord& rec, const program::Program& p) const {
    DeadlockAnalysis plugin(p);
    feed(plugin, rec);
    return plugin.edges();
  }
};

program::Program abbaProgram() {
  program::ProgramBuilder b;
  const LockId a = b.lock("A");
  const LockId c = b.lock("B");
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.lockAcquire(a).lockAcquire(c).write(x, program::lit(1))
      .lockRelease(c).lockRelease(a);
  auto t2 = b.thread();
  t2.lockAcquire(c).lockAcquire(a).write(x, program::lit(2))
      .lockRelease(a).lockRelease(c);
  return b.build();
}

TEST(DeadlockPredictor, AbbaCycleFromSuccessfulRun) {
  const program::Program p = abbaProgram();
  const auto rec = greedy(p);
  ASSERT_FALSE(rec.deadlocked);  // the observed run completed

  DeadlockHarness predictor;
  const auto reports = predictor.analyze(rec, p);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].cycle.size(), 2u);
  ASSERT_EQ(reports[0].edges.size(), 2u);
  EXPECT_NE(reports[0].edges[0].thread, reports[0].edges[1].thread);

  // The prediction is real: some schedule deadlocks.
  program::ExhaustiveExplorer ex;
  EXPECT_TRUE(ex.existsExecution(
      p, [](const program::ExecutionRecord& r) { return r.deadlocked; }));
}

TEST(DeadlockPredictor, ConsistentOrderNoCycle) {
  program::ProgramBuilder b;
  const LockId a = b.lock("A");
  const LockId c = b.lock("B");
  const VarId x = b.var("x", 0);
  for (int i = 0; i < 2; ++i) {
    auto t = b.thread();
    t.lockAcquire(a).lockAcquire(c).write(x, program::lit(i))
        .lockRelease(c).lockRelease(a);
  }
  const program::Program p = b.build();
  EXPECT_TRUE(DeadlockHarness{}.analyze(greedy(p), p).empty());
}

TEST(DeadlockPredictor, PhilosopherRingCycleLengthN) {
  for (std::size_t n = 2; n <= 4; ++n) {
    const program::Program p = program::corpus::diningPhilosophers(n);
    const auto reports = DeadlockHarness{}.analyze(greedy(p), p);
    ASSERT_EQ(reports.size(), 1u) << n << " philosophers";
    EXPECT_EQ(reports[0].cycle.size(), n);
  }
}

TEST(DeadlockPredictor, OrderedPhilosophersClean) {
  const program::Program p = program::corpus::diningPhilosophers(4, true);
  EXPECT_TRUE(DeadlockHarness{}.analyze(greedy(p), p).empty());
}

TEST(DeadlockPredictor, LockOrderEdgesDeduplicated) {
  // The same A->B edge acquired twice produces one edge.
  program::ProgramBuilder b;
  const LockId a = b.lock("A");
  const LockId c = b.lock("B");
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  for (int i = 0; i < 2; ++i) {
    t1.lockAcquire(a).lockAcquire(c).write(x, program::lit(i))
        .lockRelease(c).lockRelease(a);
  }
  const program::Program p = b.build();
  const auto edges = DeadlockHarness{}.lockOrderEdges(greedy(p), p);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, a);
  EXPECT_EQ(edges[0].to, c);
}

TEST(DeadlockPredictor, NoLocksNoEdges) {
  const program::Program p = program::corpus::bankAccountRacy();
  EXPECT_TRUE(DeadlockHarness{}.lockOrderEdges(greedy(p), p).empty());
}

TEST(DeadlockPredictor, ThreeLockCycleAcrossThreeThreads) {
  program::ProgramBuilder b;
  std::vector<LockId> locks = {b.lock("L0"), b.lock("L1"),
                                        b.lock("L2")};
  const VarId x = b.var("x", 0);
  for (std::size_t i = 0; i < 3; ++i) {
    auto t = b.thread();
    t.lockAcquire(locks[i])
        .lockAcquire(locks[(i + 1) % 3])
        .write(x, program::lit(static_cast<Value>(i)))
        .lockRelease(locks[(i + 1) % 3])
        .lockRelease(locks[i]);
  }
  const program::Program p = b.build();
  const auto reports = DeadlockHarness{}.analyze(greedy(p), p);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].cycle.size(), 3u);
  const std::string desc = reports[0].describe(p.lockNames);
  EXPECT_NE(desc.find("L0"), std::string::npos);
  EXPECT_NE(desc.find("L2"), std::string::npos);
}

TEST(DeadlockPredictor, NestedButAcyclicHierarchy) {
  // L0 -> L1, L0 -> L2, L1 -> L2: a DAG, no report.
  program::ProgramBuilder b;
  std::vector<LockId> locks = {b.lock("L0"), b.lock("L1"),
                                        b.lock("L2")};
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.lockAcquire(locks[0])
      .lockAcquire(locks[1])
      .lockAcquire(locks[2])
      .write(x, program::lit(1))
      .lockRelease(locks[2])
      .lockRelease(locks[1])
      .lockRelease(locks[0]);
  auto t2 = b.thread();
  t2.lockAcquire(locks[0]).lockAcquire(locks[2]).write(x, program::lit(2))
      .lockRelease(locks[2]).lockRelease(locks[0]);
  const program::Program p = b.build();
  EXPECT_TRUE(DeadlockHarness{}.analyze(greedy(p), p).empty());
}

}  // namespace
}  // namespace mpx::detect
