// Backend/wire differential certification: 500 seeded random traces, each
// instrumented twice (flat VectorClock backend, TreeClock backend).  The
// emitted message streams must be BYTE-identical under BinaryCodec, and
// every wire version (v2 dense, v3 timestamped dense, v4 sparse) must
// round-trip each stream back to the same bytes.  This is the contract
// that lets the clock backend and the clock coding be chosen per trace
// without any observer-side consequence.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/instrumentor.hpp"
#include "net/wire.hpp"
#include "trace/channel.hpp"
#include "trace/codec.hpp"

namespace mpx::core {
namespace {

struct TraceShape {
  std::size_t threads;
  std::size_t vars;
  std::size_t events;
};

/// Derives a shape from the seed so the sweep covers narrow, SBO-boundary
/// and wide regimes without a hand-picked case list.
TraceShape shapeFor(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  static constexpr std::size_t kWidths[] = {1, 2, 3, 7, 8, 9, 16, 33};
  TraceShape s;
  s.threads = kWidths[rng() % std::size(kWidths)];
  s.vars = 1 + rng() % 4;
  s.events = 30 + rng() % 40;
  return s;
}

std::vector<trace::Event> randomTrace(std::uint64_t seed,
                                      const TraceShape& s) {
  std::mt19937_64 rng(seed);
  std::vector<trace::Event> events;
  std::vector<LocalSeq> nextLocal(s.threads, 1);
  for (std::size_t n = 0; n < s.events; ++n) {
    trace::Event e;
    e.thread = static_cast<ThreadId>(rng() % s.threads);
    e.var = static_cast<VarId>(rng() % s.vars);
    const std::uint64_t k = rng() % 4;
    e.kind = k == 0 ? trace::EventKind::kRead
             : k == 1 ? trace::EventKind::kLockAcquire
                      : trace::EventKind::kWrite;
    e.value = static_cast<Value>(rng() % 100);
    e.localSeq = nextLocal[e.thread]++;
    e.globalSeq = n + 1;
    events.push_back(e);
  }
  return events;
}

/// Instruments the trace with the given backend; returns the emitted
/// message stream.
std::vector<trace::Message> emit(const std::vector<trace::Event>& events,
                                 const TraceShape& s,
                                 vc::ClockBackend backend) {
  trace::CollectingSink sink;
  Instrumentor ins(RelevancePolicy::allSharedAccesses(), sink, backend);
  ins.reserve(s.threads, s.vars);
  for (const trace::Event& e : events) ins.onEvent(e);
  return sink.take();
}

/// Round-trips `bytes`' messages through one wire version and re-encodes
/// densely; any coding difference shows up as a byte difference here.
std::vector<std::uint8_t> throughWire(const std::vector<trace::Message>& ms,
                                      std::uint16_t version) {
  std::vector<std::uint8_t> payload;
  std::vector<trace::Message> back;
  const char* error = nullptr;
  if (version >= net::kSparseClockProtocolVersion) {
    payload.resize(net::kEventsTsPrefixSize, 0);
    trace::SparseClockCodec::FrameState st;
    for (const trace::Message& m : ms) {
      trace::SparseClockCodec::encode(m, st, payload);
    }
    std::uint64_t sendNs = 0;
    EXPECT_TRUE(net::decodeEventsSparsePayload(payload, sendNs, back, &error))
        << error;
  } else if (version >= net::kTraceContextProtocolVersion) {
    payload.resize(net::kEventsTsPrefixSize, 0);
    for (const trace::Message& m : ms) {
      trace::BinaryCodec::encode(m, payload);
    }
    std::uint64_t sendNs = 0;
    EXPECT_TRUE(net::decodeEventsTsPayload(payload, sendNs, back, &error))
        << error;
  } else {
    for (const trace::Message& m : ms) {
      trace::BinaryCodec::encode(m, payload);
    }
    EXPECT_TRUE(net::decodeEventsPayload(payload, back, &error)) << error;
  }
  return trace::BinaryCodec::encodeAll(back);
}

TEST(BackendDifferential, FiveHundredSeedByteIdenticalSweep) {
  std::uint64_t wideSeeds = 0;
  std::uint64_t sparseSmallerOnWide = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const TraceShape s = shapeFor(seed);
    const auto events = randomTrace(seed, s);

    const auto flatMsgs = emit(events, s, vc::ClockBackend::kFlat);
    const auto treeMsgs = emit(events, s, vc::ClockBackend::kTree);
    const auto flatBytes = trace::BinaryCodec::encodeAll(flatMsgs);
    const auto treeBytes = trace::BinaryCodec::encodeAll(treeMsgs);
    ASSERT_EQ(flatBytes, treeBytes)
        << "backend divergence at seed " << seed << " (threads " << s.threads
        << ", vars " << s.vars << ")";

    // kAuto must resolve to one of the two certified backends and match.
    const auto autoMsgs = emit(events, s, vc::ClockBackend::kAuto);
    ASSERT_EQ(trace::BinaryCodec::encodeAll(autoMsgs), flatBytes)
        << "kAuto divergence at seed " << seed;

    // Every wire version round-trips the stream to the same dense bytes.
    for (const std::uint16_t version :
         {net::kListSpecProtocolVersion, net::kTraceContextProtocolVersion,
          net::kSparseClockProtocolVersion}) {
      ASSERT_EQ(throughWire(flatMsgs, version), flatBytes)
          << "wire v" << version << " divergence at seed " << seed;
    }

    // Track the compression claim on the wide shapes (sparse must win
    // beyond the SBO width; at tiny widths dense can legitimately tie).
    if (s.threads > vc::VectorClock::kInlineComponents) {
      ++wideSeeds;
      trace::SparseClockCodec::FrameState st;
      std::vector<std::uint8_t> sparse;
      for (const trace::Message& m : flatMsgs) {
        trace::SparseClockCodec::encode(m, st, sparse);
      }
      if (sparse.size() < flatBytes.size()) ++sparseSmallerOnWide;
    }
  }
  ASSERT_GT(wideSeeds, 50u) << "sweep must include wide traces";
  EXPECT_EQ(sparseSmallerOnWide, wideSeeds)
      << "v4 coding must beat dense on every wide trace";
}

}  // namespace
}  // namespace mpx::core
