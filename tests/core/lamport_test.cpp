// Why VECTOR clocks: the Lamport-clock ablation.
//
// Scalar clocks are consistent with causality but cannot express
// concurrency; this test quantifies the predictive power lost — with
// Lamport stamps the landing-controller computation collapses to the one
// observed run (no prediction possible), while MVCs expose all three runs.
#include "core/lamport.hpp"

#include <gtest/gtest.h>

#include "core/instrumentor.hpp"
#include "core/reference.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::core {
namespace {

TEST(Lamport, ConsistentWithCausality) {
  // Soundness direction survives: e ≺ e' implies stamp(e) < stamp(e')
  // for relevant pairs (monotone along every causal edge).
  program::corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 3;
  opts.opsPerThread = 7;
  for (std::uint64_t seed = 501; seed < 506; ++seed) {
    const program::Program prog = program::corpus::randomProgram(seed, opts);
    const auto rec = program::runProgramRandom(prog, seed + 1);

    std::unordered_set<VarId> dataVars;
    for (const VarId v : prog.vars.idsWithRole(trace::VarRole::kData)) {
      dataVars.insert(v);
    }
    LamportInstrumentor lamport(RelevancePolicy::writesOf(dataVars));
    std::vector<std::size_t> eventIndex;
    for (std::size_t k = 0; k < rec.events.size(); ++k) {
      const std::size_t before = lamport.emitted().size();
      lamport.onEvent(rec.events[k]);
      if (lamport.emitted().size() > before) eventIndex.push_back(k);
    }
    const ReferenceCausality ref(rec.events);
    const auto& ms = lamport.emitted();
    for (std::size_t a = 0; a < ms.size(); ++a) {
      for (std::size_t b = 0; b < ms.size(); ++b) {
        if (a == b) continue;
        if (ref.precedes(eventIndex[a], eventIndex[b])) {
          EXPECT_LT(ms[a].stamp, ms[b].stamp) << "seed " << seed;
        }
      }
    }
  }
}

TEST(Lamport, CannotExpressConcurrency) {
  // The landing computation: MVCs show radio=0 concurrent with both T1
  // writes; Lamport stamps impose a false order on every pair.
  const program::Program prog = program::corpus::landingController();
  program::FixedScheduler sched(program::corpus::landingObservedSchedule());
  const auto rec = program::runProgram(prog, sched);

  std::unordered_set<VarId> vars = {prog.vars.id("landing"),
                                    prog.vars.id("approved"),
                                    prog.vars.id("radio")};
  LamportInstrumentor lamport(RelevancePolicy::writesOf(vars));
  trace::CollectingSink sink;
  Instrumentor mvc(RelevancePolicy::writesOf(vars), sink);
  for (const auto& e : rec.events) {
    lamport.onEvent(e);
    mvc.onEvent(e);
  }

  const auto& scalar = lamport.emitted();
  const auto& vector = sink.messages();
  ASSERT_EQ(scalar.size(), 3u);
  ASSERT_EQ(vector.size(), 3u);

  // MVC observer: radio=0 (last message) concurrent with both others.
  EXPECT_TRUE(vector[2].concurrentWith(vector[0]));
  EXPECT_TRUE(vector[2].concurrentWith(vector[1]));

  // Lamport observer: every cross-thread pair looks ordered one way or the
  // other — concurrency is gone, so only the observed run survives.
  std::size_t unorderedPairs = 0;
  for (std::size_t a = 0; a < scalar.size(); ++a) {
    for (std::size_t b = a + 1; b < scalar.size(); ++b) {
      if (!LamportInstrumentor::mayPrecede(scalar[a], scalar[b]) &&
          !LamportInstrumentor::mayPrecede(scalar[b], scalar[a])) {
        ++unorderedPairs;
      }
    }
  }
  EXPECT_EQ(unorderedPairs, 0u)
      << "a scalar clock should totally order these stamps";
}

TEST(Lamport, PredictivePowerLostQuantified) {
  // Count the runs each observer can justify: MVC -> 3 (Fig. 5);
  // Lamport -> 1 (only the observed order is consistent with "mayPrecede
  // must hold along the run").
  const program::Program prog = program::corpus::landingController();
  program::FixedScheduler sched(program::corpus::landingObservedSchedule());
  const auto rec = program::runProgram(prog, sched);
  std::unordered_set<VarId> vars = {prog.vars.id("landing"),
                                    prog.vars.id("approved"),
                                    prog.vars.id("radio")};
  LamportInstrumentor lamport(RelevancePolicy::writesOf(vars));
  for (const auto& e : rec.events) lamport.onEvent(e);
  const auto& ms = lamport.emitted();

  // Enumerate permutations of the 3 stamped events consistent with the
  // Lamport "may precede" order (a DAG that is in fact total here).
  std::vector<std::size_t> idx = {0, 1, 2};
  std::size_t consistent = 0;
  std::sort(idx.begin(), idx.end());
  do {
    bool ok = true;
    for (std::size_t i = 0; i < idx.size() && ok; ++i) {
      for (std::size_t j = i + 1; j < idx.size() && ok; ++j) {
        // idx[i] placed before idx[j]: contradiction if the Lamport order
        // REQUIRES idx[j] before idx[i].
        if (LamportInstrumentor::mayPrecede(ms[idx[j]], ms[idx[i]])) {
          ok = false;
        }
      }
    }
    if (ok) ++consistent;
  } while (std::next_permutation(idx.begin(), idx.end()));
  EXPECT_EQ(consistent, 1u) << "Lamport observer sees exactly 1 run";
}

}  // namespace
}  // namespace mpx::core
