// The specification-level causality oracle itself, on hand-built traces.
#include "core/reference.hpp"

#include <gtest/gtest.h>

namespace mpx::core {
namespace {

using trace::Event;
using trace::EventKind;

Event ev(EventKind k, ThreadId t, VarId v = kNoVar, Value val = 0) {
  Event e;
  e.kind = k;
  e.thread = t;
  e.var = v;
  e.value = val;
  return e;
}

TEST(ReferenceCausality, ProgramOrderWithinThread) {
  const std::vector<Event> events = {
      ev(EventKind::kInternal, 0),
      ev(EventKind::kInternal, 0),
      ev(EventKind::kInternal, 1),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 1));
  EXPECT_FALSE(ref.precedes(1, 0));
  EXPECT_TRUE(ref.concurrent(0, 2));
  EXPECT_TRUE(ref.concurrent(1, 2));
}

TEST(ReferenceCausality, WriteReadDependency) {
  const std::vector<Event> events = {
      ev(EventKind::kWrite, 0, 0),  // T0 writes x
      ev(EventKind::kRead, 1, 0),   // T1 reads x: depends on the write
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 1));
}

TEST(ReferenceCausality, ReadWriteDependency) {
  const std::vector<Event> events = {
      ev(EventKind::kRead, 0, 0),
      ev(EventKind::kWrite, 1, 0),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 1));
}

TEST(ReferenceCausality, WriteWriteDependency) {
  const std::vector<Event> events = {
      ev(EventKind::kWrite, 0, 0),
      ev(EventKind::kWrite, 1, 0),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 1));
}

TEST(ReferenceCausality, ReadReadIsPermutable) {
  // "No causal constraint is imposed on read-read events" (paper §2.2).
  const std::vector<Event> events = {
      ev(EventKind::kRead, 0, 0),
      ev(EventKind::kRead, 1, 0),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.concurrent(0, 1));
}

TEST(ReferenceCausality, DifferentVariablesAreIndependent) {
  const std::vector<Event> events = {
      ev(EventKind::kWrite, 0, 0),
      ev(EventKind::kWrite, 1, 1),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.concurrent(0, 1));
}

TEST(ReferenceCausality, TransitivityThroughAnotherThread) {
  const std::vector<Event> events = {
      ev(EventKind::kWrite, 0, 0),   // 0: T0 writes x
      ev(EventKind::kRead, 1, 0),    // 1: T1 reads x   (0 ≺ 1)
      ev(EventKind::kWrite, 1, 1),   // 2: T1 writes y  (1 ≺ 2)
      ev(EventKind::kRead, 2, 1),    // 3: T2 reads y   (2 ≺ 3)
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 3));  // closed under transitivity
}

TEST(ReferenceCausality, EarlierReadsReachWriteTransitively) {
  // r0(x) by T0, r1(x) by T1, then w(x) by T2: both reads precede the
  // write; the reads stay concurrent.
  const std::vector<Event> events = {
      ev(EventKind::kRead, 0, 0),
      ev(EventKind::kRead, 1, 0),
      ev(EventKind::kWrite, 2, 0),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 2));
  EXPECT_TRUE(ref.precedes(1, 2));
  EXPECT_TRUE(ref.concurrent(0, 1));
}

TEST(ReferenceCausality, LockEventsAreWriteLike) {
  const std::vector<Event> events = {
      ev(EventKind::kLockRelease, 0, 5),
      ev(EventKind::kLockAcquire, 1, 5),
  };
  const ReferenceCausality ref(events);
  EXPECT_TRUE(ref.precedes(0, 1));
}

TEST(ReferenceCausality, RelevantCountingOnSmallTrace) {
  // T0: w(x); T1: r(x), w(y).  Relevance: writes of x and y.
  const std::vector<Event> events = {
      ev(EventKind::kWrite, 0, 0),
      ev(EventKind::kRead, 1, 0),
      ev(EventKind::kWrite, 1, 1),
  };
  const ReferenceCausality ref(events);
  const RelevancePolicy policy = RelevancePolicy::writesOf({0, 1});

  // After event 2 (T1's write of y): relevant events of T0 preceding it: 1.
  EXPECT_EQ(ref.relevantPredecessorsFromThread(2, 0, policy), 1u);
  // Including itself for its own thread: 1.
  EXPECT_EQ(ref.relevantPredecessorsFromThread(2, 1, policy), 1u);
  // The read (event 1) is not relevant: counts for T1 at event 1 are 0.
  EXPECT_EQ(ref.relevantPredecessorsFromThread(1, 1, policy), 0u);
  // Last write of x at event 2 is event 0.
  EXPECT_EQ(ref.relevantUpToLastWrite(2, 0, 0, policy), 1u);
  EXPECT_EQ(ref.relevantUpToLastWrite(2, 0, 1, policy), 0u);
  // Accesses of x up to event 2: the write and the read.
  EXPECT_EQ(ref.relevantUpToLastAccess(2, 0, 0, policy), 1u);
}

TEST(ReferenceCausality, EmptyTrace) {
  const std::vector<Event> events;
  const ReferenceCausality ref(events);
  EXPECT_EQ(ref.size(), 0u);
}

}  // namespace
}  // namespace mpx::core
