// Theorem 3 (paper §3): for any two messages <e,i,V> and <e',i',V'> sent by
// Algorithm A,  e ⊳ e'  iff  V[i] <= V'[i]  iff  V < V'.
//
// Verified on random programs against the specification-level causality,
// plus: concurrency coincides with clock incomparability, and the relevant
// causality is exactly ≺ restricted to R × R.
#include <gtest/gtest.h>

#include "core/instrumentor.hpp"
#include "core/reference.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::core {
namespace {

struct RunResult {
  program::Program prog;
  program::ExecutionRecord rec;
  std::vector<trace::Message> messages;
  std::vector<std::size_t> eventIndex;  // message -> index into rec.events
  RelevancePolicy policy = RelevancePolicy::nothing();
};

RunResult run(std::uint64_t seed, bool locks, bool readsRelevant) {
  RunResult s;
  program::corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 3;
  opts.opsPerThread = 7;
  opts.locks = locks ? 2 : 0;
  s.prog = program::corpus::randomProgram(seed, opts);
  s.rec = program::runProgramRandom(s.prog, seed * 7919 + 13);

  std::unordered_set<VarId> dataVars;
  for (const VarId v : s.prog.vars.idsWithRole(trace::VarRole::kData)) {
    dataVars.insert(v);
  }
  s.policy = readsRelevant ? RelevancePolicy::accessesOf(dataVars)
                           : RelevancePolicy::writesOf(dataVars);

  trace::CollectingSink sink;
  Instrumentor instr(s.policy, sink);
  for (std::size_t k = 0; k < s.rec.events.size(); ++k) {
    const std::size_t before = sink.messages().size();
    instr.onEvent(s.rec.events[k]);
    if (sink.messages().size() > before) s.eventIndex.push_back(k);
  }
  s.messages = sink.take();
  return s;
}

struct Theorem3Case {
  std::uint64_t seed;
  bool locks;
  bool readsRelevant;
};

class Theorem3Sweep : public ::testing::TestWithParam<Theorem3Case> {};

TEST_P(Theorem3Sweep, ClockOrderEqualsRelevantCausality) {
  const auto c = GetParam();
  const RunResult s = run(c.seed, c.locks, c.readsRelevant);
  ASSERT_FALSE(s.messages.empty());
  const ReferenceCausality ref(s.rec.events);

  for (std::size_t a = 0; a < s.messages.size(); ++a) {
    for (std::size_t b = 0; b < s.messages.size(); ++b) {
      if (a == b) continue;
      const trace::Message& ma = s.messages[a];
      const trace::Message& mb = s.messages[b];
      const bool specPrecedes = ref.precedes(s.eventIndex[a], s.eventIndex[b]);

      // First form: V[i] <= V'[i].
      EXPECT_EQ(ma.causallyPrecedes(mb), specPrecedes)
          << "messages " << a << " -> " << b << " (seed " << c.seed << ")";
      // Second form: V < V'.
      EXPECT_EQ(ma.clock.less(mb.clock), specPrecedes)
          << "clock-less mismatch " << a << " -> " << b;
    }
  }
}

TEST_P(Theorem3Sweep, ConcurrencyIsClockIncomparability) {
  const auto c = GetParam();
  const RunResult s = run(c.seed, c.locks, c.readsRelevant);
  const ReferenceCausality ref(s.rec.events);
  for (std::size_t a = 0; a < s.messages.size(); ++a) {
    for (std::size_t b = a + 1; b < s.messages.size(); ++b) {
      const bool specConcurrent =
          ref.concurrent(s.eventIndex[a], s.eventIndex[b]);
      EXPECT_EQ(s.messages[a].concurrentWith(s.messages[b]), specConcurrent);
      EXPECT_EQ(s.messages[a].clock.concurrentWith(s.messages[b].clock),
                specConcurrent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem3Sweep,
    ::testing::Values(Theorem3Case{101, false, false},
                      Theorem3Case{102, false, false},
                      Theorem3Case{103, true, false},
                      Theorem3Case{104, true, false},
                      Theorem3Case{105, false, true},
                      Theorem3Case{106, true, true},
                      Theorem3Case{107, true, true},
                      Theorem3Case{108, false, true}),
    [](const ::testing::TestParamInfo<Theorem3Case>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.locks ? "_locks" : "") +
             (info.param.readsRelevant ? "_reads" : "");
    });

TEST(Theorem3, SameThreadMessagesAreTotallyOrdered) {
  const RunResult s = run(42, true, true);
  for (std::size_t a = 0; a < s.messages.size(); ++a) {
    for (std::size_t b = a + 1; b < s.messages.size(); ++b) {
      if (s.messages[a].thread() != s.messages[b].thread()) continue;
      EXPECT_TRUE(s.messages[a].causallyPrecedes(s.messages[b]) ||
                  s.messages[b].causallyPrecedes(s.messages[a]));
    }
  }
}

TEST(Theorem3, OwnComponentCountsOwnRelevantEvents) {
  // The i-th component of thread i's k-th message is exactly k — this is
  // what lets the observer order and gap-check per-thread streams.
  const RunResult s = run(55, false, false);
  std::vector<std::uint64_t> counts;
  for (const trace::Message& m : s.messages) {
    const ThreadId i = m.thread();
    if (i >= counts.size()) counts.resize(i + 1, 0);
    EXPECT_EQ(m.clock[i], ++counts[i]);
  }
}

}  // namespace
}  // namespace mpx::core
