// Requirements (a), (b), (c) for Algorithm A (paper §3), verified event by
// event against the specification-level ReferenceCausality on random
// programs — the paper derives the algorithm from exactly these properties.
#include <gtest/gtest.h>

#include "core/instrumentor.hpp"
#include "core/reference.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::core {
namespace {

struct SweepCase {
  std::uint64_t programSeed;
  std::uint64_t scheduleSeed;
  std::size_t threads;
  std::size_t vars;
  bool locks;
};

class RequirementsSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RequirementsSweep, MvcsMatchTheSpecification) {
  const SweepCase c = GetParam();
  program::corpus::RandomProgramOptions opts;
  opts.threads = c.threads;
  opts.vars = c.vars;
  opts.opsPerThread = 6;
  opts.locks = c.locks ? 2 : 0;
  const program::Program prog =
      program::corpus::randomProgram(c.programSeed, opts);
  const program::ExecutionRecord rec =
      program::runProgramRandom(prog, c.scheduleSeed);

  // Relevance: the JMPaX default — writes of all data variables.
  std::unordered_set<VarId> dataVars;
  for (const VarId v : prog.vars.idsWithRole(trace::VarRole::kData)) {
    dataVars.insert(v);
  }
  const RelevancePolicy policy = RelevancePolicy::writesOf(dataVars);

  const ReferenceCausality ref(rec.events);

  trace::CollectingSink sink;
  Instrumentor instr(policy, sink);

  // Variables and threads touched so far (requirements quantify over them).
  const std::size_t nThreads = prog.threads.size();

  for (std::size_t k = 0; k < rec.events.size(); ++k) {
    instr.onEvent(rec.events[k]);
    const ThreadId i = rec.events[k].thread;

    // Requirement (a): V_i[j] = #relevant events of t_j causally preceding
    // e^k_i (including itself when relevant and j == i).
    for (ThreadId j = 0; j < nThreads; ++j) {
      EXPECT_EQ(instr.threadClock(i)[j],
                ref.relevantPredecessorsFromThread(k, j, policy))
          << "req (a) failed at event " << k << " for thread " << j;
    }

    // Requirements (b) and (c) for the accessed variable.
    if (rec.events[k].accessesVariable()) {
      const VarId x = rec.events[k].var;
      for (ThreadId j = 0; j < nThreads; ++j) {
        EXPECT_EQ(instr.accessClock(x)[j],
                  ref.relevantUpToLastAccess(k, x, j, policy))
            << "req (b) failed at event " << k << " var " << x;
        EXPECT_EQ(instr.writeClock(x)[j],
                  ref.relevantUpToLastWrite(k, x, j, policy))
            << "req (c) failed at event " << k << " var " << x;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, RequirementsSweep,
    ::testing::Values(SweepCase{1, 1, 2, 2, false},
                      SweepCase{2, 7, 3, 2, false},
                      SweepCase{3, 5, 3, 3, false},
                      SweepCase{4, 9, 4, 2, false},
                      SweepCase{5, 3, 2, 1, false},
                      SweepCase{6, 11, 3, 3, true},
                      SweepCase{7, 13, 4, 2, true},
                      SweepCase{8, 17, 2, 4, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      return "p" + std::to_string(c.programSeed) + "s" +
             std::to_string(c.scheduleSeed) + "t" + std::to_string(c.threads) +
             "v" + std::to_string(c.vars) + (c.locks ? "L" : "");
    });

// The same sweep with every access relevant (the race-detection relevance):
// exercises step 1 on reads too.
class AllAccessRelevance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllAccessRelevance, RequirementAHoldsForReadRelevance) {
  program::corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 2;
  opts.opsPerThread = 5;
  const program::Program prog =
      program::corpus::randomProgram(GetParam(), opts);
  const program::ExecutionRecord rec =
      program::runProgramRandom(prog, GetParam() ^ 0xbeef);

  const RelevancePolicy policy = RelevancePolicy::allSharedAccesses();
  const ReferenceCausality ref(rec.events);
  trace::CollectingSink sink;
  Instrumentor instr(policy, sink);
  for (std::size_t k = 0; k < rec.events.size(); ++k) {
    instr.onEvent(rec.events[k]);
    const ThreadId i = rec.events[k].thread;
    for (ThreadId j = 0; j < prog.threads.size(); ++j) {
      ASSERT_EQ(instr.threadClock(i)[j],
                ref.relevantPredecessorsFromThread(k, j, policy))
          << "event " << k << " thread " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllAccessRelevance,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace mpx::core
