// Algorithm A against hand-computed MVCs, including the paper's Fig. 6
// message clocks.
#include "core/instrumentor.hpp"

#include <gtest/gtest.h>

#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::core {
namespace {

using trace::EventKind;

trace::Event ev(EventKind k, ThreadId t, VarId v, Value val = 0) {
  trace::Event e;
  e.kind = k;
  e.thread = t;
  e.var = v;
  e.value = val;
  return e;
}

TEST(Instrumentor, InternalEventsOnlyTickWhenRelevant) {
  trace::CollectingSink sink;
  Instrumentor all(RelevancePolicy::custom([](const trace::Event&) {
                     return true;
                   }),
                   sink);
  all.onEvent(ev(EventKind::kInternal, 0, kNoVar));
  EXPECT_EQ(all.threadClock(0)[0], 1u);

  trace::CollectingSink sink2;
  Instrumentor none(RelevancePolicy::nothing(), sink2);
  none.onEvent(ev(EventKind::kInternal, 0, kNoVar));
  EXPECT_EQ(none.threadClock(0)[0], 0u);
  EXPECT_TRUE(sink2.messages().empty());
}

TEST(Instrumentor, WriteUpdatesAllThreeClocks) {
  trace::CollectingSink sink;
  Instrumentor in(RelevancePolicy::writesOf({0}), sink);
  in.onEvent(ev(EventKind::kWrite, 0, 0, 5));
  // Step 1: V_0[0] = 1; step 3: V^w = V^a = V_0.
  EXPECT_EQ(in.threadClock(0), (vc::VectorClock{1}));
  EXPECT_EQ(in.writeClock(0), (vc::VectorClock{1}));
  EXPECT_EQ(in.accessClock(0), (vc::VectorClock{1}));
  ASSERT_EQ(sink.messages().size(), 1u);
  EXPECT_EQ(sink.messages()[0].clock, (vc::VectorClock{1}));
}

TEST(Instrumentor, ReadPullsWriteClockAndFeedsAccessClock) {
  trace::CollectingSink sink;
  Instrumentor in(RelevancePolicy::writesOf({0}), sink);
  in.onEvent(ev(EventKind::kWrite, 0, 0, 1));       // T0 writes x: V0=(1)
  in.onEvent(ev(EventKind::kRead, 1, 0, 1));        // T1 reads x
  // Read: V1 <- max{V1, V^w_x} = (1,0); V^a_x <- max{V^a_x, V1} = (1,0).
  EXPECT_EQ(in.threadClock(1), (vc::VectorClock{1, 0}));
  EXPECT_EQ(in.accessClock(0), (vc::VectorClock{1, 0}));
  // V^w_x unchanged by the read (that is what makes reads permutable).
  EXPECT_EQ(in.writeClock(0), (vc::VectorClock{1}));
}

TEST(Instrumentor, WriteClockNeverExceedsAccessClock) {
  // Invariant noted in §3.2: V^w_x <= V^a_x at any time.
  trace::CollectingSink sink;
  Instrumentor in(RelevancePolicy::allSharedAccesses(), sink);
  const auto events = {
      ev(EventKind::kWrite, 0, 0, 1), ev(EventKind::kRead, 1, 0, 1),
      ev(EventKind::kWrite, 1, 1, 2), ev(EventKind::kRead, 0, 1, 2),
      ev(EventKind::kWrite, 0, 0, 3), ev(EventKind::kRead, 2, 0, 3),
      ev(EventKind::kWrite, 2, 1, 4),
  };
  for (const auto& e : events) {
    in.onEvent(e);
    for (VarId x = 0; x < 2; ++x) {
      EXPECT_TRUE(in.writeClock(x).lessEq(in.accessClock(x)));
    }
  }
}

TEST(Instrumentor, LockEventsBehaveAsWrites) {
  // §3.1: acquire/release are writes of the lock variable, so two critical
  // sections are causally ordered through it.
  trace::CollectingSink sink;
  const VarId lockVar = 9;
  Instrumentor in(RelevancePolicy::writesOf({0}), sink);
  in.onEvent(ev(EventKind::kLockAcquire, 0, lockVar, 1));
  in.onEvent(ev(EventKind::kWrite, 0, 0, 1));  // relevant, V0=(1)
  in.onEvent(ev(EventKind::kLockRelease, 0, lockVar, 2));
  in.onEvent(ev(EventKind::kLockAcquire, 1, lockVar, 3));
  // T1's clock now includes T0's relevant event via the lock variable.
  EXPECT_EQ(in.threadClock(1)[0], 1u);
  in.onEvent(ev(EventKind::kWrite, 1, 0, 2));
  ASSERT_EQ(sink.messages().size(), 2u);
  EXPECT_TRUE(sink.messages()[0].causallyPrecedes(sink.messages()[1]));
}

TEST(Instrumentor, Figure6MessageClocks) {
  // Drive the xyz program along the paper's observed schedule and check
  // the exact four messages of Fig. 6.
  const program::Program p = program::corpus::xyzProgram();
  program::FixedScheduler sched(program::corpus::xyzObservedSchedule());
  const program::ExecutionRecord rec = program::runProgram(p, sched);

  trace::CollectingSink sink;
  const VarId x = p.vars.id("x");
  const VarId y = p.vars.id("y");
  const VarId z = p.vars.id("z");
  Instrumentor in(RelevancePolicy::writesOf({x, y, z}), sink);
  for (const auto& e : rec.events) in.onEvent(e);

  const auto& ms = sink.messages();
  ASSERT_EQ(ms.size(), 4u);
  // e1: <x=0, T1, (1,0)>
  EXPECT_EQ(ms[0].event.var, x);
  EXPECT_EQ(ms[0].event.value, 0);
  EXPECT_EQ(ms[0].event.thread, 0u);
  EXPECT_EQ(ms[0].clock, (vc::VectorClock{1}));
  // e2: <z=1, T2, (1,1)>
  EXPECT_EQ(ms[1].event.var, z);
  EXPECT_EQ(ms[1].event.value, 1);
  EXPECT_EQ(ms[1].clock, (vc::VectorClock{1, 1}));
  // e4: <x=1, T2, (1,2)>  (emitted before e3 in this schedule)
  EXPECT_EQ(ms[2].event.var, x);
  EXPECT_EQ(ms[2].event.value, 1);
  EXPECT_EQ(ms[2].clock, (vc::VectorClock{1, 2}));
  // e3: <y=1, T1, (2,0)>
  EXPECT_EQ(ms[3].event.var, y);
  EXPECT_EQ(ms[3].event.value, 1);
  EXPECT_EQ(ms[3].clock, (vc::VectorClock{2, 0}));

  // Causality exactly as the paper's lattice: e1 ⊳ e2 ⊳ e4, e1 ⊳ e3,
  // e3 ∥ e2, e3 ∥ e4.
  EXPECT_TRUE(ms[0].causallyPrecedes(ms[1]));
  EXPECT_TRUE(ms[1].causallyPrecedes(ms[2]));
  EXPECT_TRUE(ms[0].causallyPrecedes(ms[3]));
  EXPECT_TRUE(ms[3].concurrentWith(ms[1]));
  EXPECT_TRUE(ms[3].concurrentWith(ms[2]));
}

TEST(Instrumentor, Figure5MessageClocks) {
  const program::Program p = program::corpus::landingController();
  program::FixedScheduler sched(program::corpus::landingObservedSchedule());
  const program::ExecutionRecord rec = program::runProgram(p, sched);

  trace::CollectingSink sink;
  Instrumentor in(
      RelevancePolicy::writesOf({p.vars.id("landing"), p.vars.id("approved"),
                                 p.vars.id("radio")}),
      sink);
  for (const auto& e : rec.events) in.onEvent(e);

  const auto& ms = sink.messages();
  ASSERT_EQ(ms.size(), 3u);
  // approved=1 by T1 (1,0); landing=1 by T1 (2,0); radio=0 by T2 (0,1).
  EXPECT_EQ(ms[0].clock, (vc::VectorClock{1}));
  EXPECT_EQ(ms[1].clock, (vc::VectorClock{2}));
  EXPECT_EQ(ms[2].clock, (vc::VectorClock{0, 1}));
  EXPECT_TRUE(ms[2].concurrentWith(ms[0]));
  EXPECT_TRUE(ms[2].concurrentWith(ms[1]));
}

TEST(Instrumentor, DynamicThreadsAndVariablesGrow) {
  trace::CollectingSink sink;
  Instrumentor in(RelevancePolicy::allSharedAccesses(), sink);
  in.onEvent(ev(EventKind::kWrite, 7, 13, 1));
  EXPECT_EQ(in.threadClock(7)[7], 1u);
  EXPECT_EQ(in.writeClock(13)[7], 1u);
  // Unseen ids read as zero clocks.
  EXPECT_TRUE(in.threadClock(3).isZero());
  EXPECT_TRUE(in.accessClock(2).isZero());
}

TEST(Instrumentor, CountsEventsAndMessages) {
  trace::CollectingSink sink;
  Instrumentor in(RelevancePolicy::writesOf({0}), sink);
  in.onEvent(ev(EventKind::kWrite, 0, 0, 1));
  in.onEvent(ev(EventKind::kRead, 0, 0, 1));
  in.onEvent(ev(EventKind::kWrite, 0, 1, 1));  // irrelevant var
  EXPECT_EQ(in.eventsProcessed(), 3u);
  EXPECT_EQ(in.messagesEmitted(), 1u);
}

TEST(Instrumentor, RelevancePolicies) {
  trace::Event w = ev(EventKind::kWrite, 0, 0, 1);
  trace::Event r = ev(EventKind::kRead, 0, 0, 1);
  trace::Event i = ev(EventKind::kInternal, 0, kNoVar);
  EXPECT_TRUE(RelevancePolicy::writesOf({0}).isRelevant(w));
  EXPECT_FALSE(RelevancePolicy::writesOf({0}).isRelevant(r));
  EXPECT_FALSE(RelevancePolicy::writesOf({1}).isRelevant(w));
  EXPECT_TRUE(RelevancePolicy::accessesOf({0}).isRelevant(r));
  EXPECT_TRUE(RelevancePolicy::allSharedAccesses().isRelevant(w));
  EXPECT_FALSE(RelevancePolicy::allSharedAccesses().isRelevant(i));
  EXPECT_FALSE(RelevancePolicy::nothing().isRelevant(w));
}

}  // namespace
}  // namespace mpx::core
