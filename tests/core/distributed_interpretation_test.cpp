// Paper §3.2 / Fig. 3: the distributed-systems interpretation of the MVC
// algorithm.  Each shared variable x is modelled as two message-passing
// "processes" — an access process x^a and a write process x^w:
//
//   write of x by thread i:  i --(V_i)--> x^a --(V_xa)--> x^w --(ack)--> i
//   read  of x by thread i:  i --(V_i)--> x^a --(HIDDEN)--> x^w --(ack)--> i
//
// Every message join is the standard vector-clock update EXCEPT the hidden
// request from x^a to x^w on reads, which does NOT update x^w's clock —
// "this is what allows reads to be permutable by the observer".
//
// This test runs that message-passing simulation next to Algorithm A and
// checks that all clocks coincide after every event — the paper's "the
// answer to this question is: almost" made precise.
#include <gtest/gtest.h>

#include "core/instrumentor.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::core {
namespace {

/// The Fig. 3 message-passing simulation.
class ProcessSimulation {
 public:
  void onEvent(const trace::Event& e, const RelevancePolicy& policy) {
    vc::VectorClock& ci = clock(threads_, e.thread);
    if (policy.isRelevant(e)) ci.increment(e.thread);
    if (!e.accessesVariable()) return;

    vc::VectorClock& ca = clock(access_, e.var);
    vc::VectorClock& cw = clock(write_, e.var);
    if (e.kind == trace::EventKind::kRead) {
      // i -> x^a (request): x^a joins the thread's clock.
      ca.joinWith(ci);
      // x^a -> x^w: HIDDEN — x^w's clock is NOT updated.
      // x^w -> i (ack): the thread joins x^w's clock.
      ci.joinWith(cw);
    } else {
      // i -> x^a -> x^w -> i, all standard joins.
      ca.joinWith(ci);
      cw.joinWith(ca);
      ci.joinWith(cw);
    }
  }

  [[nodiscard]] const vc::VectorClock& thread(ThreadId t) {
    return clock(threads_, t);
  }
  [[nodiscard]] const vc::VectorClock& accessProc(VarId x) {
    return clock(access_, x);
  }
  [[nodiscard]] const vc::VectorClock& writeProc(VarId x) {
    return clock(write_, x);
  }

 private:
  static vc::VectorClock& clock(std::vector<vc::VectorClock>& v,
                                std::size_t i) {
    if (i >= v.size()) v.resize(i + 1);
    return v[i];
  }
  std::vector<vc::VectorClock> threads_;
  std::vector<vc::VectorClock> access_;
  std::vector<vc::VectorClock> write_;
};

class DistributedInterpretation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedInterpretation, SimulationMatchesAlgorithmA) {
  program::corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 3;
  opts.opsPerThread = 8;
  opts.locks = 1;
  const program::Program prog =
      program::corpus::randomProgram(GetParam(), opts);
  const program::ExecutionRecord rec =
      program::runProgramRandom(prog, GetParam() ^ 0xfeed);

  std::unordered_set<VarId> dataVars;
  for (const VarId v : prog.vars.idsWithRole(trace::VarRole::kData)) {
    dataVars.insert(v);
  }
  const RelevancePolicy policy = RelevancePolicy::writesOf(dataVars);

  trace::CollectingSink sink;
  Instrumentor algorithmA(policy, sink);
  ProcessSimulation figure3;

  for (const trace::Event& e : rec.events) {
    algorithmA.onEvent(e);
    figure3.onEvent(e, policy);

    EXPECT_EQ(algorithmA.threadClock(e.thread), figure3.thread(e.thread))
        << "thread clock diverged";
    if (e.accessesVariable()) {
      EXPECT_EQ(algorithmA.accessClock(e.var), figure3.accessProc(e.var))
          << "access clock diverged";
      EXPECT_EQ(algorithmA.writeClock(e.var), figure3.writeProc(e.var))
          << "write clock diverged";
      // §3.2's invariant that makes the write path collapse correctly.
      EXPECT_TRUE(
          figure3.writeProc(e.var).lessEq(figure3.accessProc(e.var)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedInterpretation,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
}  // namespace mpx::core
